//! Property tests for the recovery scan: random record sequences, random
//! truncation points, random byte corruption — recovery must never panic and
//! must always hand back an intact prefix of what was appended.

use proptest::prelude::*;
use regular_storage::device::NodeDisk;
use regular_storage::wal::Wal;
use regular_storage::{StorageRegistry, WalOptions};

fn build_image(payload_lens: &[u8]) -> (Vec<Vec<u8>>, Vec<u8>) {
    let registry = StorageRegistry::new();
    let (mut wal, _) = Wal::open(&WalOptions::mem(registry.clone()), "img");
    let mut payloads = Vec::new();
    for (i, &len) in payload_lens.iter().enumerate() {
        let payload: Vec<u8> =
            (0..len).map(|j| (i as u8).wrapping_mul(31).wrapping_add(j)).collect();
        wal.append(&payload, 0);
        payloads.push(payload);
    }
    wal.sync();
    (payloads, registry.disk("img").read_segment(0))
}

fn scan_image(bytes: &[u8]) -> Vec<Vec<u8>> {
    let registry = StorageRegistry::new();
    let disk = registry.disk("scan");
    disk.create_segment(0);
    disk.append_segment(0, bytes);
    disk.sync_segment(0);
    let mut node_disk = NodeDisk::Mem(disk);
    Wal::read_log(&mut node_disk).records
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncation_recovers_an_intact_prefix(
        lens in prop::collection::vec(0u8..40, 1..12),
        cut_frac in 0u32..=1000,
    ) {
        let (payloads, image) = build_image(&lens);
        let cut = (image.len() as u64 * cut_frac as u64 / 1000) as usize;
        let records = scan_image(&image[..cut]);
        prop_assert!(records.len() <= payloads.len());
        for (rec, original) in records.iter().zip(&payloads) {
            prop_assert_eq!(rec, original, "recovered record diverged from what was appended");
        }
        // Full image ⇒ full recovery.
        let full = scan_image(&image);
        prop_assert_eq!(full.len(), payloads.len());
    }

    #[test]
    fn corruption_never_panics_or_fabricates(
        lens in prop::collection::vec(0u8..40, 1..10),
        victim_frac in 0u32..1000,
        xor in 1u8..=255,
    ) {
        let (payloads, image) = build_image(&lens);
        let mut bytes = image.clone();
        let victim = (bytes.len() as u64 * victim_frac as u64 / 1000) as usize;
        let victim = victim.min(bytes.len() - 1);
        bytes[victim] ^= xor;
        let records = scan_image(&bytes);
        prop_assert!(records.len() <= payloads.len());
        // Recovery stops at the corrupted frame; everything before it is
        // untouched and must match exactly.
        for (rec, original) in records.iter().zip(&payloads) {
            prop_assert_eq!(rec, original);
        }
    }

    #[test]
    fn crash_recover_cycles_preserve_synced_records(
        rounds in prop::collection::vec((1u8..6, 0u8..6), 1..6),
        torn_seed in any::<u64>(),
    ) {
        let registry = StorageRegistry::new();
        let opts = WalOptions::mem(registry.clone())
            .with_torn_tail_seed(torn_seed)
            .with_checkpoint_every(0);
        let (mut wal, _) = Wal::open(&opts, "node");
        let mut appended: Vec<Vec<u8>> = Vec::new();
        for (n_synced, n_unsynced) in rounds {
            for _ in 0..n_synced {
                let payload = vec![appended.len() as u8; 5];
                wal.append(&payload, 0);
                appended.push(payload);
            }
            wal.sync();
            let synced = appended.len();
            for _ in 0..n_unsynced {
                let payload = vec![appended.len() as u8; 5];
                wal.append(&payload, 0);
                appended.push(payload);
            }
            wal.on_crash();
            let log = wal.recover();
            prop_assert!(log.records.len() >= synced, "a synced record was lost");
            prop_assert!(log.records.len() <= appended.len());
            for (rec, original) in log.records.iter().zip(&appended) {
                prop_assert_eq!(rec, original);
            }
            // Records past the recovered prefix are gone for good; forget them.
            appended.truncate(log.records.len());
        }
    }
}
