//! A small buffer pool over a device's page file.
//!
//! Classic mechanics, sized for checkpoint snapshots rather than OLTP: a
//! fixed set of frames, a page table, pin counts, dirty bits, and LRU
//! eviction with write-back. All checkpoint page IO goes through here so the
//! WAL only touches the device at frame granularity.

use std::collections::HashMap;

use crate::device::NodeDisk;

/// Page size in bytes. Page writes are assumed atomic at this granularity
/// (the standard WAL assumption); torn *pages* are out of scope — the meta
/// pages are crc-guarded and ping-ponged instead.
pub const PAGE_SIZE: usize = 4096;

struct Frame {
    page: u64,
    data: Box<[u8]>,
    dirty: bool,
    pins: u32,
    last_used: u64,
}

/// Pool counters (observability for tests and the storage bench).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Dirty frames written back to the device at eviction time.
    pub writebacks: u64,
}

pub struct BufferPool {
    capacity: usize,
    frames: Vec<Frame>,
    table: HashMap<u64, usize>,
    tick: u64,
    stats: PoolStats,
}

impl BufferPool {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        BufferPool {
            capacity,
            frames: Vec::new(),
            table: HashMap::new(),
            tick: 0,
            stats: PoolStats::default(),
        }
    }

    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    fn touch(&mut self, frame: usize) {
        self.tick += 1;
        self.frames[frame].last_used = self.tick;
    }

    /// Pin `page` into a frame, loading it from the device on a miss
    /// (evicting the least-recently-used unpinned frame if the pool is full,
    /// writing it back first when dirty). Returns the frame id; the caller
    /// must [`Self::unpin`] it.
    pub fn pin(&mut self, disk: &mut NodeDisk, page: u64) -> usize {
        if let Some(&frame) = self.table.get(&page) {
            self.stats.hits += 1;
            self.frames[frame].pins += 1;
            self.touch(frame);
            return frame;
        }
        self.stats.misses += 1;
        let frame = if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                page,
                data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
                dirty: false,
                pins: 0,
                last_used: 0,
            });
            self.frames.len() - 1
        } else {
            let victim = self
                .frames
                .iter()
                .enumerate()
                .filter(|(_, f)| f.pins == 0)
                .min_by_key(|(_, f)| f.last_used)
                .map(|(i, _)| i)
                .expect("buffer pool exhausted: every frame is pinned");
            self.stats.evictions += 1;
            let old = &mut self.frames[victim];
            if old.dirty {
                self.stats.writebacks += 1;
                disk.write_page(old.page, &old.data);
                old.dirty = false;
            }
            self.table.remove(&old.page);
            old.page = page;
            victim
        };
        disk.read_page(page, &mut self.frames[frame].data);
        self.table.insert(page, frame);
        self.frames[frame].pins = 1;
        self.touch(frame);
        frame
    }

    pub fn unpin(&mut self, frame: usize) {
        let f = &mut self.frames[frame];
        debug_assert!(f.pins > 0, "unpin without a pin");
        f.pins = f.pins.saturating_sub(1);
    }

    pub fn data(&self, frame: usize) -> &[u8] {
        &self.frames[frame].data
    }

    /// Mutable view of a pinned frame; marks it dirty.
    pub fn data_mut(&mut self, frame: usize) -> &mut [u8] {
        let f = &mut self.frames[frame];
        f.dirty = true;
        &mut f.data
    }

    /// Convenience read: pin, copy out, unpin.
    pub fn read(&mut self, disk: &mut NodeDisk, page: u64, buf: &mut [u8]) {
        let frame = self.pin(disk, page);
        buf.copy_from_slice(&self.frames[frame].data[..buf.len()]);
        self.unpin(frame);
    }

    /// Convenience write: pin, overwrite, mark dirty, unpin. `buf` may be
    /// shorter than a page; the remainder is zero-filled.
    pub fn write(&mut self, disk: &mut NodeDisk, page: u64, buf: &[u8]) {
        debug_assert!(buf.len() <= PAGE_SIZE);
        let frame = self.pin(disk, page);
        let data = self.data_mut(frame);
        data[..buf.len()].copy_from_slice(buf);
        data[buf.len()..].fill(0);
        self.unpin(frame);
    }

    /// Write every dirty frame back and fsync the page file.
    pub fn flush(&mut self, disk: &mut NodeDisk) {
        let mut wrote = false;
        for f in self.frames.iter_mut() {
            if f.dirty {
                disk.write_page(f.page, &f.data);
                f.dirty = false;
                self.stats.writebacks += 1;
                wrote = true;
            }
        }
        if wrote {
            disk.sync_pages();
        }
    }

    /// Drop every frame without writing back — the cached view is stale
    /// (crash semantics rolled the device back under us).
    pub fn clear(&mut self) {
        self.frames.clear();
        self.table.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDisk;

    fn disk() -> NodeDisk {
        NodeDisk::Mem(MemDisk::new())
    }

    fn page_of(byte: u8) -> Vec<u8> {
        vec![byte; PAGE_SIZE]
    }

    #[test]
    fn hit_miss_and_lru_eviction() {
        let mut disk = disk();
        let mut pool = BufferPool::new(2);
        pool.write(&mut disk, 0, &page_of(0xA0));
        pool.write(&mut disk, 1, &page_of(0xA1));
        assert_eq!(pool.stats().misses, 2);
        // Touch page 0 so page 1 becomes the LRU victim.
        let mut buf = page_of(0);
        pool.read(&mut disk, 0, &mut buf);
        assert_eq!(pool.stats().hits, 1);
        pool.write(&mut disk, 2, &page_of(0xA2));
        assert_eq!(pool.stats().evictions, 1);
        assert_eq!(pool.stats().writebacks, 1, "evicting dirty page 1 writes it back");
        // Page 1 must have reached the device even though we never flushed.
        pool.flush(&mut disk);
        let mut fresh = BufferPool::new(2);
        fresh.read(&mut disk, 1, &mut buf);
        assert_eq!(buf, page_of(0xA1));
    }

    #[test]
    fn pinned_frames_are_not_evicted() {
        let mut disk = disk();
        let mut pool = BufferPool::new(2);
        let pinned = pool.pin(&mut disk, 0);
        pool.data_mut(pinned)[0] = 42;
        pool.write(&mut disk, 1, &page_of(1));
        // Only frame 1 is evictable: loading page 2 must evict page 1, not 0.
        pool.write(&mut disk, 2, &page_of(2));
        assert_eq!(pool.data(pinned)[0], 42, "pinned frame survived");
        pool.unpin(pinned);
        pool.flush(&mut disk);
        let mut buf = page_of(0);
        pool.read(&mut disk, 0, &mut buf);
        assert_eq!(buf[0], 42);
    }

    #[test]
    #[should_panic(expected = "every frame is pinned")]
    fn exhausted_pool_panics() {
        let mut disk = disk();
        let mut pool = BufferPool::new(1);
        let _a = pool.pin(&mut disk, 0);
        let _b = pool.pin(&mut disk, 1);
    }

    #[test]
    fn clear_discards_stale_cache() {
        let mut disk = disk();
        let mut pool = BufferPool::new(4);
        pool.write(&mut disk, 0, &page_of(9));
        pool.clear();
        let mut buf = page_of(0);
        pool.read(&mut disk, 0, &mut buf);
        assert_eq!(buf, page_of(0), "unflushed write vanished with the cache");
    }
}
