//! Storage devices.
//!
//! A device holds two things for one node: a set of append-only log
//! *segments* and a random-access *page file*. [`MemDisk`] is the
//! deterministic in-process device the simulation plane uses; [`DirDisk`]
//! backs the live plane with real files and real fsyncs. [`NodeDisk`] is the
//! enum the WAL drives, so protocol code never sees which one it got.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use crate::pool::PAGE_SIZE;

/// In-process device with explicit synced/unsynced boundaries.
///
/// Cloning yields another handle to the same device (the registry hands these
/// out), so a test can keep a handle across a run and inspect — or
/// offline-replay — the log the node left behind.
#[derive(Clone, Default)]
pub struct MemDisk {
    inner: Arc<Mutex<MemDiskInner>>,
}

#[derive(Default)]
struct MemDiskInner {
    segments: BTreeMap<u64, MemSegment>,
    /// Page file as last written (may be ahead of `durable_pages`).
    pages: Vec<u8>,
    /// Page file as of the last `sync_pages`. Page writes are assumed atomic
    /// at page granularity; an unsynced page write is lost wholesale on crash.
    durable_pages: Vec<u8>,
    crashes: u64,
}

#[derive(Default)]
struct MemSegment {
    data: Vec<u8>,
    synced: usize,
}

/// xorshift64* — tiny deterministic generator for torn-tail injection.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

impl MemDisk {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn segment_ids(&self) -> Vec<u64> {
        self.inner.lock().unwrap().segments.keys().copied().collect()
    }

    pub fn segment_len(&self, id: u64) -> u64 {
        self.inner.lock().unwrap().segments.get(&id).map_or(0, |s| s.data.len() as u64)
    }

    pub fn read_segment(&self, id: u64) -> Vec<u8> {
        self.inner.lock().unwrap().segments.get(&id).map_or_else(Vec::new, |s| s.data.clone())
    }

    pub fn create_segment(&self, id: u64) {
        self.inner.lock().unwrap().segments.entry(id).or_default();
    }

    pub fn append_segment(&self, id: u64, bytes: &[u8]) {
        let mut inner = self.inner.lock().unwrap();
        inner.segments.entry(id).or_default().data.extend_from_slice(bytes);
    }

    pub fn sync_segment(&self, id: u64) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(seg) = inner.segments.get_mut(&id) {
            seg.synced = seg.data.len();
        }
    }

    pub fn truncate_segment(&self, id: u64, len: u64) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(seg) = inner.segments.get_mut(&id) {
            seg.data.truncate(len as usize);
            seg.synced = seg.synced.min(seg.data.len());
        }
    }

    pub fn delete_segment(&self, id: u64) {
        self.inner.lock().unwrap().segments.remove(&id);
    }

    /// Mark everything currently on the device as synced (recovery does this
    /// after trimming torn tails: whatever survived the crash is durable).
    pub fn mark_all_synced(&self) {
        let mut inner = self.inner.lock().unwrap();
        for seg in inner.segments.values_mut() {
            seg.synced = seg.data.len();
        }
        let pages = inner.pages.clone();
        inner.durable_pages = pages;
    }

    pub fn read_page(&self, page: u64, buf: &mut [u8]) {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        let inner = self.inner.lock().unwrap();
        let off = page as usize * PAGE_SIZE;
        buf.fill(0);
        if off < inner.pages.len() {
            let end = (off + PAGE_SIZE).min(inner.pages.len());
            buf[..end - off].copy_from_slice(&inner.pages[off..end]);
        }
    }

    pub fn write_page(&self, page: u64, buf: &[u8]) {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        let mut inner = self.inner.lock().unwrap();
        let off = page as usize * PAGE_SIZE;
        if inner.pages.len() < off + PAGE_SIZE {
            inner.pages.resize(off + PAGE_SIZE, 0);
        }
        inner.pages[off..off + PAGE_SIZE].copy_from_slice(buf);
    }

    pub fn sync_pages(&self) {
        let mut inner = self.inner.lock().unwrap();
        let pages = inner.pages.clone();
        inner.durable_pages = pages;
    }

    /// Apply crash semantics: unsynced page writes vanish; every segment is
    /// truncated to its synced prefix — except that, when `torn_seed` is set,
    /// the *last* segment keeps a seeded pseudo-random prefix of its unsynced
    /// tail, possibly with the final surviving byte corrupted. That models a
    /// partial write caught mid-flight and is what the recovery scan's
    /// checksum discipline exists for.
    pub fn crash(&self, torn_seed: Option<u64>) {
        let mut inner = self.inner.lock().unwrap();
        inner.crashes += 1;
        let crashes = inner.crashes;
        let pages = inner.durable_pages.clone();
        inner.pages = pages;
        let last = inner.segments.keys().next_back().copied();
        for (&id, seg) in inner.segments.iter_mut() {
            let tail: Vec<u8> = seg.data[seg.synced..].to_vec();
            seg.data.truncate(seg.synced);
            if Some(id) == last && !tail.is_empty() {
                if let Some(seed) = torn_seed {
                    let r = mix(seed ^ crashes.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    let keep = (r as usize) % (tail.len() + 1);
                    let mut kept = tail[..keep].to_vec();
                    if keep > 0 && (r >> 33) & 3 == 0 {
                        // One in four torn tails ends in a flipped bit.
                        let bit = ((r >> 35) % 8) as u8;
                        kept[keep - 1] ^= 1 << bit;
                    }
                    seg.data.extend_from_slice(&kept);
                }
            }
        }
    }

    /// Total synced log bytes across segments (test observability).
    pub fn synced_bytes(&self) -> u64 {
        self.inner.lock().unwrap().segments.values().map(|s| s.synced as u64).sum()
    }

    pub fn crashes(&self) -> u64 {
        self.inner.lock().unwrap().crashes
    }
}

/// Filesystem-backed device: `wal-NNNNNN.seg` files plus `pages.db` in one
/// directory per node. Syncs are real `fdatasync`s. `crash()` is a no-op —
/// the live plane cannot un-write the OS page cache; crash *semantics* are
/// exercised deterministically on [`MemDisk`].
pub struct DirDisk {
    dir: PathBuf,
    handles: BTreeMap<u64, File>,
    pages: Option<File>,
}

impl DirDisk {
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DirDisk { dir, handles: BTreeMap::new(), pages: None })
    }

    fn segment_path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("wal-{id:06}.seg"))
    }

    /// Fsync the directory itself so segment create/delete survive an OS
    /// crash — `sync_data` on a file does not persist its directory entry.
    fn sync_dir(&self) {
        let dir = File::open(&self.dir)
            .unwrap_or_else(|e| panic!("open dir {}: {e}", self.dir.display()));
        dir.sync_all().unwrap_or_else(|e| panic!("fsync dir {}: {e}", self.dir.display()));
    }

    fn segment_file(&mut self, id: u64) -> &mut File {
        let path = self.segment_path(id);
        if !self.handles.contains_key(&id) {
            let existed = path.exists();
            let file = OpenOptions::new()
                .read(true)
                .append(true)
                .create(true)
                .open(&path)
                .unwrap_or_else(|e| panic!("open {}: {e}", path.display()));
            if !existed {
                self.sync_dir();
            }
            self.handles.insert(id, file);
        }
        self.handles.get_mut(&id).unwrap()
    }

    fn pages_file(&mut self) -> &mut File {
        let path = self.dir.join("pages.db");
        self.pages.get_or_insert_with(|| {
            OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                // An existing page file survives reopen: it IS the durable
                // state recovery reads.
                .truncate(false)
                .open(&path)
                .unwrap_or_else(|e| panic!("open {}: {e}", path.display()))
        })
    }

    pub fn segment_ids(&self) -> Vec<u64> {
        let mut ids = Vec::new();
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if let Some(num) = name.strip_prefix("wal-").and_then(|n| n.strip_suffix(".seg")) {
                    if let Ok(id) = num.parse() {
                        ids.push(id);
                    }
                }
            }
        }
        ids.sort_unstable();
        ids
    }

    pub fn segment_len(&self, id: u64) -> u64 {
        fs::metadata(self.segment_path(id)).map_or(0, |m| m.len())
    }

    pub fn read_segment(&mut self, id: u64) -> Vec<u8> {
        let mut buf = Vec::new();
        let file = self.segment_file(id);
        file.seek(SeekFrom::Start(0)).expect("seek segment");
        file.read_to_end(&mut buf).expect("read segment");
        buf
    }

    pub fn create_segment(&mut self, id: u64) {
        let _ = self.segment_file(id);
    }

    pub fn append_segment(&mut self, id: u64, bytes: &[u8]) {
        let file = self.segment_file(id);
        file.seek(SeekFrom::End(0)).expect("seek segment end");
        file.write_all(bytes).expect("append segment");
    }

    pub fn sync_segment(&mut self, id: u64) {
        self.segment_file(id).sync_data().expect("fsync segment");
    }

    pub fn truncate_segment(&mut self, id: u64, len: u64) {
        // Repair truncation must itself be durable: without the fsync an OS
        // crash after recovery could resurrect the truncated torn bytes.
        let file = self.segment_file(id);
        file.set_len(len).expect("truncate segment");
        file.sync_data().expect("fsync truncated segment");
    }

    pub fn delete_segment(&mut self, id: u64) {
        self.handles.remove(&id);
        if fs::remove_file(self.segment_path(id)).is_ok() {
            self.sync_dir();
        }
    }

    pub fn read_page(&mut self, page: u64, buf: &mut [u8]) {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        buf.fill(0);
        let file = self.pages_file();
        let len = file.metadata().map_or(0, |m| m.len());
        let off = page * PAGE_SIZE as u64;
        if off < len {
            file.seek(SeekFrom::Start(off)).expect("seek page");
            let want = ((len - off) as usize).min(PAGE_SIZE);
            file.read_exact(&mut buf[..want]).expect("read page");
        }
    }

    pub fn write_page(&mut self, page: u64, buf: &[u8]) {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        let off = page * PAGE_SIZE as u64;
        let file = self.pages_file();
        file.seek(SeekFrom::Start(off)).expect("seek page");
        file.write_all(buf).expect("write page");
    }

    pub fn sync_pages(&mut self) {
        self.pages_file().sync_data().expect("fsync pages");
    }
}

/// The device handle a [`crate::wal::Wal`] drives.
pub enum NodeDisk {
    Mem(MemDisk),
    Dir(DirDisk),
}

impl NodeDisk {
    pub fn segment_ids(&self) -> Vec<u64> {
        match self {
            NodeDisk::Mem(d) => d.segment_ids(),
            NodeDisk::Dir(d) => d.segment_ids(),
        }
    }

    pub fn segment_len(&self, id: u64) -> u64 {
        match self {
            NodeDisk::Mem(d) => d.segment_len(id),
            NodeDisk::Dir(d) => d.segment_len(id),
        }
    }

    pub fn read_segment(&mut self, id: u64) -> Vec<u8> {
        match self {
            NodeDisk::Mem(d) => d.read_segment(id),
            NodeDisk::Dir(d) => d.read_segment(id),
        }
    }

    pub fn create_segment(&mut self, id: u64) {
        match self {
            NodeDisk::Mem(d) => d.create_segment(id),
            NodeDisk::Dir(d) => d.create_segment(id),
        }
    }

    pub fn append_segment(&mut self, id: u64, bytes: &[u8]) {
        match self {
            NodeDisk::Mem(d) => d.append_segment(id, bytes),
            NodeDisk::Dir(d) => d.append_segment(id, bytes),
        }
    }

    pub fn sync_segment(&mut self, id: u64) {
        match self {
            NodeDisk::Mem(d) => d.sync_segment(id),
            NodeDisk::Dir(d) => d.sync_segment(id),
        }
    }

    pub fn truncate_segment(&mut self, id: u64, len: u64) {
        match self {
            NodeDisk::Mem(d) => d.truncate_segment(id, len),
            NodeDisk::Dir(d) => d.truncate_segment(id, len),
        }
    }

    pub fn delete_segment(&mut self, id: u64) {
        match self {
            NodeDisk::Mem(d) => d.delete_segment(id),
            NodeDisk::Dir(d) => d.delete_segment(id),
        }
    }

    pub fn read_page(&mut self, page: u64, buf: &mut [u8]) {
        match self {
            NodeDisk::Mem(d) => d.read_page(page, buf),
            NodeDisk::Dir(d) => d.read_page(page, buf),
        }
    }

    pub fn write_page(&mut self, page: u64, buf: &[u8]) {
        match self {
            NodeDisk::Mem(d) => d.write_page(page, buf),
            NodeDisk::Dir(d) => d.write_page(page, buf),
        }
    }

    pub fn sync_pages(&mut self) {
        match self {
            NodeDisk::Mem(d) => d.sync_pages(),
            NodeDisk::Dir(d) => d.sync_pages(),
        }
    }

    /// Crash semantics (torn tails, lost unsynced pages) apply to the memory
    /// device; the live plane keeps its files as the OS left them.
    pub fn crash(&mut self, torn_seed: Option<u64>) {
        if let NodeDisk::Mem(d) = self {
            d.crash(torn_seed);
        }
    }

    /// Mark current contents durable (post-recovery baseline).
    pub fn mark_all_synced(&mut self) {
        if let NodeDisk::Mem(d) = self {
            d.mark_all_synced();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_disk_crash_truncates_to_synced_prefix() {
        let disk = MemDisk::new();
        disk.create_segment(0);
        disk.append_segment(0, b"durable");
        disk.sync_segment(0);
        disk.append_segment(0, b"-volatile");
        disk.crash(None);
        assert_eq!(disk.read_segment(0), b"durable");
        // A second handle sees the same state.
        let other = disk.clone();
        assert_eq!(other.read_segment(0), b"durable");
    }

    #[test]
    fn mem_disk_torn_tail_is_deterministic_and_bounded() {
        let run = |seed| {
            let disk = MemDisk::new();
            disk.create_segment(0);
            disk.append_segment(0, b"durable");
            disk.sync_segment(0);
            disk.append_segment(0, b"0123456789");
            disk.crash(Some(seed));
            disk.read_segment(0)
        };
        for seed in 0..64 {
            let a = run(seed);
            let b = run(seed);
            assert_eq!(a, b, "torn tail must be seed-deterministic");
            assert!(a.len() >= b"durable".len() && a.len() <= b"durable".len() + 10);
            assert_eq!(&a[..7], b"durable", "synced prefix must survive intact");
        }
        // Across seeds the surviving tail actually varies.
        let lens: std::collections::BTreeSet<usize> = (0..64).map(|s| run(s).len()).collect();
        assert!(lens.len() > 3, "expected varied torn-tail lengths, got {lens:?}");
    }

    #[test]
    fn mem_disk_pages_lose_unsynced_writes_on_crash() {
        let disk = MemDisk::new();
        let page_a = [0xAAu8; PAGE_SIZE];
        let page_b = [0xBBu8; PAGE_SIZE];
        disk.write_page(0, &page_a);
        disk.sync_pages();
        disk.write_page(0, &page_b);
        disk.write_page(1, &page_b);
        disk.crash(None);
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(0, &mut buf);
        assert_eq!(buf, page_a);
        disk.read_page(1, &mut buf);
        assert_eq!(buf, [0u8; PAGE_SIZE]);
    }

    #[test]
    fn dir_disk_round_trips_segments_and_pages() {
        let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/tmp"))
            .join(format!("storage-device-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let mut disk = DirDisk::open(&dir).unwrap();
            disk.append_segment(0, b"hello ");
            disk.append_segment(0, b"world");
            disk.sync_segment(0);
            disk.append_segment(3, b"later");
            let mut page = [0u8; PAGE_SIZE];
            page[..4].copy_from_slice(b"page");
            disk.write_page(2, &page);
            disk.sync_pages();
        }
        {
            let mut disk = DirDisk::open(&dir).unwrap();
            assert_eq!(disk.segment_ids(), vec![0, 3]);
            assert_eq!(disk.read_segment(0), b"hello world");
            assert_eq!(disk.read_segment(3), b"later");
            let mut buf = [0u8; PAGE_SIZE];
            disk.read_page(2, &mut buf);
            assert_eq!(&buf[..4], b"page");
            disk.read_page(7, &mut buf);
            assert_eq!(buf, [0u8; PAGE_SIZE], "unwritten pages read as zeroes");
            disk.truncate_segment(0, 5);
            assert_eq!(disk.read_segment(0), b"hello");
            disk.delete_segment(3);
            assert_eq!(disk.segment_ids(), vec![0]);
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
