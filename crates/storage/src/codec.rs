//! Hand-rolled binary codec and CRC-32.
//!
//! The workspace's vendored `serde` is derive-only, so WAL record encodings
//! are written by hand against these helpers. Everything is little-endian;
//! decoding never panics — a truncated or garbage buffer yields `None`, which
//! the recovery scan treats as a torn tail.

const CRC_POLY: u32 = 0xEDB8_8320;

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { CRC_POLY ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE 802.3).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Append-only encoder.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u8(v as u8)
    }

    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Panic-free decoder over a byte slice.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(out)
    }

    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    pub fn bool(&mut self) -> Option<bool> {
        self.u8().map(|b| b != 0)
    }

    pub fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    pub fn usize(&mut self) -> Option<usize> {
        self.u64().map(|v| v as usize)
    }

    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn round_trip() {
        let mut e = Enc::new();
        e.u8(7).bool(true).u32(0xDEAD_BEEF).u64(u64::MAX).bytes(b"hello");
        let buf = e.finish();
        let mut d = Dec::new(&buf);
        assert_eq!(d.u8(), Some(7));
        assert_eq!(d.bool(), Some(true));
        assert_eq!(d.u32(), Some(0xDEAD_BEEF));
        assert_eq!(d.u64(), Some(u64::MAX));
        assert_eq!(d.bytes(), Some(&b"hello"[..]));
        assert!(d.is_empty());
    }

    #[test]
    fn truncated_decode_is_none_not_panic() {
        let mut e = Enc::new();
        e.u64(42).bytes(b"abcdef");
        let buf = e.finish();
        for cut in 0..buf.len() {
            let mut d = Dec::new(&buf[..cut]);
            // Whatever sequence of reads, a short buffer must yield None.
            let _ = d.u64().and_then(|_| d.bytes());
        }
        let mut d = Dec::new(&[0xFF, 0xFF, 0xFF, 0xFF]);
        assert_eq!(d.bytes(), None, "length prefix larger than buffer");
    }
}
