//! The write-ahead log: segmented frames, group commit, checkpoints, and a
//! torn-tail-tolerant recovery scan.
//!
//! ## On-device layout
//!
//! Log records live in append-only segments (`wal-NNNNNN.seg`), each a run of
//! frames: `[len: u32 LE][crc32(payload): u32 LE][payload]`. The page file
//! holds checkpoints: pages 0 and 1 are ping-ponged, crc-guarded *meta*
//! pages (the valid one with the highest epoch wins), and two snapshot areas
//! alternate starting at page 2 so a crash mid-checkpoint never damages the
//! previous checkpoint.
//!
//! ## Group commit
//!
//! [`Wal::append`] writes the frame to the device immediately but defers the
//! fsync: the log stays "dirty" until [`Wal::sync`], and
//! [`Wal::deadline_us`] reports when the oldest unsynced record's
//! `group_commit_us` window expires. The caller (the protocol node) holds
//! back outbound messages while [`Wal::wants_sync`] is true — see the crate
//! docs for why that makes torn tails harmless.
//!
//! ## Recovery
//!
//! The scan loads the best meta page, restores the snapshot it points at,
//! then replays frames from the recorded log position. It stops — without
//! panicking — at the first incomplete or checksum-failing frame, truncates
//! the torn bytes, and discards any later segments. Data appended after a
//! lost record is unreachable by construction *because* [`Wal::append`]
//! syncs before rotating segments: unsynced frames exist only in the final
//! segment, so a crash can tear the log's tail but never its middle, and the
//! replayed records are always an exact prefix of what was appended.

use crate::codec::crc32;
use crate::device::{DirDisk, NodeDisk};
use crate::pool::{BufferPool, PAGE_SIZE};
use crate::{Backing, WalOptions};

/// Upper bound on a single record; anything larger in a length field is
/// treated as corruption.
const MAX_RECORD: u32 = 16 * 1024 * 1024;
/// Pages reserved per snapshot area (16 MiB each).
const MAX_SNAPSHOT_PAGES: u64 = 4096;
const META_MAGIC: u32 = 0x5253_574C; // "RSWL"
const FRAME_HEADER: usize = 8;

/// Per-WAL counters; aggregated across nodes into
/// [`crate::StorageSummary`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    pub records: u64,
    pub bytes: u64,
    pub syncs: u64,
    pub checkpoints: u64,
    /// Checkpoints skipped because the snapshot outgrew its area.
    pub skipped_checkpoints: u64,
    pub recoveries: u64,
    pub replayed: u64,
    pub torn_bytes: u64,
}

/// What a recovery scan hands back to the protocol.
pub struct RecoveredLog {
    /// The last checkpoint's snapshot, if one was ever written.
    pub snapshot: Option<Vec<u8>>,
    /// Every intact record after the checkpoint position, in append order.
    pub records: Vec<Vec<u8>>,
}

impl RecoveredLog {
    pub fn is_empty(&self) -> bool {
        self.snapshot.is_none() && self.records.is_empty()
    }
}

struct Meta {
    epoch: u64,
    snap_len: u64,
    snap_crc: u32,
    wal_seg: u64,
    wal_off: u64,
}

struct ScanEnd {
    segment: u64,
    offset: u64,
    epoch: u64,
    torn_bytes: u64,
}

struct Dirty {
    first_segment: u64,
    since_us: u64,
}

pub struct Wal {
    disk: NodeDisk,
    pool: BufferPool,
    group_commit_us: u64,
    segment_bytes: u64,
    checkpoint_every: u64,
    torn_tail_seed: Option<u64>,
    cur_segment: u64,
    cur_len: u64,
    dirty: Option<Dirty>,
    records_since_checkpoint: u64,
    epoch: u64,
    stats: WalStats,
}

impl Wal {
    /// Open (or re-open) the log named `name` under `opts.backing`. The scan
    /// that runs here is the same one crash recovery uses, so re-opening an
    /// existing directory resumes where the last process left off.
    pub fn open(opts: &WalOptions, name: &str) -> (Wal, RecoveredLog) {
        let mut disk = match &opts.backing {
            Backing::Memory(registry) => NodeDisk::Mem(registry.disk(name)),
            Backing::Dir(dir) => {
                NodeDisk::Dir(DirDisk::open(dir.join(name)).expect("open WAL directory"))
            }
        };
        let (log, end) = scan(&mut disk, true);
        let mut wal = Wal {
            disk,
            pool: BufferPool::new(16),
            group_commit_us: opts.group_commit_us,
            segment_bytes: opts.segment_bytes.max(FRAME_HEADER as u64 + 1),
            checkpoint_every: opts.checkpoint_every,
            torn_tail_seed: opts.torn_tail_seed,
            cur_segment: end.segment,
            cur_len: end.offset,
            dirty: None,
            records_since_checkpoint: log.records.len() as u64,
            epoch: end.epoch,
            stats: WalStats::default(),
        };
        wal.disk.create_segment(wal.cur_segment);
        (wal, log)
    }

    pub fn stats(&self) -> WalStats {
        self.stats
    }

    pub fn group_commit_us(&self) -> u64 {
        self.group_commit_us
    }

    /// Append one record. The frame reaches the device now; its fsync is
    /// deferred to [`Wal::sync`].
    pub fn append(&mut self, payload: &[u8], now_us: u64) {
        assert!(payload.len() as u64 <= MAX_RECORD as u64, "record too large");
        let frame_len = FRAME_HEADER + payload.len();
        if self.cur_len > 0 && self.cur_len + frame_len as u64 > self.segment_bytes {
            // Sync before rotating so unsynced data only ever lives in the
            // final segment. Rotating with dirty frames behind would let a
            // crash truncate the *middle* of the log (the non-final segment
            // loses its unsynced tail at a clean frame boundary) while later
            // frames survive in the next segment's torn tail — and the
            // recovery scan would replay them, violating the prefix
            // invariant. An early fsync is always safe; it just shrinks the
            // group-commit batch at segment boundaries.
            self.sync();
            self.cur_segment += 1;
            self.cur_len = 0;
            self.disk.create_segment(self.cur_segment);
        }
        let mut frame = Vec::with_capacity(frame_len);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.disk.append_segment(self.cur_segment, &frame);
        self.cur_len += frame_len as u64;
        self.stats.records += 1;
        self.stats.bytes += frame_len as u64;
        self.records_since_checkpoint += 1;
        if self.dirty.is_none() {
            self.dirty = Some(Dirty { first_segment: self.cur_segment, since_us: now_us });
        }
    }

    /// Is there appended-but-unsynced data?
    pub fn wants_sync(&self) -> bool {
        self.dirty.is_some()
    }

    /// When the group-commit window of the oldest unsynced record expires.
    pub fn deadline_us(&self) -> Option<u64> {
        self.dirty.as_ref().map(|d| d.since_us + self.group_commit_us)
    }

    /// Fsync every segment with unsynced data — one group commit.
    pub fn sync(&mut self) {
        let Some(dirty) = self.dirty.take() else { return };
        for seg in dirty.first_segment..=self.cur_segment {
            self.disk.sync_segment(seg);
        }
        self.stats.syncs += 1;
    }

    pub fn checkpoint_due(&self) -> bool {
        self.checkpoint_every > 0 && self.records_since_checkpoint >= self.checkpoint_every
    }

    /// Write a checkpoint: sync the log, persist `snapshot` into the inactive
    /// snapshot area, flip the meta page, and prune fully covered segments.
    /// Returns false (and keeps counting) if the snapshot doesn't fit.
    pub fn checkpoint(&mut self, snapshot: &[u8]) -> bool {
        let pages = (snapshot.len() as u64).div_ceil(PAGE_SIZE as u64).max(1);
        if pages > MAX_SNAPSHOT_PAGES {
            self.stats.skipped_checkpoints += 1;
            // Back off so the size check doesn't rerun every turn.
            self.records_since_checkpoint = 0;
            return false;
        }
        // The snapshot reflects state that includes unsynced records; sync
        // first so the meta page never points past durable data... and more
        // importantly so the caller can release held-back messages.
        self.sync();
        let next_epoch = self.epoch + 1;
        let area_base = 2 + (next_epoch % 2) * MAX_SNAPSHOT_PAGES;
        for (i, chunk) in snapshot.chunks(PAGE_SIZE).enumerate() {
            self.pool.write(&mut self.disk, area_base + i as u64, chunk);
        }
        if snapshot.is_empty() {
            self.pool.write(&mut self.disk, area_base, &[]);
        }
        self.pool.flush(&mut self.disk);
        let meta = encode_meta(&Meta {
            epoch: next_epoch,
            snap_len: snapshot.len() as u64,
            snap_crc: crc32(snapshot),
            wal_seg: self.cur_segment,
            wal_off: self.cur_len,
        });
        self.pool.write(&mut self.disk, next_epoch % 2, &meta);
        self.pool.flush(&mut self.disk);
        self.epoch = next_epoch;
        // Everything before the current segment is covered by the snapshot.
        for seg in self.disk.segment_ids() {
            if seg < self.cur_segment {
                self.disk.delete_segment(seg);
            }
        }
        self.records_since_checkpoint = 0;
        self.stats.checkpoints += 1;
        true
    }

    /// The node crashed: apply device crash semantics (lost unsynced pages,
    /// torn log tail) and drop every volatile view of the device.
    pub fn on_crash(&mut self) {
        self.disk.crash(self.torn_tail_seed);
        self.pool.clear();
        self.dirty = None;
    }

    /// Rescan the device after a crash, repairing torn tails, and hand back
    /// snapshot + surviving records for the protocol to replay.
    pub fn recover(&mut self) -> RecoveredLog {
        self.pool.clear();
        let (log, end) = scan(&mut self.disk, true);
        self.cur_segment = end.segment;
        self.cur_len = end.offset;
        self.epoch = end.epoch;
        self.dirty = None;
        self.records_since_checkpoint = log.records.len() as u64;
        self.disk.create_segment(self.cur_segment);
        self.stats.recoveries += 1;
        self.stats.replayed += log.records.len() as u64;
        self.stats.torn_bytes += end.torn_bytes;
        log
    }

    /// Offline, read-only scan of a device (no repair, no stats) — what a
    /// differential test uses to replay a node's log after a run.
    pub fn read_log(disk: &mut NodeDisk) -> RecoveredLog {
        scan(disk, false).0
    }
}

fn encode_meta(meta: &Meta) -> Vec<u8> {
    let mut buf = Vec::with_capacity(44);
    buf.extend_from_slice(&META_MAGIC.to_le_bytes());
    buf.extend_from_slice(&meta.epoch.to_le_bytes());
    buf.extend_from_slice(&meta.snap_len.to_le_bytes());
    buf.extend_from_slice(&meta.snap_crc.to_le_bytes());
    buf.extend_from_slice(&meta.wal_seg.to_le_bytes());
    buf.extend_from_slice(&meta.wal_off.to_le_bytes());
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

fn decode_meta(page: &[u8]) -> Option<Meta> {
    if page.len() < 44 {
        return None;
    }
    let body = &page[..40];
    let stored_crc = u32::from_le_bytes(page[40..44].try_into().unwrap());
    if crc32(body) != stored_crc {
        return None;
    }
    let magic = u32::from_le_bytes(body[0..4].try_into().unwrap());
    if magic != META_MAGIC {
        return None;
    }
    Some(Meta {
        epoch: u64::from_le_bytes(body[4..12].try_into().unwrap()),
        snap_len: u64::from_le_bytes(body[12..20].try_into().unwrap()),
        snap_crc: u32::from_le_bytes(body[20..24].try_into().unwrap()),
        wal_seg: u64::from_le_bytes(body[24..32].try_into().unwrap()),
        wal_off: u64::from_le_bytes(body[32..40].try_into().unwrap()),
    })
}

fn read_best_meta(disk: &mut NodeDisk) -> Option<Meta> {
    let mut buf = vec![0u8; PAGE_SIZE];
    let mut best: Option<Meta> = None;
    for page in 0..2 {
        disk.read_page(page, &mut buf);
        if let Some(meta) = decode_meta(&buf) {
            if best.as_ref().is_none_or(|b| meta.epoch > b.epoch) {
                best = Some(meta);
            }
        }
    }
    best
}

fn read_snapshot(disk: &mut NodeDisk, meta: &Meta) -> Option<Vec<u8>> {
    let base = 2 + (meta.epoch % 2) * MAX_SNAPSHOT_PAGES;
    let pages = meta.snap_len.div_ceil(PAGE_SIZE as u64).max(1);
    if pages > MAX_SNAPSHOT_PAGES {
        return None;
    }
    let mut snap = Vec::with_capacity(meta.snap_len as usize);
    let mut buf = vec![0u8; PAGE_SIZE];
    for i in 0..pages {
        disk.read_page(base + i, &mut buf);
        snap.extend_from_slice(&buf);
    }
    snap.truncate(meta.snap_len as usize);
    if crc32(&snap) != meta.snap_crc {
        return None;
    }
    Some(snap)
}

/// The recovery scan. With `repair` set, torn tails are truncated away, dead
/// segments deleted, and surviving data marked durable.
fn scan(disk: &mut NodeDisk, repair: bool) -> (RecoveredLog, ScanEnd) {
    let meta = read_best_meta(disk);
    let (snapshot, mut start_seg, mut start_off, epoch) = match &meta {
        Some(m) => match read_snapshot(disk, m) {
            Some(snap) => (Some(snap), m.wal_seg, m.wal_off, m.epoch),
            // A valid meta with an unreadable snapshot means the device is
            // damaged beyond the crash model; recover what the raw log holds.
            None => (None, 0, 0, m.epoch),
        },
        None => (None, 0, 0, 0),
    };
    let ids = disk.segment_ids();
    if snapshot.is_none() {
        if let Some(&first) = ids.first() {
            start_seg = first.max(start_seg);
            start_off = if start_seg == ids[0] { start_off } else { 0 };
        }
    }
    let mut records = Vec::new();
    let mut torn_bytes = 0u64;
    let mut end_seg = start_seg;
    let mut end_off = start_off;
    let mut stopped = false;
    for &id in ids.iter().filter(|&&id| id >= start_seg) {
        if stopped {
            // Data after a torn frame is unreachable: count and drop it.
            torn_bytes += disk.segment_len(id);
            if repair {
                disk.delete_segment(id);
            }
            continue;
        }
        let data = disk.read_segment(id);
        let mut off = if id == start_seg { (start_off as usize).min(data.len()) } else { 0 };
        loop {
            if off + FRAME_HEADER > data.len() {
                if off < data.len() {
                    torn_bytes += (data.len() - off) as u64;
                    stopped = true;
                }
                break;
            }
            let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap());
            let crc = u32::from_le_bytes(data[off + 4..off + 8].try_into().unwrap());
            let payload_end = off + FRAME_HEADER + len as usize;
            if len > MAX_RECORD || payload_end > data.len() {
                torn_bytes += (data.len() - off) as u64;
                stopped = true;
                break;
            }
            let payload = &data[off + FRAME_HEADER..payload_end];
            if crc32(payload) != crc {
                torn_bytes += (data.len() - off) as u64;
                stopped = true;
                break;
            }
            records.push(payload.to_vec());
            off = payload_end;
        }
        end_seg = id;
        end_off = off as u64;
        if stopped && repair {
            disk.truncate_segment(id, end_off);
        }
    }
    if repair {
        // Segments wholly covered by the snapshot (a crash can land between
        // the meta flush and pruning on a real filesystem) are dead weight.
        for &id in ids.iter().filter(|&&id| id < start_seg) {
            disk.delete_segment(id);
        }
        disk.mark_all_synced();
    }
    (
        RecoveredLog { snapshot, records },
        ScanEnd { segment: end_seg, offset: end_off, epoch, torn_bytes },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StorageRegistry, WalOptions};

    fn mem_opts(registry: &StorageRegistry) -> WalOptions {
        WalOptions::mem(registry.clone())
    }

    fn record(i: u64) -> Vec<u8> {
        // Variable-length payloads so frame boundaries land at odd offsets.
        let mut v = i.to_le_bytes().to_vec();
        v.extend(std::iter::repeat_n(i as u8, (i % 13) as usize));
        v
    }

    #[test]
    fn append_sync_reopen_round_trip() {
        let registry = StorageRegistry::new();
        let opts = mem_opts(&registry);
        let (mut wal, log) = Wal::open(&opts, "node");
        assert!(log.is_empty());
        for i in 0..50 {
            wal.append(&record(i), i);
        }
        wal.sync();
        let (_, log) = Wal::open(&opts, "node");
        assert!(log.snapshot.is_none());
        assert_eq!(log.records.len(), 50);
        for (i, rec) in log.records.iter().enumerate() {
            assert_eq!(rec, &record(i as u64));
        }
    }

    #[test]
    fn group_commit_window_and_deadline() {
        let registry = StorageRegistry::new();
        let opts = mem_opts(&registry).with_group_commit_us(500);
        let (mut wal, _) = Wal::open(&opts, "node");
        assert!(!wal.wants_sync());
        assert_eq!(wal.deadline_us(), None);
        wal.append(b"a", 1000);
        wal.append(b"b", 1200);
        assert!(wal.wants_sync());
        assert_eq!(wal.deadline_us(), Some(1500), "window anchored at the oldest append");
        wal.sync();
        assert!(!wal.wants_sync());
        assert_eq!(wal.stats().syncs, 1, "two appends shared one group commit");
    }

    #[test]
    fn crash_without_sync_loses_clean_tail() {
        let registry = StorageRegistry::new();
        let opts = mem_opts(&registry);
        let (mut wal, _) = Wal::open(&opts, "node");
        wal.append(&record(0), 0);
        wal.append(&record(1), 0);
        wal.sync();
        wal.append(&record(2), 0);
        wal.on_crash();
        let log = wal.recover();
        assert_eq!(log.records.len(), 2, "unsynced record vanished cleanly");
        assert_eq!(wal.stats().recoveries, 1);
        assert_eq!(wal.stats().replayed, 2);
        // The log keeps working after recovery.
        wal.append(&record(2), 0);
        wal.sync();
        let (_, log) = Wal::open(&opts, "node");
        assert_eq!(log.records.len(), 3);
    }

    #[test]
    fn torn_tails_recover_a_prefix_for_every_seed() {
        // Both large segments (no rotation) and 64-byte segments (the
        // unsynced run spans a rotation) must recover an exact prefix.
        for segment_bytes in [64 * 1024, 64] {
            for seed in 0..128 {
                let registry = StorageRegistry::new();
                let opts =
                    mem_opts(&registry).with_torn_tail_seed(seed).with_segment_bytes(segment_bytes);
                let (mut wal, _) = Wal::open(&opts, "node");
                for i in 0..5 {
                    wal.append(&record(i), 0);
                }
                wal.sync();
                for i in 5..12 {
                    wal.append(&record(i), 0);
                }
                wal.on_crash();
                let log = wal.recover();
                assert!(
                    log.records.len() >= 5,
                    "synced records must survive (seed {seed}, seg {segment_bytes})"
                );
                assert!(log.records.len() <= 12);
                for (i, rec) in log.records.iter().enumerate() {
                    assert_eq!(
                        rec,
                        &record(i as u64),
                        "recovered prefix must be intact (seed {seed}, seg {segment_bytes})"
                    );
                }
            }
        }
    }

    #[test]
    fn unsynced_rotation_crash_never_replays_past_a_lost_record() {
        // Regression: with 64-byte segments an unsynced run of appends spans
        // a segment rotation. Before append() synced at rotation, a crash
        // truncated the non-final segment to its frame-aligned synced prefix
        // — ending the scan cleanly — and then replayed parseable frames
        // from the next segment's torn tail (e.g. seed 24 recovered records
        // [0,1,2,8], silently dropping 3..=7). Recovery must always hand
        // back an exact, gap-free prefix of the append order.
        for seed in 0..128 {
            let registry = StorageRegistry::new();
            let opts = mem_opts(&registry).with_segment_bytes(64).with_torn_tail_seed(seed);
            let (mut wal, _) = Wal::open(&opts, "node");
            for i in 0..3 {
                wal.append(&record(i), 0);
            }
            wal.sync();
            for i in 3..9 {
                wal.append(&record(i), 0);
            }
            wal.on_crash();
            let log = wal.recover();
            assert!(log.records.len() >= 3, "synced records must survive (seed {seed})");
            assert!(log.records.len() <= 9);
            for (i, rec) in log.records.iter().enumerate() {
                assert_eq!(rec, &record(i as u64), "gap-free prefix required (seed {seed})");
            }
        }
    }

    #[test]
    fn truncating_the_final_record_at_every_byte_offset_recovers_a_prefix() {
        // Build a clean multi-record log image, then replay recovery against
        // every possible truncation point of the final frame (and, while
        // we're at it, every earlier offset too).
        let registry = StorageRegistry::new();
        let opts = mem_opts(&registry);
        let (mut wal, _) = Wal::open(&opts, "node");
        let mut boundaries = vec![0u64]; // frame-aligned offsets
        for i in 0..8 {
            wal.append(&record(i), 0);
            boundaries.push(wal.cur_len);
        }
        wal.sync();
        let image = registry.disk("node").read_segment(0);
        assert_eq!(*boundaries.last().unwrap() as usize, image.len());

        for cut in 0..=image.len() {
            let truncated = StorageRegistry::new();
            let disk = truncated.disk("victim");
            disk.create_segment(0);
            disk.append_segment(0, &image[..cut]);
            disk.sync_segment(0);
            let mut node_disk = NodeDisk::Mem(disk);
            let log = Wal::read_log(&mut node_disk);
            let expect = boundaries.iter().filter(|&&b| b > 0 && b as usize <= cut).count();
            assert_eq!(
                log.records.len(),
                expect,
                "cut at byte {cut}: expected the longest complete prefix"
            );
            for (i, rec) in log.records.iter().enumerate() {
                assert_eq!(rec, &record(i as u64));
            }
        }
    }

    #[test]
    fn corrupting_any_single_byte_never_panics_and_never_misreads() {
        let registry = StorageRegistry::new();
        let opts = mem_opts(&registry);
        let (mut wal, _) = Wal::open(&opts, "node");
        for i in 0..4 {
            wal.append(&record(i), 0);
        }
        wal.sync();
        let image = registry.disk("node").read_segment(0);
        for victim in 0..image.len() {
            let mut bytes = image.clone();
            bytes[victim] ^= 0x40;
            let reg = StorageRegistry::new();
            let disk = reg.disk("v");
            disk.create_segment(0);
            disk.append_segment(0, &bytes);
            disk.sync_segment(0);
            let mut node_disk = NodeDisk::Mem(disk);
            let log = Wal::read_log(&mut node_disk);
            // Every recovered record must be one of the originals, in order
            // — corruption may shorten the prefix, never fabricate data.
            // (A flipped length byte can alias a later frame boundary only
            // with a matching crc, which the checksum makes implausible.)
            assert!(log.records.len() <= 4);
            for (i, rec) in log.records.iter().enumerate() {
                assert_eq!(rec, &record(i as u64), "corrupt byte {victim}");
            }
        }
    }

    #[test]
    fn segment_rotation_and_multi_segment_recovery() {
        let registry = StorageRegistry::new();
        let opts = mem_opts(&registry).with_segment_bytes(64);
        let (mut wal, _) = Wal::open(&opts, "node");
        for i in 0..40 {
            wal.append(&record(i), 0);
        }
        wal.sync();
        assert!(registry.disk("node").segment_ids().len() > 1, "rotation happened");
        let (_, log) = Wal::open(&opts, "node");
        assert_eq!(log.records.len(), 40);
        for (i, rec) in log.records.iter().enumerate() {
            assert_eq!(rec, &record(i as u64));
        }
    }

    #[test]
    fn checkpoint_prunes_segments_and_recovery_resumes_from_snapshot() {
        let registry = StorageRegistry::new();
        let opts = mem_opts(&registry).with_segment_bytes(64).with_checkpoint_every(10);
        let (mut wal, _) = Wal::open(&opts, "node");
        for i in 0..10 {
            wal.append(&record(i), 0);
        }
        assert!(wal.checkpoint_due());
        let snapshot = b"state-after-ten".to_vec();
        assert!(wal.checkpoint(&snapshot));
        assert!(!wal.checkpoint_due());
        let segments_after = registry.disk("node").segment_ids();
        assert_eq!(segments_after.len(), 1, "older segments pruned");
        for i in 10..14 {
            wal.append(&record(i), 0);
        }
        wal.sync();
        wal.on_crash();
        let log = wal.recover();
        assert_eq!(log.snapshot.as_deref(), Some(&snapshot[..]));
        assert_eq!(log.records.len(), 4, "only the post-checkpoint tail replays");
        assert_eq!(log.records[0], record(10));
    }

    #[test]
    fn checkpoint_ping_pong_survives_repeated_cycles() {
        let registry = StorageRegistry::new();
        let opts = mem_opts(&registry).with_checkpoint_every(5);
        let (mut wal, _) = Wal::open(&opts, "node");
        for round in 0u64..6 {
            for i in 0..5 {
                wal.append(&record(round * 5 + i), 0);
            }
            let snap = format!("round-{round}").into_bytes();
            assert!(wal.checkpoint(&snap));
            wal.on_crash();
            let log = wal.recover();
            assert_eq!(log.snapshot, Some(format!("round-{round}").into_bytes()));
            assert!(log.records.is_empty());
        }
        assert_eq!(wal.stats().checkpoints, 6);
    }

    #[test]
    fn empty_and_fresh_devices_recover_to_empty() {
        let registry = StorageRegistry::new();
        let (mut wal, log) = Wal::open(&mem_opts(&registry), "fresh");
        assert!(log.is_empty());
        wal.on_crash();
        let log = wal.recover();
        assert!(log.is_empty());
    }

    #[test]
    fn oversized_snapshot_is_skipped_not_fatal() {
        let registry = StorageRegistry::new();
        let opts = mem_opts(&registry).with_checkpoint_every(1);
        let (mut wal, _) = Wal::open(&opts, "node");
        wal.append(&record(0), 0);
        let huge = vec![0u8; (MAX_SNAPSHOT_PAGES as usize + 1) * PAGE_SIZE];
        assert!(!wal.checkpoint(&huge));
        assert_eq!(wal.stats().skipped_checkpoints, 1);
        wal.sync();
        let (_, log) = Wal::open(&opts, "node");
        assert_eq!(log.records.len(), 1, "log intact after skipped checkpoint");
    }
}
