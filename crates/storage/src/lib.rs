//! `regular-storage`: durable storage for the protocol nodes.
//!
//! Spanner's "Paxos-durable" shard state and Gryff's replicated registers are
//! in-memory structures in the simulator; this crate gives them a real
//! persistence layer so `Node::on_crash`/`on_recover` exercise an actual
//! recovery path instead of replaying from state that never left RAM.
//! (`ARCHITECTURE.md` at the repository root shows where this crate sits in
//! the workspace.)
//!
//! The stack, bottom to top:
//!
//! * [`device`] — the storage devices. [`MemDisk`] is a deterministic
//!   in-process device for the simulation plane: it models the synced/unsynced
//!   boundary explicitly, and `crash()` truncates every log segment to its
//!   synced prefix plus a *seeded torn tail* (a pseudo-random, possibly
//!   bit-flipped prefix of the unsynced bytes) so seeded sweeps exercise
//!   partial-write recovery deterministically. [`DirDisk`] is the live-plane
//!   device: real files, real `fsync`.
//! * [`pool`] — a small [`BufferPool`] over the device's page file: pin/unpin,
//!   dirty tracking, LRU eviction with write-back. Checkpoint snapshots go
//!   through it.
//! * [`wal`] — the write-ahead log: append-only segments of
//!   `[len u32][crc32 u32][payload]` frames, **group commit** (appends hit the
//!   device immediately; the fsync is deferred up to `group_commit_us` so many
//!   records share one sync), page-based checkpoints (ping-pong snapshot areas
//!   plus dual crc-guarded meta pages, then segment pruning), and a recovery
//!   scan that replays snapshot + log tail and stops cleanly at a torn frame.
//! * [`Durability`] — the knob the protocol configs carry. `InMemory` is the
//!   default and leaves every existing code path untouched; `Wal` routes node
//!   state through a per-node log.
//!
//! The soundness contract with the protocols: a node that appends a record
//! during a handler turn must hold back every message it sends until that
//! record is synced (the WAL exposes [`Wal::wants_sync`]/[`Wal::deadline_us`]
//! for the group-commit window). Crashes land between handler turns, so a
//! torn tail can only ever contain records whose acknowledgements were never
//! released — dropping them at recovery is indistinguishable from the ack
//! having been lost in the network.
//!
//! This crate has no dependencies (the checksums and binary codec in
//! [`codec`] are hand-rolled): the workspace's vendored `serde` stub is
//! derive-only, so record encodings cannot lean on it. Like the other
//! workspace crates, nothing here tracks a registry crate — there is no stub
//! to replace.

pub mod codec;
pub mod device;
pub mod pool;
pub mod wal;

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

pub use device::{DirDisk, MemDisk, NodeDisk};
pub use pool::{BufferPool, PoolStats, PAGE_SIZE};
pub use wal::{RecoveredLog, Wal, WalStats};

/// How a protocol node persists its state.
///
/// `InMemory` (the default) is the pre-existing behaviour: crash hooks keep
/// whatever the protocol declares "durable" in ordinary fields. `Wal` makes a
/// node log every durable mutation to a write-ahead log and reconstruct
/// *only* from that log on recovery.
#[derive(Clone, Debug, Default)]
pub enum Durability {
    #[default]
    InMemory,
    Wal(WalOptions),
}

impl Durability {
    pub fn is_wal(&self) -> bool {
        matches!(self, Durability::Wal(_))
    }

    /// Stable name for reports and failure artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            Durability::InMemory => "in-memory",
            Durability::Wal(_) => "wal",
        }
    }
}

/// Where a node's write-ahead log lives.
#[derive(Clone)]
pub enum Backing {
    /// Deterministic in-process device, shared through a [`StorageRegistry`]
    /// so tests can inspect (and offline-replay) each node's log after a run.
    Memory(StorageRegistry),
    /// A directory on the real filesystem; each node gets a subdirectory.
    Dir(PathBuf),
}

impl std::fmt::Debug for Backing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backing::Memory(_) => f.write_str("Memory(..)"),
            Backing::Dir(p) => write!(f, "Dir({})", p.display()),
        }
    }
}

/// Configuration for [`Durability::Wal`].
#[derive(Clone, Debug)]
pub struct WalOptions {
    pub backing: Backing,
    /// Group-commit window: how long a record may wait, unsynced, for later
    /// records to share its fsync. `0` syncs at the end of every handler turn
    /// that appended (which keeps healthy-run histories byte-identical to
    /// `InMemory` — sends are released within the same turn, in order).
    pub group_commit_us: u64,
    /// Log segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// Write a checkpoint after this many records (0 = never checkpoint).
    pub checkpoint_every: u64,
    /// Seed for torn-tail injection on crash (memory backing only): the
    /// unsynced tail of the last segment survives as a pseudo-random,
    /// possibly corrupted prefix instead of vanishing cleanly.
    pub torn_tail_seed: Option<u64>,
}

impl WalOptions {
    /// Simulation-plane options: in-process device, group commit off
    /// (sync every turn), periodic checkpoints.
    pub fn mem(registry: StorageRegistry) -> Self {
        WalOptions {
            backing: Backing::Memory(registry),
            group_commit_us: 0,
            segment_bytes: 64 * 1024,
            checkpoint_every: 1024,
            torn_tail_seed: None,
        }
    }

    /// Live-plane options: real files under `dir`, real fsyncs.
    pub fn dir(dir: impl Into<PathBuf>) -> Self {
        WalOptions {
            backing: Backing::Dir(dir.into()),
            group_commit_us: 200,
            segment_bytes: 1024 * 1024,
            checkpoint_every: 4096,
            torn_tail_seed: None,
        }
    }

    pub fn with_group_commit_us(mut self, us: u64) -> Self {
        self.group_commit_us = us;
        self
    }

    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes;
        self
    }

    pub fn with_checkpoint_every(mut self, records: u64) -> Self {
        self.checkpoint_every = records;
        self
    }

    pub fn with_torn_tail_seed(mut self, seed: u64) -> Self {
        self.torn_tail_seed = Some(seed);
        self
    }
}

/// A shared namespace of in-process [`MemDisk`]s, keyed by node name.
///
/// Clone it before a run, hand it to `WalOptions::mem`, and every node's
/// device stays reachable afterwards for inspection and offline replay.
#[derive(Clone, Default)]
pub struct StorageRegistry {
    disks: Arc<Mutex<BTreeMap<String, MemDisk>>>,
}

impl StorageRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get (or create) the device for `name`.
    pub fn disk(&self, name: &str) -> MemDisk {
        self.disks.lock().unwrap().entry(name.to_string()).or_default().clone()
    }

    /// Names of every device created so far, sorted.
    pub fn names(&self) -> Vec<String> {
        self.disks.lock().unwrap().keys().cloned().collect()
    }
}

/// Aggregated WAL counters for a whole run (summed across nodes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StorageSummary {
    /// Records appended.
    pub records: u64,
    /// Bytes appended (frame headers included).
    pub bytes: u64,
    /// Group commits (each is one or more segment fsyncs).
    pub syncs: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Crash recoveries that replayed from the log.
    pub recoveries: u64,
    /// Records replayed across all recoveries.
    pub replayed: u64,
    /// Bytes discarded as torn tails during recovery scans.
    pub torn_bytes: u64,
}

impl StorageSummary {
    pub fn add_wal(&mut self, stats: &WalStats) {
        self.records += stats.records;
        self.bytes += stats.bytes;
        self.syncs += stats.syncs;
        self.checkpoints += stats.checkpoints;
        self.recoveries += stats.recoveries;
        self.replayed += stats.replayed;
        self.torn_bytes += stats.torn_bytes;
    }

    pub fn merge(&mut self, other: &StorageSummary) {
        self.records += other.records;
        self.bytes += other.bytes;
        self.syncs += other.syncs;
        self.checkpoints += other.checkpoints;
        self.recoveries += other.recoveries;
        self.replayed += other.replayed;
        self.torn_bytes += other.torn_bytes;
    }

    pub fn is_empty(&self) -> bool {
        *self == StorageSummary::default()
    }
}
