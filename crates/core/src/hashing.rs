//! Small, fast, non-cryptographic hashing used by the checker hot paths.
//!
//! The exact-search memo table and the incremental spec-state fingerprint
//! both need a hasher that is cheap per lookup; `std`'s default SipHash is
//! measurably slower there. This module provides an FxHash-style
//! multiply-xor hasher (the rustc / `rustc-hash` construction) plus a
//! splitmix64 finalizer for fingerprint mixing, so the workspace needs no
//! external hashing crate.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash construction: fold words in with rotate-xor-multiply.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_word(n as u64);
        self.add_word((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]-backed maps and sets.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` seeded with [`FxHasher`]: faster probes than SipHash on the
/// small fixed-width keys the protocol crates use (transaction and operation
/// ids), and — unlike `std`'s per-instance random state — an iteration order
/// that is a pure function of the insert/remove sequence, so simulations
/// replay identically across processes and hosts.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` seeded with [`FxHasher`]; see [`FxHashMap`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// The search memo table: `(placed-set, state fingerprint)` keys hashed with
/// [`FxHasher`]. `K` is the scheduled-set representation: `u128` on the
/// ≤128-op fast path, [`crate::opset::OpSet`] beyond it.
pub type FxSeenSet<K> = std::collections::HashSet<(K, u64), FxBuildHasher>;

/// splitmix64 finalizer: a strong 64-bit mixer for fingerprint terms.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a `(slot, payload)` pair into one fingerprint term. XORing terms
/// built this way gives an order-independent, incrementally updatable set
/// fingerprint.
#[inline]
pub fn mix_slot(slot: u64, payload: u64) -> u64 {
    mix64(slot.wrapping_mul(0xA24B_AED4_963E_E407) ^ payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn hasher_is_deterministic_and_spreads() {
        let build = FxBuildHasher::default();
        let h = |v: (u128, u64)| build.hash_one(v);
        assert_eq!(h((1, 2)), h((1, 2)));
        assert_ne!(h((1, 2)), h((2, 1)));
        assert_ne!(h((0, 0)), h((0, 1)));
    }

    #[test]
    fn mix_terms_cancel_under_xor() {
        let a = mix_slot(3, 40);
        let b = mix_slot(7, 9);
        assert_eq!(a ^ b ^ a, b, "equal terms cancel");
        assert_ne!(mix_slot(3, 40), mix_slot(40, 3));
    }
}
