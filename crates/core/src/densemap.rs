//! Dense, interned key-value storage for protocol hot paths.
//!
//! The protocol crates' per-op state (multi-version chains, lock owners,
//! register values, rmw queues) is keyed by [`Key`], whose values come from
//! a workload's bounded key space but are not themselves dense. A
//! [`DenseKeyMap`] interns each key once — the same arena treatment
//! [`crate::history::HistoryIndex`] applies to histories — and stores values
//! in a dense `Vec` indexed by the interned id, so steady-state access is
//! one cheap [`crate::hashing::FxHasher`] probe plus a vector index, and
//! iteration walks a contiguous slice in first-insertion order (making it
//! deterministic across runs and hosts, unlike `std` hash-map iteration).
//!
//! Removal clears the slot but keeps the interned id: workloads revisit
//! their keys constantly, so slots are recycled by the next insert of the
//! same key rather than by a free list.

use crate::hashing::FxHashMap;
use crate::types::Key;

/// An interned-key map: `Key -> V` with dense storage and deterministic,
/// first-insertion-order iteration.
#[derive(Debug, Clone)]
pub struct DenseKeyMap<V> {
    /// Key -> dense slot id, assigned once per distinct key.
    index: FxHashMap<Key, u32>,
    /// Slot id -> key (for iteration).
    keys: Vec<Key>,
    /// Slot id -> value; `None` marks a removed entry.
    values: Vec<Option<V>>,
    /// Number of occupied slots.
    occupied: usize,
}

impl<V> Default for DenseKeyMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> DenseKeyMap<V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        DenseKeyMap {
            index: FxHashMap::default(),
            keys: Vec::new(),
            values: Vec::new(),
            occupied: 0,
        }
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// True if no entries are occupied.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// Interns `key`, returning its dense slot id.
    fn slot_of(&mut self, key: Key) -> usize {
        match self.index.get(&key) {
            Some(&slot) => slot as usize,
            None => {
                let slot = u32::try_from(self.keys.len()).expect("key space exceeds u32 slots");
                self.index.insert(key, slot);
                self.keys.push(key);
                self.values.push(None);
                slot as usize
            }
        }
    }

    /// The value stored under `key`, if any.
    pub fn get(&self, key: Key) -> Option<&V> {
        self.index.get(&key).and_then(|&slot| self.values[slot as usize].as_ref())
    }

    /// Mutable access to the value stored under `key`, if any.
    pub fn get_mut(&mut self, key: Key) -> Option<&mut V> {
        match self.index.get(&key) {
            Some(&slot) => self.values[slot as usize].as_mut(),
            None => None,
        }
    }

    /// True if `key` has an occupied entry.
    pub fn contains_key(&self, key: Key) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `value` under `key`, returning the previous value if the key
    /// was occupied.
    pub fn insert(&mut self, key: Key, value: V) -> Option<V> {
        let slot = self.slot_of(key);
        let prev = self.values[slot].replace(value);
        if prev.is_none() {
            self.occupied += 1;
        }
        prev
    }

    /// Removes and returns the value under `key` (the interned slot is kept
    /// for reuse).
    pub fn remove(&mut self, key: Key) -> Option<V> {
        let slot = *self.index.get(&key)?;
        let prev = self.values[slot as usize].take();
        if prev.is_some() {
            self.occupied -= 1;
        }
        prev
    }

    /// Returns a mutable reference to the value under `key`, inserting
    /// `default()` first if the entry is vacant.
    pub fn get_or_insert_with(&mut self, key: Key, default: impl FnOnce() -> V) -> &mut V {
        let slot = self.slot_of(key);
        let value = &mut self.values[slot];
        if value.is_none() {
            *value = Some(default());
            self.occupied += 1;
        }
        value.as_mut().expect("just filled")
    }

    /// Iterates occupied entries in first-insertion order of their keys.
    pub fn iter(&self) -> impl Iterator<Item = (Key, &V)> {
        self.keys.iter().zip(self.values.iter()).filter_map(|(k, v)| v.as_ref().map(|v| (*k, v)))
    }

    /// Iterates occupied values in first-insertion order of their keys.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.values.iter().filter_map(|v| v.as_ref())
    }

    /// Keeps only the entries for which `pred` returns true.
    pub fn retain(&mut self, mut pred: impl FnMut(Key, &V) -> bool) {
        for (key, value) in self.keys.iter().zip(self.values.iter_mut()) {
            if matches!(value, Some(v) if !pred(*key, v)) {
                *value = None;
                self.occupied -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: DenseKeyMap<u64> = DenseKeyMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(Key(10), 1), None);
        assert_eq!(m.insert(Key(999_999), 2), None);
        assert_eq!(m.insert(Key(10), 3), Some(1));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(Key(10)), Some(&3));
        assert!(m.contains_key(Key(999_999)));
        assert_eq!(m.remove(Key(10)), Some(3));
        assert_eq!(m.remove(Key(10)), None);
        assert_eq!(m.get(Key(10)), None);
        assert_eq!(m.len(), 1);
        // The interned slot is reused on re-insert.
        assert_eq!(m.insert(Key(10), 4), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn iteration_is_first_insertion_order() {
        let mut m: DenseKeyMap<u64> = DenseKeyMap::new();
        for k in [7u64, 3, 99, 3, 12] {
            m.insert(Key(k), k * 10);
        }
        let keys: Vec<u64> = m.iter().map(|(k, _)| k.0).collect();
        assert_eq!(keys, vec![7, 3, 99, 12]);
        m.remove(Key(3));
        let keys: Vec<u64> = m.iter().map(|(k, _)| k.0).collect();
        assert_eq!(keys, vec![7, 99, 12]);
        // Reinserting a removed key keeps its original slot position.
        m.insert(Key(3), 1);
        let keys: Vec<u64> = m.iter().map(|(k, _)| k.0).collect();
        assert_eq!(keys, vec![7, 3, 99, 12]);
    }

    #[test]
    fn get_or_insert_with_and_retain() {
        let mut m: DenseKeyMap<Vec<u64>> = DenseKeyMap::new();
        m.get_or_insert_with(Key(1), Vec::new).push(5);
        m.get_or_insert_with(Key(1), Vec::new).push(6);
        m.get_or_insert_with(Key(2), Vec::new).push(7);
        assert_eq!(m.get(Key(1)), Some(&vec![5, 6]));
        m.retain(|_, v| v.len() > 1);
        assert_eq!(m.len(), 1);
        assert!(m.get(Key(2)).is_none());
        assert_eq!(m.values().count(), 1);
    }
}
