//! Execution histories: the observable record of an application's interaction
//! with a set of services.
//!
//! A [`History`] corresponds to the paper's notion of an execution restricted
//! to what matters for checking consistency: each operation's invocation and
//! response actions (with real-time instants from the omniscient clock), the
//! issuing process, the target service, and the message-passing interactions
//! between processes. The per-process sub-execution, the real-time order, and
//! the causal order are all derived from this record (see [`crate::order`]).

use serde::{Deserialize, Serialize};

use crate::op::{OpKind, OpResult};
use crate::types::{Key, OpId, ProcessId, ServiceId, Timestamp, Value};

/// One recorded operation: invocation, optional response, and metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpRecord {
    /// Dense identifier (index into the history).
    pub id: OpId,
    /// The process that issued the operation.
    pub process: ProcessId,
    /// The service the operation targets.
    pub service: ServiceId,
    /// The operation kind and arguments.
    pub kind: OpKind,
    /// Real-time instant of the invocation action.
    pub invoke: Timestamp,
    /// Real-time instant of the response action; `None` if the operation never
    /// completed (e.g. the process stopped while waiting).
    pub response: Option<Timestamp>,
    /// The returned result; `None` iff the operation is incomplete.
    pub result: Option<OpResult>,
}

impl OpRecord {
    /// True if the operation completed (has a response).
    pub fn is_complete(&self) -> bool {
        self.response.is_some()
    }

    /// The value this operation observed for `key`, if any.
    pub fn observed_value(&self, key: Key) -> Option<Value> {
        self.result.as_ref().and_then(|r| r.value_for(key, &self.kind))
    }
}

/// A message-passing interaction between two processes (out-of-band of the
/// services), used to derive causal edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageEdge {
    /// Sending process.
    pub from: ProcessId,
    /// Instant of the send action at the sender.
    pub sent_at: Timestamp,
    /// Receiving process.
    pub to: ProcessId,
    /// Instant of the receive action at the receiver.
    pub received_at: Timestamp,
}

/// Problems detected by [`History::validate`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HistoryError {
    /// An operation's response precedes its invocation.
    ResponseBeforeInvoke(OpId),
    /// Two operations of the same process overlap in time (processes have at
    /// most one outstanding invocation).
    OverlappingOps(OpId, OpId),
    /// A complete operation has no result, or an incomplete one has a result.
    ResultMismatch(OpId),
    /// A message is received before it is sent.
    MessageBeforeSend(usize),
}

/// An execution history over a (possibly composite) service.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct History {
    ops: Vec<OpRecord>,
    messages: Vec<MessageEdge>,
    /// Out-of-band communication invisible to the application and its services
    /// (e.g. Alice phoning Bob). These edges are *not* part of the causal
    /// order services must respect; they exist so anomaly detectors can judge
    /// executions from the users' point of view (Section 2.3).
    external: Vec<MessageEdge>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a complete operation and returns its id.
    #[allow(clippy::too_many_arguments)]
    pub fn add_complete(
        &mut self,
        process: ProcessId,
        service: ServiceId,
        kind: OpKind,
        invoke: Timestamp,
        response: Timestamp,
        result: OpResult,
    ) -> OpId {
        let id = OpId(self.ops.len() as u32);
        self.ops.push(OpRecord {
            id,
            process,
            service,
            kind,
            invoke,
            response: Some(response),
            result: Some(result),
        });
        id
    }

    /// Records an operation whose response was never observed.
    pub fn add_incomplete(
        &mut self,
        process: ProcessId,
        service: ServiceId,
        kind: OpKind,
        invoke: Timestamp,
    ) -> OpId {
        let id = OpId(self.ops.len() as u32);
        self.ops.push(OpRecord {
            id,
            process,
            service,
            kind,
            invoke,
            response: None,
            result: None,
        });
        id
    }

    /// Records a message between two application processes. Such messages are
    /// part of the causal order (Section 3.3, "message passing").
    pub fn add_message(
        &mut self,
        from: ProcessId,
        sent_at: Timestamp,
        to: ProcessId,
        received_at: Timestamp,
    ) {
        self.messages.push(MessageEdge { from, sent_at, to, received_at });
    }

    /// Records communication that happens entirely outside the application
    /// (e.g. a phone call between users). It is ignored by the causal order
    /// but available to anomaly detectors.
    pub fn add_external_communication(
        &mut self,
        from: ProcessId,
        sent_at: Timestamp,
        to: ProcessId,
        received_at: Timestamp,
    ) {
        self.external.push(MessageEdge { from, sent_at, to, received_at });
    }

    /// All operations, in insertion order.
    pub fn ops(&self) -> &[OpRecord] {
        &self.ops
    }

    /// The operation with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn op(&self, id: OpId) -> &OpRecord {
        &self.ops[id.index()]
    }

    /// Number of operations in the history.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the history contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// All application-level message edges (part of the causal order).
    pub fn messages(&self) -> &[MessageEdge] {
        &self.messages
    }

    /// All external (out-of-band, user-level) communication edges.
    pub fn external_communications(&self) -> &[MessageEdge] {
        &self.external
    }

    /// The sub-history containing only this service's operations (with fresh,
    /// dense operation ids) and all message edges. Used to check composed
    /// non-composable models: a set of independently consistent services.
    pub fn project_service(&self, service: ServiceId) -> History {
        let mut h = History::new();
        for op in &self.ops {
            if op.service != service {
                continue;
            }
            match (&op.response, &op.result) {
                (Some(resp), Some(result)) => {
                    h.add_complete(
                        op.process,
                        op.service,
                        op.kind.clone(),
                        op.invoke,
                        *resp,
                        result.clone(),
                    );
                }
                _ => {
                    h.add_incomplete(op.process, op.service, op.kind.clone(), op.invoke);
                }
            }
        }
        h.messages = self.messages.clone();
        h.external = self.external.clone();
        h
    }

    /// Ids of all complete operations.
    pub fn complete_ids(&self) -> Vec<OpId> {
        self.ops.iter().filter(|o| o.is_complete()).map(|o| o.id).collect()
    }

    /// Ids of all incomplete operations.
    pub fn incomplete_ids(&self) -> Vec<OpId> {
        self.ops.iter().filter(|o| !o.is_complete()).map(|o| o.id).collect()
    }

    /// Ids of incomplete *mutating* operations — the ones whose effects may or
    /// may not be visible (the "extend with zero or more responses" clause in
    /// the RSS/RSC definitions).
    pub fn pending_mutations(&self) -> Vec<OpId> {
        self.ops.iter().filter(|o| !o.is_complete() && o.kind.is_mutating()).map(|o| o.id).collect()
    }

    /// The distinct processes appearing in the history, sorted.
    pub fn processes(&self) -> Vec<ProcessId> {
        let mut ps: Vec<ProcessId> = self.ops.iter().map(|o| o.process).collect();
        ps.sort();
        ps.dedup();
        ps
    }

    /// The distinct services appearing in the history, sorted.
    pub fn services(&self) -> Vec<ServiceId> {
        let mut ss: Vec<ServiceId> = self.ops.iter().map(|o| o.service).collect();
        ss.sort();
        ss.dedup();
        ss
    }

    /// Operations of `process`, ordered by invocation time (the process's
    /// sub-execution restricted to service interactions).
    pub fn ops_of_process(&self, process: ProcessId) -> Vec<OpId> {
        let mut ids: Vec<OpId> =
            self.ops.iter().filter(|o| o.process == process).map(|o| o.id).collect();
        ids.sort_by_key(|id| (self.op(*id).invoke, *id));
        ids
    }

    /// Checks structural well-formedness (Section 3.1): responses follow
    /// invocations, a process has at most one outstanding operation, results
    /// are present exactly for complete operations, and messages are sent
    /// before they are received.
    pub fn validate(&self) -> Result<(), HistoryError> {
        for op in &self.ops {
            if let Some(resp) = op.response {
                if resp < op.invoke {
                    return Err(HistoryError::ResponseBeforeInvoke(op.id));
                }
                if op.result.is_none() {
                    return Err(HistoryError::ResultMismatch(op.id));
                }
            } else if op.result.is_some() {
                return Err(HistoryError::ResultMismatch(op.id));
            }
        }
        for p in self.processes() {
            let ids = self.ops_of_process(p);
            for pair in ids.windows(2) {
                let (a, b) = (self.op(pair[0]), self.op(pair[1]));
                // `a` must respond (or never respond but then it must be the
                // final op) before `b` is invoked.
                match a.response {
                    Some(resp) if resp <= b.invoke => {}
                    _ => return Err(HistoryError::OverlappingOps(a.id, b.id)),
                }
            }
        }
        for (i, m) in self.messages.iter().chain(self.external.iter()).enumerate() {
            if m.received_at < m.sent_at {
                return Err(HistoryError::MessageBeforeSend(i));
            }
        }
        Ok(())
    }

    /// The read-only operations that conflict with mutating operation `w`
    /// (the paper's C(w)): read-only operations on the same service reading a
    /// key that `w` writes.
    pub fn conflicting_read_only(&self, w: OpId) -> Vec<OpId> {
        let wrec = self.op(w);
        let written = wrec.kind.written_keys();
        self.ops
            .iter()
            .filter(|o| {
                o.id != w
                    && o.service == wrec.service
                    && o.kind.is_read_only()
                    && o.kind.read_keys().iter().any(|k| written.contains(k))
            })
            .map(|o| o.id)
            .collect()
    }
}

/// Discriminant of an operation kind, exposed by [`HistoryIndex`] so the hot
/// checker loops can dispatch without touching the heap-carrying [`OpKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum KindTag {
    /// `OpKind::Read`.
    Read = 0,
    /// `OpKind::Write`.
    Write = 1,
    /// `OpKind::Rmw`.
    Rmw = 2,
    /// `OpKind::RoTxn`.
    RoTxn = 3,
    /// `OpKind::RwTxn`.
    RwTxn = 4,
    /// `OpKind::Enqueue`.
    Enqueue = 5,
    /// `OpKind::Dequeue`.
    Dequeue = 6,
    /// `OpKind::Fence`.
    Fence = 7,
}

/// Response instant used by [`HistoryIndex`] for incomplete operations.
const NO_RESPONSE: u64 = u64::MAX;

mod flags {
    pub const MUTATING: u8 = 1 << 0;
    pub const READ_ONLY: u8 = 1 << 1;
    pub const COMPLETE: u8 = 1 << 2;
    pub const HAS_RESULT: u8 = 1 << 3;
    /// The recorded result's shape can never equal the shape a sequential
    /// replay produces (e.g. a `Read` whose result is a `Values` list), so
    /// the operation can never legally appear in a witness.
    pub const UNSAT_RESULT: u8 = 1 << 4;
}

/// A dense, arena-backed index over a [`History`], built once per check.
///
/// Every checker used to re-derive the same facts inside its inner loops —
/// `OpKind::written_keys` allocates a fresh `Vec` per call,
/// `History::ops_of_process` re-sorts per call, and per-key grouping went
/// through `HashMap<(ServiceId, Key), _>`. The index computes all of it in
/// one pass:
///
/// * contiguous op indices (op ids are already dense) with O(1) scalar
///   lookups for kind, interval, process, and service,
/// * flattened read-/write-key arenas holding *dense key ids* (an interned
///   `(service, key)` table), so per-key grouping is an array index,
/// * recorded observed values aligned with the read-key arena, so replay
///   checks need no `OpResult` reconstruction,
/// * per-process operation lists sorted once.
///
/// Shared by the exact search ([`crate::checker::search`]), the model
/// constraint builders ([`crate::checker::models`],
/// [`crate::checker::proximal`]), and the certificate checker
/// ([`crate::checker::certificate`]).
#[derive(Debug, Clone)]
pub struct HistoryIndex {
    num_ops: usize,
    invoke: Vec<u64>,
    response: Vec<u64>,
    service: Vec<u32>,
    kind_tag: Vec<KindTag>,
    flags: Vec<u8>,
    read_key_off: Vec<u32>,
    read_key_ids: Vec<u32>,
    read_obs: Vec<u64>,
    write_key_off: Vec<u32>,
    write_key_ids: Vec<u32>,
    write_vals: Vec<u64>,
    key_table: Vec<(ServiceId, Key)>,
    complete: Vec<OpId>,
    pending_mutations: Vec<OpId>,
    ops_by_process: Vec<(ProcessId, Vec<OpId>)>,
}

impl HistoryIndex {
    /// Builds the index in one pass over the history.
    pub fn new(history: &History) -> Self {
        use crate::hashing::FxBuildHasher;
        use std::collections::HashMap;

        let n = history.len();
        let mut index = HistoryIndex {
            num_ops: n,
            invoke: Vec::with_capacity(n),
            response: Vec::with_capacity(n),
            service: Vec::with_capacity(n),
            kind_tag: Vec::with_capacity(n),
            flags: Vec::with_capacity(n),
            read_key_off: Vec::with_capacity(n + 1),
            read_key_ids: Vec::new(),
            read_obs: Vec::new(),
            write_key_off: Vec::with_capacity(n + 1),
            write_key_ids: Vec::new(),
            write_vals: Vec::new(),
            key_table: Vec::new(),
            complete: Vec::new(),
            pending_mutations: Vec::new(),
            ops_by_process: Vec::new(),
        };
        let mut key_lookup: HashMap<(u32, u64), u32, FxBuildHasher> = HashMap::default();
        let mut intern = |svc: ServiceId, key: Key, table: &mut Vec<(ServiceId, Key)>| -> u32 {
            *key_lookup.entry((svc.0, key.0)).or_insert_with(|| {
                table.push((svc, key));
                (table.len() - 1) as u32
            })
        };

        index.read_key_off.push(0);
        index.write_key_off.push(0);
        let mut process_slots: HashMap<ProcessId, usize, FxBuildHasher> = HashMap::default();
        for op in history.ops() {
            index.invoke.push(op.invoke.as_micros());
            index.response.push(op.response.map_or(NO_RESPONSE, Timestamp::as_micros));
            index.service.push(op.service.0);

            let mut f = 0u8;
            if op.kind.is_mutating() {
                f |= flags::MUTATING;
            }
            if op.kind.is_read_only() {
                f |= flags::READ_ONLY;
            }
            if op.is_complete() {
                f |= flags::COMPLETE;
                index.complete.push(op.id);
            } else if op.kind.is_mutating() {
                index.pending_mutations.push(op.id);
            }
            if op.result.is_some() {
                f |= flags::HAS_RESULT;
            }

            let tag = match &op.kind {
                OpKind::Read { .. } => KindTag::Read,
                OpKind::Write { .. } => KindTag::Write,
                OpKind::Rmw { .. } => KindTag::Rmw,
                OpKind::RoTxn { .. } => KindTag::RoTxn,
                OpKind::RwTxn { .. } => KindTag::RwTxn,
                OpKind::Enqueue { .. } => KindTag::Enqueue,
                OpKind::Dequeue { .. } => KindTag::Dequeue,
                OpKind::Fence => KindTag::Fence,
            };
            index.kind_tag.push(tag);

            // Read-/write-key arenas, with recorded observations (if any)
            // aligned positionally per read key. A result whose shape cannot
            // match a sequential replay marks the op unsatisfiable instead;
            // for `Values` results the shape check guarantees
            // `vs[j].0 == read_keys[j]`, so positional indexing is identical
            // to whole-result equality even with duplicate keys. The kinds
            // are matched inline so the build allocates nothing per op.
            let usable_result = match &op.result {
                Some(result) => {
                    if result_shape_matches(&op.kind, result) {
                        op.result.as_ref()
                    } else {
                        f |= flags::UNSAT_RESULT;
                        None
                    }
                }
                None => None,
            };
            let single_obs = match usable_result {
                Some(OpResult::Value(v)) => v.0,
                _ => Value::NULL.0,
            };
            let txn_obs = |j: usize| match usable_result {
                Some(OpResult::Values(vs)) => vs[j].1 .0,
                _ => Value::NULL.0,
            };
            match &op.kind {
                OpKind::Read { key } | OpKind::Dequeue { queue: key } => {
                    let id = intern(op.service, *key, &mut index.key_table);
                    index.read_key_ids.push(id);
                    index.read_obs.push(single_obs);
                }
                OpKind::Write { key, value } | OpKind::Enqueue { queue: key, value } => {
                    let id = intern(op.service, *key, &mut index.key_table);
                    index.write_key_ids.push(id);
                    index.write_vals.push(value.0);
                }
                OpKind::Rmw { key, value } => {
                    let id = intern(op.service, *key, &mut index.key_table);
                    index.read_key_ids.push(id);
                    index.read_obs.push(single_obs);
                    index.write_key_ids.push(id);
                    index.write_vals.push(value.0);
                }
                OpKind::RoTxn { keys } => {
                    for (j, k) in keys.iter().enumerate() {
                        let id = intern(op.service, *k, &mut index.key_table);
                        index.read_key_ids.push(id);
                        index.read_obs.push(txn_obs(j));
                    }
                }
                OpKind::RwTxn { read_keys, writes } => {
                    for (j, k) in read_keys.iter().enumerate() {
                        let id = intern(op.service, *k, &mut index.key_table);
                        index.read_key_ids.push(id);
                        index.read_obs.push(txn_obs(j));
                    }
                    for (k, v) in writes {
                        let id = intern(op.service, *k, &mut index.key_table);
                        index.write_key_ids.push(id);
                        index.write_vals.push(v.0);
                    }
                }
                OpKind::Fence => {}
            }
            index.read_key_off.push(index.read_key_ids.len() as u32);
            index.write_key_off.push(index.write_key_ids.len() as u32);

            index.flags.push(f);

            let slot = *process_slots.entry(op.process).or_insert_with(|| {
                index.ops_by_process.push((op.process, Vec::new()));
                index.ops_by_process.len() - 1
            });
            index.ops_by_process[slot].1.push(op.id);
        }
        index.ops_by_process.sort_by_key(|(p, _)| *p);
        for (_, ids) in &mut index.ops_by_process {
            ids.sort_by_key(|id| (index.invoke[id.index()], *id));
        }
        index
    }

    /// Number of operations.
    #[inline]
    pub fn len(&self) -> usize {
        self.num_ops
    }

    /// True if the history has no operations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_ops == 0
    }

    /// The operation-kind discriminant.
    #[inline]
    pub fn kind_tag(&self, i: usize) -> KindTag {
        self.kind_tag[i]
    }

    /// True if the operation mutates service state.
    #[inline]
    pub fn is_mutating(&self, i: usize) -> bool {
        self.flags[i] & flags::MUTATING != 0
    }

    /// True if the operation is read-only.
    #[inline]
    pub fn is_read_only(&self, i: usize) -> bool {
        self.flags[i] & flags::READ_ONLY != 0
    }

    /// True if the operation completed.
    #[inline]
    pub fn is_complete(&self, i: usize) -> bool {
        self.flags[i] & flags::COMPLETE != 0
    }

    /// True if the operation has a recorded result to check against.
    #[inline]
    pub fn has_result(&self, i: usize) -> bool {
        self.flags[i] & flags::HAS_RESULT != 0
    }

    /// True if the recorded result's shape can never match a replay (the
    /// operation can never legally be placed in a sequence).
    #[inline]
    pub fn has_unsat_result(&self, i: usize) -> bool {
        self.flags[i] & flags::UNSAT_RESULT != 0
    }

    /// Invocation instant in microseconds.
    #[inline]
    pub fn invoke_us(&self, i: usize) -> u64 {
        self.invoke[i]
    }

    /// Response instant in microseconds, or `None` if incomplete.
    #[inline]
    pub fn response_us(&self, i: usize) -> Option<u64> {
        let r = self.response[i];
        (r != NO_RESPONSE).then_some(r)
    }

    /// True if op `a` precedes op `b` in real time.
    #[inline]
    pub fn real_time_precedes(&self, a: usize, b: usize) -> bool {
        self.response[a] != NO_RESPONSE && self.response[a] < self.invoke[b]
    }

    /// Raw service id the operation targets.
    #[inline]
    pub fn service_raw(&self, i: usize) -> u32 {
        self.service[i]
    }

    /// Dense key ids this operation reads (queue key for dequeues).
    #[inline]
    pub fn read_key_ids(&self, i: usize) -> &[u32] {
        &self.read_key_ids[self.read_key_off[i] as usize..self.read_key_off[i + 1] as usize]
    }

    /// Recorded observed values aligned with [`HistoryIndex::read_key_ids`];
    /// meaningful only when [`HistoryIndex::has_result`] holds and the op is
    /// not [`HistoryIndex::has_unsat_result`].
    #[inline]
    pub fn read_observations(&self, i: usize) -> &[u64] {
        &self.read_obs[self.read_key_off[i] as usize..self.read_key_off[i + 1] as usize]
    }

    /// Dense key ids this operation writes (queue key for enqueues).
    #[inline]
    pub fn write_key_ids(&self, i: usize) -> &[u32] {
        &self.write_key_ids[self.write_key_off[i] as usize..self.write_key_off[i + 1] as usize]
    }

    /// Values written, aligned with [`HistoryIndex::write_key_ids`].
    #[inline]
    pub fn write_values(&self, i: usize) -> &[u64] {
        &self.write_vals[self.write_key_off[i] as usize..self.write_key_off[i + 1] as usize]
    }

    /// Number of distinct `(service, key)` pairs in the history.
    #[inline]
    pub fn num_dense_keys(&self) -> usize {
        self.key_table.len()
    }

    /// Ids of all complete operations, in insertion order.
    #[inline]
    pub fn complete_ids(&self) -> &[OpId] {
        &self.complete
    }

    /// Ids of incomplete mutating operations, in insertion order.
    #[inline]
    pub fn pending_mutations(&self) -> &[OpId] {
        &self.pending_mutations
    }

    /// Per-process operation lists, sorted by process id; each list is sorted
    /// by `(invoke, id)`.
    #[inline]
    pub fn ops_by_process(&self) -> &[(ProcessId, Vec<OpId>)] {
        &self.ops_by_process
    }

    /// Direct process-order pairs: for every process, each pair of
    /// consecutive operations (the full process order is the transitive
    /// closure). The shared source for every checker's process-order
    /// constraint.
    pub fn process_order_pairs(&self) -> impl Iterator<Item = (OpId, OpId)> + '_ {
        self.ops_by_process.iter().flat_map(|(_, ids)| ids.windows(2).map(|w| (w[0], w[1])))
    }
}

/// True if `result`'s shape is the one a sequential replay of `kind` would
/// produce (replay checks compare per key only when this holds).
pub(crate) fn result_shape_matches(kind: &OpKind, result: &OpResult) -> bool {
    match kind {
        OpKind::Write { .. } | OpKind::Enqueue { .. } | OpKind::Fence => true,
        OpKind::Read { .. } | OpKind::Rmw { .. } | OpKind::Dequeue { .. } => {
            matches!(result, OpResult::Value(_))
        }
        OpKind::RoTxn { keys } => match result {
            OpResult::Values(vs) => {
                vs.len() == keys.len() && vs.iter().zip(keys).all(|((k, _), key)| k == key)
            }
            _ => false,
        },
        OpKind::RwTxn { read_keys, .. } => match result {
            OpResult::Values(vs) => {
                vs.len() == read_keys.len()
                    && vs.iter().zip(read_keys).all(|((k, _), key)| k == key)
            }
            _ => false,
        },
    }
}

/// A small fluent builder for hand-constructing histories in tests and in the
/// Appendix A comparison harness, with explicit invocation/response instants.
#[derive(Debug, Default)]
pub struct HistoryBuilder {
    history: History,
}

impl HistoryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a complete write `key := value` on the default service.
    pub fn write(&mut self, p: u32, key: u64, value: u64, invoke: u64, response: u64) -> OpId {
        self.history.add_complete(
            ProcessId(p),
            ServiceId::KV,
            OpKind::Write { key: Key(key), value: Value(value) },
            Timestamp(invoke),
            Timestamp(response),
            OpResult::Ack,
        )
    }

    /// Adds a complete read of `key` returning `value`.
    pub fn read(&mut self, p: u32, key: u64, value: u64, invoke: u64, response: u64) -> OpId {
        self.history.add_complete(
            ProcessId(p),
            ServiceId::KV,
            OpKind::Read { key: Key(key) },
            Timestamp(invoke),
            Timestamp(response),
            OpResult::Value(Value(value)),
        )
    }

    /// Adds an incomplete write (invoked, never responded).
    pub fn pending_write(&mut self, p: u32, key: u64, value: u64, invoke: u64) -> OpId {
        self.history.add_incomplete(
            ProcessId(p),
            ServiceId::KV,
            OpKind::Write { key: Key(key), value: Value(value) },
            Timestamp(invoke),
        )
    }

    /// Adds a complete read-write transaction.
    pub fn rw_txn(
        &mut self,
        p: u32,
        reads: &[(u64, u64)],
        writes: &[(u64, u64)],
        invoke: u64,
        response: u64,
    ) -> OpId {
        self.history.add_complete(
            ProcessId(p),
            ServiceId::KV,
            OpKind::RwTxn {
                read_keys: reads.iter().map(|&(k, _)| Key(k)).collect(),
                writes: writes.iter().map(|&(k, v)| (Key(k), Value(v))).collect(),
            },
            Timestamp(invoke),
            Timestamp(response),
            OpResult::Values(reads.iter().map(|&(k, v)| (Key(k), Value(v))).collect()),
        )
    }

    /// Adds a complete read-only transaction.
    pub fn ro_txn(&mut self, p: u32, reads: &[(u64, u64)], invoke: u64, response: u64) -> OpId {
        self.history.add_complete(
            ProcessId(p),
            ServiceId::KV,
            OpKind::RoTxn { keys: reads.iter().map(|&(k, _)| Key(k)).collect() },
            Timestamp(invoke),
            Timestamp(response),
            OpResult::Values(reads.iter().map(|&(k, v)| (Key(k), Value(v))).collect()),
        )
    }

    /// Adds an out-of-band message between processes.
    pub fn message(&mut self, from: u32, sent_at: u64, to: u32, received_at: u64) -> &mut Self {
        self.history.add_message(
            ProcessId(from),
            Timestamp(sent_at),
            ProcessId(to),
            Timestamp(received_at),
        );
        self
    }

    /// Finishes the builder, returning the history.
    pub fn build(self) -> History {
        self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 10, 0, 5);
        let r = b.read(2, 1, 10, 6, 8);
        let pw = b.pending_write(3, 2, 7, 9);
        b.message(1, 5, 2, 6);
        let h = b.build();

        assert_eq!(h.len(), 3);
        assert!(!h.is_empty());
        assert_eq!(h.complete_ids(), vec![w, r]);
        assert_eq!(h.incomplete_ids(), vec![pw]);
        assert_eq!(h.pending_mutations(), vec![pw]);
        assert_eq!(h.processes(), vec![ProcessId(1), ProcessId(2), ProcessId(3)]);
        assert_eq!(h.services(), vec![ServiceId::KV]);
        assert_eq!(h.messages().len(), 1);
        assert_eq!(h.op(w).observed_value(Key(1)), None);
        assert_eq!(h.op(r).observed_value(Key(1)), Some(Value(10)));
        assert!(h.validate().is_ok());
    }

    #[test]
    fn validate_rejects_response_before_invoke() {
        let mut h = History::new();
        h.add_complete(
            ProcessId(1),
            ServiceId::KV,
            OpKind::Read { key: Key(1) },
            Timestamp(10),
            Timestamp(5),
            OpResult::Value(Value::NULL),
        );
        assert_eq!(h.validate(), Err(HistoryError::ResponseBeforeInvoke(OpId(0))));
    }

    #[test]
    fn validate_rejects_overlapping_ops_in_one_process() {
        let mut b = HistoryBuilder::new();
        b.write(1, 1, 10, 0, 10);
        b.read(1, 1, 10, 5, 20);
        let h = b.build();
        assert!(matches!(h.validate(), Err(HistoryError::OverlappingOps(_, _))));
    }

    #[test]
    fn validate_rejects_message_received_before_sent() {
        let mut b = HistoryBuilder::new();
        b.write(1, 1, 10, 0, 1);
        b.message(1, 10, 2, 5);
        let h = b.build();
        assert_eq!(h.validate(), Err(HistoryError::MessageBeforeSend(0)));
    }

    #[test]
    fn incomplete_final_op_is_well_formed() {
        let mut b = HistoryBuilder::new();
        b.write(1, 1, 10, 0, 5);
        b.pending_write(1, 2, 20, 6);
        let h = b.build();
        assert!(h.validate().is_ok());
    }

    #[test]
    fn conflicting_read_only_set() {
        let mut b = HistoryBuilder::new();
        let w = b.rw_txn(1, &[], &[(1, 10), (2, 20)], 0, 5);
        let r1 = b.ro_txn(2, &[(1, 10)], 6, 8);
        let _r2 = b.ro_txn(2, &[(3, 0)], 9, 10);
        let r3 = b.read(3, 2, 20, 6, 8);
        let h = b.build();
        let conflicts = h.conflicting_read_only(w);
        assert!(conflicts.contains(&r1));
        assert!(conflicts.contains(&r3));
        assert_eq!(conflicts.len(), 2);
    }

    #[test]
    fn ops_of_process_sorted_by_invocation() {
        let mut h = History::new();
        // Inserted out of order on purpose.
        let b = h.add_complete(
            ProcessId(1),
            ServiceId::KV,
            OpKind::Read { key: Key(1) },
            Timestamp(10),
            Timestamp(12),
            OpResult::Value(Value::NULL),
        );
        let a = h.add_complete(
            ProcessId(1),
            ServiceId::KV,
            OpKind::Read { key: Key(1) },
            Timestamp(1),
            Timestamp(3),
            OpResult::Value(Value::NULL),
        );
        assert_eq!(h.ops_of_process(ProcessId(1)), vec![a, b]);
    }
}
