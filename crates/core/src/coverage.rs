//! Coverage signatures: the fitness signal of coverage-guided schedule
//! search (`regular-hunt`).
//!
//! A [`CoverageSignature`] is the deduplicated, sorted set of *behaviour
//! features* one execution hit: which message types were delivered to nodes
//! in which protocol phases, which fault windows overlapped which
//! coordination activity, whether recovery re-drive paths or WAL torn-tail
//! recoveries ran, and how hard the fault plane actually bit (bucketed
//! drop/duplicate/expiry counts). Two runs with the same signature explored
//! the same behaviour classes; a run whose signature contains features no
//! previous run produced is *novel* and worth keeping in a fuzzing corpus —
//! the AFL bitmap idea, transplanted onto protocol simulations.
//!
//! The type lives in `regular-core` so every layer can speak it: the
//! simulator engine produces the raw message-delivery features, protocol
//! harnesses add stats-derived features, failure artifacts embed the final
//! signature, and the hunter ranks corpus entries by it.
//!
//! Feature identifiers are `u32`s with a stable layout:
//! `(domain << 16) | feature` — the high half names a [`domain`], the low
//! half is domain-specific. The layout is part of the artifact schema (the
//! signature is serialized into `FailureArtifact`s), so domains are
//! append-only.

/// Feature domains: the high 16 bits of a feature identifier.
///
/// Append new domains; never renumber — serialized signatures in saved
/// failure artifacts rely on the mapping.
pub mod domain {
    /// Message-type × receiver-phase pairs observed at delivery
    /// (`feature = (message class << 8) | phase tag`).
    pub const MESSAGE_PHASE: u16 = 1;
    /// Messages that expired at a crashed receiver, by message class.
    pub const EXPIRED_CLASS: u16 = 2;
    /// Fault-plane pressure buckets (log2 of dropped / duplicated / expired
    /// message counts).
    pub const NET_PRESSURE: u16 = 3;
    /// Recovery behaviour: re-driven coordinations, client retry buckets.
    pub const RECOVERY: u16 = 4;
    /// Durable-storage behaviour: WAL replays, torn tails, checkpoints.
    pub const STORAGE: u16 = 5;
    /// Fault-schedule shape: which fault families were active and how they
    /// overlapped the run (crash-during-rmw, one-way cuts, ...).
    pub const FAULT_SHAPE: u16 = 6;
}

/// Builds a feature identifier from a domain and a domain-specific feature.
pub const fn feature_id(domain: u16, feature: u16) -> u32 {
    ((domain as u32) << 16) | feature as u32
}

/// Splits a feature identifier back into `(domain, feature)`.
pub const fn split_feature(id: u32) -> (u16, u16) {
    ((id >> 16) as u16, (id & 0xffff) as u16)
}

/// The set of behaviour features one execution hit, sorted and deduplicated.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageSignature {
    features: Vec<u32>,
}

impl CoverageSignature {
    /// An empty signature (an execution nobody instrumented).
    pub fn empty() -> Self {
        CoverageSignature::default()
    }

    /// Builds a signature from raw feature identifiers (sorted and
    /// deduplicated here, so callers can accumulate without discipline).
    pub fn from_features(mut features: Vec<u32>) -> Self {
        features.sort_unstable();
        features.dedup();
        CoverageSignature { features }
    }

    /// The features, sorted ascending.
    pub fn features(&self) -> &[u32] {
        &self.features
    }

    /// Number of distinct features hit.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when no features were recorded.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// True if the signature contains `id`.
    pub fn contains(&self, id: u32) -> bool {
        self.features.binary_search(&id).is_ok()
    }

    /// Counts features of this signature absent from `seen` — the novelty
    /// score corpus ranking keys on.
    pub fn novel_against(&self, seen: &CoverageMap) -> usize {
        self.features.iter().filter(|f| !seen.contains(**f)).count()
    }

    /// A compact human-readable summary, grouped by domain.
    pub fn describe(&self) -> String {
        if self.features.is_empty() {
            return "no coverage recorded".to_string();
        }
        let mut counts: Vec<(u16, usize)> = Vec::new();
        for &f in &self.features {
            let (dom, _) = split_feature(f);
            match counts.last_mut() {
                Some((d, n)) if *d == dom => *n += 1,
                _ => counts.push((dom, 1)),
            }
        }
        let name = |d: u16| match d {
            domain::MESSAGE_PHASE => "message-phase",
            domain::EXPIRED_CLASS => "expired",
            domain::NET_PRESSURE => "net",
            domain::RECOVERY => "recovery",
            domain::STORAGE => "storage",
            domain::FAULT_SHAPE => "fault-shape",
            _ => "other",
        };
        let parts: Vec<String> = counts.iter().map(|(d, n)| format!("{}:{n}", name(*d))).collect();
        format!("{} features ({})", self.features.len(), parts.join(", "))
    }
}

/// An accumulator for one run's features.
#[derive(Debug, Clone, Default)]
pub struct CoverageBuilder {
    features: Vec<u32>,
}

impl CoverageBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        CoverageBuilder::default()
    }

    /// Records a feature (duplicates are fine; `build` dedups).
    pub fn hit(&mut self, domain: u16, feature: u16) {
        self.features.push(feature_id(domain, feature));
    }

    /// Records a raw feature identifier.
    pub fn hit_id(&mut self, id: u32) {
        self.features.push(id);
    }

    /// Records a log2-bucketed counter: the feature hit is
    /// `(tag << 8) | min(bucket, 255)` where `bucket = floor(log2(n)) + 1`
    /// for `n > 0` and `0` for `n == 0` — so "none", "a few", and "a storm"
    /// of faults are different behaviours, but 173 vs 174 drops are not.
    pub fn hit_bucketed(&mut self, domain: u16, tag: u8, n: u64) {
        let bucket = if n == 0 { 0 } else { (64 - n.leading_zeros()) as u16 };
        self.hit(domain, ((tag as u16) << 8) | bucket.min(255));
    }

    /// Finalizes the signature.
    pub fn build(self) -> CoverageSignature {
        CoverageSignature::from_features(self.features)
    }
}

/// The union of every signature a corpus has seen, for novelty queries.
#[derive(Debug, Clone, Default)]
pub struct CoverageMap {
    seen: Vec<u32>,
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> Self {
        CoverageMap::default()
    }

    /// True if `id` has been observed.
    pub fn contains(&self, id: u32) -> bool {
        self.seen.binary_search(&id).is_ok()
    }

    /// Number of distinct features observed so far.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Merges a signature, returning how many of its features were new.
    pub fn absorb(&mut self, sig: &CoverageSignature) -> usize {
        let mut fresh = 0;
        for &f in sig.features() {
            if let Err(at) = self.seen.binary_search(&f) {
                self.seen.insert(at, f);
                fresh += 1;
            }
        }
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_ids_round_trip() {
        let id = feature_id(domain::MESSAGE_PHASE, 0x1234);
        assert_eq!(split_feature(id), (domain::MESSAGE_PHASE, 0x1234));
    }

    #[test]
    fn signatures_sort_and_dedup() {
        let sig = CoverageSignature::from_features(vec![9, 3, 3, 7, 9]);
        assert_eq!(sig.features(), &[3, 7, 9]);
        assert_eq!(sig.len(), 3);
        assert!(sig.contains(7));
        assert!(!sig.contains(8));
    }

    #[test]
    fn bucketed_counters_merge_similar_magnitudes() {
        let bucket = |n: u64| {
            let mut b = CoverageBuilder::new();
            b.hit_bucketed(domain::NET_PRESSURE, 1, n);
            b.build()
        };
        assert_eq!(bucket(173), bucket(174), "same log2 bucket");
        assert_ne!(bucket(0), bucket(1), "zero is its own behaviour");
        assert_ne!(bucket(3), bucket(300));
    }

    #[test]
    fn coverage_map_tracks_novelty() {
        let mut map = CoverageMap::new();
        let a = CoverageSignature::from_features(vec![1, 2, 3]);
        let b = CoverageSignature::from_features(vec![3, 4]);
        assert_eq!(a.novel_against(&map), 3);
        assert_eq!(map.absorb(&a), 3);
        assert_eq!(b.novel_against(&map), 1);
        assert_eq!(map.absorb(&b), 1);
        assert_eq!(map.absorb(&b), 0, "absorbing twice adds nothing");
        assert_eq!(map.len(), 4);
    }

    #[test]
    fn describe_groups_by_domain() {
        let mut b = CoverageBuilder::new();
        b.hit(domain::MESSAGE_PHASE, 1);
        b.hit(domain::MESSAGE_PHASE, 2);
        b.hit(domain::STORAGE, 1);
        let sig = b.build();
        let text = sig.describe();
        assert!(text.contains("3 features"), "{text}");
        assert!(text.contains("message-phase:2"), "{text}");
        assert!(text.contains("storage:1"), "{text}");
        assert_eq!(CoverageSignature::empty().describe(), "no coverage recorded");
    }
}
