//! Basic identifiers and values shared across the consistency-model core.

use core::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of an application process (Section 3.1 of the paper).
///
/// Processes issue operations on services, exchange messages with one another,
/// and are the unit over which per-process (sub-execution) equivalence is
/// defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(pub u32);

/// Identifier of an operation (or transaction) within a [`crate::history::History`].
///
/// Operation ids are dense indices assigned by the history builder in
/// insertion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpId(pub u32);

impl OpId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a service in a (possibly composite) service (Section 3.2).
///
/// A composite service is the composition of several constituent services;
/// transactions never span services.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServiceId(pub u32);

impl ServiceId {
    /// The default key-value service used when only one service exists.
    pub const KV: ServiceId = ServiceId(0);
    /// A second service, conventionally the messaging/queue service of the
    /// photo-sharing example.
    pub const QUEUE: ServiceId = ServiceId(1);
}

/// A key in a key-value or queue service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Key(pub u64);

/// A value stored under a key.
///
/// The all-zero value is reserved to mean "not present" ([`Value::NULL`]),
/// matching the paper's convention that reading an absent key returns null.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Value(pub u64);

impl Value {
    /// The value returned when a key is not present.
    pub const NULL: Value = Value(0);

    /// True if this is the null (absent) value.
    pub fn is_null(self) -> bool {
        self == Value::NULL
    }
}

/// A real-time instant, in microseconds, on the global (omniscient) clock used
/// to define the real-time order of an execution.
///
/// Application processes cannot observe this clock; it exists only in the
/// formal model (and in the simulator harness recording histories).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The zero timestamp.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Constructs a timestamp from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Timestamp(us)
    }

    /// The timestamp in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "svc{}", self.0)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "null")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_value() {
        assert!(Value::NULL.is_null());
        assert!(!Value(3).is_null());
    }

    #[test]
    fn ordering() {
        assert!(Timestamp(1) < Timestamp(2));
        assert!(OpId(0) < OpId(1));
        assert!(Key(5) > Key(4));
    }

    #[test]
    fn display() {
        assert_eq!(ProcessId(2).to_string(), "P2");
        assert_eq!(OpId(7).to_string(), "op7");
        assert_eq!(Value::NULL.to_string(), "null");
        assert_eq!(Value(9).to_string(), "9");
        assert_eq!(Key(1).to_string(), "k1");
        assert_eq!(Timestamp(10).to_string(), "10us");
        assert_eq!(ServiceId::KV.to_string(), "svc0");
    }

    #[test]
    fn opid_index() {
        assert_eq!(OpId(3).index(), 3);
    }
}
