//! Regular Sequential Serializability (RSS) and Regular Sequential
//! Consistency (RSC): the consistency-model core.
//!
//! This crate is the reproduction of the conceptual contribution of
//! *"Regular Sequential Serializability and Regular Sequential Consistency"*
//! (SOSP 2021): the definitions of RSS and RSC, the machinery needed to check
//! them on recorded executions, the Lemma 1 transformation underlying their
//! invariant-equivalence to strict serializability and linearizability, and
//! the photo-sharing application used throughout the paper to compare models.
//!
//! A map of the whole workspace — every crate, the two execution planes
//! (deterministic simulation and live threads), the three-stage certification
//! cascade, and how a sweep seed becomes a certified verdict — lives in
//! `ARCHITECTURE.md` at the repository root.
//!
//! # Layout
//!
//! * [`types`], [`op`], [`history`] — the execution model: processes issue
//!   operations (reads, writes, rmws, transactions, queue operations) on a
//!   composite service and exchange messages.
//! * [`order`] — real-time order, process order, reads-from, and the causal
//!   order (Section 3.3).
//! * [`spec`] — sequential specifications of the key-value and messaging
//!   services, and sequence replay.
//! * [`checker`] — exact search checkers for RSS, RSC, strict
//!   serializability, linearizability, PO serializability, and sequential
//!   consistency; scalable witness (certificate) checkers used on protocol
//!   runs; and checkers for the proximal models of Appendix A.
//! * [`mod@transform`] — the Lemma 1 construction turning an RSS execution into an
//!   equivalent strictly serializable one.
//! * [`invariants`] — the photo-sharing application, invariants I1/I2, and
//!   anomaly detectors A1–A3 (Table 1).
//! * [`fence`] — the real-time fence abstraction for composing RSS/RSC
//!   services (Section 4.1).
//! * [`coverage`] — behaviour-coverage signatures shared by the simulator,
//!   failure artifacts, and the coverage-guided hunter (`regular-hunt`).
//!
//! # Example: checking a history
//!
//! ```
//! use regular_core::checker::models::{satisfies, Model};
//! use regular_core::history::HistoryBuilder;
//!
//! // A write that is concurrent with two reads: the first read observes it,
//! // the later read does not. RSC allows this; linearizability does not.
//! let mut b = HistoryBuilder::new();
//! b.write(1, 1, 1, 0, 100);
//! b.read(2, 1, 1, 10, 20);
//! b.read(3, 1, 0, 30, 40);
//! let history = b.build();
//!
//! assert!(satisfies(&history, Model::RegularSequentialConsistency));
//! assert!(!satisfies(&history, Model::Linearizability));
//! ```

pub mod checker;
pub mod coverage;
pub mod densemap;
pub mod fence;
pub mod hashing;
pub mod history;
pub mod invariants;
pub mod op;
pub mod opset;
pub mod order;
pub mod spec;
pub mod transform;
pub mod types;

pub use checker::certificate::{
    check_witness, check_witness_parallel, WitnessModel, WitnessViolation,
};
pub use checker::decompose::{
    check_witness_decomposed, find_sequence_decomposed, ComponentSplit, CrossEdges,
};
pub use checker::models::{check, satisfies, CheckOutcome, Model};
pub use checker::proximal::{check_proximal, ProximalModel};
pub use checker::saturate::{find_sequence_saturated, saturate, Saturation};
pub use checker::window::{StreamingChecker, WindowBuffer};
pub use coverage::{CoverageBuilder, CoverageMap, CoverageSignature};
pub use densemap::DenseKeyMap;
pub use fence::FencedService;
pub use history::{History, HistoryBuilder, HistoryIndex, MessageEdge, OpRecord};
pub use op::{OpKind, OpResult};
pub use order::CausalOrder;
pub use transform::{transform, TransformedExecution};
pub use types::{Key, OpId, ProcessId, ServiceId, Timestamp, Value};
