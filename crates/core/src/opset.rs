//! Dense bitsets over the local op indices of one search.
//!
//! The exact search used to represent its scheduled sets, predecessor masks,
//! and memo keys as `u128` bitmasks, hard-capping every search at 128
//! operations. [`OpSet`] lifts that ceiling: a small-vector bitset whose
//! one-allocation-free inline representation covers up to
//! [`OpSet::INLINE_BITS`] bits (two words — the entire old `u128` range, so
//! the ≤128-op benches keep their flat-word arithmetic), spilling to a heap
//! word box only for larger universes.
//!
//! All sets participating in one search share one universe size, fixed at
//! construction; operations that combine two sets debug-assert that the word
//! counts agree.

use std::hash::{Hash, Hasher};

const WORD_BITS: usize = 64;

/// Number of `u64` words needed for `bits` bits.
#[inline]
pub(crate) fn words_for(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS).max(1)
}

/// A fixed-universe bitset over local op indices.
///
/// Cheap to clone in the inline regime (a memo-table key), heap-boxed beyond
/// [`OpSet::INLINE_BITS`] bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpSet {
    repr: Repr,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Repr {
    /// Up to [`OpSet::INLINE_BITS`] bits, no allocation.
    Inline([u64; 2]),
    /// Any larger universe.
    Spilled(Box<[u64]>),
}

impl OpSet {
    /// Largest universe (in bits) the inline representation covers.
    pub const INLINE_BITS: usize = 2 * WORD_BITS;

    /// The empty set over a universe of `universe` bits.
    pub fn empty(universe: usize) -> Self {
        let n = words_for(universe);
        if n <= 2 {
            OpSet { repr: Repr::Inline([0; 2]) }
        } else {
            OpSet { repr: Repr::Spilled(vec![0u64; n].into_boxed_slice()) }
        }
    }

    /// The set `{0, 1, …, count-1}` over a universe of `universe` bits.
    ///
    /// This replaces the old `u128::MAX >> (128 - required.len())` idiom,
    /// which was one guard away from a shift-overflow panic at the
    /// representation boundary; here every boundary (0, 64, 127, 128, 129, …)
    /// is handled by whole-word fills plus one partial word.
    ///
    /// # Panics
    ///
    /// Panics if `count > universe`.
    pub fn first_n(universe: usize, count: usize) -> Self {
        assert!(count <= universe, "first_n({count}) exceeds universe {universe}");
        let mut set = Self::empty(universe);
        let words = set.words_mut();
        let full = count / WORD_BITS;
        for w in words.iter_mut().take(full) {
            *w = u64::MAX;
        }
        let rem = count % WORD_BITS;
        if rem != 0 {
            // rem < 64, so the shift below cannot overflow.
            words[full] = u64::MAX >> (WORD_BITS - rem);
        }
        set
    }

    /// The words of the set, least-significant first.
    #[inline]
    pub fn words(&self) -> &[u64] {
        match &self.repr {
            Repr::Inline(w) => w,
            Repr::Spilled(w) => w,
        }
    }

    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        match &mut self.repr {
            Repr::Inline(w) => w,
            Repr::Spilled(w) => w,
        }
    }

    /// Word `w` of the set (zero beyond the universe).
    #[inline]
    pub fn word(&self, w: usize) -> u64 {
        self.words().get(w).copied().unwrap_or(0)
    }

    /// Number of words in the representation.
    #[inline]
    pub fn num_words(&self) -> usize {
        self.words().len()
    }

    /// True if `i` is in the set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.word(i / WORD_BITS) & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Inserts `i`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        self.words_mut()[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Removes `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        self.words_mut()[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// ORs in the low bits of `bits`, shifted up by `offset` — the
    /// optional-subset construction `required_mask | (subset << |required|)`,
    /// generalized across word boundaries.
    pub fn or_shifted(&mut self, bits: u64, offset: usize) {
        let words = self.words_mut();
        let (w, sh) = (offset / WORD_BITS, offset % WORD_BITS);
        words[w] |= bits << sh;
        if sh != 0 {
            let spill = (bits as u128 >> (WORD_BITS - sh)) as u64;
            if spill != 0 {
                words[w + 1] |= spill;
            }
        }
    }

    /// ORs `other` into `self`, returning true if any bit changed. The
    /// word-parallel union underlying the saturation closure rows
    /// ([`crate::checker::saturate`](mod@crate::checker::saturate)); both sets
    /// must share one universe.
    pub fn union_with(&mut self, other: &OpSet) -> bool {
        debug_assert_eq!(self.num_words(), other.num_words(), "universe mismatch in union");
        let mut changed = false;
        for (w, &o) in self.words_mut().iter_mut().zip(other.words()) {
            let merged = *w | o;
            changed |= merged != *w;
            *w = merged;
        }
        changed
    }

    /// Number of elements.
    #[inline]
    pub fn count(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// Iterates the elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words().iter().enumerate().flat_map(|(wi, &word)| {
            std::iter::successors((word != 0).then_some(word), |w| {
                let next = w & (w - 1);
                (next != 0).then_some(next)
            })
            .map(move |w| wi * WORD_BITS + w.trailing_zeros() as usize)
        })
    }
}

impl Hash for OpSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for &w in self.words() {
            state.write_u64(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_inline_boundary() {
        for universe in [0, 1, 63, 64, 65, 127, 128] {
            let s = OpSet::empty(universe);
            assert!(matches!(s.repr, Repr::Inline(_)), "universe {universe} stays inline");
            assert!(s.is_empty());
        }
        for universe in [129, 192, 1000] {
            let s = OpSet::empty(universe);
            assert!(matches!(s.repr, Repr::Spilled(_)), "universe {universe} spills");
            assert_eq!(s.num_words(), words_for(universe));
            assert!(s.is_empty());
        }
    }

    #[test]
    fn first_n_at_word_boundaries() {
        // The exact boundary cases the old `u128::MAX >> (128 - len)` idiom
        // was fragile around.
        for (universe, count) in
            [(64, 64), (127, 127), (128, 128), (129, 129), (129, 128), (200, 64), (200, 0)]
        {
            let s = OpSet::first_n(universe, count);
            assert_eq!(s.count(), count, "first_n({universe}, {count})");
            for i in 0..universe {
                assert_eq!(s.contains(i), i < count, "bit {i} of first_n({universe}, {count})");
            }
        }
    }

    #[test]
    fn insert_remove_contains_across_words() {
        let mut s = OpSet::empty(200);
        for i in [0, 63, 64, 127, 128, 199] {
            assert!(!s.contains(i));
            s.insert(i);
            assert!(s.contains(i));
        }
        assert_eq!(s.count(), 6);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 127, 128, 199]);
        s.remove(64);
        s.remove(199);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 127, 128]);
    }

    #[test]
    fn or_shifted_crosses_word_boundaries() {
        // Offset 62 with 4 bits set spans words 0 and 1.
        let mut s = OpSet::empty(130);
        s.or_shifted(0b1111, 62);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![62, 63, 64, 65]);
        // Offset at exactly a word boundary.
        let mut t = OpSet::empty(200);
        t.or_shifted(0b101, 128);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![128, 130]);
        // Offset 120 spilling into the third word of a spilled set.
        let mut u = OpSet::empty(200);
        u.or_shifted(0x3FF, 120);
        assert_eq!(u.count(), 10);
        assert!(u.contains(120) && u.contains(129));
    }

    #[test]
    fn equality_and_hash_agree_on_words() {
        use crate::hashing::FxBuildHasher;
        use std::hash::BuildHasher;
        let mut a = OpSet::empty(129);
        let mut b = OpSet::empty(129);
        a.insert(128);
        assert_ne!(a, b);
        b.insert(128);
        assert_eq!(a, b);
        let build = FxBuildHasher::default();
        assert_eq!(build.hash_one(&a), build.hash_one(&b));
    }
}
