//! Orders over operations: real-time, process, reads-from, and causal order.
//!
//! These relations are the building blocks of the paper's consistency
//! definitions (Section 3.3):
//!
//! * **Real-time order** `→`: operation `a` precedes `b` if `a`'s response
//!   occurs before `b`'s invocation.
//! * **Process order**: the order of operations within a single process.
//! * **Reads-from**: `b` reads a value written by `a`.
//! * **Causal order** `⇝`: the transitive closure of process order,
//!   message passing, and reads-from.
//!
//! The reads-from relation requires written values to be distinguishable. The
//! simulator harnesses and test generators in this repository write a unique
//! value per (key, writer) pair; when the same `(key, value)` pair is written
//! by several operations, all of them are conservatively treated as potential
//! sources (adding, never removing, causal edges).

use std::collections::HashMap;

use crate::history::History;
use crate::types::{Key, OpId, ProcessId, Value};

/// True if `a` precedes `b` in real time: `a` has a response and it occurs
/// before `b`'s invocation.
pub fn real_time_precedes(history: &History, a: OpId, b: OpId) -> bool {
    let (ra, rb) = (history.op(a), history.op(b));
    match ra.response {
        Some(resp) => resp < rb.invoke,
        None => false,
    }
}

/// Direct process-order edges: for every process, an edge between each pair of
/// consecutive operations (the full process order is the transitive closure).
pub fn process_order_edges(history: &History) -> Vec<(OpId, OpId)> {
    let mut edges = Vec::new();
    for p in history.processes() {
        let ids = history.ops_of_process(p);
        for w in ids.windows(2) {
            edges.push((w[0], w[1]));
        }
    }
    edges
}

/// The reads-from relation: `(writer, reader)` pairs where the reader observed
/// a non-null value written by the writer on the same service and key.
pub fn reads_from_edges(history: &History) -> Vec<(OpId, OpId)> {
    // Index written (service, key, value) -> writers.
    let mut writers: HashMap<(u32, Key, Value), Vec<OpId>> = HashMap::new();
    for op in history.ops() {
        for (k, v) in op.kind.written_values() {
            if !v.is_null() {
                writers.entry((op.service.0, k, v)).or_default().push(op.id);
            }
        }
    }
    let mut edges = Vec::new();
    for op in history.ops() {
        let Some(result) = op.result.as_ref() else { continue };
        for (k, v) in result.observed(&op.kind) {
            if v.is_null() {
                continue;
            }
            if let Some(ws) = writers.get(&(op.service.0, k, v)) {
                for w in ws {
                    if *w != op.id {
                        edges.push((*w, op.id));
                    }
                }
            }
        }
    }
    edges
}

/// Message-passing edges lifted to operations: for each out-of-band message,
/// an edge from the last operation the sender completed before the send to the
/// first operation the receiver invoked after the receipt.
///
/// Together with process order and transitivity this captures every
/// operation-level causal dependency induced by the message.
pub fn message_edges(history: &History) -> Vec<(OpId, OpId)> {
    let mut per_process: HashMap<ProcessId, Vec<OpId>> = HashMap::new();
    for p in history.processes() {
        per_process.insert(p, history.ops_of_process(p));
    }
    let mut edges = Vec::new();
    for m in history.messages() {
        let sender_ops = per_process.get(&m.from).cloned().unwrap_or_default();
        let receiver_ops = per_process.get(&m.to).cloned().unwrap_or_default();
        let last_before = sender_ops
            .iter()
            .rev()
            .find(|id| history.op(**id).response.map(|r| r <= m.sent_at).unwrap_or(false));
        let first_after = receiver_ops.iter().find(|id| history.op(**id).invoke >= m.received_at);
        if let (Some(a), Some(b)) = (last_before, first_after) {
            if a != b {
                edges.push((*a, *b));
            }
        }
    }
    edges
}

/// The causal order over operations: direct edges and (on demand) reachability.
#[derive(Debug, Clone)]
pub struct CausalOrder {
    n: usize,
    /// Direct edges (process order, reads-from, message passing), deduplicated.
    edges: Vec<(OpId, OpId)>,
    adjacency: Vec<Vec<usize>>,
}

impl CausalOrder {
    /// Builds the causal order of a history.
    pub fn new(history: &History) -> Self {
        let n = history.len();
        let mut edges = Vec::new();
        edges.extend(process_order_edges(history));
        edges.extend(reads_from_edges(history));
        edges.extend(message_edges(history));
        edges.sort();
        edges.dedup();
        // Drop self-loops defensively (possible only with degenerate input).
        edges.retain(|(a, b)| a != b);
        let mut adjacency = vec![Vec::new(); n];
        for (a, b) in &edges {
            adjacency[a.index()].push(b.index());
        }
        CausalOrder { n, edges, adjacency }
    }

    /// The direct causal edges (not transitively closed).
    pub fn direct_edges(&self) -> &[(OpId, OpId)] {
        &self.edges
    }

    /// True if `a` causally precedes `b` (`a ⇝ b`), computed by reachability.
    pub fn precedes(&self, a: OpId, b: OpId) -> bool {
        if a == b {
            return false;
        }
        // Iterative DFS over the direct-edge graph.
        let target = b.index();
        let mut visited = vec![false; self.n];
        let mut stack = vec![a.index()];
        visited[a.index()] = true;
        while let Some(cur) = stack.pop() {
            for &next in &self.adjacency[cur] {
                if next == target {
                    return true;
                }
                if !visited[next] {
                    visited[next] = true;
                    stack.push(next);
                }
            }
        }
        false
    }

    /// All pairs `(a, b)` with `a ⇝ b`, as a boolean matrix indexed by op ids.
    ///
    /// Intended for small histories (the search-based checkers); the
    /// certificate checkers only use [`CausalOrder::direct_edges`].
    pub fn closure(&self) -> Vec<Vec<bool>> {
        let mut reach = vec![vec![false; self.n]; self.n];
        for (a, b) in &self.edges {
            reach[a.index()][b.index()] = true;
        }
        // Floyd–Warshall style closure; n is small here.
        for k in 0..self.n {
            let row_k = reach[k].clone();
            for row in reach.iter_mut() {
                if row[k] {
                    for (cell, &via_k) in row.iter_mut().zip(&row_k) {
                        *cell |= via_k;
                    }
                }
            }
        }
        reach
    }

    /// True if the causal order is acyclic (it always should be for histories
    /// recorded from real executions; cycles indicate a malformed history).
    pub fn is_acyclic(&self) -> bool {
        let closure = self.closure();
        (0..self.n).all(|i| !closure[i][i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;

    #[test]
    fn real_time_order_basic() {
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 10, 0, 5);
        let r = b.read(2, 1, 10, 6, 8);
        let concurrent = b.read(3, 1, 0, 3, 9);
        let h = b.build();
        assert!(real_time_precedes(&h, w, r));
        assert!(!real_time_precedes(&h, r, w));
        assert!(!real_time_precedes(&h, w, concurrent));
        assert!(!real_time_precedes(&h, concurrent, w));
    }

    #[test]
    fn incomplete_op_has_no_rt_successors() {
        let mut b = HistoryBuilder::new();
        let pw = b.pending_write(1, 1, 10, 0);
        let r = b.read(2, 1, 0, 100, 110);
        let h = b.build();
        assert!(!real_time_precedes(&h, pw, r));
    }

    #[test]
    fn process_order_chains_per_process() {
        let mut b = HistoryBuilder::new();
        let a1 = b.write(1, 1, 10, 0, 5);
        let a2 = b.read(1, 1, 10, 6, 8);
        let a3 = b.read(1, 2, 0, 9, 12);
        let b1 = b.write(2, 2, 5, 0, 4);
        let h = b.build();
        let edges = process_order_edges(&h);
        assert!(edges.contains(&(a1, a2)));
        assert!(edges.contains(&(a2, a3)));
        assert!(!edges.contains(&(a1, a3)), "only consecutive pairs are direct edges");
        assert!(!edges.iter().any(|(x, y)| *x == b1 || *y == b1));
    }

    #[test]
    fn reads_from_links_writer_to_reader() {
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 42, 0, 5);
        let r_hit = b.read(2, 1, 42, 6, 8);
        let r_miss = b.read(3, 1, 0, 6, 8);
        let h = b.build();
        let edges = reads_from_edges(&h);
        assert!(edges.contains(&(w, r_hit)));
        assert!(!edges.iter().any(|(_, r)| *r == r_miss), "null reads have no source");
    }

    #[test]
    fn reads_from_covers_transactions() {
        let mut b = HistoryBuilder::new();
        let w = b.rw_txn(1, &[], &[(1, 7), (2, 8)], 0, 5);
        let r = b.ro_txn(2, &[(1, 7), (2, 8)], 6, 9);
        let h = b.build();
        let edges = reads_from_edges(&h);
        // Both observed keys come from the same writer: one deduplicated edge per pair.
        assert!(edges.contains(&(w, r)));
    }

    #[test]
    fn message_edges_connect_surrounding_ops() {
        let mut b = HistoryBuilder::new();
        let alice_write = b.write(1, 1, 9, 0, 5);
        let bob_read = b.read(2, 1, 9, 20, 25);
        let bob_earlier = b.read(2, 2, 0, 1, 2);
        b.message(1, 6, 2, 10);
        let h = b.build();
        let edges = message_edges(&h);
        assert_eq!(edges, vec![(alice_write, bob_read)]);
        assert!(!edges.contains(&(alice_write, bob_earlier)));
    }

    #[test]
    fn causal_order_includes_transitivity() {
        let mut b = HistoryBuilder::new();
        // P1 writes, P2 reads it (reads-from), later P2 writes y, P3 reads y.
        let w_x = b.write(1, 1, 5, 0, 2);
        let r_x = b.read(2, 1, 5, 3, 4);
        let w_y = b.write(2, 2, 6, 5, 7);
        let r_y = b.read(3, 2, 6, 8, 9);
        let h = b.build();
        let causal = CausalOrder::new(&h);
        assert!(causal.precedes(w_x, r_x));
        assert!(causal.precedes(r_x, w_y), "process order");
        assert!(causal.precedes(w_x, r_y), "transitive through reads-from and process order");
        assert!(!causal.precedes(r_y, w_x));
        assert!(causal.is_acyclic());
        let closure = causal.closure();
        assert!(closure[w_x.index()][r_y.index()]);
        assert!(!closure[r_y.index()][w_x.index()]);
    }

    #[test]
    fn causally_unrelated_ops() {
        let mut b = HistoryBuilder::new();
        let w1 = b.write(1, 1, 5, 0, 2);
        let w2 = b.write(2, 2, 6, 0, 2);
        let h = b.build();
        let causal = CausalOrder::new(&h);
        assert!(!causal.precedes(w1, w2));
        assert!(!causal.precedes(w2, w1));
        assert!(causal.direct_edges().is_empty());
    }

    #[test]
    fn same_process_message_does_not_self_loop() {
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 5, 0, 2);
        // A process "messaging itself" around a single op must not create an edge.
        b.message(1, 3, 1, 4);
        let r = b.read(1, 1, 5, 5, 6);
        let h = b.build();
        let causal = CausalOrder::new(&h);
        assert!(causal.is_acyclic());
        assert!(causal.precedes(w, r));
    }
}
