//! The Lemma 1 transformation: from an RSS (RSC) execution to an equivalent
//! strictly serializable (linearizable) one.
//!
//! The paper's central correctness argument (Section 3.5, Appendix C) is that
//! any execution satisfying RSS/RSC can be reordered — without changing any
//! process's sub-execution — into an execution in which the service
//! interactions are sequential in the witness order `S`. Since per-process
//! sub-executions are preserved, every process passes through the same states,
//! so all invariants carry over (Theorem 2).
//!
//! This module *mechanizes* the transformation: given a history and a witness
//! sequence, it produces the reordered schedule of actions and exposes checks
//! that (a) every process's action order is preserved, and (b) the service
//! interactions are sequential and follow the witness order. The property
//! tests in this crate exercise it on randomly generated RSS histories.

use std::collections::HashMap;

use crate::history::History;
use crate::order::{message_edges, process_order_edges, reads_from_edges};
use crate::types::{OpId, ProcessId, Timestamp};

/// One action of the execution's schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Invocation of an operation at its process.
    Invoke(OpId),
    /// Response of an operation at its process.
    Respond(OpId),
    /// Send action of the `i`-th recorded message at the sending process.
    Send(usize),
    /// Receive action of the `i`-th recorded message at the receiving process.
    Receive(usize),
}

#[derive(Debug, Clone, Copy)]
struct ActionInfo {
    action: Action,
    process: ProcessId,
    time: Timestamp,
    /// Tie-break rank within a process at equal times: responses and receipts
    /// happen before sends and invocations.
    tie: u8,
}

/// The result of applying the Lemma 1 transformation.
#[derive(Debug, Clone)]
pub struct TransformedExecution {
    original: Vec<ActionInfo>,
    /// Indices into `original`, in the transformed (β) order.
    transformed: Vec<usize>,
}

/// Builds the action-level schedule of a history: invocations, responses,
/// sends, and receives, ordered by real time (per-process ties broken so that
/// responses precede subsequent sends/invocations).
fn action_schedule(history: &History) -> Vec<ActionInfo> {
    let mut actions = Vec::new();
    for op in history.ops() {
        actions.push(ActionInfo {
            action: Action::Invoke(op.id),
            process: op.process,
            time: op.invoke,
            tie: 2,
        });
        if let Some(resp) = op.response {
            actions.push(ActionInfo {
                action: Action::Respond(op.id),
                process: op.process,
                time: resp,
                tie: 0,
            });
        }
    }
    for (i, m) in history.messages().iter().enumerate() {
        actions.push(ActionInfo {
            action: Action::Send(i),
            process: m.from,
            time: m.sent_at,
            tie: 1,
        });
        actions.push(ActionInfo {
            action: Action::Receive(i),
            process: m.to,
            time: m.received_at,
            tie: 0,
        });
    }
    actions.sort_by_key(|a| (a.time, a.tie));
    actions
}

/// Applies the Lemma 1 construction to `history` with witness sequence
/// `witness` (the sequence `S ∈ 𝔖` produced by an RSS/RSC checker).
///
/// Every action is ordered after the maximal (by the witness order)
/// invocation/response action that causally precedes it; causally unrelated
/// actions keep their original relative order.
pub fn transform(history: &History, witness: &[OpId]) -> TransformedExecution {
    let actions = action_schedule(history);
    let n = actions.len();

    // Rank of each operation's invocation/response in the witness order.
    let mut op_pos: HashMap<OpId, usize> = HashMap::new();
    for (i, &id) in witness.iter().enumerate() {
        op_pos.insert(id, i);
    }
    let unplaced_base = witness.len();
    let mut next_unplaced = 0usize;
    let mut rank_of_op: HashMap<OpId, usize> = HashMap::new();
    for op in history.ops() {
        let pos = match op_pos.get(&op.id) {
            Some(&p) => p,
            None => {
                let p = unplaced_base + next_unplaced;
                next_unplaced += 1;
                p
            }
        };
        rank_of_op.insert(op.id, pos);
    }
    let rank_of_action = |a: &Action| -> Option<usize> {
        match a {
            Action::Invoke(id) => Some(2 * rank_of_op[id]),
            Action::Respond(id) => Some(2 * rank_of_op[id] + 1),
            _ => None,
        }
    };

    // Causal DAG over actions: per-process order, message send -> receive,
    // reads-from (writer response -> reader invocation), then propagate the
    // maximal causally preceding invocation/response rank along edges.
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
    // Map from action identity to its index in `actions`.
    let mut index_of: HashMap<ActionKey, usize> = HashMap::new();
    for (i, a) in actions.iter().enumerate() {
        index_of.insert(ActionKey::from(&a.action), i);
    }
    // Per-process order edges between consecutive actions.
    let mut per_process: HashMap<ProcessId, Vec<usize>> = HashMap::new();
    for (i, a) in actions.iter().enumerate() {
        per_process.entry(a.process).or_default().push(i);
    }
    for indices in per_process.values() {
        for w in indices.windows(2) {
            adjacency[w[0]].push(w[1]);
        }
    }
    // Message edges.
    for (i, _m) in history.messages().iter().enumerate() {
        if let (Some(&s), Some(&r)) =
            (index_of.get(&ActionKey::Send(i)), index_of.get(&ActionKey::Receive(i)))
        {
            adjacency[s].push(r);
        }
    }
    // Reads-from edges: writer response -> reader invocation. Also include
    // op-level message/process edges for robustness (they are already covered
    // by the per-process and message edges above, but adding them is harmless).
    for (w, r) in reads_from_edges(history) {
        if let (Some(&a), Some(&b)) =
            (index_of.get(&ActionKey::Respond(w)), index_of.get(&ActionKey::Invoke(r)))
        {
            adjacency[a].push(b);
        }
    }
    for (a, b) in process_order_edges(history).into_iter().chain(message_edges(history)) {
        if let (Some(&x), Some(&y)) =
            (index_of.get(&ActionKey::Respond(a)), index_of.get(&ActionKey::Invoke(b)))
        {
            adjacency[x].push(y);
        }
    }

    // key[i] = maximal witness rank among invocation/response actions that
    // causally precede (or are) action i. Reads-from edges can point backwards
    // in real time (a read of a concurrent write is invoked before the write
    // responds), so we relax to a fixpoint; keys only grow and are bounded by
    // the maximal rank, so the loop terminates.
    let mut key: Vec<i64> = vec![-1; n];
    for (i, a) in actions.iter().enumerate() {
        if let Some(r) = rank_of_action(&a.action) {
            key[i] = key[i].max(r as i64);
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            for &next in &adjacency[i] {
                if key[i] > key[next] {
                    key[next] = key[i];
                    changed = true;
                }
            }
        }
    }

    // Stable sort by key: actions with equal keys keep their original order.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (key[i], i));

    TransformedExecution { original: actions, transformed: order }
}

/// Identity of an action, used to index the action table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ActionKey {
    Invoke(OpId),
    Respond(OpId),
    Send(usize),
    Receive(usize),
}

impl From<&Action> for ActionKey {
    fn from(a: &Action) -> Self {
        match a {
            Action::Invoke(id) => ActionKey::Invoke(*id),
            Action::Respond(id) => ActionKey::Respond(*id),
            Action::Send(i) => ActionKey::Send(*i),
            Action::Receive(i) => ActionKey::Receive(*i),
        }
    }
}

impl TransformedExecution {
    /// The transformed schedule (β in the paper).
    pub fn schedule(&self) -> Vec<Action> {
        self.transformed.iter().map(|&i| self.original[i].action).collect()
    }

    /// The original schedule (α in the paper).
    pub fn original_schedule(&self) -> Vec<Action> {
        self.original.iter().map(|a| a.action).collect()
    }

    /// Lemma 1, equivalence clause: every process's sub-schedule is identical
    /// in α and β.
    pub fn per_process_order_preserved(&self) -> bool {
        let project = |indices: &[usize]| -> HashMap<ProcessId, Vec<Action>> {
            let mut per: HashMap<ProcessId, Vec<Action>> = HashMap::new();
            for &i in indices {
                per.entry(self.original[i].process).or_default().push(self.original[i].action);
            }
            per
        };
        let original: Vec<usize> = (0..self.original.len()).collect();
        project(&original) == project(&self.transformed)
    }

    /// Lemma 1, sequential-service clause: in β, no other invocation or
    /// response occurs between an operation's invocation and its response.
    pub fn service_interactions_sequential(&self) -> bool {
        let mut open: Option<OpId> = None;
        for &i in &self.transformed {
            match self.original[i].action {
                Action::Invoke(id) => {
                    if open.is_some() {
                        return false;
                    }
                    open = Some(id);
                }
                Action::Respond(id) => {
                    if open != Some(id) {
                        return false;
                    }
                    open = None;
                }
                _ => {}
            }
        }
        true
    }

    /// The operations' order in β matches the witness order (restricted to the
    /// operations that appear in the witness).
    pub fn respects_witness(&self, witness: &[OpId]) -> bool {
        let mut pos: HashMap<OpId, usize> = HashMap::new();
        for (i, &id) in witness.iter().enumerate() {
            pos.insert(id, i);
        }
        let mut last = None;
        for &i in &self.transformed {
            if let Action::Invoke(id) = self.original[i].action {
                if let Some(&p) = pos.get(&id) {
                    if let Some(prev) = last {
                        if p < prev {
                            return false;
                        }
                    }
                    last = Some(p);
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::models::{check, Model};
    use crate::history::HistoryBuilder;

    /// The Figure 2 example: the RSS execution is transformed into a strictly
    /// serializable one without reordering any process's actions.
    #[test]
    fn figure_2_transformation() {
        let mut b = HistoryBuilder::new();
        let w1 = b.write(2, 1, 1, 0, 100);
        let r2 = b.read(3, 1, 1, 10, 20);
        let r1 = b.read(1, 1, 0, 30, 40);
        let h = b.build();
        let outcome = check(&h, Model::RegularSequentialConsistency).unwrap();
        assert!(outcome.satisfied);
        let witness = outcome.witness.unwrap();
        // The only valid witness is r1, w1, r2.
        assert_eq!(witness, vec![r1, w1, r2]);

        let t = transform(&h, &witness);
        assert!(t.per_process_order_preserved());
        assert!(t.service_interactions_sequential());
        assert!(t.respects_witness(&witness));
        // In the transformed schedule the read of the old value comes first.
        let sched = t.schedule();
        let pos_inv_r1 = sched.iter().position(|a| *a == Action::Invoke(r1)).unwrap();
        let pos_inv_w1 = sched.iter().position(|a| *a == Action::Invoke(w1)).unwrap();
        let pos_inv_r2 = sched.iter().position(|a| *a == Action::Invoke(r2)).unwrap();
        assert!(pos_inv_r1 < pos_inv_w1 && pos_inv_w1 < pos_inv_r2);
    }

    #[test]
    fn transformation_with_messages_preserves_process_order() {
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 7, 0, 10);
        let r = b.read(2, 1, 7, 40, 50);
        b.message(1, 15, 2, 20);
        let h = b.build();
        let outcome = check(&h, Model::RegularSequentialConsistency).unwrap();
        let witness = outcome.witness.unwrap();
        assert_eq!(witness, vec![w, r]);
        let t = transform(&h, &witness);
        assert!(t.per_process_order_preserved());
        assert!(t.service_interactions_sequential());
        assert!(t.respects_witness(&witness));
        // The send still happens after the write's response and before the
        // receive in the transformed schedule.
        let sched = t.schedule();
        let send = sched.iter().position(|a| *a == Action::Send(0)).unwrap();
        let recv = sched.iter().position(|a| *a == Action::Receive(0)).unwrap();
        let resp_w = sched.iter().position(|a| *a == Action::Respond(w)).unwrap();
        assert!(resp_w < send && send < recv);
    }

    #[test]
    fn already_sequential_execution_is_unchanged() {
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 1, 0, 10);
        let r = b.read(2, 1, 1, 20, 30);
        let h = b.build();
        let witness = vec![w, r];
        let t = transform(&h, &witness);
        assert_eq!(t.schedule(), t.original_schedule());
        assert!(t.per_process_order_preserved());
        assert!(t.service_interactions_sequential());
    }

    #[test]
    fn incomplete_operations_are_kept_at_their_process() {
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 1, 0, 10);
        let pending = b.pending_write(3, 2, 9, 5);
        let r = b.read(2, 1, 1, 20, 30);
        let h = b.build();
        let witness = vec![w, r];
        let t = transform(&h, &witness);
        assert!(t.per_process_order_preserved());
        // The pending write has an invocation but no response; sequentiality
        // only applies to matched pairs, so we check the witness order instead.
        assert!(t.respects_witness(&witness));
        let sched = t.schedule();
        assert!(sched.contains(&Action::Invoke(pending)));
    }
}
