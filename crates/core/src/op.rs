//! Operations: the invocations application processes issue on services.
//!
//! The paper's formal model covers both non-transactional services (reads,
//! writes, read-modify-writes on a key-value store; enqueues and dequeues on a
//! messaging service) and transactional services (read-only and read-write
//! transactions). [`OpKind`] captures all of them so a single history type can
//! describe executions against a composite service.

use serde::{Deserialize, Serialize};

use crate::types::{Key, Value};

/// The kind (and arguments) of an operation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Non-transactional read of a single key.
    Read { key: Key },
    /// Non-transactional write of a single key.
    Write { key: Key, value: Value },
    /// Atomic read-modify-write: writes `value` and returns the prior value.
    Rmw { key: Key, value: Value },
    /// Read-only transaction over a set of keys.
    RoTxn { keys: Vec<Key> },
    /// Read-write transaction: reads `read_keys`, then writes `writes`.
    RwTxn { read_keys: Vec<Key>, writes: Vec<(Key, Value)> },
    /// Enqueue a value onto a FIFO queue (messaging service).
    Enqueue { queue: Key, value: Value },
    /// Dequeue the head of a FIFO queue; returns [`Value::NULL`] when empty.
    Dequeue { queue: Key },
    /// A real-time fence (Section 4.1); has no return value.
    Fence,
}

/// The result carried by an operation's response.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpResult {
    /// A single value: `Read` and `Dequeue` results, or the *prior* value for `Rmw`.
    Value(Value),
    /// Per-key values read by a transaction (`RoTxn` and `RwTxn`).
    Values(Vec<(Key, Value)>),
    /// Acknowledgement with no data (`Write`, `Enqueue`, `Fence`).
    Ack,
}

impl OpKind {
    /// True if the operation mutates service state (is a "write" in the sense
    /// of the RSS/RSC definitions' set `W`).
    pub fn is_mutating(&self) -> bool {
        matches!(
            self,
            OpKind::Write { .. }
                | OpKind::Rmw { .. }
                | OpKind::RwTxn { .. }
                | OpKind::Enqueue { .. }
        )
    }

    /// True if the operation is purely read-only (a candidate member of a
    /// conflict set `C(w)`).
    pub fn is_read_only(&self) -> bool {
        matches!(self, OpKind::Read { .. } | OpKind::RoTxn { .. } | OpKind::Dequeue { .. })
    }

    /// True if the operation is transactional (RSS rather than RSC territory).
    pub fn is_transactional(&self) -> bool {
        matches!(self, OpKind::RoTxn { .. } | OpKind::RwTxn { .. })
    }

    /// True if this is a real-time fence.
    pub fn is_fence(&self) -> bool {
        matches!(self, OpKind::Fence)
    }

    /// Keys written by this operation (for queues, the queue key).
    pub fn written_keys(&self) -> Vec<Key> {
        match self {
            OpKind::Write { key, .. } | OpKind::Rmw { key, .. } => vec![*key],
            OpKind::RwTxn { writes, .. } => writes.iter().map(|(k, _)| *k).collect(),
            OpKind::Enqueue { queue, .. } => vec![*queue],
            _ => Vec::new(),
        }
    }

    /// Keys read by this operation (for dequeues, the queue key). `Rmw` and
    /// `RwTxn` read as well as write.
    pub fn read_keys(&self) -> Vec<Key> {
        match self {
            OpKind::Read { key } | OpKind::Rmw { key, .. } => vec![*key],
            OpKind::RoTxn { keys } => keys.clone(),
            OpKind::RwTxn { read_keys, .. } => read_keys.clone(),
            OpKind::Dequeue { queue } => vec![*queue],
            _ => Vec::new(),
        }
    }

    /// All keys accessed (read or written) by this operation.
    pub fn accessed_keys(&self) -> Vec<Key> {
        let mut keys = self.read_keys();
        for k in self.written_keys() {
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
        keys
    }

    /// The values this operation writes, as `(key, value)` pairs.
    pub fn written_values(&self) -> Vec<(Key, Value)> {
        match self {
            OpKind::Write { key, value } | OpKind::Rmw { key, value } => vec![(*key, *value)],
            OpKind::RwTxn { writes, .. } => writes.clone(),
            OpKind::Enqueue { queue, value } => vec![(*queue, *value)],
            _ => Vec::new(),
        }
    }

    /// True if this operation *conflicts* with `other`: they access a common
    /// key and at least one of them writes it (the paper's conflict relation,
    /// Section 3.3, generalized to both transactional and non-transactional
    /// operations).
    pub fn conflicts_with(&self, other: &OpKind) -> bool {
        let my_writes = self.written_keys();
        let my_reads = self.accessed_keys();
        let their_writes = other.written_keys();
        let their_reads = other.accessed_keys();
        my_writes.iter().any(|k| their_reads.contains(k))
            || their_writes.iter().any(|k| my_reads.contains(k))
    }
}

impl OpResult {
    /// The value read for `key`, if this result contains one.
    pub fn value_for(&self, key: Key, kind: &OpKind) -> Option<Value> {
        match self {
            OpResult::Value(v) => match kind {
                OpKind::Read { key: k }
                | OpKind::Rmw { key: k, .. }
                | OpKind::Dequeue { queue: k } => {
                    if *k == key {
                        Some(*v)
                    } else {
                        None
                    }
                }
                _ => None,
            },
            OpResult::Values(vs) => vs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v),
            OpResult::Ack => None,
        }
    }

    /// All `(key, value)` pairs observed by this result.
    pub fn observed(&self, kind: &OpKind) -> Vec<(Key, Value)> {
        match self {
            OpResult::Value(v) => match kind {
                OpKind::Read { key } | OpKind::Rmw { key, .. } => vec![(*key, *v)],
                OpKind::Dequeue { queue } => vec![(*queue, *v)],
                _ => Vec::new(),
            },
            OpResult::Values(vs) => vs.clone(),
            OpResult::Ack => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rw(reads: &[u64], writes: &[(u64, u64)]) -> OpKind {
        OpKind::RwTxn {
            read_keys: reads.iter().map(|&k| Key(k)).collect(),
            writes: writes.iter().map(|&(k, v)| (Key(k), Value(v))).collect(),
        }
    }

    #[test]
    fn mutating_classification() {
        assert!(OpKind::Write { key: Key(1), value: Value(2) }.is_mutating());
        assert!(OpKind::Rmw { key: Key(1), value: Value(2) }.is_mutating());
        assert!(rw(&[1], &[(2, 3)]).is_mutating());
        assert!(OpKind::Enqueue { queue: Key(1), value: Value(2) }.is_mutating());
        assert!(!OpKind::Read { key: Key(1) }.is_mutating());
        assert!(!OpKind::RoTxn { keys: vec![Key(1)] }.is_mutating());
        assert!(!OpKind::Dequeue { queue: Key(1) }.is_mutating());
        assert!(!OpKind::Fence.is_mutating());
    }

    #[test]
    fn read_only_classification() {
        assert!(OpKind::Read { key: Key(1) }.is_read_only());
        assert!(OpKind::RoTxn { keys: vec![Key(1)] }.is_read_only());
        assert!(OpKind::Dequeue { queue: Key(1) }.is_read_only());
        assert!(!OpKind::Write { key: Key(1), value: Value(2) }.is_read_only());
        assert!(!OpKind::Fence.is_read_only());
    }

    #[test]
    fn transactional_classification() {
        assert!(OpKind::RoTxn { keys: vec![] }.is_transactional());
        assert!(rw(&[], &[]).is_transactional());
        assert!(!OpKind::Read { key: Key(1) }.is_transactional());
        assert!(OpKind::Fence.is_fence());
    }

    #[test]
    fn key_sets() {
        let op = rw(&[1, 2], &[(2, 9), (3, 9)]);
        assert_eq!(op.read_keys(), vec![Key(1), Key(2)]);
        assert_eq!(op.written_keys(), vec![Key(2), Key(3)]);
        let accessed = op.accessed_keys();
        assert!(
            accessed.contains(&Key(1)) && accessed.contains(&Key(2)) && accessed.contains(&Key(3))
        );
        assert_eq!(accessed.len(), 3);
        assert_eq!(op.written_values(), vec![(Key(2), Value(9)), (Key(3), Value(9))]);
    }

    #[test]
    fn rmw_reads_and_writes() {
        let op = OpKind::Rmw { key: Key(4), value: Value(10) };
        assert_eq!(op.read_keys(), vec![Key(4)]);
        assert_eq!(op.written_keys(), vec![Key(4)]);
    }

    #[test]
    fn conflict_relation() {
        let w = OpKind::Write { key: Key(1), value: Value(5) };
        let r_same = OpKind::Read { key: Key(1) };
        let r_other = OpKind::Read { key: Key(2) };
        let w_other = OpKind::Write { key: Key(2), value: Value(5) };
        assert!(w.conflicts_with(&r_same));
        assert!(r_same.conflicts_with(&w));
        assert!(!w.conflicts_with(&r_other));
        assert!(!w.conflicts_with(&w_other));
        assert!(!r_same.conflicts_with(&r_same), "two reads never conflict");
        let rw1 = rw(&[1], &[(2, 1)]);
        let rw2 = rw(&[2], &[(3, 1)]);
        assert!(rw1.conflicts_with(&rw2), "rw1 writes a key rw2 reads");
    }

    #[test]
    fn result_lookup() {
        let kind = OpKind::RoTxn { keys: vec![Key(1), Key(2)] };
        let res = OpResult::Values(vec![(Key(1), Value(7)), (Key(2), Value::NULL)]);
        assert_eq!(res.value_for(Key(1), &kind), Some(Value(7)));
        assert_eq!(res.value_for(Key(2), &kind), Some(Value::NULL));
        assert_eq!(res.value_for(Key(3), &kind), None);
        assert_eq!(res.observed(&kind).len(), 2);

        let kind = OpKind::Read { key: Key(9) };
        let res = OpResult::Value(Value(3));
        assert_eq!(res.value_for(Key(9), &kind), Some(Value(3)));
        assert_eq!(res.value_for(Key(8), &kind), None);
        assert_eq!(OpResult::Ack.value_for(Key(9), &kind), None);
        assert!(OpResult::Ack.observed(&kind).is_empty());
    }
}
