//! Sequential specifications and sequence replay.
//!
//! A service's *specification* (Section 3.2) is the set of correct sequential
//! behaviours. For the services used throughout the paper and this repository
//! it is:
//!
//! * **Key-value store** (transactional or not): a read returns the value of
//!   the most recent preceding write to the same key, or null if none.
//!   Read-modify-writes return the prior value and install the new one.
//!   Read-write transactions read and then atomically write.
//! * **FIFO messaging service**: dequeues return enqueued values in order,
//!   or null when the queue is empty.
//!
//! A composite service is the interleaving of its constituents' specifications:
//! each operation targets exactly one service, so replaying a sequence simply
//! keeps separate state per [`ServiceId`].

use std::collections::{HashMap, VecDeque};

use crate::history::History;
use crate::op::{OpKind, OpResult};
use crate::types::{Key, OpId, ServiceId, Value};

/// A violation found while replaying a candidate sequence against the spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecViolation {
    /// The operation whose recorded result disagrees with the replay.
    pub op: OpId,
    /// What the sequential replay would have returned.
    pub expected: OpResult,
    /// What the history recorded.
    pub actual: OpResult,
}

/// In-memory sequential state of a composite service.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpecState {
    kv: HashMap<(ServiceId, Key), Value>,
    queues: HashMap<(ServiceId, Key), VecDeque<Value>>,
}

impl SpecState {
    /// Creates the empty (initial) state: every key absent, every queue empty.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the current value of a key (null if absent).
    pub fn get(&self, service: ServiceId, key: Key) -> Value {
        self.kv.get(&(service, key)).copied().unwrap_or(Value::NULL)
    }

    /// A deterministic fingerprint of the state, used by the search checker to
    /// prune repeated (scheduled-set, state) pairs. Equal states always hash
    /// equal; collisions between different states only cost extra pruning of
    /// work that would have failed anyway, because the fingerprint is always
    /// combined with the exact scheduled-set mask.
    pub fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut kv: Vec<(u32, u64, u64)> =
            self.kv.iter().map(|(&(s, k), &v)| (s.0, k.0, v.0)).collect();
        kv.sort_unstable();
        let mut queues: Vec<(u32, u64, Vec<u64>)> = self
            .queues
            .iter()
            .map(|(&(s, k), q)| (s.0, k.0, q.iter().map(|v| v.0).collect()))
            .collect();
        queues.sort_unstable();
        let mut hasher = DefaultHasher::new();
        kv.hash(&mut hasher);
        queues.hash(&mut hasher);
        hasher.finish()
    }

    /// Applies `kind` to the state, returning the result the operation would
    /// produce in a sequential execution.
    pub fn apply(&mut self, service: ServiceId, kind: &OpKind) -> OpResult {
        match kind {
            OpKind::Read { key } => OpResult::Value(self.get(service, *key)),
            OpKind::Write { key, value } => {
                self.kv.insert((service, *key), *value);
                OpResult::Ack
            }
            OpKind::Rmw { key, value } => {
                let prior = self.get(service, *key);
                self.kv.insert((service, *key), *value);
                OpResult::Value(prior)
            }
            OpKind::RoTxn { keys } => {
                OpResult::Values(keys.iter().map(|k| (*k, self.get(service, *k))).collect())
            }
            OpKind::RwTxn { read_keys, writes } => {
                let reads = read_keys.iter().map(|k| (*k, self.get(service, *k))).collect();
                for (k, v) in writes {
                    self.kv.insert((service, *k), *v);
                }
                OpResult::Values(reads)
            }
            OpKind::Enqueue { queue, value } => {
                self.queues.entry((service, *queue)).or_default().push_back(*value);
                OpResult::Ack
            }
            OpKind::Dequeue { queue } => {
                let v = self
                    .queues
                    .get_mut(&(service, *queue))
                    .and_then(|q| q.pop_front())
                    .unwrap_or(Value::NULL);
                OpResult::Value(v)
            }
            OpKind::Fence => OpResult::Ack,
        }
    }
}

/// Entry in the [`IndexedSpecState`] undo log.
#[derive(Debug, Clone, Copy)]
enum UndoEntry {
    /// A key-value slot changed; restore the old value.
    Kv { slot: u32, old: u64 },
    /// A value was pushed to the back of a queue; pop it.
    QueuePush { slot: u32 },
    /// A value was popped from the front of a queue; push it back.
    QueuePop { slot: u32, value: u64 },
}

/// Sequential service state over the dense key ids of a
/// [`crate::history::HistoryIndex`]: flat arrays instead of hash maps, an
/// incrementally maintained fingerprint, and an undo log so the exact search
/// can backtrack without cloning.
///
/// This is the hot-path twin of [`SpecState`]; the public replay API
/// ([`check_sequence`]) keeps the map-based implementation because it works
/// without an index.
#[derive(Debug, Clone)]
pub struct IndexedSpecState {
    kv: Vec<u64>,
    queues: Vec<std::collections::VecDeque<u64>>,
    /// Monotonic count of pops per queue, giving every queue element a stable
    /// absolute position for the fingerprint.
    queue_heads: Vec<u64>,
    fingerprint: u64,
    undo_log: Vec<UndoEntry>,
}

impl IndexedSpecState {
    /// The empty initial state for a history with `num_keys` dense keys.
    pub fn new(num_keys: usize) -> Self {
        IndexedSpecState {
            kv: vec![Value::NULL.0; num_keys],
            queues: vec![std::collections::VecDeque::new(); num_keys],
            queue_heads: vec![0; num_keys],
            fingerprint: 0,
            undo_log: Vec::new(),
        }
    }

    /// The current fingerprint. Maintained incrementally: O(1) to read.
    ///
    /// Equal states always have equal fingerprints for the key-value part;
    /// queue fingerprints additionally mix in absolute element positions,
    /// which are a function of how many dequeues have been applied (for a
    /// fixed scheduled-set mask that count is fixed, so the memo key stays
    /// sound).
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// A checkpoint to [`IndexedSpecState::rollback`] to.
    #[inline]
    pub fn checkpoint(&self) -> usize {
        self.undo_log.len()
    }

    /// Rolls the state back to a previous checkpoint.
    pub fn rollback(&mut self, checkpoint: usize) {
        while self.undo_log.len() > checkpoint {
            match self.undo_log.pop().expect("log is non-empty") {
                UndoEntry::Kv { slot, old } => self.set_kv(slot, old),
                UndoEntry::QueuePush { slot } => {
                    let s = slot as usize;
                    let v = self.queues[s].pop_back().expect("undo of recorded push");
                    let pos = self.queue_heads[s] + self.queues[s].len() as u64;
                    self.fingerprint ^= queue_term(slot, pos, v);
                }
                UndoEntry::QueuePop { slot, value } => {
                    let s = slot as usize;
                    self.queues[s].push_front(value);
                    self.queue_heads[s] -= 1;
                    self.fingerprint ^= queue_term(slot, self.queue_heads[s], value);
                }
            }
        }
    }

    /// Current value of a key slot.
    #[inline]
    pub fn get(&self, slot: u32) -> u64 {
        self.kv[slot as usize]
    }

    #[inline]
    fn set_kv(&mut self, slot: u32, value: u64) {
        let old = std::mem::replace(&mut self.kv[slot as usize], value);
        if old != value {
            self.fingerprint ^= kv_term(slot, old) ^ kv_term(slot, value);
        }
    }

    /// Writes `value` to a key slot, recording the undo entry.
    #[inline]
    pub fn write(&mut self, slot: u32, value: u64) {
        let old = self.kv[slot as usize];
        self.undo_log.push(UndoEntry::Kv { slot, old });
        self.set_kv(slot, value);
    }

    /// Enqueues `value` on a queue slot, recording the undo entry.
    pub fn enqueue(&mut self, slot: u32, value: u64) {
        let s = slot as usize;
        let pos = self.queue_heads[s] + self.queues[s].len() as u64;
        self.queues[s].push_back(value);
        self.fingerprint ^= queue_term(slot, pos, value);
        self.undo_log.push(UndoEntry::QueuePush { slot });
    }

    /// Dequeues from a queue slot (null if empty), recording the undo entry.
    pub fn dequeue(&mut self, slot: u32) -> u64 {
        let s = slot as usize;
        match self.queues[s].pop_front() {
            Some(v) => {
                self.fingerprint ^= queue_term(slot, self.queue_heads[s], v);
                self.queue_heads[s] += 1;
                self.undo_log.push(UndoEntry::QueuePop { slot, value: v });
                v
            }
            None => Value::NULL.0,
        }
    }

    /// Applies operation `i` of `index` and checks its recorded result.
    ///
    /// Returns `true` if the operation is compatible with the current state
    /// (its effects are applied); returns `false` *with the state unchanged*
    /// if the recorded result contradicts the replay.
    pub fn apply_checked(&mut self, index: &crate::history::HistoryIndex, i: usize) -> bool {
        use crate::history::KindTag;

        if index.has_unsat_result(i) {
            return false;
        }
        let check = index.has_result(i);
        match index.kind_tag(i) {
            KindTag::Fence => true,
            KindTag::Read | KindTag::RoTxn => {
                if check {
                    let keys = index.read_key_ids(i);
                    let obs = index.read_observations(i);
                    for (k, o) in keys.iter().zip(obs) {
                        if self.get(*k) != *o {
                            return false;
                        }
                    }
                }
                true
            }
            KindTag::Write => {
                let keys = index.write_key_ids(i);
                let vals = index.write_values(i);
                self.write(keys[0], vals[0]);
                true
            }
            KindTag::Rmw => {
                if check {
                    let obs = index.read_observations(i);
                    if self.get(index.read_key_ids(i)[0]) != obs[0] {
                        return false;
                    }
                }
                let keys = index.write_key_ids(i);
                let vals = index.write_values(i);
                self.write(keys[0], vals[0]);
                true
            }
            KindTag::RwTxn => {
                if check {
                    let keys = index.read_key_ids(i);
                    let obs = index.read_observations(i);
                    for (k, o) in keys.iter().zip(obs) {
                        if self.get(*k) != *o {
                            return false;
                        }
                    }
                }
                let keys = index.write_key_ids(i);
                let vals = index.write_values(i);
                for (k, v) in keys.iter().zip(vals) {
                    self.write(*k, *v);
                }
                true
            }
            KindTag::Enqueue => {
                let keys = index.write_key_ids(i);
                let vals = index.write_values(i);
                self.enqueue(keys[0], vals[0]);
                true
            }
            KindTag::Dequeue => {
                let cp = self.checkpoint();
                let popped = self.dequeue(index.read_key_ids(i)[0]);
                if check && popped != index.read_observations(i)[0] {
                    self.rollback(cp);
                    return false;
                }
                true
            }
        }
    }
}

#[inline]
fn kv_term(slot: u32, value: u64) -> u64 {
    crate::hashing::mix_slot(slot as u64, value)
}

#[inline]
fn queue_term(slot: u32, pos: u64, value: u64) -> u64 {
    crate::hashing::mix_slot((slot as u64) | (pos << 32), value.rotate_left(17))
}

/// Replays `order` (a candidate legal sequence `S ∈ 𝔖`) against the
/// specification and checks every *complete* operation's recorded result.
///
/// Incomplete operations included in the order take effect but have no result
/// to check (they model the "extend with zero or more responses" clause of the
/// consistency definitions).
pub fn check_sequence(history: &History, order: &[OpId]) -> Result<(), SpecViolation> {
    let mut state = SpecState::new();
    for &id in order {
        let op = history.op(id);
        let produced = state.apply(op.service, &op.kind);
        if let Some(recorded) = &op.result {
            if !results_compatible(&op.kind, &produced, recorded) {
                return Err(SpecViolation { op: id, expected: produced, actual: recorded.clone() });
            }
        }
    }
    Ok(())
}

/// Result comparison: results must be identical, except that acknowledgement
/// payloads are ignored for mutating operations that return no data.
pub(crate) fn results_compatible(kind: &OpKind, expected: &OpResult, actual: &OpResult) -> bool {
    match kind {
        OpKind::Write { .. } | OpKind::Enqueue { .. } | OpKind::Fence => true,
        _ => expected == actual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;
    use crate::types::{ProcessId, Timestamp};

    #[test]
    fn kv_spec_basics() {
        let mut s = SpecState::new();
        let svc = ServiceId::KV;
        assert_eq!(s.apply(svc, &OpKind::Read { key: Key(1) }), OpResult::Value(Value::NULL));
        assert_eq!(s.apply(svc, &OpKind::Write { key: Key(1), value: Value(5) }), OpResult::Ack);
        assert_eq!(s.apply(svc, &OpKind::Read { key: Key(1) }), OpResult::Value(Value(5)));
        assert_eq!(
            s.apply(svc, &OpKind::Rmw { key: Key(1), value: Value(9) }),
            OpResult::Value(Value(5))
        );
        assert_eq!(s.get(svc, Key(1)), Value(9));
    }

    #[test]
    fn txn_spec_reads_then_writes() {
        let mut s = SpecState::new();
        let svc = ServiceId::KV;
        s.apply(svc, &OpKind::Write { key: Key(1), value: Value(1) });
        let r = s.apply(
            svc,
            &OpKind::RwTxn { read_keys: vec![Key(1), Key(2)], writes: vec![(Key(2), Value(7))] },
        );
        assert_eq!(r, OpResult::Values(vec![(Key(1), Value(1)), (Key(2), Value::NULL)]));
        let r = s.apply(svc, &OpKind::RoTxn { keys: vec![Key(2)] });
        assert_eq!(r, OpResult::Values(vec![(Key(2), Value(7))]));
    }

    #[test]
    fn queue_spec_fifo() {
        let mut s = SpecState::new();
        let svc = ServiceId::QUEUE;
        assert_eq!(s.apply(svc, &OpKind::Dequeue { queue: Key(0) }), OpResult::Value(Value::NULL));
        s.apply(svc, &OpKind::Enqueue { queue: Key(0), value: Value(1) });
        s.apply(svc, &OpKind::Enqueue { queue: Key(0), value: Value(2) });
        assert_eq!(s.apply(svc, &OpKind::Dequeue { queue: Key(0) }), OpResult::Value(Value(1)));
        assert_eq!(s.apply(svc, &OpKind::Dequeue { queue: Key(0) }), OpResult::Value(Value(2)));
        assert_eq!(s.apply(svc, &OpKind::Dequeue { queue: Key(0) }), OpResult::Value(Value::NULL));
    }

    #[test]
    fn services_are_independent() {
        let mut s = SpecState::new();
        s.apply(ServiceId(0), &OpKind::Write { key: Key(1), value: Value(5) });
        assert_eq!(s.get(ServiceId(1), Key(1)), Value::NULL);
        assert_eq!(s.get(ServiceId(0), Key(1)), Value(5));
    }

    #[test]
    fn check_sequence_accepts_valid_order() {
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 42, 0, 5);
        let r = b.read(2, 1, 42, 6, 9);
        let h = b.build();
        assert!(check_sequence(&h, &[w, r]).is_ok());
    }

    #[test]
    fn check_sequence_rejects_invalid_order() {
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 42, 0, 5);
        let r = b.read(2, 1, 42, 6, 9);
        let h = b.build();
        // Reading 42 before it is written contradicts the spec.
        let err = check_sequence(&h, &[r, w]).unwrap_err();
        assert_eq!(err.op, r);
        assert_eq!(err.expected, OpResult::Value(Value::NULL));
    }

    #[test]
    fn check_sequence_ignores_incomplete_results() {
        let mut b = HistoryBuilder::new();
        let pw = b.pending_write(1, 1, 7, 0);
        let r = b.read(2, 1, 7, 10, 12);
        let h = b.build();
        // Including the pending write makes the read legal.
        assert!(check_sequence(&h, &[pw, r]).is_ok());
        // Excluding it does not.
        assert!(check_sequence(&h, &[r]).is_err());
    }

    #[test]
    fn fence_is_a_no_op_in_the_spec() {
        let mut h = History::new();
        let f = h.add_complete(
            ProcessId(1),
            ServiceId::KV,
            OpKind::Fence,
            Timestamp(0),
            Timestamp(1),
            OpResult::Ack,
        );
        assert!(check_sequence(&h, &[f]).is_ok());
    }
}
