//! Sequential specifications and sequence replay.
//!
//! A service's *specification* (Section 3.2) is the set of correct sequential
//! behaviours. For the services used throughout the paper and this repository
//! it is:
//!
//! * **Key-value store** (transactional or not): a read returns the value of
//!   the most recent preceding write to the same key, or null if none.
//!   Read-modify-writes return the prior value and install the new one.
//!   Read-write transactions read and then atomically write.
//! * **FIFO messaging service**: dequeues return enqueued values in order,
//!   or null when the queue is empty.
//!
//! A composite service is the interleaving of its constituents' specifications:
//! each operation targets exactly one service, so replaying a sequence simply
//! keeps separate state per [`ServiceId`].

use std::collections::{HashMap, VecDeque};

use crate::history::History;
use crate::op::{OpKind, OpResult};
use crate::types::{Key, OpId, ServiceId, Value};

/// A violation found while replaying a candidate sequence against the spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecViolation {
    /// The operation whose recorded result disagrees with the replay.
    pub op: OpId,
    /// What the sequential replay would have returned.
    pub expected: OpResult,
    /// What the history recorded.
    pub actual: OpResult,
}

/// In-memory sequential state of a composite service.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpecState {
    kv: HashMap<(ServiceId, Key), Value>,
    queues: HashMap<(ServiceId, Key), VecDeque<Value>>,
}

impl SpecState {
    /// Creates the empty (initial) state: every key absent, every queue empty.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the current value of a key (null if absent).
    pub fn get(&self, service: ServiceId, key: Key) -> Value {
        self.kv.get(&(service, key)).copied().unwrap_or(Value::NULL)
    }

    /// A deterministic fingerprint of the state, used by the search checker to
    /// prune repeated (scheduled-set, state) pairs. Equal states always hash
    /// equal; collisions between different states only cost extra pruning of
    /// work that would have failed anyway, because the fingerprint is always
    /// combined with the exact scheduled-set mask.
    pub fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut kv: Vec<(u32, u64, u64)> =
            self.kv.iter().map(|(&(s, k), &v)| (s.0, k.0, v.0)).collect();
        kv.sort_unstable();
        let mut queues: Vec<(u32, u64, Vec<u64>)> = self
            .queues
            .iter()
            .map(|(&(s, k), q)| (s.0, k.0, q.iter().map(|v| v.0).collect()))
            .collect();
        queues.sort_unstable();
        let mut hasher = DefaultHasher::new();
        kv.hash(&mut hasher);
        queues.hash(&mut hasher);
        hasher.finish()
    }

    /// Applies `kind` to the state, returning the result the operation would
    /// produce in a sequential execution.
    pub fn apply(&mut self, service: ServiceId, kind: &OpKind) -> OpResult {
        match kind {
            OpKind::Read { key } => OpResult::Value(self.get(service, *key)),
            OpKind::Write { key, value } => {
                self.kv.insert((service, *key), *value);
                OpResult::Ack
            }
            OpKind::Rmw { key, value } => {
                let prior = self.get(service, *key);
                self.kv.insert((service, *key), *value);
                OpResult::Value(prior)
            }
            OpKind::RoTxn { keys } => {
                OpResult::Values(keys.iter().map(|k| (*k, self.get(service, *k))).collect())
            }
            OpKind::RwTxn { read_keys, writes } => {
                let reads = read_keys.iter().map(|k| (*k, self.get(service, *k))).collect();
                for (k, v) in writes {
                    self.kv.insert((service, *k), *v);
                }
                OpResult::Values(reads)
            }
            OpKind::Enqueue { queue, value } => {
                self.queues.entry((service, *queue)).or_default().push_back(*value);
                OpResult::Ack
            }
            OpKind::Dequeue { queue } => {
                let v = self
                    .queues
                    .get_mut(&(service, *queue))
                    .and_then(|q| q.pop_front())
                    .unwrap_or(Value::NULL);
                OpResult::Value(v)
            }
            OpKind::Fence => OpResult::Ack,
        }
    }
}

/// Replays `order` (a candidate legal sequence `S ∈ 𝔖`) against the
/// specification and checks every *complete* operation's recorded result.
///
/// Incomplete operations included in the order take effect but have no result
/// to check (they model the "extend with zero or more responses" clause of the
/// consistency definitions).
pub fn check_sequence(history: &History, order: &[OpId]) -> Result<(), SpecViolation> {
    let mut state = SpecState::new();
    for &id in order {
        let op = history.op(id);
        let produced = state.apply(op.service, &op.kind);
        if let Some(recorded) = &op.result {
            if !results_compatible(&op.kind, &produced, recorded) {
                return Err(SpecViolation { op: id, expected: produced, actual: recorded.clone() });
            }
        }
    }
    Ok(())
}

/// Result comparison: results must be identical, except that acknowledgement
/// payloads are ignored for mutating operations that return no data.
fn results_compatible(kind: &OpKind, expected: &OpResult, actual: &OpResult) -> bool {
    match kind {
        OpKind::Write { .. } | OpKind::Enqueue { .. } | OpKind::Fence => true,
        _ => expected == actual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;
    use crate::types::{ProcessId, Timestamp};

    #[test]
    fn kv_spec_basics() {
        let mut s = SpecState::new();
        let svc = ServiceId::KV;
        assert_eq!(s.apply(svc, &OpKind::Read { key: Key(1) }), OpResult::Value(Value::NULL));
        assert_eq!(s.apply(svc, &OpKind::Write { key: Key(1), value: Value(5) }), OpResult::Ack);
        assert_eq!(s.apply(svc, &OpKind::Read { key: Key(1) }), OpResult::Value(Value(5)));
        assert_eq!(
            s.apply(svc, &OpKind::Rmw { key: Key(1), value: Value(9) }),
            OpResult::Value(Value(5))
        );
        assert_eq!(s.get(svc, Key(1)), Value(9));
    }

    #[test]
    fn txn_spec_reads_then_writes() {
        let mut s = SpecState::new();
        let svc = ServiceId::KV;
        s.apply(svc, &OpKind::Write { key: Key(1), value: Value(1) });
        let r = s.apply(
            svc,
            &OpKind::RwTxn {
                read_keys: vec![Key(1), Key(2)],
                writes: vec![(Key(2), Value(7))],
            },
        );
        assert_eq!(r, OpResult::Values(vec![(Key(1), Value(1)), (Key(2), Value::NULL)]));
        let r = s.apply(svc, &OpKind::RoTxn { keys: vec![Key(2)] });
        assert_eq!(r, OpResult::Values(vec![(Key(2), Value(7))]));
    }

    #[test]
    fn queue_spec_fifo() {
        let mut s = SpecState::new();
        let svc = ServiceId::QUEUE;
        assert_eq!(s.apply(svc, &OpKind::Dequeue { queue: Key(0) }), OpResult::Value(Value::NULL));
        s.apply(svc, &OpKind::Enqueue { queue: Key(0), value: Value(1) });
        s.apply(svc, &OpKind::Enqueue { queue: Key(0), value: Value(2) });
        assert_eq!(s.apply(svc, &OpKind::Dequeue { queue: Key(0) }), OpResult::Value(Value(1)));
        assert_eq!(s.apply(svc, &OpKind::Dequeue { queue: Key(0) }), OpResult::Value(Value(2)));
        assert_eq!(s.apply(svc, &OpKind::Dequeue { queue: Key(0) }), OpResult::Value(Value::NULL));
    }

    #[test]
    fn services_are_independent() {
        let mut s = SpecState::new();
        s.apply(ServiceId(0), &OpKind::Write { key: Key(1), value: Value(5) });
        assert_eq!(s.get(ServiceId(1), Key(1)), Value::NULL);
        assert_eq!(s.get(ServiceId(0), Key(1)), Value(5));
    }

    #[test]
    fn check_sequence_accepts_valid_order() {
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 42, 0, 5);
        let r = b.read(2, 1, 42, 6, 9);
        let h = b.build();
        assert!(check_sequence(&h, &[w, r]).is_ok());
    }

    #[test]
    fn check_sequence_rejects_invalid_order() {
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 42, 0, 5);
        let r = b.read(2, 1, 42, 6, 9);
        let h = b.build();
        // Reading 42 before it is written contradicts the spec.
        let err = check_sequence(&h, &[r, w]).unwrap_err();
        assert_eq!(err.op, r);
        assert_eq!(err.expected, OpResult::Value(Value::NULL));
    }

    #[test]
    fn check_sequence_ignores_incomplete_results() {
        let mut b = HistoryBuilder::new();
        let pw = b.pending_write(1, 1, 7, 0);
        let r = b.read(2, 1, 7, 10, 12);
        let h = b.build();
        // Including the pending write makes the read legal.
        assert!(check_sequence(&h, &[pw, r]).is_ok());
        // Excluding it does not.
        assert!(check_sequence(&h, &[r]).is_err());
    }

    #[test]
    fn fence_is_a_no_op_in_the_spec() {
        let mut h = History::new();
        let f = h.add_complete(
            ProcessId(1),
            ServiceId::KV,
            OpKind::Fence,
            Timestamp(0),
            Timestamp(1),
            OpResult::Ack,
        );
        assert!(check_sequence(&h, &[f]).is_ok());
    }
}
