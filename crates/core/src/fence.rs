//! Real-time fences (Section 4.1).
//!
//! A set of RSS (RSC) services must together appear to execute transactions
//! (operations) in one global order. Because RSS relaxes real-time ordering
//! for causally unrelated operations, naively switching between services can
//! expose cycles across services. The paper's fix is a per-service *real-time
//! fence*: every transaction that causally precedes the fence is serialized
//! before every transaction that follows the fence in real time. If a client
//! issues a fence at its previous service before its first transaction at a
//! different service, the composition is RSS (Appendix C.4).
//!
//! This module defines the service-side abstraction ([`FencedService`]) that
//! the `regular-librss` crate builds its composition meta-library on, along
//! with bookkeeping shared by the Spanner-RSS and Gryff-RSC fence
//! implementations.

/// A service that can execute a real-time fence on behalf of a client.
///
/// The fence guarantee: every transaction (operation) that causally precedes
/// the fence at this service is serialized before any transaction that follows
/// the fence in real time, regardless of which client issues it.
pub trait FencedService {
    /// A unique, stable name identifying the service (used as the registry key
    /// by `libRSS`).
    fn service_name(&self) -> &str;

    /// Executes a real-time fence for the calling client and blocks (logically)
    /// until its guarantee holds.
    fn fence(&mut self);
}

/// Statistics about fence executions, useful for quantifying the composition
/// overhead in benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FenceStats {
    /// Number of fences actually executed.
    pub executed: u64,
    /// Number of transaction starts that did not require a fence (same service
    /// as the previous transaction).
    pub elided: u64,
}

impl FenceStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an executed fence.
    pub fn record_executed(&mut self) {
        self.executed += 1;
    }

    /// Records an elided (unnecessary) fence.
    pub fn record_elided(&mut self) {
        self.elided += 1;
    }

    /// Fraction of transaction starts that required a fence.
    pub fn fence_rate(&self) -> f64 {
        let total = self.executed + self.elided;
        if total == 0 {
            0.0
        } else {
            self.executed as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy {
        name: String,
        fences: u32,
    }

    impl FencedService for Dummy {
        fn service_name(&self) -> &str {
            &self.name
        }
        fn fence(&mut self) {
            self.fences += 1;
        }
    }

    #[test]
    fn fenced_service_trait_object() {
        let mut svc = Dummy { name: "kv".to_string(), fences: 0 };
        {
            let dyn_svc: &mut dyn FencedService = &mut svc;
            assert_eq!(dyn_svc.service_name(), "kv");
            dyn_svc.fence();
            dyn_svc.fence();
        }
        assert_eq!(svc.fences, 2);
    }

    #[test]
    fn fence_stats() {
        let mut s = FenceStats::new();
        assert_eq!(s.fence_rate(), 0.0);
        s.record_executed();
        s.record_elided();
        s.record_elided();
        s.record_elided();
        assert_eq!(s.executed, 1);
        assert_eq!(s.elided, 3);
        assert!((s.fence_rate() - 0.25).abs() < 1e-9);
    }
}
