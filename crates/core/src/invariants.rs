//! The photo-sharing application: invariants I1/I2 and anomalies A1–A3.
//!
//! Table 1 of the paper compares consistency models by which application
//! invariants they preserve and which anomalies they admit, using a
//! photo-sharing application as the running example:
//!
//! * **I1** — an album never references a photo whose data is null.
//! * **I2** — a worker that dequeues a photo id from the messaging service
//!   never reads null data for that photo.
//! * **A1** — Alice adds two photos; later only one is in her album.
//! * **A2** — Alice adds a photo and calls Bob; Bob does not see it.
//! * **A3** — Alice sees Charlie's photo and calls Bob; Bob does not see it.
//!
//! This module encodes the application's data model over the generic history
//! type (albums are bitmasks of photo indices, photos map to non-null blobs,
//! the messaging service is a FIFO queue), provides checkers for the
//! invariants and anomaly patterns, and provides canonical violating histories
//! used by the Table 1 harness to ask each consistency model "do you admit an
//! execution that breaks this?".

use serde::{Deserialize, Serialize};

use crate::history::History;
use crate::op::{OpKind, OpResult};
use crate::types::{Key, OpId, ProcessId, ServiceId, Timestamp, Value};

/// Key layout of the photo-sharing application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhotoAppKeys {
    /// The key-value service storing albums and photos.
    pub kv_service: ServiceId,
    /// The messaging service carrying thumbnail-processing requests.
    pub mq_service: ServiceId,
    /// Key of the album object (value: bitmask of photo indices).
    pub album: Key,
    /// Base key for photos: photo `i` lives at `Key(photo_base.0 + i)`.
    pub photo_base: Key,
    /// Key (queue name) of the thumbnail-request queue on the messaging service.
    pub queue: Key,
}

impl Default for PhotoAppKeys {
    fn default() -> Self {
        PhotoAppKeys {
            kv_service: ServiceId::KV,
            mq_service: ServiceId::QUEUE,
            album: Key(1),
            photo_base: Key(100),
            queue: Key(1),
        }
    }
}

impl PhotoAppKeys {
    /// The key storing photo `i`'s data.
    pub fn photo(&self, i: u64) -> Key {
        Key(self.photo_base.0 + i)
    }

    /// The album value referencing exactly the given photo indices.
    pub fn album_value(&self, photos: &[u64]) -> Value {
        Value(photos.iter().fold(0u64, |acc, &i| acc | (1 << i)))
    }

    /// The photo indices referenced by an album value.
    pub fn photos_in_album(&self, album: Value) -> Vec<u64> {
        (0..64).filter(|i| album.0 & (1 << i) != 0).collect()
    }

    /// The (non-null) data blob stored for photo `i`.
    pub fn photo_data(&self, i: u64) -> Value {
        Value(1_000 + i)
    }

    /// The queue message requesting processing of photo `i`.
    pub fn queue_message(&self, i: u64) -> Value {
        Value(10_000 + i)
    }

    /// The photo index encoded in a queue message, if any.
    pub fn photo_of_message(&self, v: Value) -> Option<u64> {
        if v.0 >= 10_000 {
            Some(v.0 - 10_000)
        } else {
            None
        }
    }
}

/// A detected invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Which invariant was broken ("I1" or "I2").
    pub invariant: &'static str,
    /// The operation that observed the inconsistent state.
    pub observer: OpId,
    /// The photo index whose data was missing.
    pub photo: u64,
}

/// Checks invariant I1 over a history: whenever an operation's result shows an
/// album referencing photo `i` *and* the same operation (or a causally later
/// read by the same process) reads photo `i`, the photo's data must be
/// non-null.
pub fn check_i1(history: &History, keys: &PhotoAppKeys) -> Result<(), InvariantViolation> {
    for op in history.ops() {
        if op.service != keys.kv_service {
            continue;
        }
        let Some(album_value) = op.observed_value(keys.album) else { continue };
        for i in keys.photos_in_album(album_value) {
            // Same operation (transactional read of album + photo).
            if let Some(photo_value) = op.observed_value(keys.photo(i)) {
                if photo_value.is_null() {
                    return Err(InvariantViolation { invariant: "I1", observer: op.id, photo: i });
                }
            }
            // Later reads of the photo by the same process.
            for later_id in history.ops_of_process(op.process) {
                let later = history.op(later_id);
                if later.invoke < op.invoke || later.id == op.id || later.service != keys.kv_service
                {
                    continue;
                }
                if let Some(photo_value) = later.observed_value(keys.photo(i)) {
                    if photo_value.is_null() {
                        return Err(InvariantViolation {
                            invariant: "I1",
                            observer: later.id,
                            photo: i,
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// Checks invariant I2 over a history: whenever a worker dequeues the request
/// for photo `i`, every later read of photo `i` by that worker returns
/// non-null data.
pub fn check_i2(history: &History, keys: &PhotoAppKeys) -> Result<(), InvariantViolation> {
    for op in history.ops() {
        if op.service != keys.mq_service
            || !matches!(op.kind, OpKind::Dequeue { queue } if queue == keys.queue)
        {
            continue;
        }
        let Some(OpResult::Value(v)) = op.result.clone() else { continue };
        let Some(photo) = keys.photo_of_message(v) else { continue };
        for later_id in history.ops_of_process(op.process) {
            let later = history.op(later_id);
            if later.invoke < op.invoke || later.id == op.id || later.service != keys.kv_service {
                continue;
            }
            if let Some(photo_value) = later.observed_value(keys.photo(photo)) {
                if photo_value.is_null() {
                    return Err(InvariantViolation { invariant: "I2", observer: later.id, photo });
                }
            }
        }
    }
    Ok(())
}

/// A detected anomaly (user-visible misbehaviour that is not an invariant
/// violation because detecting it needs information outside the application's
/// state, such as wall-clock ordering or out-of-band communication).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Anomaly {
    /// Which anomaly pattern matched ("A1", "A2", or "A3").
    pub anomaly: &'static str,
    /// The operation that exposed the anomaly to a user.
    pub observer: OpId,
}

/// Detects anomaly A1: two add-photo transactions completed, yet an album read
/// that starts after both finish is missing one of the photos.
pub fn detect_a1(history: &History, keys: &PhotoAppKeys) -> Option<Anomaly> {
    let adds: Vec<&crate::history::OpRecord> = history
        .ops()
        .iter()
        .filter(|o| {
            o.is_complete()
                && o.service == keys.kv_service
                && o.kind.written_keys().contains(&keys.album)
        })
        .collect();
    for read in history.ops() {
        if read.service != keys.kv_service || read.kind.is_mutating() {
            continue;
        }
        let Some(album) = read.observed_value(keys.album) else { continue };
        let in_album = keys.photos_in_album(album);
        for add in &adds {
            let Some(resp) = add.response else { continue };
            if resp >= read.invoke {
                continue;
            }
            // Which photos did this add put in the album?
            let added: Vec<u64> = add
                .kind
                .written_values()
                .iter()
                .filter(|(k, _)| *k == keys.album)
                .flat_map(|(_, v)| keys.photos_in_album(*v))
                .collect();
            if added.iter().any(|p| !in_album.contains(p)) {
                return Some(Anomaly { anomaly: "A1", observer: read.id });
            }
        }
    }
    None
}

/// Detects anomaly A2/A3: a process (Alice) that wrote or observed a photo in
/// the album communicates with another process (Bob) — through the application
/// or entirely out of band — and Bob's subsequent album read misses that photo.
pub fn detect_a2_a3(history: &History, keys: &PhotoAppKeys) -> Option<Anomaly> {
    let all_messages: Vec<_> =
        history.messages().iter().chain(history.external_communications().iter()).collect();
    for m in all_messages {
        // Photos Alice knew about before sending: photos she added or observed.
        let mut known: Vec<u64> = Vec::new();
        let mut wrote_any = false;
        for id in history.ops_of_process(m.from) {
            let op = history.op(id);
            let Some(resp) = op.response else { continue };
            if resp > m.sent_at || op.service != keys.kv_service {
                continue;
            }
            for (k, v) in op.kind.written_values() {
                if k == keys.album {
                    wrote_any = true;
                    known.extend(keys.photos_in_album(v));
                }
            }
            if let Some(album) = op.observed_value(keys.album) {
                known.extend(keys.photos_in_album(album));
            }
        }
        known.sort_unstable();
        known.dedup();
        if known.is_empty() {
            continue;
        }
        for id in history.ops_of_process(m.to) {
            let op = history.op(id);
            if op.invoke < m.received_at || op.service != keys.kv_service {
                continue;
            }
            if let Some(album) = op.observed_value(keys.album) {
                let seen = keys.photos_in_album(album);
                if known.iter().any(|p| !seen.contains(p)) {
                    let anomaly = if wrote_any { "A2" } else { "A3" };
                    return Some(Anomaly { anomaly, observer: op.id });
                }
            }
        }
    }
    None
}

/// Canonical histories used by the Table 1 harness: each exhibits a violation
/// of the named invariant or an instance of the named anomaly, so asking a
/// consistency model whether it *admits* the history answers whether the
/// invariant can break (the anomaly can occur) under that model.
pub mod scenarios {
    use super::*;

    /// Helper: a complete add-photo read-write transaction by `process`,
    /// creating photo `i` and adding it to the album whose prior content is
    /// `prior_photos`.
    #[allow(clippy::too_many_arguments)]
    fn add_photo(
        h: &mut History,
        keys: &PhotoAppKeys,
        process: u32,
        photo: u64,
        prior_photos: &[u64],
        invoke: u64,
        response: u64,
    ) -> OpId {
        let mut all: Vec<u64> = prior_photos.to_vec();
        all.push(photo);
        h.add_complete(
            ProcessId(process),
            keys.kv_service,
            OpKind::RwTxn {
                read_keys: vec![keys.album],
                writes: vec![
                    (keys.photo(photo), keys.photo_data(photo)),
                    (keys.album, keys.album_value(&all)),
                ],
            },
            Timestamp(invoke),
            Timestamp(response),
            OpResult::Values(vec![(keys.album, keys.album_value(prior_photos))]),
        )
    }

    /// I1 violation: a reader sees the album referencing photo 1 but reads
    /// null for the photo's data, in the same read-only transaction.
    pub fn i1_violation(keys: &PhotoAppKeys) -> History {
        let mut h = History::new();
        add_photo(&mut h, keys, 1, 1, &[], 0, 10);
        h.add_complete(
            ProcessId(2),
            keys.kv_service,
            OpKind::RoTxn { keys: vec![keys.album, keys.photo(1)] },
            Timestamp(20),
            Timestamp(30),
            OpResult::Values(vec![
                (keys.album, keys.album_value(&[1])),
                (keys.photo(1), Value::NULL),
            ]),
        );
        h
    }

    /// I2 violation: the web server adds the photo and then enqueues the
    /// processing request; the worker dequeues the request but reads null from
    /// the key-value store (the stores are distinct services, so only a
    /// composable model forbids this).
    pub fn i2_violation(keys: &PhotoAppKeys) -> History {
        let mut h = History::new();
        add_photo(&mut h, keys, 1, 1, &[], 0, 10);
        h.add_complete(
            ProcessId(1),
            keys.mq_service,
            OpKind::Enqueue { queue: keys.queue, value: keys.queue_message(1) },
            Timestamp(11),
            Timestamp(15),
            OpResult::Ack,
        );
        h.add_complete(
            ProcessId(2),
            keys.mq_service,
            OpKind::Dequeue { queue: keys.queue },
            Timestamp(20),
            Timestamp(25),
            OpResult::Value(keys.queue_message(1)),
        );
        h.add_complete(
            ProcessId(2),
            keys.kv_service,
            OpKind::RoTxn { keys: vec![keys.photo(1)] },
            Timestamp(26),
            Timestamp(30),
            OpResult::Values(vec![(keys.photo(1), Value::NULL)]),
        );
        h
    }

    /// A1: Alice (via two web servers, i.e. two processes) adds photos 1 and
    /// 2; the second add does not observe the first (a lost update), and a
    /// later read of the album sees only photo 2.
    pub fn a1_anomaly(keys: &PhotoAppKeys) -> History {
        let mut h = History::new();
        add_photo(&mut h, keys, 1, 1, &[], 0, 10);
        // The second web server's transaction reads a stale (empty) album.
        add_photo(&mut h, keys, 2, 2, &[], 20, 30);
        h.add_complete(
            ProcessId(3),
            keys.kv_service,
            OpKind::RoTxn { keys: vec![keys.album] },
            Timestamp(40),
            Timestamp(50),
            OpResult::Values(vec![(keys.album, keys.album_value(&[2]))]),
        );
        h
    }

    /// A2: Alice adds a photo and calls Bob (a phone call, outside the
    /// application); Bob's read of the album does not include it.
    pub fn a2_anomaly(keys: &PhotoAppKeys) -> History {
        let mut h = History::new();
        add_photo(&mut h, keys, 1, 1, &[], 0, 10);
        h.add_external_communication(ProcessId(1), Timestamp(15), ProcessId(2), Timestamp(20));
        h.add_complete(
            ProcessId(2),
            keys.kv_service,
            OpKind::RoTxn { keys: vec![keys.album] },
            Timestamp(25),
            Timestamp(35),
            OpResult::Values(vec![(keys.album, Value::NULL)]),
        );
        h
    }

    /// A3: Charlie is still adding a photo when Alice's read observes it;
    /// Alice calls Bob; Bob's read misses the photo.
    pub fn a3_anomaly(keys: &PhotoAppKeys) -> History {
        let mut h = History::new();
        // Charlie's add-photo transaction is still in flight (incomplete).
        h.add_incomplete(
            ProcessId(3),
            keys.kv_service,
            OpKind::RwTxn {
                read_keys: vec![keys.album],
                writes: vec![
                    (keys.photo(1), keys.photo_data(1)),
                    (keys.album, keys.album_value(&[1])),
                ],
            },
            Timestamp(0),
        );
        // Alice sees it.
        h.add_complete(
            ProcessId(1),
            keys.kv_service,
            OpKind::RoTxn { keys: vec![keys.album] },
            Timestamp(10),
            Timestamp(20),
            OpResult::Values(vec![(keys.album, keys.album_value(&[1]))]),
        );
        // Alice calls Bob (outside the application).
        h.add_external_communication(ProcessId(1), Timestamp(25), ProcessId(2), Timestamp(30));
        // Bob misses it.
        h.add_complete(
            ProcessId(2),
            keys.kv_service,
            OpKind::RoTxn { keys: vec![keys.album] },
            Timestamp(35),
            Timestamp(45),
            OpResult::Values(vec![(keys.album, Value::NULL)]),
        );
        h
    }

    /// A correct execution of the application: add a photo, enqueue the
    /// request, worker processes it; all invariants hold, no anomalies.
    pub fn correct_execution(keys: &PhotoAppKeys) -> History {
        let mut h = History::new();
        add_photo(&mut h, keys, 1, 1, &[], 0, 10);
        h.add_complete(
            ProcessId(1),
            keys.mq_service,
            OpKind::Enqueue { queue: keys.queue, value: keys.queue_message(1) },
            Timestamp(11),
            Timestamp(15),
            OpResult::Ack,
        );
        h.add_complete(
            ProcessId(2),
            keys.mq_service,
            OpKind::Dequeue { queue: keys.queue },
            Timestamp(20),
            Timestamp(25),
            OpResult::Value(keys.queue_message(1)),
        );
        h.add_complete(
            ProcessId(2),
            keys.kv_service,
            OpKind::RoTxn { keys: vec![keys.photo(1), keys.album] },
            Timestamp(26),
            Timestamp(30),
            OpResult::Values(vec![
                (keys.photo(1), keys.photo_data(1)),
                (keys.album, keys.album_value(&[1])),
            ]),
        );
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::models::{satisfies, satisfies_composed, Model};

    fn keys() -> PhotoAppKeys {
        PhotoAppKeys::default()
    }

    #[test]
    fn album_encoding_round_trips() {
        let k = keys();
        let album = k.album_value(&[1, 3, 5]);
        assert_eq!(k.photos_in_album(album), vec![1, 3, 5]);
        assert!(k.photos_in_album(Value::NULL).is_empty());
        assert_eq!(k.photo(3), Key(103));
        assert_eq!(k.photo_of_message(k.queue_message(7)), Some(7));
        assert_eq!(k.photo_of_message(Value(5)), None);
        assert!(!k.photo_data(1).is_null());
    }

    #[test]
    fn correct_execution_has_no_violations() {
        let k = keys();
        let h = scenarios::correct_execution(&k);
        assert!(check_i1(&h, &k).is_ok());
        assert!(check_i2(&h, &k).is_ok());
        assert!(detect_a1(&h, &k).is_none());
        assert!(detect_a2_a3(&h, &k).is_none());
    }

    #[test]
    fn i1_violation_detected_and_model_verdicts() {
        let k = keys();
        let h = scenarios::i1_violation(&k);
        let v = check_i1(&h, &k).unwrap_err();
        assert_eq!(v.invariant, "I1");
        assert_eq!(v.photo, 1);
        // Neither strict serializability, nor RSS, nor PO serializability
        // admits this history: the photo and album are written atomically.
        assert!(!satisfies(&h, Model::StrictSerializability));
        assert!(!satisfies(&h, Model::RegularSequentialSerializability));
        assert!(!satisfies(&h, Model::ProcessOrderedSerializability));
    }

    #[test]
    fn i2_violation_detected_and_model_verdicts() {
        let k = keys();
        let h = scenarios::i2_violation(&k);
        let v = check_i2(&h, &k).unwrap_err();
        assert_eq!(v.invariant, "I2");
        // Strict serializability and RSS forbid it (composable real-time /
        // causal guarantees across the key-value store and the messaging
        // service). A composition of independently PO-serializable services
        // admits it, because PO serializability is not composable.
        assert!(!satisfies(&h, Model::StrictSerializability));
        assert!(!satisfies(&h, Model::RegularSequentialSerializability));
        assert!(satisfies_composed(&h, Model::ProcessOrderedSerializability));
        // The composite (single-service-style) check would forbid it, which is
        // exactly the distinction between a composable and a non-composable
        // guarantee.
        assert!(!satisfies(&h, Model::ProcessOrderedSerializability));
    }

    #[test]
    fn a1_detected_and_model_verdicts() {
        let k = keys();
        let h = scenarios::a1_anomaly(&k);
        assert_eq!(detect_a1(&h, &k).unwrap().anomaly, "A1");
        // A read that misses a photo whose add-transaction completed is a lost
        // update visible to users; none of the three models admits it here
        // because the adds are sequential read-modify-write transactions.
        assert!(!satisfies(&h, Model::StrictSerializability));
        assert!(!satisfies(&h, Model::RegularSequentialSerializability));
        assert!(!satisfies(&h, Model::ProcessOrderedSerializability));
    }

    #[test]
    fn a2_detected_and_model_verdicts() {
        let k = keys();
        let h = scenarios::a2_anomaly(&k);
        assert_eq!(detect_a2_a3(&h, &k).unwrap().anomaly, "A2");
        // Strict serializability forbids it (real-time), RSS forbids it
        // (causality through the call), PO serializability admits it.
        assert!(!satisfies(&h, Model::StrictSerializability));
        assert!(!satisfies(&h, Model::RegularSequentialSerializability));
        assert!(satisfies(&h, Model::ProcessOrderedSerializability));
    }

    #[test]
    fn a3_detected_and_model_verdicts() {
        let k = keys();
        let h = scenarios::a3_anomaly(&k);
        assert_eq!(detect_a2_a3(&h, &k).unwrap().anomaly, "A3");
        // Charlie's add is still in flight. Once Alice's read observed it and
        // completed, strict serializability forces every later read to include
        // it — so A3 never happens. Under RSS the constraint is only causal,
        // and the phone call is invisible to the services, so Bob's stale read
        // is (temporarily) allowed. PO serializability allows it as well.
        assert!(!satisfies(&h, Model::StrictSerializability));
        assert!(satisfies(&h, Model::RegularSequentialSerializability));
        assert!(satisfies(&h, Model::ProcessOrderedSerializability));
    }

    #[test]
    fn i1_violation_across_ops_of_same_process() {
        let k = keys();
        let mut h = History::new();
        // Album references photo 1 but the photo write is missing entirely.
        h.add_complete(
            ProcessId(1),
            k.kv_service,
            OpKind::RoTxn { keys: vec![k.album] },
            Timestamp(0),
            Timestamp(5),
            OpResult::Values(vec![(k.album, k.album_value(&[1]))]),
        );
        h.add_complete(
            ProcessId(1),
            k.kv_service,
            OpKind::RoTxn { keys: vec![k.photo(1)] },
            Timestamp(6),
            Timestamp(10),
            OpResult::Values(vec![(k.photo(1), Value::NULL)]),
        );
        let v = check_i1(&h, &k).unwrap_err();
        assert_eq!(v.invariant, "I1");
        assert_eq!(v.observer, OpId(1));
    }
}
