//! Witness assembly: building a serialization order from protocol metadata.
//!
//! The certificate checkers ([`crate::checker::certificate`]) validate a given
//! total order. Protocols whose timestamps directly induce a global order
//! (Spanner's commit timestamps) can produce that order by sorting; protocols
//! whose ordering metadata is *per object* (Gryff's carstamps) instead provide
//! per-key chains, and the global witness must be assembled as a linear
//! extension of
//!
//! * the supplied explicit edges (per-key carstamp chains, process order,
//!   reads-from), and
//! * the model's real-time constraints (all pairs for linearizability/strict
//!   serializability; completed writes before later writes and conflicting
//!   reads for RSS/RSC),
//!
//! exactly the relation `<ψ` whose acyclicity the paper proves in
//! Appendix D.2. Real-time constraints are encoded sparsely with *barrier*
//! nodes (one per relevant response event) so the construction stays
//! `O(n log n)` in the number of operations.

use std::collections::{BinaryHeap, HashMap};

use crate::checker::certificate::WitnessModel;
use crate::history::History;
use crate::types::{Key, OpId, ServiceId, Timestamp};

/// Failure to assemble a witness: the combined constraints contain a cycle,
/// which means the history violates the model (or the supplied edges are
/// inconsistent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssembleError {
    /// Number of operations that could not be ordered.
    pub unordered: usize,
}

/// Node index space: operations first, then barrier nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeKind {
    Op(OpId),
    Barrier,
}

struct Graph {
    nodes: Vec<NodeKind>,
    /// Priority used to break ties deterministically (invocation time for
    /// operations, event time for barriers).
    priority: Vec<u64>,
    adjacency: Vec<Vec<usize>>,
    indegree: Vec<usize>,
}

impl Graph {
    fn new() -> Self {
        Graph {
            nodes: Vec::new(),
            priority: Vec::new(),
            adjacency: Vec::new(),
            indegree: Vec::new(),
        }
    }

    fn add_node(&mut self, kind: NodeKind, priority: u64) -> usize {
        self.nodes.push(kind);
        self.priority.push(priority);
        self.adjacency.push(Vec::new());
        self.indegree.push(0);
        self.nodes.len() - 1
    }

    fn add_edge(&mut self, from: usize, to: usize) {
        if from == to {
            return;
        }
        self.adjacency[from].push(to);
        self.indegree[to] += 1;
    }
}

/// Builds a barrier chain over the given `(time, node)` response events and
/// connects each target `(time, node)` to the latest barrier strictly before
/// its time. Returns nothing; edges are added to the graph.
fn add_interval_constraints(
    graph: &mut Graph,
    mut sources: Vec<(Timestamp, usize)>,
    mut targets: Vec<(Timestamp, usize)>,
) {
    if sources.is_empty() || targets.is_empty() {
        return;
    }
    sources.sort_unstable_by_key(|&(t, n)| (t, n));
    targets.sort_unstable_by_key(|&(t, n)| (t, n));
    // One barrier per source event.
    let mut barriers = Vec::with_capacity(sources.len());
    let mut prev: Option<usize> = None;
    for &(t, source) in &sources {
        let b = graph.add_node(NodeKind::Barrier, t.as_micros());
        graph.add_edge(source, b);
        if let Some(p) = prev {
            graph.add_edge(p, b);
        }
        prev = Some(b);
        barriers.push((t, b));
    }
    // Each target depends on the latest barrier with time strictly before its
    // invocation.
    let mut bi = 0usize;
    let mut latest: Option<usize> = None;
    for &(t, target) in &targets {
        while bi < barriers.len() && barriers[bi].0 < t {
            latest = Some(barriers[bi].1);
            bi += 1;
        }
        if let Some(b) = latest {
            graph.add_edge(b, target);
        }
    }
}

/// Assembles a serialization witness for `history` under `model`.
///
/// `extra_edges` supplies the protocol-derived precedence constraints (per-key
/// version orders, process order, reads-from). The assembled order contains
/// every complete operation plus any incomplete operation appearing in
/// `extra_edges` (their effects were observed). Returns an error when the
/// combined constraints are cyclic.
pub fn assemble_witness(
    history: &History,
    extra_edges: &[(OpId, OpId)],
    model: WitnessModel,
) -> Result<Vec<OpId>, AssembleError> {
    // Operations to include: complete ones plus incomplete ones referenced by
    // the explicit edges.
    let mut include: Vec<OpId> = history.complete_ids();
    for (a, b) in extra_edges {
        for id in [a, b] {
            if !history.op(*id).is_complete() && !include.contains(id) {
                include.push(*id);
            }
        }
    }
    include.sort_unstable();
    include.dedup();

    let mut graph = Graph::new();
    let mut node_of: HashMap<OpId, usize> = HashMap::new();
    for &id in &include {
        let op = history.op(id);
        let n = graph.add_node(NodeKind::Op(id), op.invoke.as_micros());
        node_of.insert(id, n);
    }
    for &(a, b) in extra_edges {
        if let (Some(&na), Some(&nb)) = (node_of.get(&a), node_of.get(&b)) {
            graph.add_edge(na, nb);
        }
    }

    match model {
        WitnessModel::ProcessOrder => {}
        WitnessModel::RealTime => {
            // Every completed operation's response constrains every later
            // invocation.
            let sources: Vec<(Timestamp, usize)> = include
                .iter()
                .filter_map(|id| {
                    let op = history.op(*id);
                    op.response.map(|r| (r, node_of[id]))
                })
                .collect();
            let targets: Vec<(Timestamp, usize)> =
                include.iter().map(|id| (history.op(*id).invoke, node_of[id])).collect();
            add_interval_constraints(&mut graph, sources, targets);
        }
        WitnessModel::Regular => {
            // Completed mutating operations constrain later mutating
            // operations (globally) ...
            let write_sources: Vec<(Timestamp, usize)> = include
                .iter()
                .filter_map(|id| {
                    let op = history.op(*id);
                    if op.kind.is_mutating() {
                        op.response.map(|r| (r, node_of[id]))
                    } else {
                        None
                    }
                })
                .collect();
            let write_targets: Vec<(Timestamp, usize)> = include
                .iter()
                .filter(|id| history.op(**id).kind.is_mutating())
                .map(|id| (history.op(*id).invoke, node_of[id]))
                .collect();
            add_interval_constraints(&mut graph, write_sources, write_targets);
            // ... and later conflicting read-only operations (per service/key).
            let mut writers: HashMap<(ServiceId, Key), Vec<(Timestamp, usize)>> = HashMap::new();
            let mut readers: HashMap<(ServiceId, Key), Vec<(Timestamp, usize)>> = HashMap::new();
            for &id in &include {
                let op = history.op(id);
                if op.kind.is_mutating() {
                    if let Some(r) = op.response {
                        for k in op.kind.written_keys() {
                            writers.entry((op.service, k)).or_default().push((r, node_of[&id]));
                        }
                    }
                } else if op.kind.is_read_only() {
                    for k in op.kind.read_keys() {
                        readers.entry((op.service, k)).or_default().push((op.invoke, node_of[&id]));
                    }
                }
            }
            for (key, sources) in writers {
                if let Some(targets) = readers.get(&key) {
                    add_interval_constraints(&mut graph, sources, targets.clone());
                }
            }
        }
    }

    // Kahn's algorithm with a deterministic priority (smallest priority first).
    let n = graph.nodes.len();
    let mut indegree = graph.indegree.clone();
    let mut heap: BinaryHeap<std::cmp::Reverse<(u64, usize)>> = BinaryHeap::new();
    for (i, &degree) in indegree.iter().enumerate() {
        if degree == 0 {
            heap.push(std::cmp::Reverse((graph.priority[i], i)));
        }
    }
    let mut order = Vec::with_capacity(include.len());
    let mut emitted = 0usize;
    while let Some(std::cmp::Reverse((_, i))) = heap.pop() {
        emitted += 1;
        if let NodeKind::Op(id) = graph.nodes[i] {
            order.push(id);
        }
        for &next in &graph.adjacency[i] {
            indegree[next] -= 1;
            if indegree[next] == 0 {
                heap.push(std::cmp::Reverse((graph.priority[next], next)));
            }
        }
    }
    if emitted != n {
        return Err(AssembleError { unordered: n - emitted });
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::certificate::check_witness;
    use crate::history::HistoryBuilder;

    #[test]
    fn assembles_linearizable_order_across_keys() {
        // Per-key metadata alone would allow inverting the cross-key real-time
        // order; the assembler must respect it.
        let mut b = HistoryBuilder::new();
        let w_x = b.write(1, 1, 10, 0, 5);
        let r_x = b.read(2, 1, 10, 6, 8);
        let w_y = b.write(3, 2, 20, 10, 15);
        let r_y = b.read(4, 2, 20, 16, 18);
        let h = b.build();
        let edges = vec![(w_x, r_x), (w_y, r_y)];
        let witness = assemble_witness(&h, &edges, WitnessModel::RealTime).unwrap();
        assert_eq!(witness.len(), 4);
        assert!(check_witness(&h, &witness, WitnessModel::RealTime).is_ok());
        let pos = |id| witness.iter().position(|x| *x == id).unwrap();
        assert!(pos(r_x) < pos(w_y), "real-time order across keys is preserved");
    }

    #[test]
    fn assembles_regular_order_allowing_read_reordering() {
        // Figure 2: the stale read must be ordered before the write even
        // though another read already returned the new value.
        let mut b = HistoryBuilder::new();
        let w = b.write(2, 1, 1, 0, 100);
        let r_new = b.read(3, 1, 1, 10, 20);
        let r_old = b.read(1, 1, 0, 30, 40);
        let h = b.build();
        // Per-key chain: the stale read precedes the write; the fresh read
        // follows it.
        let edges = vec![(r_old, w), (w, r_new)];
        let witness = assemble_witness(&h, &edges, WitnessModel::Regular).unwrap();
        assert!(check_witness(&h, &witness, WitnessModel::Regular).is_ok());
        // The same constraints under the real-time model are cyclic.
        assert!(assemble_witness(&h, &edges, WitnessModel::RealTime).is_err());
    }

    #[test]
    fn regular_model_orders_writes_by_real_time_across_keys() {
        let mut b = HistoryBuilder::new();
        let w1 = b.write(1, 1, 1, 0, 10);
        let w2 = b.write(2, 2, 2, 20, 30);
        let h = b.build();
        let witness = assemble_witness(&h, &[], WitnessModel::Regular).unwrap();
        let pos = |id| witness.iter().position(|x| *x == id).unwrap();
        assert!(pos(w1) < pos(w2));
        assert!(check_witness(&h, &witness, WitnessModel::Regular).is_ok());
    }

    #[test]
    fn includes_incomplete_ops_referenced_by_edges() {
        let mut b = HistoryBuilder::new();
        let pending = b.pending_write(1, 1, 9, 0);
        let r = b.read(2, 1, 9, 10, 20);
        let h = b.build();
        let witness = assemble_witness(&h, &[(pending, r)], WitnessModel::Regular).unwrap();
        assert_eq!(witness.len(), 2);
        assert!(check_witness(&h, &witness, WitnessModel::Regular).is_ok());
    }

    #[test]
    fn detects_cyclic_constraints() {
        let mut b = HistoryBuilder::new();
        let a = b.write(1, 1, 1, 0, 10);
        let c = b.write(2, 1, 2, 20, 30);
        let h = b.build();
        // Explicit edge contradicting real time.
        let err = assemble_witness(&h, &[(c, a)], WitnessModel::RealTime).unwrap_err();
        assert!(err.unordered >= 2);
    }

    #[test]
    fn process_order_model_uses_only_explicit_edges() {
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 1, 0, 10);
        let r = b.read(2, 1, 0, 20, 30); // stale read after the write
        let h = b.build();
        // With only per-key constraints (read before write, since the read
        // observed the initial value), assembly succeeds for process order.
        let witness = assemble_witness(&h, &[(r, w)], WitnessModel::ProcessOrder).unwrap();
        assert!(check_witness(&h, &witness, WitnessModel::ProcessOrder).is_ok());
    }
}
