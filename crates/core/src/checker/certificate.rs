//! Scalable witness (certificate) checkers.
//!
//! The protocol implementations in this repository do not merely claim to
//! satisfy their consistency model — they emit a *witness*: the total order of
//! transactions/operations induced by their commit timestamps (Spanner) or
//! carstamps (Gryff), exactly as in the paper's correctness proofs
//! (Appendix D). Validating a witness is tractable even for histories with
//! tens of thousands of operations:
//!
//! 1. every completed operation appears in the witness exactly once,
//! 2. replaying the witness against the sequential specification reproduces
//!    every recorded result,
//! 3. the witness respects the model's order constraints, checked edge-by-edge
//!    for causal/process-order constraints and with per-key sweeps for the
//!    real-time constraints.
//!
//! This is the machinery the cross-crate integration tests use to establish
//! that Spanner ⊨ strict serializability, Spanner-RSS ⊨ RSS, Gryff ⊨
//! linearizability, and Gryff-RSC ⊨ RSC on real simulated runs.

use std::collections::HashMap;

use crate::history::History;
use crate::order::{message_edges, process_order_edges, reads_from_edges};
use crate::spec::{check_sequence, SpecViolation};
use crate::types::{Key, OpId, ServiceId, Timestamp};

/// Which constraint family the witness must respect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WitnessModel {
    /// Real-time order between all pairs: strict serializability and
    /// linearizability.
    RealTime,
    /// Causal order plus the regular write constraint: RSS and RSC.
    Regular,
    /// Per-process order only: PO serializability and sequential consistency.
    ProcessOrder,
}

/// The kind of ordering constraint that a violation refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderKind {
    /// The witness reorders two operations of the same process.
    ProcessOrder,
    /// The witness contradicts a causal (reads-from or message-passing) edge.
    Causal,
    /// The witness contradicts the real-time order.
    RealTime,
    /// The witness contradicts the RSS/RSC write constraint.
    RegularWrite,
}

/// Why a witness was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum WitnessViolation {
    /// The witness references an operation id not in the history.
    UnknownOp(OpId),
    /// The witness lists an operation more than once.
    DuplicateOp(OpId),
    /// A completed operation is missing from the witness.
    MissingCompleteOp(OpId),
    /// Replaying the witness contradicts a recorded result.
    Spec(SpecViolation),
    /// The witness violates an ordering constraint: `first` must precede
    /// `second` but does not.
    OrderViolation {
        /// Which constraint family was violated.
        kind: OrderKind,
        /// The operation that must come first.
        first: OpId,
        /// The operation that must come second.
        second: OpId,
    },
}

/// Checks that `witness` certifies `history` under `model`.
///
/// The witness must contain every completed operation exactly once and may
/// additionally contain incomplete mutating operations whose effects became
/// visible.
pub fn check_witness(
    history: &History,
    witness: &[OpId],
    model: WitnessModel,
) -> Result<(), WitnessViolation> {
    let positions = validate_membership(history, witness)?;
    check_sequence(history, witness).map_err(WitnessViolation::Spec)?;

    // Process order holds for every model (it is subsumed by real time for
    // complete ops, but checking it directly also covers included incomplete
    // operations).
    for (a, b) in process_order_edges(history) {
        check_edge(&positions, a, b, OrderKind::ProcessOrder)?;
    }

    match model {
        WitnessModel::ProcessOrder => {}
        WitnessModel::Regular => {
            for (a, b) in reads_from_edges(history) {
                check_edge(&positions, a, b, OrderKind::Causal)?;
            }
            for (a, b) in message_edges(history) {
                check_edge(&positions, a, b, OrderKind::Causal)?;
            }
            check_regular_write_constraint(history, &positions)?;
        }
        WitnessModel::RealTime => {
            check_real_time_all(history, &positions)?;
        }
    }
    Ok(())
}

fn validate_membership(
    history: &History,
    witness: &[OpId],
) -> Result<HashMap<OpId, usize>, WitnessViolation> {
    let mut positions: HashMap<OpId, usize> = HashMap::with_capacity(witness.len());
    for (pos, &id) in witness.iter().enumerate() {
        if id.index() >= history.len() {
            return Err(WitnessViolation::UnknownOp(id));
        }
        if positions.insert(id, pos).is_some() {
            return Err(WitnessViolation::DuplicateOp(id));
        }
    }
    for op in history.ops() {
        if op.is_complete() && !positions.contains_key(&op.id) {
            return Err(WitnessViolation::MissingCompleteOp(op.id));
        }
    }
    Ok(positions)
}

fn check_edge(
    positions: &HashMap<OpId, usize>,
    a: OpId,
    b: OpId,
    kind: OrderKind,
) -> Result<(), WitnessViolation> {
    match (positions.get(&a), positions.get(&b)) {
        (Some(pa), Some(pb)) if pa >= pb => {
            Err(WitnessViolation::OrderViolation { kind, first: a, second: b })
        }
        _ => Ok(()),
    }
}

/// Checks `resp(a) < inv(b) ⇒ pos(a) < pos(b)` for all pairs, in
/// `O(n log n)` via a sweep: walk operations by invocation time while keeping
/// the maximum witness position among operations that have already responded.
fn check_real_time_all(
    history: &History,
    positions: &HashMap<OpId, usize>,
) -> Result<(), WitnessViolation> {
    let sources: Vec<(Timestamp, usize, OpId)> = history
        .ops()
        .iter()
        .filter_map(|o| {
            let resp = o.response?;
            let pos = positions.get(&o.id)?;
            Some((resp, *pos, o.id))
        })
        .collect();
    let targets: Vec<(Timestamp, usize, OpId)> = history
        .ops()
        .iter()
        .filter_map(|o| positions.get(&o.id).map(|pos| (o.invoke, *pos, o.id)))
        .collect();
    sweep(sources, targets, OrderKind::RealTime)
}

/// Checks clause (3) of the RSS/RSC definitions:
/// * completed mutating operations precede (in the witness) every mutating
///   operation that follows them in real time, and
/// * completed mutating operations precede every conflicting read-only
///   operation that follows them in real time.
fn check_regular_write_constraint(
    history: &History,
    positions: &HashMap<OpId, usize>,
) -> Result<(), WitnessViolation> {
    // Global write-write constraint.
    let write_sources: Vec<(Timestamp, usize, OpId)> = history
        .ops()
        .iter()
        .filter(|o| o.kind.is_mutating())
        .filter_map(|o| {
            let resp = o.response?;
            let pos = positions.get(&o.id)?;
            Some((resp, *pos, o.id))
        })
        .collect();
    let write_targets: Vec<(Timestamp, usize, OpId)> = history
        .ops()
        .iter()
        .filter(|o| o.kind.is_mutating())
        .filter_map(|o| positions.get(&o.id).map(|pos| (o.invoke, *pos, o.id)))
        .collect();
    sweep(write_sources, write_targets, OrderKind::RegularWrite)?;

    // Per-(service, key) write-read constraint.
    let mut writers: HashMap<(ServiceId, Key), Vec<(Timestamp, usize, OpId)>> = HashMap::new();
    let mut readers: HashMap<(ServiceId, Key), Vec<(Timestamp, usize, OpId)>> = HashMap::new();
    for o in history.ops() {
        let Some(&pos) = positions.get(&o.id) else { continue };
        if o.kind.is_mutating() {
            if let Some(resp) = o.response {
                for k in o.kind.written_keys() {
                    writers.entry((o.service, k)).or_default().push((resp, pos, o.id));
                }
            }
        } else if o.kind.is_read_only() {
            for k in o.kind.read_keys() {
                readers.entry((o.service, k)).or_default().push((o.invoke, pos, o.id));
            }
        }
    }
    for (key, sources) in writers {
        if let Some(targets) = readers.get(&key) {
            sweep(sources, targets.clone(), OrderKind::RegularWrite)?;
        }
    }
    Ok(())
}

/// Core sweep: for every source `a` and target `b` with
/// `a.time < b.time` (strictly), require `pos(a) < pos(b)`.
fn sweep(
    mut sources: Vec<(Timestamp, usize, OpId)>,
    mut targets: Vec<(Timestamp, usize, OpId)>,
    kind: OrderKind,
) -> Result<(), WitnessViolation> {
    sources.sort_unstable_by_key(|&(t, pos, id)| (t, pos, id));
    targets.sort_unstable_by_key(|&(t, pos, id)| (t, pos, id));
    let mut max_pos: Option<(usize, OpId)> = None;
    let mut si = 0;
    for &(t_inv, pos_b, id_b) in &targets {
        while si < sources.len() && sources[si].0 < t_inv {
            let (_, pos_a, id_a) = sources[si];
            if max_pos.map(|(p, _)| pos_a > p).unwrap_or(true) {
                max_pos = Some((pos_a, id_a));
            }
            si += 1;
        }
        if let Some((p, id_a)) = max_pos {
            if p > pos_b && id_a != id_b {
                return Err(WitnessViolation::OrderViolation { kind, first: id_a, second: id_b });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;

    #[test]
    fn accepts_valid_real_time_witness() {
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 5, 0, 10);
        let r = b.read(2, 1, 5, 20, 30);
        let h = b.build();
        assert_eq!(check_witness(&h, &[w, r], WitnessModel::RealTime), Ok(()));
        assert_eq!(check_witness(&h, &[w, r], WitnessModel::Regular), Ok(()));
    }

    #[test]
    fn rejects_real_time_inversion() {
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 5, 0, 10);
        let r = b.read(2, 1, 0, 20, 30); // stale read, after the write completed
        let h = b.build();
        // Ordering the read first satisfies the spec but violates real time.
        let err = check_witness(&h, &[r, w], WitnessModel::RealTime).unwrap_err();
        assert!(matches!(
            err,
            WitnessViolation::OrderViolation { kind: OrderKind::RealTime, .. }
        ));
        // The regular model also rejects it (write-read conflict on key 1).
        let err = check_witness(&h, &[r, w], WitnessModel::Regular).unwrap_err();
        assert!(matches!(
            err,
            WitnessViolation::OrderViolation { kind: OrderKind::RegularWrite, .. }
        ));
        // Process order alone accepts it.
        assert_eq!(check_witness(&h, &[r, w], WitnessModel::ProcessOrder), Ok(()));
    }

    #[test]
    fn regular_allows_concurrent_read_reordering() {
        // Figure 2: both reads are concurrent with the write; one saw it, one
        // did not, and the one that did finished first. RSS/RSC accept the
        // order (r_old, w, r_new); strict serializability rejects it because
        // r_new completed before r_old started.
        let mut b = HistoryBuilder::new();
        let w = b.write(2, 1, 1, 0, 100);
        let r_new = b.read(3, 1, 1, 10, 20);
        let r_old = b.read(1, 1, 0, 30, 40);
        let h = b.build();
        let witness = [r_old, w, r_new];
        assert_eq!(check_witness(&h, &witness, WitnessModel::Regular), Ok(()));
        assert!(matches!(
            check_witness(&h, &witness, WitnessModel::RealTime),
            Err(WitnessViolation::OrderViolation { kind: OrderKind::RealTime, .. })
        ));
    }

    #[test]
    fn rejects_spec_violations() {
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 5, 0, 10);
        let r = b.read(2, 1, 7, 20, 30); // observed a value nobody wrote
        let h = b.build();
        assert!(matches!(
            check_witness(&h, &[w, r], WitnessModel::ProcessOrder),
            Err(WitnessViolation::Spec(_))
        ));
    }

    #[test]
    fn rejects_missing_and_duplicate_ops() {
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 5, 0, 10);
        let r = b.read(2, 1, 5, 20, 30);
        let h = b.build();
        assert_eq!(
            check_witness(&h, &[w], WitnessModel::ProcessOrder),
            Err(WitnessViolation::MissingCompleteOp(r))
        );
        assert_eq!(
            check_witness(&h, &[w, w, r], WitnessModel::ProcessOrder),
            Err(WitnessViolation::DuplicateOp(w))
        );
        assert_eq!(
            check_witness(&h, &[w, r, OpId(99)], WitnessModel::ProcessOrder),
            Err(WitnessViolation::UnknownOp(OpId(99)))
        );
    }

    #[test]
    fn rejects_process_order_inversion() {
        let mut b = HistoryBuilder::new();
        let a = b.write(1, 1, 5, 0, 10);
        let c = b.write(1, 2, 6, 20, 30);
        let h = b.build();
        assert!(matches!(
            check_witness(&h, &[c, a], WitnessModel::ProcessOrder),
            Err(WitnessViolation::OrderViolation { kind: OrderKind::ProcessOrder, .. })
        ));
    }

    #[test]
    fn rejects_causal_violation_via_message() {
        // Alice writes then messages Bob; Bob reads stale. Any witness putting
        // Bob's read before Alice's write violates the causal edge; putting it
        // after violates the spec. Either way the Regular check fails.
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 7, 0, 10);
        let r = b.read(2, 1, 0, 40, 50);
        b.message(1, 15, 2, 20);
        let h = b.build();
        let before = check_witness(&h, &[r, w], WitnessModel::Regular).unwrap_err();
        assert!(matches!(before, WitnessViolation::OrderViolation { .. }));
        let after = check_witness(&h, &[w, r], WitnessModel::Regular).unwrap_err();
        assert!(matches!(after, WitnessViolation::Spec(_)));
    }

    #[test]
    fn incomplete_ops_may_appear_in_witness() {
        let mut b = HistoryBuilder::new();
        let pw = b.pending_write(1, 1, 9, 0);
        let r = b.read(2, 1, 9, 10, 20);
        let h = b.build();
        assert_eq!(check_witness(&h, &[pw, r], WitnessModel::Regular), Ok(()));
        // Without the pending write the read's value is unexplained.
        assert!(matches!(
            check_witness(&h, &[r], WitnessModel::Regular),
            Err(WitnessViolation::Spec(_))
        ));
    }

    #[test]
    fn regular_write_write_real_time_enforced() {
        let mut b = HistoryBuilder::new();
        let w1 = b.write(1, 1, 1, 0, 10);
        let w2 = b.write(2, 2, 2, 20, 30); // different key, follows w1 in real time
        let h = b.build();
        assert!(matches!(
            check_witness(&h, &[w2, w1], WitnessModel::Regular),
            Err(WitnessViolation::OrderViolation { kind: OrderKind::RegularWrite, .. })
        ));
        assert_eq!(check_witness(&h, &[w1, w2], WitnessModel::Regular), Ok(()));
    }
}
