//! Scalable witness (certificate) checkers.
//!
//! The protocol implementations in this repository do not merely claim to
//! satisfy their consistency model — they emit a *witness*: the total order of
//! transactions/operations induced by their commit timestamps (Spanner) or
//! carstamps (Gryff), exactly as in the paper's correctness proofs
//! (Appendix D). Validating a witness is tractable even for histories with
//! tens of thousands of operations:
//!
//! 1. every completed operation appears in the witness exactly once,
//! 2. replaying the witness against the sequential specification reproduces
//!    every recorded result,
//! 3. the witness respects the model's order constraints, checked edge-by-edge
//!    for causal/process-order constraints and with per-key sweeps for the
//!    real-time constraints.
//!
//! This is the machinery the cross-crate integration tests use to establish
//! that Spanner ⊨ strict serializability, Spanner-RSS ⊨ RSS, Gryff ⊨
//! linearizability, and Gryff-RSC ⊨ RSC on real simulated runs.
//!
//! # Hot-path structure
//!
//! Everything runs over the [`HistoryIndex`] arena view: witness positions
//! live in a dense `Vec` indexed by op id, the spec replay uses the indexed
//! state (no per-op allocation, no hashing), and the per-key grouping behind
//! the sweeps uses the index's interned dense key ids instead of
//! `HashMap<(ServiceId, Key), _>`. The only remaining per-check allocations
//! are the grouped source/target vectors themselves.
//!
//! # Sharded (parallel) checking
//!
//! The order checks are *shardable*: every constraint family partitions by
//! process, dense key, or message index, and each shard reads only the
//! immutable [`HistoryIndex`] and the shared witness-position table. The
//! whole plan is expressed once, through a (private) `Shard` selector —
//! [`check_witness_with`] runs the single shard that covers everything, and
//! [`check_witness_parallel`] fans the same code across scoped threads for
//! the multi-run conformance sweeps (large histories amortize the spawn
//! cost; the membership scan and spec replay are inherently sequential and
//! stay on the calling thread). `HistoryIndex` is statically asserted
//! `Send + Sync`, which is what makes the borrow-based fan-out sound.

use crate::history::{History, HistoryIndex};
use crate::order::message_edges;
use crate::spec::{check_sequence, IndexedSpecState, SpecViolation};
use crate::types::OpId;

/// Compile-time proof that the read-only index (and the violation type the
/// shards send back) can cross threads — the property
/// [`check_witness_parallel`]'s scoped borrows rely on.
#[allow(dead_code)]
const fn _witness_sharding_is_send_sync() {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<HistoryIndex>();
    assert_send_sync::<WitnessViolation>();
    assert_send_sync::<WitnessModel>();
}

/// Which constraint family the witness must respect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WitnessModel {
    /// Real-time order between all pairs: strict serializability and
    /// linearizability.
    RealTime,
    /// Causal order plus the regular write constraint: RSS and RSC.
    Regular,
    /// Per-process order only: PO serializability and sequential consistency.
    ProcessOrder,
}

/// The kind of ordering constraint that a violation refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderKind {
    /// The witness reorders two operations of the same process.
    ProcessOrder,
    /// The witness contradicts a causal (reads-from or message-passing) edge.
    Causal,
    /// The witness contradicts the real-time order.
    RealTime,
    /// The witness contradicts the RSS/RSC write constraint.
    RegularWrite,
}

/// Why a witness was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum WitnessViolation {
    /// The witness references an operation id not in the history.
    UnknownOp(OpId),
    /// The witness lists an operation more than once.
    DuplicateOp(OpId),
    /// A completed operation is missing from the witness.
    MissingCompleteOp(OpId),
    /// Replaying the witness contradicts a recorded result.
    Spec(SpecViolation),
    /// The witness violates an ordering constraint: `first` must precede
    /// `second` but does not.
    OrderViolation {
        /// Which constraint family was violated.
        kind: OrderKind,
        /// The operation that must come first.
        first: OpId,
        /// The operation that must come second.
        second: OpId,
    },
}

/// Position sentinel: the operation does not appear in the witness.
const ABSENT: u32 = u32::MAX;

/// Which slice of the order checks one invocation covers: shard `id` of
/// `count` equal residue classes over the partitionable dimensions
/// (processes, dense keys, message indices), with the non-partitionable
/// global sweeps run by the primary shard only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Shard {
    id: usize,
    count: usize,
}

impl Shard {
    /// The single shard covering every check (the sequential path).
    const ALL: Shard = Shard { id: 0, count: 1 };

    /// True if this shard owns residue class `i`. The single-shard
    /// (sequential) case short-circuits so the hot certificate loops don't
    /// pay a division.
    #[inline]
    fn covers(&self, i: usize) -> bool {
        self.count == 1 || i % self.count == self.id
    }

    /// True for the shard that additionally runs the global (unpartitioned)
    /// sweeps.
    #[inline]
    fn is_primary(&self) -> bool {
        self.id == 0
    }
}

/// Checks that `witness` certifies `history` under `model`.
///
/// The witness must contain every completed operation exactly once and may
/// additionally contain incomplete mutating operations whose effects became
/// visible.
pub fn check_witness(
    history: &History,
    witness: &[OpId],
    model: WitnessModel,
) -> Result<(), WitnessViolation> {
    let index = HistoryIndex::new(history);
    check_witness_with(history, &index, witness, model)
}

/// [`check_witness`] over a prebuilt [`HistoryIndex`], letting callers that
/// validate several witnesses of one history share the index.
pub fn check_witness_with(
    history: &History,
    index: &HistoryIndex,
    witness: &[OpId],
    model: WitnessModel,
) -> Result<(), WitnessViolation> {
    let positions = validate_membership(index, witness)?;
    replay_witness(history, index, witness)?;
    check_order_constraints(history, index, &positions, model, Shard::ALL)
}

/// Histories below this many ops take the sequential path regardless of
/// `threads`: the order checks are microseconds there, below thread-spawn
/// cost.
const PARALLEL_MIN_OPS: usize = 512;

/// [`check_witness_with`] with the order checks sharded across `threads`
/// scoped worker threads.
///
/// Accepts and rejects exactly the same witnesses as the sequential checker
/// (both run the same order-constraint code, just under different shard
/// selectors); when several shards find violations concurrently, *which* one
/// is reported may differ from the sequential checker's first hit. Intended
/// for the conformance sweeps' large protocol histories. Falls back to the
/// sequential path when `threads <= 1`, when the history is too small to
/// repay thread spawns, or for [`WitnessModel::RealTime`] — whose dominant
/// cost is the single global real-time sweep, which sharding cannot split.
pub fn check_witness_parallel(
    history: &History,
    index: &HistoryIndex,
    witness: &[OpId],
    model: WitnessModel,
    threads: usize,
) -> Result<(), WitnessViolation> {
    let positions = validate_membership(index, witness)?;
    replay_witness(history, index, witness)?;
    if threads <= 1 || index.len() < PARALLEL_MIN_OPS || model == WitnessModel::RealTime {
        return check_order_constraints(history, index, &positions, model, Shard::ALL);
    }
    let failure: std::sync::Mutex<Option<WitnessViolation>> = std::sync::Mutex::new(None);
    std::thread::scope(|scope| {
        let positions = &positions;
        let failure = &failure;
        for id in 0..threads {
            scope.spawn(move || {
                let shard = Shard { id, count: threads };
                if let Err(v) = check_order_constraints(history, index, positions, model, shard) {
                    failure.lock().unwrap_or_else(|e| e.into_inner()).get_or_insert(v);
                }
            });
        }
    });
    match failure.into_inner().unwrap_or_else(|e| e.into_inner()) {
        Some(v) => Err(v),
        None => Ok(()),
    }
}

/// The order-constraint half of the witness check, restricted to one
/// [`Shard`]. The union over a full shard family `{0..count}` is exactly the
/// sequential check. Each shard scans all ops and sizes its own per-key
/// grouping tables (an O(len + keys) overhead per shard, accepted so shards
/// share nothing mutable); only the grouped sweeps themselves are
/// partitioned.
fn check_order_constraints(
    history: &History,
    index: &HistoryIndex,
    positions: &[u32],
    model: WitnessModel,
    shard: Shard,
) -> Result<(), WitnessViolation> {
    // Process order holds for every model (it is subsumed by real time for
    // complete ops, but checking it directly also covers included incomplete
    // operations). Partitioned by process slot.
    for (slot, (_, ids)) in index.ops_by_process().iter().enumerate() {
        if !shard.covers(slot) {
            continue;
        }
        for w in ids.windows(2) {
            check_edge(positions, w[0], w[1], OrderKind::ProcessOrder)?;
        }
    }

    match model {
        WitnessModel::ProcessOrder => {}
        WitnessModel::Regular => {
            check_reads_from_edges(index, positions, shard)?;
            if !history.messages().is_empty() && shard.is_primary() {
                for (a, b) in message_edges(history) {
                    check_edge(positions, a, b, OrderKind::Causal)?;
                }
            }
            check_regular_write_constraint(index, positions, shard)?;
        }
        WitnessModel::RealTime => {
            if shard.is_primary() {
                check_real_time_all(index, positions)?;
            }
        }
    }
    Ok(())
}

fn validate_membership(
    index: &HistoryIndex,
    witness: &[OpId],
) -> Result<Vec<u32>, WitnessViolation> {
    let mut positions = vec![ABSENT; index.len()];
    for (pos, &id) in witness.iter().enumerate() {
        if id.index() >= index.len() {
            return Err(WitnessViolation::UnknownOp(id));
        }
        if positions[id.index()] != ABSENT {
            return Err(WitnessViolation::DuplicateOp(id));
        }
        positions[id.index()] = pos as u32;
    }
    for &id in index.complete_ids() {
        if positions[id.index()] == ABSENT {
            return Err(WitnessViolation::MissingCompleteOp(id));
        }
    }
    Ok(positions)
}

/// Replays the witness against the sequential specification using the indexed
/// state (allocation-free per op). On failure, the map-based
/// [`check_sequence`] re-derives the full [`SpecViolation`] diagnostic on the
/// cold path.
fn replay_witness(
    history: &History,
    index: &HistoryIndex,
    witness: &[OpId],
) -> Result<(), WitnessViolation> {
    let mut state = IndexedSpecState::new(index.num_dense_keys());
    for &id in witness {
        if !state.apply_checked(index, id.index()) {
            let err =
                check_sequence(history, witness).expect_err("indexed replay found a violation");
            return Err(WitnessViolation::Spec(err));
        }
    }
    Ok(())
}

#[inline]
fn check_edge(
    positions: &[u32],
    a: OpId,
    b: OpId,
    kind: OrderKind,
) -> Result<(), WitnessViolation> {
    let (pa, pb) = (positions[a.index()], positions[b.index()]);
    if pa != ABSENT && pb != ABSENT && pa >= pb {
        return Err(WitnessViolation::OrderViolation { kind, first: a, second: b });
    }
    Ok(())
}

/// Checks the reads-from edges: every read of a non-null value must follow
/// (in the witness) some write of that value to the same key. Writers are
/// grouped per dense key id and sorted by value once, so each observation is
/// a binary search — no `HashMap<(service, key, value), _>` construction.
/// Partitioned by dense key id: each shard groups and checks only the keys
/// it covers.
fn check_reads_from_edges(
    index: &HistoryIndex,
    positions: &[u32],
    shard: Shard,
) -> Result<(), WitnessViolation> {
    // (value, writer) per dense key id (covered keys only).
    let mut writers: Vec<Vec<(u64, u32)>> = vec![Vec::new(); index.num_dense_keys()];
    for op in 0..index.len() {
        let keys = index.write_key_ids(op);
        let vals = index.write_values(op);
        for (k, v) in keys.iter().zip(vals) {
            if *v != 0 && shard.covers(*k as usize) {
                writers[*k as usize].push((*v, op as u32));
            }
        }
    }
    for list in &mut writers {
        list.sort_unstable();
    }
    for op in 0..index.len() {
        if !index.has_result(op) || index.has_unsat_result(op) {
            continue;
        }
        let keys = index.read_key_ids(op);
        let obs = index.read_observations(op);
        for (k, v) in keys.iter().zip(obs) {
            if *v == 0 || !shard.covers(*k as usize) {
                continue;
            }
            let list = &writers[*k as usize];
            let start = list.partition_point(|&(val, _)| val < *v);
            for &(val, w) in &list[start..] {
                if val != *v {
                    break;
                }
                if w as usize != op {
                    check_edge(positions, OpId(w), OpId(op as u32), OrderKind::Causal)?;
                }
            }
        }
    }
    Ok(())
}

/// Checks `resp(a) < inv(b) ⇒ pos(a) < pos(b)` for all pairs, in
/// `O(n log n)` via a sweep: walk operations by invocation time while keeping
/// the maximum witness position among operations that have already responded.
fn check_real_time_all(index: &HistoryIndex, positions: &[u32]) -> Result<(), WitnessViolation> {
    let mut sources: Vec<(u64, u32, u32)> = Vec::with_capacity(index.len());
    let mut targets: Vec<(u64, u32, u32)> = Vec::with_capacity(index.len());
    for (op, &pos) in positions.iter().enumerate() {
        if pos == ABSENT {
            continue;
        }
        if let Some(resp) = index.response_us(op) {
            sources.push((resp, pos, op as u32));
        }
        targets.push((index.invoke_us(op), pos, op as u32));
    }
    sweep(&mut sources, &mut targets, OrderKind::RealTime)
}

/// Checks clause (3) of the RSS/RSC definitions:
/// * completed mutating operations precede (in the witness) every mutating
///   operation that follows them in real time (global: primary shard), and
/// * completed mutating operations precede every conflicting read-only
///   operation that follows them in real time (partitioned by dense key id).
fn check_regular_write_constraint(
    index: &HistoryIndex,
    positions: &[u32],
    shard: Shard,
) -> Result<(), WitnessViolation> {
    // Global write-write constraint (not partitionable: every mutating pair
    // is constrained regardless of key).
    if shard.is_primary() {
        let mut write_sources: Vec<(u64, u32, u32)> = Vec::new();
        let mut write_targets: Vec<(u64, u32, u32)> = Vec::new();
        for (op, &pos) in positions.iter().enumerate() {
            if !index.is_mutating(op) || pos == ABSENT {
                continue;
            }
            if let Some(resp) = index.response_us(op) {
                write_sources.push((resp, pos, op as u32));
            }
            write_targets.push((index.invoke_us(op), pos, op as u32));
        }
        sweep(&mut write_sources, &mut write_targets, OrderKind::RegularWrite)?;
    }

    // Per-(service, key) write-read constraint, grouped by dense key id
    // (covered keys only).
    let num_keys = index.num_dense_keys();
    let mut writers: Vec<Vec<(u64, u32, u32)>> = vec![Vec::new(); num_keys];
    let mut readers: Vec<Vec<(u64, u32, u32)>> = vec![Vec::new(); num_keys];
    for (op, &pos) in positions.iter().enumerate() {
        if pos == ABSENT {
            continue;
        }
        if index.is_mutating(op) {
            if let Some(resp) = index.response_us(op) {
                for k in index.write_key_ids(op) {
                    if shard.covers(*k as usize) {
                        writers[*k as usize].push((resp, pos, op as u32));
                    }
                }
            }
        } else if index.is_read_only(op) {
            for k in index.read_key_ids(op) {
                if shard.covers(*k as usize) {
                    readers[*k as usize].push((index.invoke_us(op), pos, op as u32));
                }
            }
        }
    }
    for (sources, targets) in writers.iter_mut().zip(readers.iter_mut()) {
        if !sources.is_empty() && !targets.is_empty() {
            sweep(sources, targets, OrderKind::RegularWrite)?;
        }
    }
    Ok(())
}

/// Core sweep: for every source `a` and target `b` with
/// `a.time < b.time` (strictly), require `pos(a) < pos(b)`. Sorts the two
/// lists in place (no clones).
fn sweep(
    sources: &mut [(u64, u32, u32)],
    targets: &mut [(u64, u32, u32)],
    kind: OrderKind,
) -> Result<(), WitnessViolation> {
    sources.sort_unstable();
    targets.sort_unstable();
    let mut max_pos: Option<(u32, u32)> = None;
    let mut si = 0;
    for &(t_inv, pos_b, id_b) in targets.iter() {
        while si < sources.len() && sources[si].0 < t_inv {
            let (_, pos_a, id_a) = sources[si];
            if max_pos.map(|(p, _)| pos_a > p).unwrap_or(true) {
                max_pos = Some((pos_a, id_a));
            }
            si += 1;
        }
        if let Some((p, id_a)) = max_pos {
            if p > pos_b && id_a != id_b {
                return Err(WitnessViolation::OrderViolation {
                    kind,
                    first: OpId(id_a),
                    second: OpId(id_b),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;

    #[test]
    fn accepts_valid_real_time_witness() {
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 5, 0, 10);
        let r = b.read(2, 1, 5, 20, 30);
        let h = b.build();
        assert_eq!(check_witness(&h, &[w, r], WitnessModel::RealTime), Ok(()));
        assert_eq!(check_witness(&h, &[w, r], WitnessModel::Regular), Ok(()));
    }

    #[test]
    fn rejects_real_time_inversion() {
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 5, 0, 10);
        let r = b.read(2, 1, 0, 20, 30); // stale read, after the write completed
        let h = b.build();
        // Ordering the read first satisfies the spec but violates real time.
        let err = check_witness(&h, &[r, w], WitnessModel::RealTime).unwrap_err();
        assert!(matches!(err, WitnessViolation::OrderViolation { kind: OrderKind::RealTime, .. }));
        // The regular model also rejects it (write-read conflict on key 1).
        let err = check_witness(&h, &[r, w], WitnessModel::Regular).unwrap_err();
        assert!(matches!(
            err,
            WitnessViolation::OrderViolation { kind: OrderKind::RegularWrite, .. }
        ));
        // Process order alone accepts it.
        assert_eq!(check_witness(&h, &[r, w], WitnessModel::ProcessOrder), Ok(()));
    }

    #[test]
    fn regular_allows_concurrent_read_reordering() {
        // Figure 2: both reads are concurrent with the write; one saw it, one
        // did not, and the one that did finished first. RSS/RSC accept the
        // order (r_old, w, r_new); strict serializability rejects it because
        // r_new completed before r_old started.
        let mut b = HistoryBuilder::new();
        let w = b.write(2, 1, 1, 0, 100);
        let r_new = b.read(3, 1, 1, 10, 20);
        let r_old = b.read(1, 1, 0, 30, 40);
        let h = b.build();
        let witness = [r_old, w, r_new];
        assert_eq!(check_witness(&h, &witness, WitnessModel::Regular), Ok(()));
        assert!(matches!(
            check_witness(&h, &witness, WitnessModel::RealTime),
            Err(WitnessViolation::OrderViolation { kind: OrderKind::RealTime, .. })
        ));
    }

    #[test]
    fn rejects_spec_violations() {
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 5, 0, 10);
        let r = b.read(2, 1, 7, 20, 30); // observed a value nobody wrote
        let h = b.build();
        assert!(matches!(
            check_witness(&h, &[w, r], WitnessModel::ProcessOrder),
            Err(WitnessViolation::Spec(_))
        ));
    }

    #[test]
    fn rejects_missing_and_duplicate_ops() {
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 5, 0, 10);
        let r = b.read(2, 1, 5, 20, 30);
        let h = b.build();
        assert_eq!(
            check_witness(&h, &[w], WitnessModel::ProcessOrder),
            Err(WitnessViolation::MissingCompleteOp(r))
        );
        assert_eq!(
            check_witness(&h, &[w, w, r], WitnessModel::ProcessOrder),
            Err(WitnessViolation::DuplicateOp(w))
        );
        assert_eq!(
            check_witness(&h, &[w, r, OpId(99)], WitnessModel::ProcessOrder),
            Err(WitnessViolation::UnknownOp(OpId(99)))
        );
    }

    #[test]
    fn rejects_process_order_inversion() {
        let mut b = HistoryBuilder::new();
        let a = b.write(1, 1, 5, 0, 10);
        let c = b.write(1, 2, 6, 20, 30);
        let h = b.build();
        assert!(matches!(
            check_witness(&h, &[c, a], WitnessModel::ProcessOrder),
            Err(WitnessViolation::OrderViolation { kind: OrderKind::ProcessOrder, .. })
        ));
    }

    #[test]
    fn rejects_causal_violation_via_message() {
        // Alice writes then messages Bob; Bob reads stale. Any witness putting
        // Bob's read before Alice's write violates the causal edge; putting it
        // after violates the spec. Either way the Regular check fails.
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 7, 0, 10);
        let r = b.read(2, 1, 0, 40, 50);
        b.message(1, 15, 2, 20);
        let h = b.build();
        let before = check_witness(&h, &[r, w], WitnessModel::Regular).unwrap_err();
        assert!(matches!(before, WitnessViolation::OrderViolation { .. }));
        let after = check_witness(&h, &[w, r], WitnessModel::Regular).unwrap_err();
        assert!(matches!(after, WitnessViolation::Spec(_)));
    }

    #[test]
    fn incomplete_ops_may_appear_in_witness() {
        let mut b = HistoryBuilder::new();
        let pw = b.pending_write(1, 1, 9, 0);
        let r = b.read(2, 1, 9, 10, 20);
        let h = b.build();
        assert_eq!(check_witness(&h, &[pw, r], WitnessModel::Regular), Ok(()));
        // Without the pending write the read's value is unexplained.
        assert!(matches!(
            check_witness(&h, &[r], WitnessModel::Regular),
            Err(WitnessViolation::Spec(_))
        ));
    }

    #[test]
    fn regular_write_write_real_time_enforced() {
        let mut b = HistoryBuilder::new();
        let w1 = b.write(1, 1, 1, 0, 10);
        let w2 = b.write(2, 2, 2, 20, 30); // different key, follows w1 in real time
        let h = b.build();
        assert!(matches!(
            check_witness(&h, &[w2, w1], WitnessModel::Regular),
            Err(WitnessViolation::OrderViolation { kind: OrderKind::RegularWrite, .. })
        ));
        assert_eq!(check_witness(&h, &[w1, w2], WitnessModel::Regular), Ok(()));
    }

    #[test]
    fn parallel_checker_agrees_with_sequential() {
        use crate::history::HistoryIndex;
        // A valid regular witness and an invalid one; the sharded checker
        // must accept/reject identically at several thread counts.
        let mut b = HistoryBuilder::new();
        let w1 = b.write(1, 1, 1, 0, 10);
        let w2 = b.write(2, 2, 2, 20, 30);
        let r = b.read(3, 1, 1, 40, 50);
        let h = b.build();
        let index = HistoryIndex::new(&h);
        for threads in [1, 2, 3, 8] {
            assert_eq!(
                check_witness_parallel(&h, &index, &[w1, w2, r], WitnessModel::Regular, threads),
                Ok(()),
                "{threads} threads accept the valid witness"
            );
            assert!(
                check_witness_parallel(&h, &index, &[w2, w1, r], WitnessModel::Regular, threads)
                    .is_err(),
                "{threads} threads reject the write-order inversion"
            );
            assert!(
                check_witness_parallel(&h, &index, &[w1, w2], WitnessModel::Regular, threads)
                    .is_err(),
                "{threads} threads reject the missing op"
            );
        }
    }

    #[test]
    fn reads_from_reordering_rejected_without_hashmaps() {
        // Two writers of distinct values to one key; the reader saw the second
        // writer's value but the witness orders the reader first.
        let mut b = HistoryBuilder::new();
        let w1 = b.write(1, 1, 1, 0, 100);
        let w2 = b.write(2, 1, 2, 0, 100);
        let r = b.read(3, 1, 2, 0, 100);
        let h = b.build();
        assert!(matches!(
            check_witness(&h, &[r, w1, w2], WitnessModel::Regular),
            Err(WitnessViolation::OrderViolation { kind: OrderKind::Causal, .. })
                | Err(WitnessViolation::Spec(_))
        ));
        assert_eq!(check_witness(&h, &[w1, w2, r], WitnessModel::Regular), Ok(()));
    }
}
