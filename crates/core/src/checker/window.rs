//! Windowed streaming certification: stage 3 of the cascade.
//!
//! The batch certificate checker ([`check_witness`](crate::checker::check_witness))
//! needs the whole history and the whole witness up front. For a
//! still-growing run — or a 100k+-op history whose witness arrives out of
//! order from sharded assembly — [`StreamingChecker`] validates the same
//! three clauses *incrementally*: operations are pushed in witness order, and
//! every constraint family is folded into O(keys + processes) running state:
//!
//! * **membership** — duplicates are caught on push, missing completed ops at
//!   [`StreamingChecker::finish`];
//! * **replay** — a [`SpecState`] replays each op as it is pushed and compares
//!   recorded results;
//! * **process order** — an op pushed before its process predecessor arms a
//!   tripwire that fires if the predecessor ever arrives;
//! * **causal edges** (Regular) — message edges arm the same way, and
//!   reads-from inverts the batch checker's writer→reader scan: the first
//!   pushed reader of each `(service, key, value)` is remembered, and a later
//!   push of a writer of that value is exactly a reads-from inversion;
//! * **real-time sweeps** — the batch checker's sort-and-sweep (max witness
//!   position among responded sources vs. each target) becomes a running
//!   maximum of invocation times: when a source is pushed, any already-pushed
//!   target it really precedes sits at a smaller witness position, so
//!   `max inv > resp(source)` is precisely a sweep violation.
//!
//! Every rule mirrors a clause of the batch checker on the *pushed prefix*;
//! a full push sequence therefore accepts iff
//! [`check_witness`](crate::checker::check_witness) accepts the
//! same witness (which violation is reported first may differ — same caveat
//! as the sharded checker). [`WindowBuffer`] supplies the reordering front
//! end: out-of-order `(position, item)` arrivals are buffered and released in
//! contiguous windows, so memory is bounded by the arrival skew (the window),
//! never the history.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::checker::certificate::{OrderKind, WitnessModel, WitnessViolation};
use crate::hashing::FxBuildHasher;
use crate::history::{result_shape_matches, OpRecord};
use crate::spec::{results_compatible, SpecState, SpecViolation};
use crate::types::OpId;

/// Incremental witness checker; see the module docs for the rule-by-rule
/// correspondence with the batch checker.
#[derive(Debug)]
pub struct StreamingChecker {
    model: WitnessModel,
    /// Bitvec over op ids: pushed so far.
    pushed: Vec<u64>,
    pushed_count: usize,
    /// Unpushed process-order predecessor → the pushed successor awaiting it.
    awaited: HashMap<u32, u32, FxBuildHasher>,
    /// Unpushed message-edge source → the pushed target awaiting it.
    msg_awaited: HashMap<u32, u32, FxBuildHasher>,
    /// Message-edge target → sources (from `order::message_edges`).
    msg_preds: HashMap<u32, Vec<u32>, FxBuildHasher>,
    state: SpecState,
    /// `(service, key, value)` → first pushed op that observed it.
    first_reader: HashMap<(u32, u64, u64), u32, FxBuildHasher>,
    /// `(service, key)` → max invocation time (and op) among pushed readers.
    reader_max: HashMap<(u32, u64), (u64, u32), FxBuildHasher>,
    /// Max invocation time (and op) among pushed mutating ops.
    mut_max_inv: Option<(u64, u32)>,
    /// Max invocation time (and op) among all pushed ops.
    all_max_inv: Option<(u64, u32)>,
}

impl StreamingChecker {
    /// A checker for a history without message edges.
    pub fn new(model: WitnessModel) -> Self {
        Self::with_message_edges(model, &[])
    }

    /// A checker that will also enforce the given message-passing causal
    /// edges (pairs from [`crate::order::message_edges`], checked under
    /// [`WitnessModel::Regular`] only, as in the batch checker).
    pub fn with_message_edges(model: WitnessModel, edges: &[(OpId, OpId)]) -> Self {
        let mut msg_preds: HashMap<u32, Vec<u32>, FxBuildHasher> = HashMap::default();
        for &(a, b) in edges {
            msg_preds.entry(b.0).or_default().push(a.0);
        }
        StreamingChecker {
            model,
            pushed: Vec::new(),
            pushed_count: 0,
            awaited: HashMap::default(),
            msg_awaited: HashMap::default(),
            msg_preds,
            state: SpecState::new(),
            first_reader: HashMap::default(),
            reader_max: HashMap::default(),
            mut_max_inv: None,
            all_max_inv: None,
        }
    }

    /// Number of operations pushed so far.
    #[inline]
    pub fn ops_pushed(&self) -> usize {
        self.pushed_count
    }

    #[inline]
    fn is_pushed(&self, id: u32) -> bool {
        let (w, b) = ((id / 64) as usize, id % 64);
        w < self.pushed.len() && self.pushed[w] & (1 << b) != 0
    }

    #[inline]
    fn mark_pushed(&mut self, id: u32) {
        let (w, b) = ((id / 64) as usize, id % 64);
        if w >= self.pushed.len() {
            self.pushed.resize(w + 1, 0);
        }
        self.pushed[w] |= 1 << b;
        self.pushed_count += 1;
    }

    /// Pushes the next witness entry. `prev_in_process` is the op's immediate
    /// predecessor in its process's order (by invocation), if any — the same
    /// consecutive pairs the batch checker walks.
    ///
    /// # Errors
    ///
    /// The first [`WitnessViolation`] the pushed prefix exhibits. After an
    /// error the checker state is not rolled back; discard it.
    pub fn push(
        &mut self,
        op: &OpRecord,
        prev_in_process: Option<OpId>,
    ) -> Result<(), WitnessViolation> {
        let id = op.id.0;
        if self.is_pushed(id) {
            return Err(WitnessViolation::DuplicateOp(op.id));
        }
        self.mark_pushed(id);

        // Process order (all models): if someone already pushed was awaiting
        // this op as its predecessor, the witness inverted the pair.
        if let Some(&succ) = self.awaited.get(&id) {
            return Err(WitnessViolation::OrderViolation {
                kind: OrderKind::ProcessOrder,
                first: op.id,
                second: OpId(succ),
            });
        }
        if let Some(prev) = prev_in_process {
            if !self.is_pushed(prev.0) {
                self.awaited.insert(prev.0, id);
            }
        }

        // Replay (all models).
        let produced = self.state.apply(op.service, &op.kind);
        if let Some(recorded) = &op.result {
            if !results_compatible(&op.kind, &produced, recorded) {
                return Err(WitnessViolation::Spec(SpecViolation {
                    op: op.id,
                    expected: produced,
                    actual: recorded.clone(),
                }));
            }
        }

        match self.model {
            WitnessModel::ProcessOrder => {}
            WitnessModel::Regular => self.push_regular(op)?,
            WitnessModel::RealTime => {
                // Global all-pairs sweep: any already-pushed op invoked after
                // this op's response sits at a smaller witness position.
                if let Some(resp) = op.response {
                    if let Some((max_inv, other)) = self.all_max_inv {
                        if max_inv > resp.as_micros() {
                            return Err(WitnessViolation::OrderViolation {
                                kind: OrderKind::RealTime,
                                first: op.id,
                                second: OpId(other),
                            });
                        }
                    }
                }
                let inv = op.invoke.as_micros();
                if self.all_max_inv.map(|(m, _)| inv > m).unwrap_or(true) {
                    self.all_max_inv = Some((inv, id));
                }
            }
        }
        Ok(())
    }

    /// The Regular-model constraint families: message edges, reads-from, the
    /// per-key write-read sweep, and the global write-write sweep.
    fn push_regular(&mut self, op: &OpRecord) -> Result<(), WitnessViolation> {
        let id = op.id.0;

        // Message edges: the same tripwire as process order. A target pushed
        // while a source is unpushed arms the source; pushing an armed source
        // fires. A source pushed first never arms, so its targets pass.
        if let Some(&succ) = self.msg_awaited.get(&id) {
            return Err(WitnessViolation::OrderViolation {
                kind: OrderKind::Causal,
                first: op.id,
                second: OpId(succ),
            });
        }
        if let Some(preds) = self.msg_preds.get(&id) {
            for &src in preds {
                if !self.is_pushed(src) {
                    self.msg_awaited.entry(src).or_insert(id);
                }
            }
        }

        // Reads-from: a writer of `(service, key, value)` pushed after a
        // reader that observed that value inverts a reads-from edge.
        for (k, v) in op.kind.written_values() {
            if v.0 == 0 {
                continue;
            }
            if let Some(&r) = self.first_reader.get(&(op.service.0, k.0, v.0)) {
                if r != id {
                    return Err(WitnessViolation::OrderViolation {
                        kind: OrderKind::Causal,
                        first: op.id,
                        second: OpId(r),
                    });
                }
            }
        }
        if let Some(result) = &op.result {
            if result_shape_matches(&op.kind, result) {
                for (k, v) in result.observed(&op.kind) {
                    if v.0 != 0 {
                        self.first_reader.entry((op.service.0, k.0, v.0)).or_insert(id);
                    }
                }
            }
        }

        // Regular write constraint. Per-key half: a completed mutating op
        // must precede every conflicting read invoked after its response.
        if op.kind.is_mutating() {
            if let Some(resp) = op.response {
                let resp = resp.as_micros();
                for k in op.kind.written_keys() {
                    if let Some(&(max_inv, reader)) = self.reader_max.get(&(op.service.0, k.0)) {
                        if max_inv > resp {
                            return Err(WitnessViolation::OrderViolation {
                                kind: OrderKind::RegularWrite,
                                first: op.id,
                                second: OpId(reader),
                            });
                        }
                    }
                }
                // Global half: completed mutating ops precede every mutating
                // op invoked after their response.
                if let Some((max_inv, other)) = self.mut_max_inv {
                    if max_inv > resp {
                        return Err(WitnessViolation::OrderViolation {
                            kind: OrderKind::RegularWrite,
                            first: op.id,
                            second: OpId(other),
                        });
                    }
                }
            }
            let inv = op.invoke.as_micros();
            if self.mut_max_inv.map(|(m, _)| inv > m).unwrap_or(true) {
                self.mut_max_inv = Some((inv, id));
            }
        } else if op.kind.is_read_only() {
            let inv = op.invoke.as_micros();
            for k in op.kind.read_keys() {
                let e = self.reader_max.entry((op.service.0, k.0)).or_insert((inv, id));
                if inv > e.0 {
                    *e = (inv, id);
                }
            }
        }
        Ok(())
    }

    /// Ends the stream: every id in `complete_ids` must have been pushed.
    ///
    /// # Errors
    ///
    /// [`WitnessViolation::MissingCompleteOp`] for the first absent one.
    pub fn finish(self, complete_ids: &[OpId]) -> Result<(), WitnessViolation> {
        for &id in complete_ids {
            if !self.is_pushed(id.0) {
                return Err(WitnessViolation::MissingCompleteOp(id));
            }
        }
        Ok(())
    }
}

/// Reordering front end for [`StreamingChecker`]: items tagged with their
/// witness position arrive in any order; [`WindowBuffer::pop_ready`] releases
/// the contiguous prefix. Memory is bounded by the arrival skew — the peak
/// buffered count is reported so drivers can size windows.
#[derive(Debug)]
pub struct WindowBuffer<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    next: u32,
    peak: usize,
}

#[derive(Debug)]
struct Entry<T> {
    pos: u32,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.pos == other.pos
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.pos.cmp(&other.pos)
    }
}

impl<T> Default for WindowBuffer<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> WindowBuffer<T> {
    /// An empty buffer expecting position 0 first.
    pub fn new() -> Self {
        WindowBuffer { heap: BinaryHeap::new(), next: 0, peak: 0 }
    }

    /// Buffers `item` arriving at witness position `pos`.
    pub fn push(&mut self, pos: u32, item: T) {
        self.heap.push(Reverse(Entry { pos, item }));
        self.peak = self.peak.max(self.heap.len());
    }

    /// Releases the contiguous run starting at the next expected position,
    /// in order. Empty if that position has not arrived yet.
    pub fn pop_ready(&mut self) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(Reverse(head)) = self.heap.peek() {
            if head.pos != self.next {
                break;
            }
            let Reverse(e) = self.heap.pop().expect("peeked");
            out.push(e.item);
            self.next += 1;
        }
        out
    }

    /// Items currently buffered (arrived, not yet released).
    pub fn buffered(&self) -> usize {
        self.heap.len()
    }

    /// High-water mark of [`Self::buffered`] over the buffer's lifetime.
    pub fn peak_buffered(&self) -> usize {
        self.peak
    }

    /// The next witness position [`Self::pop_ready`] will release.
    pub fn next_pos(&self) -> u32 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::certificate::check_witness;
    use crate::history::{History, HistoryBuilder};
    use crate::order::message_edges;

    /// Feeds `witness` through a [`StreamingChecker`] exactly as the sweep
    /// driver does: process predecessors from the history's per-process
    /// order, message edges precomputed.
    fn stream_check(
        history: &History,
        witness: &[OpId],
        model: WitnessModel,
    ) -> Result<(), WitnessViolation> {
        let mut prev: HashMap<u32, OpId> = HashMap::new();
        for p in history.processes() {
            let mut last: Option<OpId> = None;
            for id in history.ops_of_process(p) {
                if let Some(l) = last {
                    prev.insert(id.0, l);
                }
                last = Some(id);
            }
        }
        let edges = message_edges(history);
        let mut checker = StreamingChecker::with_message_edges(model, &edges);
        for &id in witness {
            checker.push(history.op(id), prev.get(&id.0).copied())?;
        }
        let complete = history.complete_ids();
        checker.finish(&complete)
    }

    fn agree(history: &History, witness: &[OpId], model: WitnessModel) {
        let batch = check_witness(history, witness, model);
        let streamed = stream_check(history, witness, model);
        assert_eq!(
            batch.is_ok(),
            streamed.is_ok(),
            "{model:?} verdicts agree: batch={batch:?} streamed={streamed:?}"
        );
    }

    #[test]
    fn streaming_agrees_with_batch_on_basic_witnesses() {
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 5, 0, 10);
        let r = b.read(2, 1, 5, 20, 30);
        let h = b.build();
        for model in [WitnessModel::RealTime, WitnessModel::Regular, WitnessModel::ProcessOrder] {
            agree(&h, &[w, r], model);
            agree(&h, &[r, w], model);
            agree(&h, &[w], model); // missing op
        }
    }

    #[test]
    fn streaming_rejects_duplicates_and_missing() {
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 5, 0, 10);
        let r = b.read(2, 1, 5, 20, 30);
        let h = b.build();
        assert_eq!(
            stream_check(&h, &[w, w, r], WitnessModel::ProcessOrder),
            Err(WitnessViolation::DuplicateOp(w))
        );
        assert_eq!(
            stream_check(&h, &[w], WitnessModel::ProcessOrder),
            Err(WitnessViolation::MissingCompleteOp(r))
        );
    }

    #[test]
    fn streaming_detects_process_order_inversion() {
        let mut b = HistoryBuilder::new();
        let a = b.write(1, 1, 5, 0, 10);
        let c = b.write(1, 2, 6, 20, 30);
        let h = b.build();
        let err = stream_check(&h, &[c, a], WitnessModel::ProcessOrder).unwrap_err();
        assert_eq!(
            err,
            WitnessViolation::OrderViolation { kind: OrderKind::ProcessOrder, first: a, second: c }
        );
    }

    #[test]
    fn streaming_detects_message_edge_inversion() {
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 7, 0, 10);
        let r = b.read(2, 1, 0, 40, 50);
        b.message(1, 15, 2, 20);
        let h = b.build();
        agree(&h, &[r, w], WitnessModel::Regular);
        agree(&h, &[w, r], WitnessModel::Regular);
        let err = stream_check(&h, &[r, w], WitnessModel::Regular).unwrap_err();
        assert!(matches!(err, WitnessViolation::OrderViolation { .. }));
    }

    #[test]
    fn streaming_detects_reads_from_inversion() {
        let mut b = HistoryBuilder::new();
        let w1 = b.write(1, 1, 1, 0, 100);
        let w2 = b.write(2, 1, 2, 0, 100);
        let r = b.read(3, 1, 2, 0, 100);
        let h = b.build();
        agree(&h, &[w1, w2, r], WitnessModel::Regular);
        agree(&h, &[r, w1, w2], WitnessModel::Regular);
        agree(&h, &[w1, r, w2], WitnessModel::Regular);
    }

    #[test]
    fn streaming_matches_regular_write_sweeps() {
        // Global write-write and per-key write-read real-time constraints.
        let mut b = HistoryBuilder::new();
        let w1 = b.write(1, 1, 1, 0, 10);
        let w2 = b.write(2, 2, 2, 20, 30);
        let r = b.read(3, 1, 1, 40, 50);
        let h = b.build();
        agree(&h, &[w1, w2, r], WitnessModel::Regular);
        agree(&h, &[w2, w1, r], WitnessModel::Regular);
        agree(&h, &[w1, r, w2], WitnessModel::Regular);
        agree(&h, &[r, w1, w2], WitnessModel::Regular);
    }

    #[test]
    fn streaming_matches_real_time_sweep() {
        // Figure 2: regular accepts (r_old, w, r_new); real time rejects it.
        let mut b = HistoryBuilder::new();
        let w = b.write(2, 1, 1, 0, 100);
        let r_new = b.read(3, 1, 1, 10, 20);
        let r_old = b.read(1, 1, 0, 30, 40);
        let h = b.build();
        agree(&h, &[r_old, w, r_new], WitnessModel::Regular);
        agree(&h, &[r_old, w, r_new], WitnessModel::RealTime);
        agree(&h, &[w, r_new, r_old], WitnessModel::RealTime);
    }

    #[test]
    fn streaming_allows_incomplete_ops_in_witness() {
        let mut b = HistoryBuilder::new();
        let pw = b.pending_write(1, 1, 9, 0);
        let r = b.read(2, 1, 9, 10, 20);
        let h = b.build();
        agree(&h, &[pw, r], WitnessModel::Regular);
        agree(&h, &[r], WitnessModel::Regular);
    }

    #[test]
    fn window_buffer_releases_contiguous_runs() {
        let mut buf: WindowBuffer<&str> = WindowBuffer::new();
        buf.push(2, "c");
        assert!(buf.pop_ready().is_empty());
        buf.push(0, "a");
        assert_eq!(buf.pop_ready(), vec!["a"]);
        buf.push(1, "b");
        assert_eq!(buf.pop_ready(), vec!["b", "c"]);
        assert_eq!(buf.buffered(), 0);
        assert_eq!(buf.peak_buffered(), 2);
        assert_eq!(buf.next_pos(), 3);
    }
}
