//! Search-based checkers for the paper's consistency models.
//!
//! | Model | Constraint set on the witness sequence |
//! |---|---|
//! | Strict serializability / linearizability | real-time order between every pair of operations |
//! | RSS / RSC | causal order, plus: every completed write precedes (in `S`) every conflicting read-only operation and every write that follows it in real time |
//! | PO serializability / sequential consistency | each process's order |
//!
//! In every case the witness sequence must also be legal with respect to the
//! sequential specification (enforced by replay during the search), which is
//! the "equivalent to `complete(α₂)`" clause of the definitions.

use serde::{Deserialize, Serialize};

use crate::checker::search::{Constraints, SearchError};
use crate::history::{History, HistoryIndex};
use crate::order::CausalOrder;
use crate::types::OpId;

/// A consistency model checkable by the exact search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Model {
    /// Strict serializability (transactions) \[Papadimitriou 1979\].
    StrictSerializability,
    /// Linearizability (single operations) \[Herlihy & Wing 1990\].
    Linearizability,
    /// Regular sequential serializability — this paper.
    RegularSequentialSerializability,
    /// Regular sequential consistency — this paper.
    RegularSequentialConsistency,
    /// Process-ordered serializability \[Daudjee & Salem 2004, Lu et al. 2016\].
    ProcessOrderedSerializability,
    /// Sequential consistency \[Lamport 1979\].
    SequentialConsistency,
}

impl Model {
    /// Short display name used by the Table 1 / Appendix A harnesses.
    pub fn name(&self) -> &'static str {
        match self {
            Model::StrictSerializability => "Strict Serializability",
            Model::Linearizability => "Linearizability",
            Model::RegularSequentialSerializability => "RSS",
            Model::RegularSequentialConsistency => "RSC",
            Model::ProcessOrderedSerializability => "PO Serializability",
            Model::SequentialConsistency => "Sequential Consistency",
        }
    }

    /// True for the transactional models (the distinction is presentational:
    /// the constraint structure is shared with the non-transactional twin).
    pub fn is_transactional(&self) -> bool {
        matches!(
            self,
            Model::StrictSerializability
                | Model::RegularSequentialSerializability
                | Model::ProcessOrderedSerializability
        )
    }
}

/// The outcome of a model check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckOutcome {
    /// Whether the history satisfies the model.
    pub satisfied: bool,
    /// A witness sequence when satisfied.
    pub witness: Option<Vec<OpId>>,
}

impl CheckOutcome {
    fn satisfied(witness: Vec<OpId>) -> Self {
        CheckOutcome { satisfied: true, witness: Some(witness) }
    }

    fn violated() -> Self {
        CheckOutcome { satisfied: false, witness: None }
    }
}

/// Real-time constraint edges between *all* pairs of operations (strict
/// serializability / linearizability).
pub fn real_time_edges(history: &History) -> Vec<(OpId, OpId)> {
    real_time_edges_indexed(&HistoryIndex::new(history))
}

fn real_time_edges_indexed(index: &HistoryIndex) -> Vec<(OpId, OpId)> {
    let n = index.len();
    let mut edges = Vec::new();
    for a in 0..n {
        if !index.is_complete(a) {
            continue;
        }
        for b in 0..n {
            if a != b && index.real_time_precedes(a, b) {
                edges.push((OpId(a as u32), OpId(b as u32)));
            }
        }
    }
    edges
}

/// The "regular" write constraint of RSS/RSC (clause 3 of the definitions):
/// for every completed mutating operation `w` and every operation `t` that is
/// either a conflicting read-only operation or itself mutating, if `w`
/// finishes before `t` starts then `w` must precede `t` in the sequence.
pub fn regular_write_edges(history: &History) -> Vec<(OpId, OpId)> {
    regular_write_edges_indexed(&HistoryIndex::new(history))
}

fn regular_write_edges_indexed(index: &HistoryIndex) -> Vec<(OpId, OpId)> {
    let n = index.len();
    let mut edges = Vec::new();
    for w in 0..n {
        if !index.is_mutating(w) || !index.is_complete(w) {
            continue;
        }
        let written = index.write_key_ids(w);
        for t in 0..n {
            if t == w || !index.real_time_precedes(w, t) {
                continue;
            }
            let conflicting_read = index.is_read_only(t)
                && index.service_raw(t) == index.service_raw(w)
                && index.read_key_ids(t).iter().any(|k| written.contains(k));
            if index.is_mutating(t) || conflicting_read {
                edges.push((OpId(w as u32), OpId(t as u32)));
            }
        }
    }
    edges
}

/// Builds the constraint set for a model over a history.
pub fn constraints_for(history: &History, model: Model) -> Constraints {
    constraints_for_with(history, &HistoryIndex::new(history), model)
}

/// [`constraints_for`] over a prebuilt index (shared with the search).
pub fn constraints_for_with(history: &History, index: &HistoryIndex, model: Model) -> Constraints {
    match model {
        Model::StrictSerializability | Model::Linearizability => {
            Constraints::from_edges(real_time_edges_indexed(index))
        }
        Model::RegularSequentialSerializability | Model::RegularSequentialConsistency => {
            let mut edges = CausalOrder::new(history).direct_edges().to_vec();
            edges.extend(regular_write_edges_indexed(index));
            Constraints::from_edges(edges)
        }
        Model::ProcessOrderedSerializability | Model::SequentialConsistency => {
            Constraints::from_edges(index.process_order_pairs().collect())
        }
    }
}

/// Checks whether `history` satisfies `model`.
///
/// Runs the full certification cascade: the saturation prefilter derives
/// forced order edges (a cycle refutes without search), communication
/// components are searched independently and their witnesses merged, and only
/// then does the exponential search run — per component, over the saturated
/// constraint set.
///
/// # Errors
///
/// The `Result` is kept for signature stability; the exact search no longer
/// has a size ceiling. It is still exponential in the worst case — use the
/// certificate checkers for protocol-scale histories.
pub fn check(history: &History, model: Model) -> Result<CheckOutcome, SearchError> {
    let index = HistoryIndex::new(history);
    let constraints = constraints_for_with(history, &index, model);
    let required = index.complete_ids();
    let optional = index.pending_mutations();
    let cross = crate::checker::decompose::CrossEdges::for_model(model);
    match crate::checker::decompose::find_sequence_decomposed(
        history,
        &index,
        required,
        optional,
        &constraints,
        cross,
    )? {
        Some(witness) => Ok(CheckOutcome::satisfied(witness)),
        None => Ok(CheckOutcome::violated()),
    }
}

/// Convenience wrapper asserting satisfaction, for use in tests and examples.
pub fn satisfies(history: &History, model: Model) -> bool {
    check(history, model).map(|o| o.satisfied).unwrap_or(false)
}

/// Checks a history against a *composition of independently consistent
/// services*: each service's sub-history is checked on its own.
///
/// This is what an application actually gets when it uses several services
/// whose consistency model is not composable (Section 2.5): PO serializability
/// and sequential consistency only constrain each service individually, so the
/// cross-service ordering that invariant I2 relies on is lost. For composable
/// models (strict serializability) and for RSS/RSC services composed through
/// real-time fences, the composed check coincides with the composite check.
pub fn check_composed(history: &History, model: Model) -> Result<CheckOutcome, SearchError> {
    let mut witness_all = Vec::new();
    for service in history.services() {
        let sub = history.project_service(service);
        let outcome = check(&sub, model)?;
        if !outcome.satisfied {
            return Ok(CheckOutcome::violated());
        }
        if let Some(w) = outcome.witness {
            witness_all.extend(w);
        }
    }
    Ok(CheckOutcome { satisfied: true, witness: Some(witness_all) })
}

/// Convenience wrapper over [`check_composed`].
pub fn satisfies_composed(history: &History, model: Model) -> bool {
    check_composed(history, model).map(|o| o.satisfied).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;

    /// The example from Figure 2 of the paper: P2 writes x=1; P1 reads x=0
    /// concurrently with the write; P3 reads x=1 concurrently with the write.
    /// This satisfies RSS (and RSC) but not strict serializability when the
    /// read of 0 follows (in real time) the read of 1.
    fn figure_2_history() -> crate::history::History {
        let mut b = HistoryBuilder::new();
        // w1(x=1) spans [0, 100].
        b.write(2, 1, 1, 0, 100);
        // r2(x=1) happens early within the write's span.
        b.read(3, 1, 1, 10, 20);
        // r1(x=0) happens later, still concurrent with the write.
        b.read(1, 1, 0, 30, 40);
        b.build()
    }

    #[test]
    fn figure_2_rsc_but_not_linearizable() {
        let h = figure_2_history();
        assert!(satisfies(&h, Model::RegularSequentialConsistency));
        assert!(satisfies(&h, Model::SequentialConsistency));
        // Strict serializability / linearizability forbid it: r2 returned the
        // new value and finished before r1 started, so r1 must also see it.
        assert!(!satisfies(&h, Model::Linearizability));
        assert!(!satisfies(&h, Model::StrictSerializability));
    }

    #[test]
    fn stale_read_after_completed_write_violates_rsc() {
        let mut b = HistoryBuilder::new();
        b.write(1, 1, 1, 0, 10);
        b.read(2, 1, 0, 20, 30); // stale read strictly after the write completed
        let h = b.build();
        assert!(!satisfies(&h, Model::RegularSequentialConsistency));
        assert!(!satisfies(&h, Model::Linearizability));
        // Sequential consistency allows stale reads.
        assert!(satisfies(&h, Model::SequentialConsistency));
    }

    #[test]
    fn causal_violation_breaks_rsc_but_not_sequential_consistency_with_messages() {
        // Alice writes a photo, calls Bob (message), Bob reads and misses it:
        // anomaly A2. RSC forbids it; sequential consistency does not capture
        // the message so it allows it.
        let mut b = HistoryBuilder::new();
        b.write(1, 1, 7, 0, 10);
        b.read(2, 1, 0, 40, 50);
        b.message(1, 15, 2, 20);
        let h = b.build();
        assert!(!satisfies(&h, Model::RegularSequentialConsistency));
        assert!(satisfies(&h, Model::SequentialConsistency));
    }

    #[test]
    fn writes_must_respect_real_time_under_rsc() {
        // Two sequential writes by different processes, then a late read that
        // sees only the first: under RSC the second write (which follows the
        // first in real time) must be ordered after it, and the read conflicts
        // with both, so reading the older value after both completed is illegal.
        let mut b = HistoryBuilder::new();
        b.write(1, 1, 1, 0, 10);
        b.write(2, 1, 2, 20, 30);
        b.read(3, 1, 1, 40, 50);
        let h = b.build();
        assert!(!satisfies(&h, Model::RegularSequentialConsistency));
        // PO serializability is fine with it.
        assert!(satisfies(&h, Model::ProcessOrderedSerializability));
    }

    #[test]
    fn transactional_models_on_figure_4_style_history() {
        // CW commits writes to two keys; CR1 reads them during the commit;
        // CR2 reads the old values afterwards (still concurrent with CW's txn).
        let mut b = HistoryBuilder::new();
        b.rw_txn(1, &[], &[(1, 10), (2, 20)], 0, 100);
        b.ro_txn(2, &[(1, 10), (2, 20)], 10, 30);
        b.ro_txn(3, &[(1, 0), (2, 0)], 40, 60);
        let h = b.build();
        assert!(satisfies(&h, Model::RegularSequentialSerializability));
        assert!(!satisfies(&h, Model::StrictSerializability));
    }

    #[test]
    fn incomplete_write_may_or_may_not_be_visible() {
        let mut b = HistoryBuilder::new();
        b.pending_write(1, 1, 5, 0);
        b.read(2, 1, 5, 10, 20);
        b.read(3, 1, 0, 10, 20);
        let h = b.build();
        // One reader sees the pending write, the other does not; both outcomes
        // are simultaneously explainable only if the two reads can be ordered
        // around the write, which linearizability allows here because the
        // reads are concurrent with... each other? They're not: both [10,20].
        // They are concurrent, so this is linearizable.
        assert!(satisfies(&h, Model::Linearizability));
        assert!(satisfies(&h, Model::RegularSequentialConsistency));
    }

    #[test]
    fn lost_update_is_not_serializable_in_any_model() {
        // Two rmw-style rw-transactions both read 0 and write 1 and 2; a later
        // read sees only 2 — classic lost update, no sequential order explains
        // both reads of 0.
        let mut b = HistoryBuilder::new();
        b.rw_txn(1, &[(1, 0)], &[(1, 1)], 0, 10);
        b.rw_txn(2, &[(1, 0)], &[(1, 2)], 0, 10);
        b.ro_txn(3, &[(1, 2)], 20, 30);
        let h = b.build();
        assert!(!satisfies(&h, Model::ProcessOrderedSerializability));
        assert!(!satisfies(&h, Model::RegularSequentialSerializability));
        assert!(!satisfies(&h, Model::StrictSerializability));
    }

    #[test]
    fn model_metadata() {
        assert_eq!(Model::RegularSequentialSerializability.name(), "RSS");
        assert!(Model::StrictSerializability.is_transactional());
        assert!(!Model::Linearizability.is_transactional());
    }
}
