//! Saturation prefilter: stage 1 of the certification cascade.
//!
//! Before the exponential sequence search runs, this module *saturates* the
//! constraint set the way polynomial consistency-checking algorithms do
//! (dbcop's saturation over the visibility relation; Biswas & Enea): it
//! derives every order edge that must hold in *any* legal sequence and closes
//! the set transitively to a fixed point. Three things fall out:
//!
//! 1. **Early counterexamples.** A cycle among the required operations means
//!    no legal sequence exists for *any* subset of the optional operations —
//!    the checker reports unsatisfiable without entering the search at all.
//! 2. **A smaller branching set.** Every derived edge becomes a hard
//!    predecessor constraint in the compiled
//!    [`ConstraintGraph`](crate::checker::search::ConstraintGraph) rows, so the
//!    backtracking search only enumerates orders saturation left genuinely
//!    free.
//! 3. **Soundness by construction.** Edges are derived only between
//!    *required* (always-present) operations, so transitive composition is
//!    valid for every optional subset; the derived set never excludes a legal
//!    witness.
//!
//! Two inference rules run on top of the base (model) constraints:
//!
//! * **Unique-writer reads-from**: if a required operation observes a
//!   non-null value that exactly one operation in the whole history writes to
//!   that `(service, key)`, the writer must precede the reader. (Register
//!   reads match register writers; dequeues match enqueuers.)
//! * **Inferred write-write order**: with `w → r` known by the rule above,
//!   any other required register write `w2` to the same key satisfies
//!   `w2 < r ⇒ w2 < w` (otherwise `r` would observe `w2`'s value) and
//!   `w < w2 ⇒ r < w2` (otherwise `w2` would overwrite what `r` observed).
//!
//! Both rules mirror the sequential specification's last-writer-wins register
//! semantics ([`crate::spec`]), so they are exact implications, not
//! heuristics; the differential property tests assert verdict equivalence
//! with [`crate::checker::search::find_sequence_reference`].

use crate::checker::search::{find_sequence_with, Constraints, SearchError};
use crate::hashing::FxBuildHasher;
use crate::history::{HistoryIndex, KindTag};
use crate::opset::OpSet;
use crate::types::OpId;
use std::collections::HashMap;

/// Required-set size above which [`find_sequence_saturated`] skips saturation
/// entirely: the closure rows are `n²` bits and the Floyd–Warshall sweep is
/// `O(n³/64)`, which stops being a *pre*filter well before protocol scale
/// (those histories go through the witness checkers instead).
const MAX_SATURATION_OPS: usize = 4096;

/// Required-set size up to which the full transitive closure is materialized
/// into the search constraints (denser predecessor rows prune harder);
/// beyond it only the directly inferred edges are added.
const MAX_CLOSURE_MATERIALIZE_OPS: usize = 1024;

/// The result of saturating a constraint set over one required-op universe.
#[derive(Debug, Clone)]
pub struct Saturation {
    /// The required ops, in the caller's order (local index space).
    ids: Vec<OpId>,
    /// Transitively closed predecessor rows over local indices.
    preds: Vec<OpSet>,
    /// Direct edges (base ∪ inferred), local indices, for cycle extraction.
    direct: Vec<(u32, u32)>,
    /// Number of edges added by the inference rules (not in the base set).
    inferred: usize,
    /// Closure/inference rounds until the fixed point.
    rounds: usize,
    /// True if the saturated graph has a cycle: unsatisfiable, no search
    /// needed.
    cyclic: bool,
}

impl Saturation {
    /// True if saturation proved the required set unsatisfiable (a cycle in
    /// edges that must hold in every legal sequence).
    pub fn is_cyclic(&self) -> bool {
        self.cyclic
    }

    /// Number of edges the inference rules added beyond the base constraints.
    pub fn inferred_edges(&self) -> usize {
        self.inferred
    }

    /// Closure/inference rounds run until the fixed point.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// A concrete constraint cycle when [`Saturation::is_cyclic`], as a
    /// sequence of ops each of which must precede the next (and the last must
    /// precede the first) — the "immediate counterexample" the prefilter
    /// reports instead of searching.
    pub fn cycle(&self) -> Option<Vec<OpId>> {
        if !self.cyclic {
            return None;
        }
        let n = self.ids.len();
        let start = (0..n).find(|&i| self.preds[i].contains(i))?;
        // DFS over the direct edges from `start` back to itself; a path must
        // exist because the closure says `start` reaches itself.
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, b) in &self.direct {
            adj[a as usize].push(b);
        }
        let mut path = vec![start as u32];
        let mut visited = vec![false; n];
        if self.cycle_dfs(start as u32, start as u32, &adj, &mut visited, &mut path) {
            Some(path.iter().map(|&i| self.ids[i as usize]).collect())
        } else {
            None
        }
    }

    fn cycle_dfs(
        &self,
        at: u32,
        target: u32,
        adj: &[Vec<u32>],
        visited: &mut [bool],
        path: &mut Vec<u32>,
    ) -> bool {
        for &next in &adj[at as usize] {
            if next == target {
                return true;
            }
            if !visited[next as usize] {
                visited[next as usize] = true;
                path.push(next);
                if self.cycle_dfs(next, target, adj, visited, path) {
                    return true;
                }
                path.pop();
            }
        }
        false
    }

    /// The base constraints augmented with every saturated edge, ready to
    /// compile into the search's [`ConstraintGraph`]. Edges involving
    /// optional ops in `base` are preserved untouched.
    ///
    /// [`ConstraintGraph`]: crate::checker::search::ConstraintGraph
    pub fn augmented_constraints(&self, base: &Constraints) -> Constraints {
        let n = self.ids.len();
        let mut edges = Vec::new();
        if n <= MAX_CLOSURE_MATERIALIZE_OPS {
            for (i, row) in self.preds.iter().enumerate() {
                for j in row.iter() {
                    if j != i {
                        edges.push((self.ids[j], self.ids[i]));
                    }
                }
            }
        } else {
            edges.extend(
                self.direct.iter().map(|&(a, b)| (self.ids[a as usize], self.ids[b as usize])),
            );
        }
        let mut augmented = base.clone();
        augmented.extend(&Constraints::from_edges(edges));
        augmented
    }
}

/// How many writers of one `(dense key, value)` pair the history contains.
#[derive(Clone, Copy)]
enum WriterCount {
    One(u32),
    Many,
}

/// Register-like kinds: ops whose reads/writes go through the last-writer-wins
/// key-value half of the specification. Queue ops (FIFO semantics) and fences
/// are excluded from register inference.
fn is_register_read(tag: KindTag) -> bool {
    matches!(tag, KindTag::Read | KindTag::Rmw | KindTag::RoTxn | KindTag::RwTxn)
}

fn is_register_write(tag: KindTag) -> bool {
    matches!(tag, KindTag::Write | KindTag::Rmw | KindTag::RwTxn)
}

/// Saturates `base` over the `required` ops of `index` (see the module docs
/// for the derivation rules). The required ops must be distinct; ops outside
/// `required` participate only as evidence (writer uniqueness is judged over
/// the *whole* history, so a pending write to the same key suppresses the
/// unique-writer rule rather than unsoundly firing it).
pub fn saturate(index: &HistoryIndex, required: &[OpId], base: &Constraints) -> Saturation {
    let n = required.len();
    let mut local = vec![u32::MAX; index.len()];
    for (li, id) in required.iter().enumerate() {
        local[id.index()] = li as u32;
    }

    let mut preds: Vec<OpSet> = vec![OpSet::empty(n); n];
    let mut direct: Vec<(u32, u32)> = Vec::new();
    for &(a, b) in base.edges() {
        let (la, lb) = (
            local.get(a.index()).copied().unwrap_or(u32::MAX),
            local.get(b.index()).copied().unwrap_or(u32::MAX),
        );
        if la != u32::MAX && lb != u32::MAX {
            preds[lb as usize].insert(la as usize);
            direct.push((la, lb));
        }
    }

    // Writer-uniqueness maps over the WHOLE history (required or not):
    // (dense key, value) -> the single writing op, or Many.
    let mut register_writers: HashMap<(u32, u64), WriterCount, FxBuildHasher> = HashMap::default();
    let mut queue_writers: HashMap<(u32, u64), WriterCount, FxBuildHasher> = HashMap::default();
    // Required register writers per dense key, for the write-write rule.
    let mut key_writers: HashMap<u32, Vec<u32>, FxBuildHasher> = HashMap::default();
    for (op, &op_local) in local.iter().enumerate() {
        let tag = index.kind_tag(op);
        let is_reg = is_register_write(tag);
        let is_q = tag == KindTag::Enqueue;
        if !is_reg && !is_q {
            continue;
        }
        for (k, v) in index.write_key_ids(op).iter().zip(index.write_values(op)) {
            if *v == 0 {
                continue;
            }
            let map = if is_reg { &mut register_writers } else { &mut queue_writers };
            map.entry((*k, *v))
                .and_modify(|c| *c = WriterCount::Many)
                .or_insert(WriterCount::One(op as u32));
        }
        if is_reg && op_local != u32::MAX {
            for k in index.write_key_ids(op) {
                key_writers.entry(*k).or_default().push(op_local);
            }
        }
    }

    // Unique-writer reads-from edges, kept around for the write-write rule:
    // (reader local, writer local, dense key).
    let mut rf: Vec<(u32, u32, u32)> = Vec::new();
    let mut inferred = 0usize;
    for &r in required {
        let op = r.index();
        if !index.has_result(op) || index.has_unsat_result(op) {
            continue;
        }
        let tag = index.kind_tag(op);
        let map = if is_register_read(tag) {
            &register_writers
        } else if tag == KindTag::Dequeue {
            &queue_writers
        } else {
            continue;
        };
        let lr = local[op];
        for (k, v) in index.read_key_ids(op).iter().zip(index.read_observations(op)) {
            if *v == 0 {
                continue;
            }
            if let Some(WriterCount::One(w)) = map.get(&(*k, *v)) {
                let lw = local[*w as usize];
                if lw != u32::MAX && lw != lr {
                    if !preds[lr as usize].contains(lw as usize) {
                        preds[lr as usize].insert(lw as usize);
                        direct.push((lw, lr));
                        inferred += 1;
                    }
                    if is_register_read(tag) {
                        rf.push((lr, lw, *k));
                    }
                }
            }
        }
    }

    // Fixed point: transitively close, infer write-write edges from the
    // closure, repeat until inference adds nothing.
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        close(&mut preds);
        let mut added = false;
        for &(lr, lw, key) in &rf {
            let Some(writers) = key_writers.get(&key) else { continue };
            for &w2 in writers {
                if w2 == lw || w2 == lr {
                    continue;
                }
                // w2 < r forces w2 < w: the reader must observe w last.
                if preds[lr as usize].contains(w2 as usize)
                    && !preds[lw as usize].contains(w2 as usize)
                {
                    preds[lw as usize].insert(w2 as usize);
                    direct.push((w2, lw));
                    inferred += 1;
                    added = true;
                }
                // w < w2 forces r < w2: w2 must not overwrite before r reads.
                if preds[w2 as usize].contains(lw as usize)
                    && !preds[w2 as usize].contains(lr as usize)
                {
                    preds[w2 as usize].insert(lr as usize);
                    direct.push((lr, w2));
                    inferred += 1;
                    added = true;
                }
            }
        }
        if !added {
            break;
        }
    }

    let cyclic = (0..n).any(|i| preds[i].contains(i));
    Saturation { ids: required.to_vec(), preds, direct, inferred, rounds, cyclic }
}

/// Transitive closure of the predecessor rows in place: one Floyd–Warshall
/// sweep over intermediate nodes (`preds[i] ⊇ preds[k]` whenever `k ∈
/// preds[i]`), `O(n³/64)` word operations.
fn close(preds: &mut [OpSet]) {
    let n = preds.len();
    for k in 0..n {
        let row_k = preds[k].clone();
        for (i, row) in preds.iter_mut().enumerate() {
            if i != k && row.contains(k) {
                row.union_with(&row_k);
            }
        }
    }
}

/// [`find_sequence_with`] behind the saturation prefilter: saturate the
/// constraints over `required`, return unsatisfiable immediately on a
/// saturation cycle, and otherwise run the search with the (strictly
/// stronger, verdict-preserving) augmented constraint set.
///
/// # Errors
///
/// Propagates [`SearchError`] from the underlying search (kept for signature
/// stability; the optimized search has no size ceiling).
pub fn find_sequence_saturated(
    index: &HistoryIndex,
    required: &[OpId],
    optional: &[OpId],
    constraints: &Constraints,
) -> Result<Option<Vec<OpId>>, SearchError> {
    if required.len() > MAX_SATURATION_OPS {
        return find_sequence_with(index, required, optional, constraints);
    }
    let sat = saturate(index, required, constraints);
    if sat.is_cyclic() {
        return Ok(None);
    }
    let augmented = sat.augmented_constraints(constraints);
    find_sequence_with(index, required, optional, &augmented)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::models::{constraints_for_with, Model};
    use crate::history::{History, HistoryBuilder, HistoryIndex};

    fn saturated(h: &History, model: Model) -> (HistoryIndex, Constraints, Saturation) {
        let index = HistoryIndex::new(h);
        let cons = constraints_for_with(h, &index, model);
        let sat = saturate(&index, &h.complete_ids(), &cons);
        (index, cons, sat)
    }

    #[test]
    fn infers_reads_from_edge_for_unique_writer() {
        // Writer and reader fully concurrent: no base edge orders them, but
        // the reader observes the unique writer's value.
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 7, 0, 100);
        let r = b.read(2, 1, 7, 0, 100);
        let h = b.build();
        let (_, _, sat) = saturated(&h, Model::SequentialConsistency);
        assert!(!sat.is_cyclic());
        assert!(sat.inferred_edges() >= 1);
        let aug = sat.augmented_constraints(&Constraints::new());
        assert!(aug.edges().contains(&(w, r)), "w -> r inferred: {:?}", aug.edges());
    }

    #[test]
    fn duplicate_writers_suppress_the_unique_writer_rule() {
        let mut b = HistoryBuilder::new();
        b.write(1, 1, 7, 0, 100);
        b.write(3, 1, 7, 0, 100); // second writer of the same value
        b.read(2, 1, 7, 0, 100);
        let h = b.build();
        let (_, _, sat) = saturated(&h, Model::SequentialConsistency);
        assert_eq!(sat.inferred_edges(), 0, "ambiguous writer must not fire the rule");
    }

    #[test]
    fn pending_writer_of_same_value_suppresses_uniqueness() {
        let mut b = HistoryBuilder::new();
        b.write(1, 1, 7, 0, 100);
        b.pending_write(3, 1, 7, 0); // pending write of the same (key, value)
        b.read(2, 1, 7, 0, 100);
        let h = b.build();
        let (_, _, sat) = saturated(&h, Model::SequentialConsistency);
        assert_eq!(sat.inferred_edges(), 0);
    }

    #[test]
    fn saturation_cycle_detected_without_search() {
        // P1: w(x=1); r(y=2)   P2: w(y=2); r(x=1)
        // Process order + inferred unique-writer edges form a cycle under
        // sequential consistency only if each read precedes the other's
        // write; here each process reads the OTHER's value before... build
        // an explicit cycle: r_a observes w_b's value with r_a before w_a in
        // process order, and symmetrically, forcing w_b < r_a < w_a (PO),
        // w_a < r_b < w_b (PO) — a cycle.
        let mut b = HistoryBuilder::new();
        let r_a = b.read(1, 2, 20, 0, 5); // P1 reads y=20 (written only by P2's write)
        let w_a = b.write(1, 1, 10, 10, 15); // P1 writes x=10
        let r_b = b.read(2, 1, 10, 0, 5); // P2 reads x=10
        let w_b = b.write(2, 2, 20, 10, 15); // P2 writes y=20
        let h = b.build();
        let (_, _, sat) = saturated(&h, Model::SequentialConsistency);
        assert!(sat.is_cyclic(), "w_b < r_a < w_a and w_a < r_b < w_b is cyclic");
        let cycle = sat.cycle().expect("counterexample cycle");
        assert!(cycle.len() >= 2);
        let _ = (r_a, w_a, r_b, w_b);
        // And the saturated search agrees with the plain search's verdict.
        let index = HistoryIndex::new(&h);
        let cons = constraints_for_with(&h, &index, Model::SequentialConsistency);
        assert_eq!(find_sequence_saturated(&index, &h.complete_ids(), &[], &cons).unwrap(), None);
        assert!(find_sequence_with(&index, &h.complete_ids(), &[], &cons).unwrap().is_none());
    }

    #[test]
    fn write_write_inference_orders_overwriter_after_reader() {
        // w1(x=1) -> r(x=1) by unique writer; w2(x=2) ordered before r by
        // process order of... instead: w1 < w2 via real time, so the rule
        // forces r < w2.
        let mut b = HistoryBuilder::new();
        let w1 = b.write(1, 1, 1, 0, 10);
        let w2 = b.write(2, 1, 2, 20, 30); // strictly after w1
        let r = b.read(3, 1, 1, 0, 100); // concurrent with both, observes w1
        let h = b.build();
        let index = HistoryIndex::new(&h);
        let base = Constraints::from_edges(vec![(w1, w2)]);
        let sat = saturate(&index, &h.complete_ids(), &base);
        assert!(!sat.is_cyclic());
        let aug = sat.augmented_constraints(&base);
        assert!(aug.edges().contains(&(w1, r)), "reads-from edge");
        assert!(aug.edges().contains(&(r, w2)), "w1 < w2 forces r < w2: {:?}", aug.edges());
    }

    #[test]
    fn saturated_search_agrees_on_satisfiable_histories() {
        let mut b = HistoryBuilder::new();
        b.write(2, 1, 1, 0, 100);
        b.read(3, 1, 1, 10, 20);
        b.read(1, 1, 0, 30, 40);
        let h = b.build();
        let index = HistoryIndex::new(&h);
        for model in [
            Model::RegularSequentialConsistency,
            Model::SequentialConsistency,
            Model::Linearizability,
        ] {
            let cons = constraints_for_with(&h, &index, model);
            let plain = find_sequence_with(&index, &h.complete_ids(), &[], &cons).unwrap();
            let sat = find_sequence_saturated(&index, &h.complete_ids(), &[], &cons).unwrap();
            assert_eq!(plain.is_some(), sat.is_some(), "{model:?}");
            if let Some(seq) = &sat {
                assert!(crate::spec::check_sequence(&h, seq).is_ok());
            }
        }
    }

    #[test]
    fn queue_inference_matches_fifo_uniqueness() {
        use crate::op::{OpKind, OpResult};
        use crate::types::{Key, ProcessId, ServiceId, Timestamp, Value};
        let mut h = History::new();
        let e = h.add_complete(
            ProcessId(1),
            ServiceId::QUEUE,
            OpKind::Enqueue { queue: Key(1), value: Value(10) },
            Timestamp(0),
            Timestamp(100),
            OpResult::Ack,
        );
        let d = h.add_complete(
            ProcessId(2),
            ServiceId::QUEUE,
            OpKind::Dequeue { queue: Key(1) },
            Timestamp(0),
            Timestamp(100),
            OpResult::Value(Value(10)),
        );
        let index = HistoryIndex::new(&h);
        let sat = saturate(&index, &h.complete_ids(), &Constraints::new());
        let aug = sat.augmented_constraints(&Constraints::new());
        assert!(aug.edges().contains(&(e, d)), "unique enqueuer precedes dequeuer");
    }
}
