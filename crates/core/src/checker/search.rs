//! Exact sequence search under precedence constraints.
//!
//! All of the paper's consistency definitions have the same shape: *there
//! exists a sequence `S` in the service's specification that is equivalent to
//! the completed history and respects a set of precedence constraints* (real
//! time for strict serializability/linearizability, causality plus the
//! "regular" write constraint for RSS/RSC, process order for PO
//! serializability/sequential consistency). This module implements the shared
//! existential search: a backtracking topological enumeration with spec replay
//! and memoization on (scheduled-set, state) pairs.
//!
//! The search is exponential in the worst case (the problem is NP-hard), so it
//! is intended for the small histories used in Table 1, Appendix A, and the
//! property tests — not for full protocol runs, which use the certificate
//! checkers instead.

use std::collections::HashMap;
use std::collections::HashSet;

use crate::history::History;
use crate::spec::SpecState;
use crate::types::OpId;

/// Maximum history size the search accepts (the scheduled-set is a `u128`
/// bitmask).
pub const MAX_SEARCH_OPS: usize = 128;

/// Precedence constraints: `a` must appear before `b` whenever both are in the
/// candidate sequence.
#[derive(Debug, Clone, Default)]
pub struct Constraints {
    edges: Vec<(OpId, OpId)>,
}

impl Constraints {
    /// Creates an empty constraint set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a constraint set from explicit edges.
    pub fn from_edges(edges: Vec<(OpId, OpId)>) -> Self {
        let mut c = Constraints { edges };
        c.edges.sort();
        c.edges.dedup();
        c.edges.retain(|(a, b)| a != b);
        c
    }

    /// Adds an edge `a → b`.
    pub fn add(&mut self, a: OpId, b: OpId) {
        if a != b {
            self.edges.push((a, b));
        }
    }

    /// Merges another constraint set into this one.
    pub fn extend(&mut self, other: &Constraints) {
        self.edges.extend_from_slice(&other.edges);
        self.edges.sort();
        self.edges.dedup();
    }

    /// The constraint edges.
    pub fn edges(&self) -> &[(OpId, OpId)] {
        &self.edges
    }

    /// True if the constraints (restricted to `included`) contain a cycle, in
    /// which case no sequence can satisfy them.
    pub fn has_cycle(&self, included: &[OpId]) -> bool {
        let set: HashSet<OpId> = included.iter().copied().collect();
        // Kahn's algorithm on the restricted graph.
        let mut indegree: HashMap<OpId, usize> = included.iter().map(|&o| (o, 0)).collect();
        let mut adj: HashMap<OpId, Vec<OpId>> = HashMap::new();
        for &(a, b) in &self.edges {
            if set.contains(&a) && set.contains(&b) {
                *indegree.get_mut(&b).expect("b is included") += 1;
                adj.entry(a).or_default().push(b);
            }
        }
        let mut queue: Vec<OpId> = indegree.iter().filter(|(_, &d)| d == 0).map(|(&o, _)| o).collect();
        let mut visited = 0;
        while let Some(o) = queue.pop() {
            visited += 1;
            if let Some(next) = adj.get(&o) {
                for &b in next {
                    let d = indegree.get_mut(&b).expect("b is included");
                    *d -= 1;
                    if *d == 0 {
                        queue.push(b);
                    }
                }
            }
        }
        visited != included.len()
    }
}

/// Searches for a legal sequence containing every operation in `required` and
/// any subset of `optional` (incomplete mutating operations whose effects may
/// or may not have taken place), respecting `constraints` and the sequential
/// specification.
///
/// Returns a witness sequence if one exists, `None` otherwise, or an error if
/// the history is too large for the exact search.
pub fn find_sequence(
    history: &History,
    required: &[OpId],
    optional: &[OpId],
    constraints: &Constraints,
) -> Result<Option<Vec<OpId>>, SearchError> {
    if history.len() > MAX_SEARCH_OPS {
        return Err(SearchError::TooLarge { ops: history.len() });
    }
    // Try subsets of the optional operations, smallest first (the common case
    // is that pending writes need not be included).
    let optional = &optional[..optional.len().min(12)];
    let subsets = 1usize << optional.len();
    for subset in 0..subsets {
        let mut included: Vec<OpId> = required.to_vec();
        for (i, &op) in optional.iter().enumerate() {
            if subset & (1 << i) != 0 {
                included.push(op);
            }
        }
        if constraints.has_cycle(&included) {
            continue;
        }
        if let Some(seq) = search_included(history, &included, constraints) {
            return Ok(Some(seq));
        }
    }
    Ok(None)
}

/// Errors from the exact search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchError {
    /// The history exceeds [`MAX_SEARCH_OPS`]; use the certificate checker.
    TooLarge {
        /// Number of operations in the history.
        ops: usize,
    },
}

fn search_included(history: &History, included: &[OpId], constraints: &Constraints) -> Option<Vec<OpId>> {
    let n = included.len();
    if n == 0 {
        return Some(Vec::new());
    }
    // Map op -> local index.
    let mut local: HashMap<OpId, usize> = HashMap::new();
    for (i, &op) in included.iter().enumerate() {
        local.insert(op, i);
    }
    // preds[i] = bitmask of local indices that must precede i.
    let mut preds = vec![0u128; n];
    for &(a, b) in constraints.edges() {
        if let (Some(&ia), Some(&ib)) = (local.get(&a), local.get(&b)) {
            preds[ib] |= 1 << ia;
        }
    }
    let mut seq = Vec::with_capacity(n);
    let mut seen: HashSet<(u128, u64)> = HashSet::new();
    if backtrack(history, included, &preds, 0, &SpecState::new(), &mut seq, &mut seen) {
        Some(seq)
    } else {
        None
    }
}

#[allow(clippy::too_many_arguments)]

fn backtrack(
    history: &History,
    included: &[OpId],
    preds: &[u128],
    placed_mask: u128,
    state: &SpecState,
    seq: &mut Vec<OpId>,
    seen: &mut HashSet<(u128, u64)>,
) -> bool {
    let n = included.len();
    if seq.len() == n {
        return true;
    }
    if !seen.insert((placed_mask, state.fingerprint())) {
        return false;
    }
    for i in 0..n {
        let bit = 1u128 << i;
        if placed_mask & bit != 0 {
            continue;
        }
        if preds[i] & !placed_mask != 0 {
            continue;
        }
        let op = history.op(included[i]);
        let mut next_state = state.clone();
        let produced = next_state.apply(op.service, &op.kind);
        if let Some(recorded) = &op.result {
            let matches = match &op.kind {
                crate::op::OpKind::Write { .. }
                | crate::op::OpKind::Enqueue { .. }
                | crate::op::OpKind::Fence => true,
                _ => &produced == recorded,
            };
            if !matches {
                continue;
            }
        }
        seq.push(included[i]);
        if backtrack(history, included, preds, placed_mask | bit, &next_state, seq, seen) {
            return true;
        }
        seq.pop();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;
    use crate::order::CausalOrder;

    #[test]
    fn constraints_cycle_detection() {
        let a = OpId(0);
        let b = OpId(1);
        let c = OpId(2);
        let cons = Constraints::from_edges(vec![(a, b), (b, c), (c, a)]);
        assert!(cons.has_cycle(&[a, b, c]));
        assert!(!cons.has_cycle(&[a, b]));
        let acyclic = Constraints::from_edges(vec![(a, b), (b, c)]);
        assert!(!acyclic.has_cycle(&[a, b, c]));
    }

    #[test]
    fn finds_order_for_simple_history() {
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 5, 0, 2);
        let r = b.read(2, 1, 5, 3, 4);
        let h = b.build();
        let cons = Constraints::from_edges(CausalOrder::new(&h).direct_edges().to_vec());
        let seq = find_sequence(&h, &h.complete_ids(), &[], &cons).unwrap().unwrap();
        assert_eq!(seq, vec![w, r]);
    }

    #[test]
    fn detects_unsatisfiable_history() {
        let mut b = HistoryBuilder::new();
        // Read of a value nobody wrote.
        let _r = b.read(1, 1, 99, 0, 2);
        let h = b.build();
        let cons = Constraints::new();
        assert_eq!(find_sequence(&h, &h.complete_ids(), &[], &cons).unwrap(), None);
    }

    #[test]
    fn optional_pending_write_can_justify_read() {
        let mut b = HistoryBuilder::new();
        let pw = b.pending_write(1, 1, 9, 0);
        let r = b.read(2, 1, 9, 10, 12);
        let h = b.build();
        let cons = Constraints::new();
        let seq = find_sequence(&h, &[r], &[pw], &cons).unwrap().unwrap();
        assert_eq!(seq, vec![pw, r]);
    }

    #[test]
    fn constraints_can_make_history_unsatisfiable() {
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 5, 0, 2);
        let r = b.read(2, 1, 0, 3, 4); // reads null
        let h = b.build();
        // Force the write before the read: then the read of null is invalid.
        let cons = Constraints::from_edges(vec![(w, r)]);
        assert_eq!(find_sequence(&h, &h.complete_ids(), &[], &cons).unwrap(), None);
        // Without the constraint the read can be ordered first.
        let free = Constraints::new();
        assert!(find_sequence(&h, &h.complete_ids(), &[], &free).unwrap().is_some());
    }

    #[test]
    fn rejects_oversized_history() {
        let mut b = HistoryBuilder::new();
        for i in 0..130 {
            b.write(1, 1, i + 1, i * 10, i * 10 + 5);
        }
        let h = b.build();
        assert!(matches!(
            find_sequence(&h, &h.complete_ids(), &[], &Constraints::new()),
            Err(SearchError::TooLarge { .. })
        ));
    }
}
