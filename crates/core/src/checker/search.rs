//! Exact sequence search under precedence constraints.
//!
//! All of the paper's consistency definitions have the same shape: *there
//! exists a sequence `S` in the service's specification that is equivalent to
//! the completed history and respects a set of precedence constraints* (real
//! time for strict serializability/linearizability, causality plus the
//! "regular" write constraint for RSS/RSC, process order for PO
//! serializability/sequential consistency). This module implements the shared
//! existential search: a backtracking topological enumeration with spec replay
//! and memoization on (scheduled-set, state) pairs.
//!
//! The search is exponential in the worst case (the problem is NP-hard), so it
//! is intended for the small histories used in Table 1, Appendix A, and the
//! property tests — not for full protocol runs, which use the certificate
//! checkers instead.
//!
//! # Hot-path structure
//!
//! The search runs over *local indices* (positions in the `required` ++
//! `optional` list), never over `OpId`-keyed maps:
//!
//! * [`Constraints`] is an edge list with a sorted/deduplicated invariant;
//!   it is compiled once per [`find_sequence`] call into a
//!   [`ConstraintGraph`] of per-node predecessor/successor bitmasks.
//! * Cycle checks per optional-subset are bitmask Kahn peels on the compiled
//!   graph — no hash maps, no sorting, no allocation in the subset loop.
//! * The backtracking step threads one mutable
//!   [`IndexedSpecState`] with an undo log
//!   instead of cloning the state per node, and the memo table is keyed on
//!   `(placed-mask, state fingerprint)` in an
//!   [`FxHash`](crate::hashing::FxHasher)-hashed set with an O(1)
//!   incrementally-maintained fingerprint.
//!
//! [`find_sequence_reference`] retains the straightforward clone-per-step
//! implementation; the property tests assert the two agree on randomized
//! histories.

use std::collections::HashMap;
use std::collections::HashSet;

use crate::hashing::FxSeenSet;
use crate::history::{History, HistoryIndex};
use crate::spec::{IndexedSpecState, SpecState};
use crate::types::OpId;

/// Maximum history size the search accepts (the scheduled-set is a `u128`
/// bitmask).
pub const MAX_SEARCH_OPS: usize = 128;

/// Maximum number of optional (pending mutating) operations whose subsets are
/// enumerated.
const MAX_OPTIONAL_OPS: usize = 12;

/// Precedence constraints: `a` must appear before `b` whenever both are in the
/// candidate sequence.
///
/// Invariant: the edge list is always sorted, deduplicated, and free of
/// self-loops — [`Constraints::add`], [`Constraints::extend`], and
/// [`Constraints::from_edges`] all maintain it, so consumers of
/// [`Constraints::edges`] never see duplicates and compilation into a
/// [`ConstraintGraph`] never re-sorts.
#[derive(Debug, Clone, Default)]
pub struct Constraints {
    edges: Vec<(OpId, OpId)>,
}

impl Constraints {
    /// Creates an empty constraint set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a constraint set from explicit edges.
    pub fn from_edges(edges: Vec<(OpId, OpId)>) -> Self {
        let mut c = Constraints { edges };
        c.edges.sort_unstable();
        c.edges.dedup();
        c.edges.retain(|(a, b)| a != b);
        c
    }

    /// Adds an edge `a → b`, keeping the sorted/deduplicated invariant.
    pub fn add(&mut self, a: OpId, b: OpId) {
        if a == b {
            return;
        }
        if let Err(pos) = self.edges.binary_search(&(a, b)) {
            self.edges.insert(pos, (a, b));
        }
    }

    /// Merges another constraint set into this one (a sorted-list merge; no
    /// full re-sort).
    pub fn extend(&mut self, other: &Constraints) {
        if other.edges.is_empty() {
            return;
        }
        if self.edges.is_empty() {
            self.edges = other.edges.clone();
            return;
        }
        let mut merged = Vec::with_capacity(self.edges.len() + other.edges.len());
        let (mut i, mut j) = (0, 0);
        while i < self.edges.len() && j < other.edges.len() {
            let next = match self.edges[i].cmp(&other.edges[j]) {
                std::cmp::Ordering::Less => {
                    i += 1;
                    self.edges[i - 1]
                }
                std::cmp::Ordering::Greater => {
                    j += 1;
                    other.edges[j - 1]
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                    self.edges[i - 1]
                }
            };
            merged.push(next);
        }
        merged.extend_from_slice(&self.edges[i..]);
        merged.extend_from_slice(&other.edges[j..]);
        self.edges = merged;
    }

    /// The constraint edges (sorted, deduplicated, no self-loops).
    pub fn edges(&self) -> &[(OpId, OpId)] {
        &self.edges
    }

    /// True if the constraints (restricted to `included`) contain a cycle, in
    /// which case no sequence can satisfy them.
    ///
    /// Not on the hot path (the search uses
    /// [`ConstraintGraph::has_cycle_masked`]); delegates to the reference
    /// Kahn implementation so the repo carries one general-purpose cycle
    /// check.
    pub fn has_cycle(&self, included: &[OpId]) -> bool {
        reference_has_cycle(self, included)
    }
}

/// A constraint set compiled to per-node predecessor bitmasks over the local
/// indices of one search (positions in `required` ++ `optional`).
///
/// Built once per [`find_sequence`] call; all per-subset and per-step work is
/// pure bit arithmetic on it.
#[derive(Debug, Clone)]
pub struct ConstraintGraph {
    /// Number of local nodes (≤ [`MAX_SEARCH_OPS`]).
    n: usize,
    /// `preds[i]`: bitmask of local nodes that must precede node `i`.
    preds: Vec<u128>,
}

impl ConstraintGraph {
    /// Compiles `constraints` over the nodes `ids` (edge endpoints not in
    /// `ids` — including op ids outside the history entirely — are
    /// irrelevant to this search and dropped, matching
    /// [`Constraints::has_cycle`]). `history_len` bounds the op-id space for
    /// the direct-indexed lookup table.
    pub fn compile(constraints: &Constraints, ids: &[OpId], history_len: usize) -> Self {
        debug_assert!(ids.len() <= MAX_SEARCH_OPS);
        let n = ids.len();
        let mut local = vec![u32::MAX; history_len];
        for (li, id) in ids.iter().enumerate() {
            debug_assert_eq!(local[id.index()], u32::MAX, "duplicate op in search set");
            local[id.index()] = li as u32;
        }
        let lookup = |id: OpId| local.get(id.index()).copied().unwrap_or(u32::MAX);
        let mut preds = vec![0u128; n];
        for &(a, b) in constraints.edges() {
            let (la, lb) = (lookup(a), lookup(b));
            if la != u32::MAX && lb != u32::MAX {
                preds[lb as usize] |= 1u128 << la;
            }
        }
        ConstraintGraph { n, preds }
    }

    /// Number of local nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Predecessor mask of node `i`.
    #[inline]
    pub fn preds(&self, i: usize) -> u128 {
        self.preds[i]
    }

    /// True if the graph restricted to `active` contains a cycle: a bitmask
    /// Kahn peel (repeatedly remove nodes with no unremoved predecessors)
    /// with no allocation.
    pub fn has_cycle_masked(&self, active: u128) -> bool {
        let mut remaining = active;
        loop {
            let mut peeled = 0u128;
            let mut scan = remaining;
            while scan != 0 {
                let i = scan.trailing_zeros() as usize;
                let bit = 1u128 << i;
                scan &= scan - 1;
                if self.preds[i] & remaining == 0 {
                    peeled |= bit;
                }
            }
            if peeled == 0 {
                return remaining != 0;
            }
            remaining &= !peeled;
            if remaining == 0 {
                return false;
            }
        }
    }
}

/// Errors from the exact search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchError {
    /// The history exceeds [`MAX_SEARCH_OPS`]; use the certificate checker.
    TooLarge {
        /// Number of operations in the history.
        ops: usize,
    },
}

/// Searches for a legal sequence containing every operation in `required` and
/// any subset of `optional` (incomplete mutating operations whose effects may
/// or may not have taken place), respecting `constraints` and the sequential
/// specification.
///
/// Returns a witness sequence if one exists, `None` otherwise, or an error if
/// the history is too large for the exact search.
pub fn find_sequence(
    history: &History,
    required: &[OpId],
    optional: &[OpId],
    constraints: &Constraints,
) -> Result<Option<Vec<OpId>>, SearchError> {
    if history.len() > MAX_SEARCH_OPS {
        return Err(SearchError::TooLarge { ops: history.len() });
    }
    let index = HistoryIndex::new(history);
    find_sequence_with(&index, required, optional, constraints)
}

/// [`find_sequence`] over a prebuilt [`HistoryIndex`], letting callers that
/// run several searches on one history (the model checkers) share the index.
pub fn find_sequence_with(
    index: &HistoryIndex,
    required: &[OpId],
    optional: &[OpId],
    constraints: &Constraints,
) -> Result<Option<Vec<OpId>>, SearchError> {
    if index.len() > MAX_SEARCH_OPS {
        return Err(SearchError::TooLarge { ops: index.len() });
    }
    // Try subsets of the optional operations, smallest first (the common case
    // is that pending writes need not be included).
    let optional = &optional[..optional.len().min(MAX_OPTIONAL_OPS)];
    let mut ids = Vec::with_capacity(required.len() + optional.len());
    ids.extend_from_slice(required);
    ids.extend_from_slice(optional);
    if ids.len() > MAX_SEARCH_OPS {
        // Only reachable when `required` and `optional` overlap or repeat;
        // the scheduled-set mask cannot represent more than 128 local nodes.
        return Err(SearchError::TooLarge { ops: ids.len() });
    }
    let graph = ConstraintGraph::compile(constraints, &ids, index.len());

    let required_mask = if required.is_empty() { 0 } else { u128::MAX >> (128 - required.len()) };
    let mut searcher = Searcher {
        index,
        graph: &graph,
        ids: &ids,
        state: IndexedSpecState::new(index.num_dense_keys()),
        seen: FxSeenSet::default(),
        seq: Vec::with_capacity(ids.len()),
    };
    let subsets = 1usize << optional.len();
    for subset in 0..subsets {
        // `subset > 0` implies `optional` is non-empty, which (with the
        // length check above) bounds the shift below 128.
        let active = if subset == 0 {
            required_mask
        } else {
            required_mask | ((subset as u128) << required.len())
        };
        if graph.has_cycle_masked(active) {
            continue;
        }
        if searcher.search(active) {
            return Ok(Some(searcher.seq));
        }
    }
    Ok(None)
}

/// One search over a fixed local-index space; holds the mutable state reused
/// across optional-subsets.
struct Searcher<'a> {
    index: &'a HistoryIndex,
    graph: &'a ConstraintGraph,
    ids: &'a [OpId],
    state: IndexedSpecState,
    seen: FxSeenSet,
    seq: Vec<OpId>,
}

impl Searcher<'_> {
    /// Searches for a topological order of `active` that replays legally.
    fn search(&mut self, active: u128) -> bool {
        debug_assert_eq!(self.state.checkpoint(), 0, "state is pristine between subsets");
        self.seen.clear();
        self.seq.clear();
        let found = self.backtrack(active, 0);
        // `seq` keeps the witness on success; the state is always reset for
        // the next subset.
        self.state.rollback(0);
        found
    }

    fn backtrack(&mut self, active: u128, placed: u128) -> bool {
        if placed == active {
            return true;
        }
        if !self.seen.insert((placed, self.state.fingerprint())) {
            return false;
        }
        let mut candidates = active & !placed;
        while candidates != 0 {
            let i = candidates.trailing_zeros() as usize;
            let bit = 1u128 << i;
            candidates &= candidates - 1;
            if self.graph.preds(i) & active & !placed != 0 {
                continue;
            }
            let op = self.ids[i].index();
            let cp = self.state.checkpoint();
            if !self.state.apply_checked(self.index, op) {
                continue;
            }
            self.seq.push(self.ids[i]);
            if self.backtrack(active, placed | bit) {
                return true;
            }
            self.seq.pop();
            self.state.rollback(cp);
        }
        false
    }
}

/// The straightforward reference implementation of [`find_sequence`]: hash
/// maps keyed by `OpId`, a cloned [`SpecState`] per step, and a rebuilt
/// Kahn's-algorithm cycle check per optional subset.
///
/// Retained (not cfg-gated) so the property tests can assert the optimized
/// search agrees with it on randomized histories, and as executable
/// documentation of the definitions.
pub fn find_sequence_reference(
    history: &History,
    required: &[OpId],
    optional: &[OpId],
    constraints: &Constraints,
) -> Result<Option<Vec<OpId>>, SearchError> {
    if history.len() > MAX_SEARCH_OPS {
        return Err(SearchError::TooLarge { ops: history.len() });
    }
    let optional = &optional[..optional.len().min(MAX_OPTIONAL_OPS)];
    let subsets = 1usize << optional.len();
    for subset in 0..subsets {
        let mut included: Vec<OpId> = required.to_vec();
        for (i, &op) in optional.iter().enumerate() {
            if subset & (1 << i) != 0 {
                included.push(op);
            }
        }
        if reference_has_cycle(constraints, &included) {
            continue;
        }
        if let Some(seq) = reference_search_included(history, &included, constraints) {
            return Ok(Some(seq));
        }
    }
    Ok(None)
}

fn reference_has_cycle(constraints: &Constraints, included: &[OpId]) -> bool {
    let set: HashSet<OpId> = included.iter().copied().collect();
    let mut indegree: HashMap<OpId, usize> = included.iter().map(|&o| (o, 0)).collect();
    let mut adj: HashMap<OpId, Vec<OpId>> = HashMap::new();
    for &(a, b) in constraints.edges() {
        if set.contains(&a) && set.contains(&b) {
            *indegree.get_mut(&b).expect("b is included") += 1;
            adj.entry(a).or_default().push(b);
        }
    }
    let mut queue: Vec<OpId> = indegree.iter().filter(|(_, &d)| d == 0).map(|(&o, _)| o).collect();
    let mut visited = 0;
    while let Some(o) = queue.pop() {
        visited += 1;
        if let Some(next) = adj.get(&o) {
            for &b in next {
                let d = indegree.get_mut(&b).expect("b is included");
                *d -= 1;
                if *d == 0 {
                    queue.push(b);
                }
            }
        }
    }
    visited != included.len()
}

fn reference_search_included(
    history: &History,
    included: &[OpId],
    constraints: &Constraints,
) -> Option<Vec<OpId>> {
    let n = included.len();
    if n == 0 {
        return Some(Vec::new());
    }
    let mut local: HashMap<OpId, usize> = HashMap::new();
    for (i, &op) in included.iter().enumerate() {
        local.insert(op, i);
    }
    let mut preds = vec![0u128; n];
    for &(a, b) in constraints.edges() {
        if let (Some(&ia), Some(&ib)) = (local.get(&a), local.get(&b)) {
            preds[ib] |= 1 << ia;
        }
    }
    let mut seq = Vec::with_capacity(n);
    let mut seen: HashSet<(u128, u64)> = HashSet::new();
    if reference_backtrack(history, included, &preds, 0, &SpecState::new(), &mut seq, &mut seen) {
        Some(seq)
    } else {
        None
    }
}

fn reference_backtrack(
    history: &History,
    included: &[OpId],
    preds: &[u128],
    placed_mask: u128,
    state: &SpecState,
    seq: &mut Vec<OpId>,
    seen: &mut HashSet<(u128, u64)>,
) -> bool {
    let n = included.len();
    if seq.len() == n {
        return true;
    }
    if !seen.insert((placed_mask, state.fingerprint())) {
        return false;
    }
    for i in 0..n {
        let bit = 1u128 << i;
        if placed_mask & bit != 0 {
            continue;
        }
        if preds[i] & !placed_mask != 0 {
            continue;
        }
        let op = history.op(included[i]);
        let mut next_state = state.clone();
        let produced = next_state.apply(op.service, &op.kind);
        if let Some(recorded) = &op.result {
            let matches = match &op.kind {
                crate::op::OpKind::Write { .. }
                | crate::op::OpKind::Enqueue { .. }
                | crate::op::OpKind::Fence => true,
                _ => &produced == recorded,
            };
            if !matches {
                continue;
            }
        }
        seq.push(included[i]);
        if reference_backtrack(history, included, preds, placed_mask | bit, &next_state, seq, seen)
        {
            return true;
        }
        seq.pop();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;
    use crate::order::CausalOrder;

    #[test]
    fn constraints_cycle_detection() {
        let a = OpId(0);
        let b = OpId(1);
        let c = OpId(2);
        let cons = Constraints::from_edges(vec![(a, b), (b, c), (c, a)]);
        assert!(cons.has_cycle(&[a, b, c]));
        assert!(!cons.has_cycle(&[a, b]));
        let acyclic = Constraints::from_edges(vec![(a, b), (b, c)]);
        assert!(!acyclic.has_cycle(&[a, b, c]));
    }

    #[test]
    fn add_keeps_edges_sorted_and_deduplicated() {
        let mut cons = Constraints::new();
        cons.add(OpId(2), OpId(3));
        cons.add(OpId(0), OpId(1));
        cons.add(OpId(2), OpId(3));
        cons.add(OpId(1), OpId(1)); // self-loop dropped
        assert_eq!(cons.edges(), &[(OpId(0), OpId(1)), (OpId(2), OpId(3))]);
    }

    #[test]
    fn extend_merges_without_duplicates() {
        let mut a = Constraints::from_edges(vec![(OpId(0), OpId(1)), (OpId(4), OpId(5))]);
        let b = Constraints::from_edges(vec![(OpId(0), OpId(1)), (OpId(2), OpId(3))]);
        a.extend(&b);
        assert_eq!(a.edges(), &[(OpId(0), OpId(1)), (OpId(2), OpId(3)), (OpId(4), OpId(5))]);
        let mut empty = Constraints::new();
        empty.extend(&a);
        assert_eq!(empty.edges(), a.edges());
    }

    #[test]
    fn constraint_graph_masked_cycles() {
        let edges = Constraints::from_edges(vec![
            (OpId(0), OpId(1)),
            (OpId(1), OpId(2)),
            (OpId(2), OpId(0)),
        ]);
        let ids = [OpId(0), OpId(1), OpId(2)];
        let graph = ConstraintGraph::compile(&edges, &ids, 3);
        assert!(graph.has_cycle_masked(0b111));
        assert!(!graph.has_cycle_masked(0b011), "dropping one node breaks the cycle");
        assert!(!graph.has_cycle_masked(0));
        assert_eq!(graph.preds(1), 0b001);
    }

    #[test]
    fn finds_order_for_simple_history() {
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 5, 0, 2);
        let r = b.read(2, 1, 5, 3, 4);
        let h = b.build();
        let cons = Constraints::from_edges(CausalOrder::new(&h).direct_edges().to_vec());
        let seq = find_sequence(&h, &h.complete_ids(), &[], &cons).unwrap().unwrap();
        assert_eq!(seq, vec![w, r]);
    }

    #[test]
    fn detects_unsatisfiable_history() {
        let mut b = HistoryBuilder::new();
        // Read of a value nobody wrote.
        let _r = b.read(1, 1, 99, 0, 2);
        let h = b.build();
        let cons = Constraints::new();
        assert_eq!(find_sequence(&h, &h.complete_ids(), &[], &cons).unwrap(), None);
    }

    #[test]
    fn optional_pending_write_can_justify_read() {
        let mut b = HistoryBuilder::new();
        let pw = b.pending_write(1, 1, 9, 0);
        let r = b.read(2, 1, 9, 10, 12);
        let h = b.build();
        let cons = Constraints::new();
        let seq = find_sequence(&h, &[r], &[pw], &cons).unwrap().unwrap();
        assert_eq!(seq, vec![pw, r]);
    }

    #[test]
    fn constraints_can_make_history_unsatisfiable() {
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 5, 0, 2);
        let r = b.read(2, 1, 0, 3, 4); // reads null
        let h = b.build();
        // Force the write before the read: then the read of null is invalid.
        let cons = Constraints::from_edges(vec![(w, r)]);
        assert_eq!(find_sequence(&h, &h.complete_ids(), &[], &cons).unwrap(), None);
        // Without the constraint the read can be ordered first.
        let free = Constraints::new();
        assert!(find_sequence(&h, &h.complete_ids(), &[], &free).unwrap().is_some());
    }

    #[test]
    fn tolerates_constraint_edges_outside_the_history() {
        // Out-of-range op ids in the constraint set must be dropped, not
        // panic — matching `Constraints::has_cycle` and the reference path.
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 5, 0, 2);
        let r = b.read(2, 1, 5, 3, 4);
        let h = b.build();
        let cons = Constraints::from_edges(vec![(OpId(200), w), (w, OpId(300)), (w, r)]);
        let fast = find_sequence(&h, &h.complete_ids(), &[], &cons).unwrap();
        let slow = find_sequence_reference(&h, &h.complete_ids(), &[], &cons).unwrap();
        assert_eq!(fast, slow);
        assert_eq!(fast, Some(vec![w, r]));
    }

    #[test]
    fn handles_history_at_exactly_max_search_ops() {
        // 128 required ops is allowed by the size guard; the scheduled-set
        // mask must not overflow while enumerating subsets.
        let mut b = HistoryBuilder::new();
        for i in 0..128u64 {
            b.write(1, 1, i + 1, i * 10, i * 10 + 5);
        }
        let h = b.build();
        let seq = find_sequence(&h, &h.complete_ids(), &[], &Constraints::new()).unwrap();
        assert_eq!(seq.map(|s| s.len()), Some(128));
    }

    #[test]
    fn rejects_oversized_history() {
        let mut b = HistoryBuilder::new();
        for i in 0..130 {
            b.write(1, 1, i + 1, i * 10, i * 10 + 5);
        }
        let h = b.build();
        assert!(matches!(
            find_sequence(&h, &h.complete_ids(), &[], &Constraints::new()),
            Err(SearchError::TooLarge { .. })
        ));
        assert!(matches!(
            find_sequence_reference(&h, &h.complete_ids(), &[], &Constraints::new()),
            Err(SearchError::TooLarge { .. })
        ));
    }

    #[test]
    fn queue_histories_replay_with_undo() {
        use crate::op::{OpKind, OpResult};
        use crate::types::{Key, ProcessId, ServiceId, Timestamp, Value};
        let mut h = History::new();
        let e1 = h.add_complete(
            ProcessId(1),
            ServiceId::QUEUE,
            OpKind::Enqueue { queue: Key(1), value: Value(10) },
            Timestamp(0),
            Timestamp(1),
            OpResult::Ack,
        );
        let e2 = h.add_complete(
            ProcessId(1),
            ServiceId::QUEUE,
            OpKind::Enqueue { queue: Key(1), value: Value(20) },
            Timestamp(2),
            Timestamp(3),
            OpResult::Ack,
        );
        let d1 = h.add_complete(
            ProcessId(2),
            ServiceId::QUEUE,
            OpKind::Dequeue { queue: Key(1) },
            Timestamp(4),
            Timestamp(5),
            OpResult::Value(Value(10)),
        );
        let d2 = h.add_complete(
            ProcessId(2),
            ServiceId::QUEUE,
            OpKind::Dequeue { queue: Key(1) },
            Timestamp(6),
            Timestamp(7),
            OpResult::Value(Value(20)),
        );
        let cons = Constraints::new();
        let seq = find_sequence(&h, &h.complete_ids(), &[], &cons).unwrap().unwrap();
        // FIFO forces the full order.
        assert_eq!(seq, vec![e1, e2, d1, d2]);
    }

    #[test]
    fn optimized_and_reference_agree_on_small_histories() {
        // A handful of hand-picked shapes; the exhaustive randomized check
        // lives in tests/properties.rs.
        let mut b = HistoryBuilder::new();
        b.write(1, 1, 1, 0, 100);
        b.read(2, 1, 1, 10, 20);
        b.read(3, 1, 0, 30, 40);
        b.pending_write(2, 2, 9, 50);
        let h = b.build();
        let cons = Constraints::from_edges(CausalOrder::new(&h).direct_edges().to_vec());
        let required = h.complete_ids();
        let optional = h.pending_mutations();
        let fast = find_sequence(&h, &required, &optional, &cons).unwrap();
        let slow = find_sequence_reference(&h, &required, &optional, &cons).unwrap();
        assert_eq!(fast.is_some(), slow.is_some());
    }
}
