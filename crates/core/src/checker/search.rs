//! Exact sequence search under precedence constraints.
//!
//! All of the paper's consistency definitions have the same shape: *there
//! exists a sequence `S` in the service's specification that is equivalent to
//! the completed history and respects a set of precedence constraints* (real
//! time for strict serializability/linearizability, causality plus the
//! "regular" write constraint for RSS/RSC, process order for PO
//! serializability/sequential consistency). This module implements the shared
//! existential search: a backtracking topological enumeration with spec replay
//! and memoization on (scheduled-set, state) pairs.
//!
//! The search is exponential in the worst case (the problem is NP-hard), so it
//! is intended for the small histories used in Table 1, Appendix A, and the
//! property tests — not for full protocol runs, which use the certificate
//! checkers instead.
//!
//! # Hot-path structure
//!
//! The search runs over *local indices* (positions in the `required` ++
//! `optional` list), never over `OpId`-keyed maps:
//!
//! * [`Constraints`] is an edge list with a sorted/deduplicated invariant;
//!   it is compiled once per [`find_sequence`] call into a
//!   [`ConstraintGraph`] of per-node predecessor bitset rows.
//! * Scheduled sets, candidate masks, and the memo key are bitsets over the
//!   local indices, and there is no hard size ceiling anymore: histories up
//!   to 128 ops run the monomorphized `u128` fast path (bit-for-bit the old
//!   hot loop, so small searches pay nothing for the lifted ceiling), and
//!   larger histories switch to the word-arena [`OpSet`] representation.
//!   (The old `MAX_SEARCH_OPS` cap survives only in
//!   [`find_sequence_reference`], whose masks are still plain `u128`.)
//! * Cycle checks per optional-subset are bitset Kahn peels on the compiled
//!   graph — no hash maps, no sorting, and no allocation in the subset loop
//!   for ≤128-op histories.
//! * The backtracking step threads one mutable
//!   [`IndexedSpecState`] with an undo log
//!   instead of cloning the state per node, and the memo table is keyed on
//!   `(placed-set, state fingerprint)` in an
//!   [`FxHash`](crate::hashing::FxHasher)-hashed set with an O(1)
//!   incrementally-maintained fingerprint.
//!
//! [`find_sequence_reference`] retains the straightforward clone-per-step
//! implementation; the property tests assert the two agree on randomized
//! histories.

use std::collections::HashMap;
use std::collections::HashSet;

use crate::hashing::FxSeenSet;
use crate::history::{History, HistoryIndex};
use crate::opset::{words_for, OpSet};
use crate::spec::{IndexedSpecState, SpecState};
use crate::types::OpId;

/// Maximum history size [`find_sequence_reference`] accepts (its
/// scheduled-set is still a `u128` bitmask). The optimized search has no size
/// ceiling: [`OpSet`] spills past 128 ops.
pub const MAX_SEARCH_OPS: usize = 128;

/// Maximum number of optional (pending mutating) operations whose subsets are
/// enumerated.
const MAX_OPTIONAL_OPS: usize = 12;

/// Precedence constraints: `a` must appear before `b` whenever both are in the
/// candidate sequence.
///
/// Invariant: the edge list is always sorted, deduplicated, and free of
/// self-loops — [`Constraints::add`], [`Constraints::extend`], and
/// [`Constraints::from_edges`] all maintain it, so consumers of
/// [`Constraints::edges`] never see duplicates and compilation into a
/// [`ConstraintGraph`] never re-sorts.
#[derive(Debug, Clone, Default)]
pub struct Constraints {
    edges: Vec<(OpId, OpId)>,
}

impl Constraints {
    /// Creates an empty constraint set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a constraint set from explicit edges.
    pub fn from_edges(edges: Vec<(OpId, OpId)>) -> Self {
        let mut c = Constraints { edges };
        c.edges.sort_unstable();
        c.edges.dedup();
        c.edges.retain(|(a, b)| a != b);
        c
    }

    /// Adds an edge `a → b`, keeping the sorted/deduplicated invariant.
    pub fn add(&mut self, a: OpId, b: OpId) {
        if a == b {
            return;
        }
        if let Err(pos) = self.edges.binary_search(&(a, b)) {
            self.edges.insert(pos, (a, b));
        }
    }

    /// Merges another constraint set into this one (a sorted-list merge; no
    /// full re-sort).
    pub fn extend(&mut self, other: &Constraints) {
        if other.edges.is_empty() {
            return;
        }
        if self.edges.is_empty() {
            self.edges = other.edges.clone();
            return;
        }
        let mut merged = Vec::with_capacity(self.edges.len() + other.edges.len());
        let (mut i, mut j) = (0, 0);
        while i < self.edges.len() && j < other.edges.len() {
            let next = match self.edges[i].cmp(&other.edges[j]) {
                std::cmp::Ordering::Less => {
                    i += 1;
                    self.edges[i - 1]
                }
                std::cmp::Ordering::Greater => {
                    j += 1;
                    other.edges[j - 1]
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                    self.edges[i - 1]
                }
            };
            merged.push(next);
        }
        merged.extend_from_slice(&self.edges[i..]);
        merged.extend_from_slice(&other.edges[j..]);
        self.edges = merged;
    }

    /// The constraint edges (sorted, deduplicated, no self-loops).
    pub fn edges(&self) -> &[(OpId, OpId)] {
        &self.edges
    }

    /// True if the constraints (restricted to `included`) contain a cycle, in
    /// which case no sequence can satisfy them.
    ///
    /// Not on the hot path (the search uses
    /// [`ConstraintGraph::has_cycle_masked`]); delegates to the reference
    /// Kahn implementation so the repo carries one general-purpose cycle
    /// check.
    pub fn has_cycle(&self, included: &[OpId]) -> bool {
        reference_has_cycle(self, included)
    }
}

/// A constraint set compiled to per-node predecessor bitset rows over the
/// local indices of one search (positions in `required` ++ `optional`).
///
/// Built once per [`find_sequence`] call; all per-subset and per-step work is
/// pure word arithmetic on the row-major `preds` arena (`words_per_row`
/// words per node — one or two words inline-sized for ≤128-op searches).
#[derive(Debug, Clone)]
pub struct ConstraintGraph {
    /// Number of local nodes.
    n: usize,
    /// Words per predecessor row: `words_for(n)`.
    wpr: usize,
    /// Row-major predecessor bitsets: `preds[i*wpr..(i+1)*wpr]` is the set of
    /// local nodes that must precede node `i`.
    preds: Vec<u64>,
}

impl ConstraintGraph {
    /// Compiles `constraints` over the nodes `ids` (edge endpoints not in
    /// `ids` — including op ids outside the history entirely — are
    /// irrelevant to this search and dropped, matching
    /// [`Constraints::has_cycle`]). `history_len` bounds the op-id space for
    /// the direct-indexed lookup table.
    pub fn compile(constraints: &Constraints, ids: &[OpId], history_len: usize) -> Self {
        let n = ids.len();
        let wpr = words_for(n);
        let mut local = vec![u32::MAX; history_len];
        for (li, id) in ids.iter().enumerate() {
            debug_assert_eq!(local[id.index()], u32::MAX, "duplicate op in search set");
            local[id.index()] = li as u32;
        }
        let lookup = |id: OpId| local.get(id.index()).copied().unwrap_or(u32::MAX);
        let mut preds = vec![0u64; n * wpr];
        for &(a, b) in constraints.edges() {
            let (la, lb) = (lookup(a), lookup(b));
            if la != u32::MAX && lb != u32::MAX {
                let (la, lb) = (la as usize, lb as usize);
                preds[lb * wpr + la / 64] |= 1u64 << (la % 64);
            }
        }
        ConstraintGraph { n, wpr, preds }
    }

    /// Number of local nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Words per predecessor row.
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.wpr
    }

    /// Predecessor row of node `i` (least-significant word first).
    #[inline]
    pub fn preds_row(&self, i: usize) -> &[u64] {
        &self.preds[i * self.wpr..(i + 1) * self.wpr]
    }

    /// True if `j` must precede `i`.
    #[inline]
    pub fn pred_contains(&self, i: usize, j: usize) -> bool {
        self.preds_row(i)[j / 64] & (1u64 << (j % 64)) != 0
    }

    /// True if node `i` has a predecessor in `active` that is not in
    /// `placed` — i.e. `i` is not yet schedulable.
    #[inline]
    pub fn preds_blocked(&self, i: usize, active: &OpSet, placed: &OpSet) -> bool {
        self.preds_row(i)
            .iter()
            .enumerate()
            .any(|(w, &row)| row & active.word(w) & !placed.word(w) != 0)
    }

    /// Predecessor row of node `i` as a single `u128`. Only meaningful on
    /// the ≤128-node fast path (`words_per_row() <= 2`).
    #[inline]
    fn preds_u128(&self, i: usize) -> u128 {
        debug_assert!(self.wpr <= 2);
        let row = self.preds_row(i);
        let lo = row[0] as u128;
        if self.wpr == 2 {
            lo | (row[1] as u128) << 64
        } else {
            lo
        }
    }

    /// [`ConstraintGraph::has_cycle_masked`] on the `u128` fast path: the
    /// flat-word Kahn peel the ≤128-op searches use.
    fn has_cycle_u128(&self, active: u128) -> bool {
        let mut remaining = active;
        loop {
            let mut peeled = 0u128;
            let mut scan = remaining;
            while scan != 0 {
                let i = scan.trailing_zeros() as usize;
                let bit = 1u128 << i;
                scan &= scan - 1;
                if self.preds_u128(i) & remaining == 0 {
                    peeled |= bit;
                }
            }
            if peeled == 0 {
                return remaining != 0;
            }
            remaining &= !peeled;
            if remaining == 0 {
                return false;
            }
        }
    }

    /// True if the graph restricted to `active` contains a cycle: a bitset
    /// Kahn peel (repeatedly remove nodes with no unremoved predecessors).
    /// Allocation-free for inline-sized (≤128-op) searches.
    pub fn has_cycle_masked(&self, active: &OpSet) -> bool {
        let mut inline_buf = [0u64; 2];
        let mut heap_buf: Vec<u64>;
        let remaining: &mut [u64] = if self.wpr <= inline_buf.len() {
            for (w, slot) in inline_buf.iter_mut().enumerate().take(self.wpr) {
                *slot = active.word(w);
            }
            &mut inline_buf[..self.wpr]
        } else {
            heap_buf = (0..self.wpr).map(|w| active.word(w)).collect();
            &mut heap_buf
        };
        self.cycle_on(remaining)
    }

    /// The Kahn peel over a mutable word buffer. Peeling eagerly within a
    /// pass (instead of batching a round's peels) is still correct: a node is
    /// removable exactly when it has no unremoved predecessors, and removal
    /// order cannot create cycles.
    fn cycle_on(&self, remaining: &mut [u64]) -> bool {
        loop {
            let mut peeled = false;
            for w in 0..self.wpr {
                let mut scan = remaining[w];
                while scan != 0 {
                    let b = scan.trailing_zeros() as usize;
                    scan &= scan - 1;
                    let row = self.preds_row(w * 64 + b);
                    if row.iter().zip(remaining.iter()).all(|(&r, &m)| r & m == 0) {
                        remaining[w] &= !(1u64 << b);
                        peeled = true;
                    }
                }
            }
            if remaining.iter().all(|&m| m == 0) {
                return false;
            }
            if !peeled {
                return true;
            }
        }
    }
}

/// Errors from the exact search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchError {
    /// The history exceeds [`MAX_SEARCH_OPS`]. Only produced by
    /// [`find_sequence_reference`] (whose masks are still `u128`); the
    /// optimized search accepts any size.
    TooLarge {
        /// Number of operations in the history.
        ops: usize,
    },
}

/// Searches for a legal sequence containing every operation in `required` and
/// any subset of `optional` (incomplete mutating operations whose effects may
/// or may not have taken place), respecting `constraints` and the sequential
/// specification.
///
/// Returns a witness sequence if one exists, `None` otherwise. There is no
/// size ceiling (the scheduled-set is an [`OpSet`] bitset arena), but the
/// search is exponential in the worst case — protocol-scale histories belong
/// to the certificate checkers.
pub fn find_sequence(
    history: &History,
    required: &[OpId],
    optional: &[OpId],
    constraints: &Constraints,
) -> Result<Option<Vec<OpId>>, SearchError> {
    let index = HistoryIndex::new(history);
    find_sequence_with(&index, required, optional, constraints)
}

/// [`find_sequence`] over a prebuilt [`HistoryIndex`], letting callers that
/// run several searches on one history (the model checkers) share the index.
pub fn find_sequence_with(
    index: &HistoryIndex,
    required: &[OpId],
    optional: &[OpId],
    constraints: &Constraints,
) -> Result<Option<Vec<OpId>>, SearchError> {
    // Try subsets of the optional operations, smallest first (the common case
    // is that pending writes need not be included).
    let optional = &optional[..optional.len().min(MAX_OPTIONAL_OPS)];
    let mut ids = Vec::with_capacity(required.len() + optional.len());
    ids.extend_from_slice(required);
    ids.extend_from_slice(optional);
    let universe = ids.len();
    let graph = ConstraintGraph::compile(constraints, &ids, index.len());

    if universe <= OpSet::INLINE_BITS {
        // Fast path: the whole old `u128` regime, monomorphized flat-word
        // arithmetic with no per-word indirection.
        return Ok(search_small(index, &graph, &ids, required.len(), optional.len()));
    }
    Ok(search_large(index, &graph, &ids, required.len(), optional.len()))
}

/// The low `n` bits of a `u128`. Safe at both edges: `n == 0` (the old
/// `u128::MAX >> (128 - n)` idiom would shift by 128 and panic) and
/// `n == 128`.
#[inline]
fn low_bits_u128(n: usize) -> u128 {
    debug_assert!(n <= 128);
    if n == 0 {
        0
    } else {
        u128::MAX >> (128 - n)
    }
}

/// The ≤128-op search: `u128` scheduled sets (the pre-`OpSet` hot path,
/// kept monomorphized so small searches pay nothing for the lifted ceiling).
fn search_small(
    index: &HistoryIndex,
    graph: &ConstraintGraph,
    ids: &[OpId],
    required: usize,
    optional: usize,
) -> Option<Vec<OpId>> {
    let required_mask = low_bits_u128(required);
    let mut searcher = SmallSearcher {
        index,
        graph,
        ids,
        state: IndexedSpecState::new(index.num_dense_keys()),
        seen: FxSeenSet::default(),
        seq: Vec::with_capacity(ids.len()),
    };
    let subsets = 1usize << optional;
    for subset in 0..subsets {
        // `subset > 0` implies `optional > 0`, which keeps the shift below
        // 128 (`required + optional == ids.len() <= 128`).
        let active = if subset == 0 {
            required_mask
        } else {
            required_mask | ((subset as u128) << required)
        };
        if graph.has_cycle_u128(active) {
            continue;
        }
        if searcher.search(active) {
            return Some(searcher.seq);
        }
    }
    None
}

/// The >128-op search: [`OpSet`] scheduled sets of any width.
fn search_large(
    index: &HistoryIndex,
    graph: &ConstraintGraph,
    ids: &[OpId],
    required: usize,
    optional: usize,
) -> Option<Vec<OpId>> {
    let universe = ids.len();
    let required_set = OpSet::first_n(universe, required);
    let mut searcher = LargeSearcher {
        index,
        graph,
        ids,
        state: IndexedSpecState::new(index.num_dense_keys()),
        seen: FxSeenSet::default(),
        seq: Vec::with_capacity(universe),
        active: OpSet::empty(universe),
        placed: OpSet::empty(universe),
        active_count: 0,
    };
    let subsets = 1usize << optional;
    for subset in 0..subsets {
        let mut active = required_set.clone();
        if subset != 0 {
            // `subset > 0` implies `optional` is non-empty, so the shifted
            // bits stay inside the universe.
            active.or_shifted(subset as u64, required);
        }
        if graph.has_cycle_masked(&active) {
            continue;
        }
        if searcher.search(active) {
            return Some(searcher.seq);
        }
    }
    None
}

/// The ≤128-op searcher: scheduled sets are `u128` bitmasks.
struct SmallSearcher<'a> {
    index: &'a HistoryIndex,
    graph: &'a ConstraintGraph,
    ids: &'a [OpId],
    state: IndexedSpecState,
    seen: FxSeenSet<u128>,
    seq: Vec<OpId>,
}

impl SmallSearcher<'_> {
    /// Searches for a topological order of `active` that replays legally.
    fn search(&mut self, active: u128) -> bool {
        debug_assert_eq!(self.state.checkpoint(), 0, "state is pristine between subsets");
        self.seen.clear();
        self.seq.clear();
        let found = self.backtrack(active, 0);
        // `seq` keeps the witness on success; the state is always reset for
        // the next subset.
        self.state.rollback(0);
        found
    }

    fn backtrack(&mut self, active: u128, placed: u128) -> bool {
        if placed == active {
            return true;
        }
        if !self.seen.insert((placed, self.state.fingerprint())) {
            return false;
        }
        let mut candidates = active & !placed;
        while candidates != 0 {
            let i = candidates.trailing_zeros() as usize;
            let bit = 1u128 << i;
            candidates &= candidates - 1;
            if self.graph.preds_u128(i) & active & !placed != 0 {
                continue;
            }
            let op = self.ids[i].index();
            let cp = self.state.checkpoint();
            if !self.state.apply_checked(self.index, op) {
                continue;
            }
            self.seq.push(self.ids[i]);
            if self.backtrack(active, placed | bit) {
                return true;
            }
            self.seq.pop();
            self.state.rollback(cp);
        }
        false
    }
}

/// The arbitrary-size searcher: scheduled sets are [`OpSet`]s; holds the
/// mutable state reused across optional-subsets.
struct LargeSearcher<'a> {
    index: &'a HistoryIndex,
    graph: &'a ConstraintGraph,
    ids: &'a [OpId],
    state: IndexedSpecState,
    seen: FxSeenSet<OpSet>,
    seq: Vec<OpId>,
    active: OpSet,
    placed: OpSet,
    active_count: usize,
}

impl LargeSearcher<'_> {
    /// Searches for a topological order of `active` that replays legally.
    fn search(&mut self, active: OpSet) -> bool {
        debug_assert_eq!(self.state.checkpoint(), 0, "state is pristine between subsets");
        debug_assert!(self.placed.is_empty(), "placed set is pristine between subsets");
        self.active_count = active.count();
        self.active = active;
        self.seen.clear();
        self.seq.clear();
        let found = self.backtrack(0);
        // `seq` and `placed` keep the witness on success (the caller returns
        // immediately); on failure backtracking has restored `placed` to
        // empty. The state is always reset for the next subset.
        self.state.rollback(0);
        found
    }

    fn backtrack(&mut self, depth: usize) -> bool {
        if depth == self.active_count {
            return true;
        }
        if !self.seen.insert((self.placed.clone(), self.state.fingerprint())) {
            return false;
        }
        // Candidates are recomputed from the live `placed` set after every
        // recursive return (it is restored on the way out), with a `tried`
        // mask excluding bits this frame already attempted — no per-frame
        // snapshot allocation for any history size.
        for w in 0..self.active.num_words() {
            let mut tried = 0u64;
            loop {
                let cand = self.active.word(w) & !self.placed.word(w) & !tried;
                if cand == 0 {
                    break;
                }
                let b = cand.trailing_zeros() as usize;
                tried |= 1u64 << b;
                let i = w * 64 + b;
                if self.graph.preds_blocked(i, &self.active, &self.placed) {
                    continue;
                }
                let op = self.ids[i].index();
                let cp = self.state.checkpoint();
                if !self.state.apply_checked(self.index, op) {
                    continue;
                }
                self.placed.insert(i);
                self.seq.push(self.ids[i]);
                if self.backtrack(depth + 1) {
                    return true;
                }
                self.seq.pop();
                self.placed.remove(i);
                self.state.rollback(cp);
            }
        }
        false
    }
}

/// The straightforward reference implementation of [`find_sequence`]: hash
/// maps keyed by `OpId`, a cloned [`SpecState`] per step, a rebuilt
/// Kahn's-algorithm cycle check per optional subset, and `u128` scheduled-set
/// masks (hence the [`MAX_SEARCH_OPS`] cap this implementation keeps).
///
/// Retained (not cfg-gated) so the property tests can assert the optimized
/// search agrees with it on randomized histories, and as executable
/// documentation of the definitions.
pub fn find_sequence_reference(
    history: &History,
    required: &[OpId],
    optional: &[OpId],
    constraints: &Constraints,
) -> Result<Option<Vec<OpId>>, SearchError> {
    if history.len() > MAX_SEARCH_OPS {
        return Err(SearchError::TooLarge { ops: history.len() });
    }
    let optional = &optional[..optional.len().min(MAX_OPTIONAL_OPS)];
    let subsets = 1usize << optional.len();
    for subset in 0..subsets {
        let mut included: Vec<OpId> = required.to_vec();
        for (i, &op) in optional.iter().enumerate() {
            if subset & (1 << i) != 0 {
                included.push(op);
            }
        }
        if reference_has_cycle(constraints, &included) {
            continue;
        }
        if let Some(seq) = reference_search_included(history, &included, constraints) {
            return Ok(Some(seq));
        }
    }
    Ok(None)
}

fn reference_has_cycle(constraints: &Constraints, included: &[OpId]) -> bool {
    let set: HashSet<OpId> = included.iter().copied().collect();
    let mut indegree: HashMap<OpId, usize> = included.iter().map(|&o| (o, 0)).collect();
    let mut adj: HashMap<OpId, Vec<OpId>> = HashMap::new();
    for &(a, b) in constraints.edges() {
        if set.contains(&a) && set.contains(&b) {
            *indegree.get_mut(&b).expect("b is included") += 1;
            adj.entry(a).or_default().push(b);
        }
    }
    let mut queue: Vec<OpId> = indegree.iter().filter(|(_, &d)| d == 0).map(|(&o, _)| o).collect();
    let mut visited = 0;
    while let Some(o) = queue.pop() {
        visited += 1;
        if let Some(next) = adj.get(&o) {
            for &b in next {
                let d = indegree.get_mut(&b).expect("b is included");
                *d -= 1;
                if *d == 0 {
                    queue.push(b);
                }
            }
        }
    }
    visited != included.len()
}

fn reference_search_included(
    history: &History,
    included: &[OpId],
    constraints: &Constraints,
) -> Option<Vec<OpId>> {
    let n = included.len();
    if n == 0 {
        return Some(Vec::new());
    }
    let mut local: HashMap<OpId, usize> = HashMap::new();
    for (i, &op) in included.iter().enumerate() {
        local.insert(op, i);
    }
    let mut preds = vec![0u128; n];
    for &(a, b) in constraints.edges() {
        if let (Some(&ia), Some(&ib)) = (local.get(&a), local.get(&b)) {
            preds[ib] |= 1 << ia;
        }
    }
    let mut seq = Vec::with_capacity(n);
    let mut seen: HashSet<(u128, u64)> = HashSet::new();
    if reference_backtrack(history, included, &preds, 0, &SpecState::new(), &mut seq, &mut seen) {
        Some(seq)
    } else {
        None
    }
}

fn reference_backtrack(
    history: &History,
    included: &[OpId],
    preds: &[u128],
    placed_mask: u128,
    state: &SpecState,
    seq: &mut Vec<OpId>,
    seen: &mut HashSet<(u128, u64)>,
) -> bool {
    let n = included.len();
    if seq.len() == n {
        return true;
    }
    if !seen.insert((placed_mask, state.fingerprint())) {
        return false;
    }
    for i in 0..n {
        let bit = 1u128 << i;
        if placed_mask & bit != 0 {
            continue;
        }
        if preds[i] & !placed_mask != 0 {
            continue;
        }
        let op = history.op(included[i]);
        let mut next_state = state.clone();
        let produced = next_state.apply(op.service, &op.kind);
        if let Some(recorded) = &op.result {
            let matches = match &op.kind {
                crate::op::OpKind::Write { .. }
                | crate::op::OpKind::Enqueue { .. }
                | crate::op::OpKind::Fence => true,
                _ => &produced == recorded,
            };
            if !matches {
                continue;
            }
        }
        seq.push(included[i]);
        if reference_backtrack(history, included, preds, placed_mask | bit, &next_state, seq, seen)
        {
            return true;
        }
        seq.pop();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;
    use crate::order::CausalOrder;

    fn opset(universe: usize, bits: &[usize]) -> OpSet {
        let mut s = OpSet::empty(universe);
        for &b in bits {
            s.insert(b);
        }
        s
    }

    #[test]
    fn constraints_cycle_detection() {
        let a = OpId(0);
        let b = OpId(1);
        let c = OpId(2);
        let cons = Constraints::from_edges(vec![(a, b), (b, c), (c, a)]);
        assert!(cons.has_cycle(&[a, b, c]));
        assert!(!cons.has_cycle(&[a, b]));
        let acyclic = Constraints::from_edges(vec![(a, b), (b, c)]);
        assert!(!acyclic.has_cycle(&[a, b, c]));
    }

    #[test]
    fn add_keeps_edges_sorted_and_deduplicated() {
        let mut cons = Constraints::new();
        cons.add(OpId(2), OpId(3));
        cons.add(OpId(0), OpId(1));
        cons.add(OpId(2), OpId(3));
        cons.add(OpId(1), OpId(1)); // self-loop dropped
        assert_eq!(cons.edges(), &[(OpId(0), OpId(1)), (OpId(2), OpId(3))]);
    }

    #[test]
    fn extend_merges_without_duplicates() {
        let mut a = Constraints::from_edges(vec![(OpId(0), OpId(1)), (OpId(4), OpId(5))]);
        let b = Constraints::from_edges(vec![(OpId(0), OpId(1)), (OpId(2), OpId(3))]);
        a.extend(&b);
        assert_eq!(a.edges(), &[(OpId(0), OpId(1)), (OpId(2), OpId(3)), (OpId(4), OpId(5))]);
        let mut empty = Constraints::new();
        empty.extend(&a);
        assert_eq!(empty.edges(), a.edges());
    }

    #[test]
    fn constraint_graph_masked_cycles() {
        let edges = Constraints::from_edges(vec![
            (OpId(0), OpId(1)),
            (OpId(1), OpId(2)),
            (OpId(2), OpId(0)),
        ]);
        let ids = [OpId(0), OpId(1), OpId(2)];
        let graph = ConstraintGraph::compile(&edges, &ids, 3);
        assert!(graph.has_cycle_masked(&opset(3, &[0, 1, 2])));
        assert!(!graph.has_cycle_masked(&opset(3, &[0, 1])), "dropping one node breaks the cycle");
        assert!(!graph.has_cycle_masked(&opset(3, &[])));
        assert!(graph.pred_contains(1, 0));
        assert!(!graph.pred_contains(0, 1));
    }

    #[test]
    fn constraint_graph_cycles_beyond_128_ops() {
        // A cycle whose nodes straddle the third word (indices 126..=130).
        let n = 160;
        let edges = Constraints::from_edges(vec![
            (OpId(126), OpId(127)),
            (OpId(127), OpId(128)),
            (OpId(128), OpId(130)),
            (OpId(130), OpId(126)),
        ]);
        let ids: Vec<OpId> = (0..n as u32).map(OpId).collect();
        let graph = ConstraintGraph::compile(&edges, &ids, n);
        assert_eq!(graph.words_per_row(), 3);
        let all: Vec<usize> = (0..n).collect();
        assert!(graph.has_cycle_masked(&opset(n, &all)));
        let without: Vec<usize> = (0..n).filter(|&i| i != 128).collect();
        assert!(!graph.has_cycle_masked(&opset(n, &without)));
    }

    #[test]
    fn finds_order_for_simple_history() {
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 5, 0, 2);
        let r = b.read(2, 1, 5, 3, 4);
        let h = b.build();
        let cons = Constraints::from_edges(CausalOrder::new(&h).direct_edges().to_vec());
        let seq = find_sequence(&h, &h.complete_ids(), &[], &cons).unwrap().unwrap();
        assert_eq!(seq, vec![w, r]);
    }

    #[test]
    fn detects_unsatisfiable_history() {
        let mut b = HistoryBuilder::new();
        // Read of a value nobody wrote.
        let _r = b.read(1, 1, 99, 0, 2);
        let h = b.build();
        let cons = Constraints::new();
        assert_eq!(find_sequence(&h, &h.complete_ids(), &[], &cons).unwrap(), None);
    }

    #[test]
    fn optional_pending_write_can_justify_read() {
        let mut b = HistoryBuilder::new();
        let pw = b.pending_write(1, 1, 9, 0);
        let r = b.read(2, 1, 9, 10, 12);
        let h = b.build();
        let cons = Constraints::new();
        let seq = find_sequence(&h, &[r], &[pw], &cons).unwrap().unwrap();
        assert_eq!(seq, vec![pw, r]);
    }

    #[test]
    fn constraints_can_make_history_unsatisfiable() {
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 5, 0, 2);
        let r = b.read(2, 1, 0, 3, 4); // reads null
        let h = b.build();
        // Force the write before the read: then the read of null is invalid.
        let cons = Constraints::from_edges(vec![(w, r)]);
        assert_eq!(find_sequence(&h, &h.complete_ids(), &[], &cons).unwrap(), None);
        // Without the constraint the read can be ordered first.
        let free = Constraints::new();
        assert!(find_sequence(&h, &h.complete_ids(), &[], &free).unwrap().is_some());
    }

    #[test]
    fn tolerates_constraint_edges_outside_the_history() {
        // Out-of-range op ids in the constraint set must be dropped, not
        // panic — matching `Constraints::has_cycle` and the reference path.
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 5, 0, 2);
        let r = b.read(2, 1, 5, 3, 4);
        let h = b.build();
        let cons = Constraints::from_edges(vec![(OpId(200), w), (w, OpId(300)), (w, r)]);
        let fast = find_sequence(&h, &h.complete_ids(), &[], &cons).unwrap();
        let slow = find_sequence_reference(&h, &h.complete_ids(), &[], &cons).unwrap();
        assert_eq!(fast, slow);
        assert_eq!(fast, Some(vec![w, r]));
    }

    /// Builds a history of `n` sequential writes by one process and checks
    /// that the search recovers the full order under causal constraints.
    fn chain_of_writes(n: u64) -> (crate::history::History, Constraints) {
        let mut b = HistoryBuilder::new();
        for i in 0..n {
            b.write(1, 1, i + 1, i * 10, i * 10 + 5);
        }
        let h = b.build();
        let cons = Constraints::from_edges(CausalOrder::new(&h).direct_edges().to_vec());
        (h, cons)
    }

    #[test]
    fn handles_histories_at_every_representation_boundary() {
        // 64 (one-word boundary), 127/128 (the old u128 ceiling), and 129
        // (the first spilled size, which the old path rejected outright).
        for n in [64u64, 127, 128, 129] {
            let (h, cons) = chain_of_writes(n);
            let seq = find_sequence(&h, &h.complete_ids(), &[], &cons).unwrap();
            assert_eq!(seq.map(|s| s.len()), Some(n as usize), "chain of {n} writes");
        }
    }

    #[test]
    fn searches_large_histories_the_old_path_rejected() {
        // 130 ops: beyond the old `u128` ceiling. Mixed reads/writes so the
        // spec replay is exercised, not just topological enumeration.
        let mut b = HistoryBuilder::new();
        for i in 0..65u64 {
            b.write(1, 1, i + 1, i * 20, i * 20 + 5);
            b.read(2, 1, i + 1, i * 20 + 10, i * 20 + 15);
        }
        let h = b.build();
        assert_eq!(h.len(), 130);
        let cons = Constraints::from_edges(CausalOrder::new(&h).direct_edges().to_vec());
        let seq = find_sequence(&h, &h.complete_ids(), &[], &cons).unwrap().unwrap();
        assert_eq!(seq.len(), 130);
        // The reference implementation still caps at 128 ops.
        assert!(matches!(
            find_sequence_reference(&h, &h.complete_ids(), &[], &cons),
            Err(SearchError::TooLarge { ops: 130 })
        ));
    }

    #[test]
    fn unsatisfiable_large_history_is_rejected_not_errored() {
        // The process-order chain keeps the (exponential) search tractable:
        // the 130 writes are totally ordered, and the impossible read fails
        // spec replay at each of its candidate positions.
        let mut b = HistoryBuilder::new();
        for i in 0..130u64 {
            b.write(1, 1, i + 1, i * 10, i * 10 + 5);
        }
        b.read(2, 1, 999, 2000, 2010); // value nobody wrote
        let h = b.build();
        let cons = Constraints::from_edges(CausalOrder::new(&h).direct_edges().to_vec());
        assert_eq!(find_sequence(&h, &h.complete_ids(), &[], &cons).unwrap(), None);
    }

    #[test]
    fn queue_histories_replay_with_undo() {
        use crate::op::{OpKind, OpResult};
        use crate::types::{Key, ProcessId, ServiceId, Timestamp, Value};
        let mut h = History::new();
        let e1 = h.add_complete(
            ProcessId(1),
            ServiceId::QUEUE,
            OpKind::Enqueue { queue: Key(1), value: Value(10) },
            Timestamp(0),
            Timestamp(1),
            OpResult::Ack,
        );
        let e2 = h.add_complete(
            ProcessId(1),
            ServiceId::QUEUE,
            OpKind::Enqueue { queue: Key(1), value: Value(20) },
            Timestamp(2),
            Timestamp(3),
            OpResult::Ack,
        );
        let d1 = h.add_complete(
            ProcessId(2),
            ServiceId::QUEUE,
            OpKind::Dequeue { queue: Key(1) },
            Timestamp(4),
            Timestamp(5),
            OpResult::Value(Value(10)),
        );
        let d2 = h.add_complete(
            ProcessId(2),
            ServiceId::QUEUE,
            OpKind::Dequeue { queue: Key(1) },
            Timestamp(6),
            Timestamp(7),
            OpResult::Value(Value(20)),
        );
        let cons = Constraints::new();
        let seq = find_sequence(&h, &h.complete_ids(), &[], &cons).unwrap().unwrap();
        // FIFO forces the full order.
        assert_eq!(seq, vec![e1, e2, d1, d2]);
    }

    /// Tiny deterministic PRNG for the differential tests below (core has no
    /// RNG dependency).
    fn xorshift(s: &mut u64) -> u64 {
        *s ^= *s << 13;
        *s ^= *s >> 7;
        *s ^= *s << 17;
        *s
    }

    /// Runs both private searcher implementations on identical compiled
    /// inputs and checks they agree on satisfiability; any witness either
    /// produces must replay legally and respect the constraints.
    fn assert_small_and_large_agree(h: &History, cons: &Constraints, label: &str) {
        let index = HistoryIndex::new(h);
        let required = h.complete_ids();
        let optional: Vec<OpId> =
            h.pending_mutations().into_iter().take(MAX_OPTIONAL_OPS).collect();
        let mut ids = required.clone();
        ids.extend_from_slice(&optional);
        assert!(ids.len() <= 128, "the small path only covers 128 ops ({label})");
        let graph = ConstraintGraph::compile(cons, &ids, index.len());
        let small = search_small(&index, &graph, &ids, required.len(), optional.len());
        let large = search_large(&index, &graph, &ids, required.len(), optional.len());
        assert_eq!(
            small.is_some(),
            large.is_some(),
            "small/large searchers disagree ({label}): small={small:?} large={large:?}"
        );
        for seq in [&small, &large].into_iter().flatten() {
            assert!(crate::spec::check_sequence(h, seq).is_ok(), "illegal witness ({label})");
            let pos = |id: OpId| seq.iter().position(|&x| x == id);
            for &(a, b) in cons.edges() {
                if let (Some(pa), Some(pb)) = (pos(a), pos(b)) {
                    assert!(pa < pb, "constraint {a} -> {b} violated ({label})");
                }
            }
        }
    }

    #[test]
    fn small_and_large_searchers_agree_on_randomized_histories() {
        // The LargeSearcher's word-loop candidate enumeration and OpSet memo
        // key must match the u128 fast path bit for bit. Random small
        // histories (mixed reads/writes/pending, reads sometimes of
        // impossible values) cover the one-word regime densely.
        for seed in 1..=120u64 {
            let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let n = 4 + xorshift(&mut s) % 7; // 4..=10 ops
            let mut b = HistoryBuilder::new();
            for i in 0..n {
                let p = 1 + (xorshift(&mut s) % 3) as u32;
                let key = 1 + xorshift(&mut s) % 2;
                let t = i * 10;
                match xorshift(&mut s) % 4 {
                    0 | 1 => {
                        b.write(p, key, 100 + i, t, t + 5);
                    }
                    2 => {
                        // Read of null, an existing value, or an impossible one.
                        let v = match xorshift(&mut s) % 3 {
                            0 => 0,
                            1 => 100 + xorshift(&mut s) % n.max(1),
                            _ => 999,
                        };
                        b.read(p, key, v, t, t + 5);
                    }
                    _ => {
                        b.pending_write(p, key, 500 + i, t);
                    }
                }
            }
            let h = b.build();
            let cons = Constraints::from_edges(CausalOrder::new(&h).direct_edges().to_vec());
            assert_small_and_large_agree(&h, &cons, &format!("random seed {seed}"));
        }
    }

    #[test]
    fn small_and_large_searchers_agree_across_word_boundaries() {
        // Structured multi-chain histories at 70 and 100 ops: the OpSet path
        // runs two-word candidate masks (word-boundary crossings after deep
        // recursive returns) while staying tractable — three processes write
        // independent keys, so the searchers interleave three chains.
        for (n, impossible_read) in [(70u64, false), (70, true), (100, false), (100, true)] {
            let mut b = HistoryBuilder::new();
            for i in 0..n {
                let p = 1 + (i % 3) as u32;
                // One key per process: chains are independent.
                b.write(p, p as u64, i + 1, i * 10, i * 10 + 5);
            }
            if impossible_read {
                b.read(4, 1, 9_999, n * 10, n * 10 + 5);
            }
            let h = b.build();
            let cons = Constraints::from_edges(CausalOrder::new(&h).direct_edges().to_vec());
            let label = format!("{n} ops, impossible_read={impossible_read}");
            assert_small_and_large_agree(&h, &cons, &label);
        }
    }

    #[test]
    fn optimized_and_reference_agree_on_small_histories() {
        // A handful of hand-picked shapes; the exhaustive randomized check
        // lives in tests/properties.rs.
        let mut b = HistoryBuilder::new();
        b.write(1, 1, 1, 0, 100);
        b.read(2, 1, 1, 10, 20);
        b.read(3, 1, 0, 30, 40);
        b.pending_write(2, 2, 9, 50);
        let h = b.build();
        let cons = Constraints::from_edges(CausalOrder::new(&h).direct_edges().to_vec());
        let required = h.complete_ids();
        let optional = h.pending_mutations();
        let fast = find_sequence(&h, &required, &optional, &cons).unwrap();
        let slow = find_sequence_reference(&h, &required, &optional, &cons).unwrap();
        assert_eq!(fast.is_some(), slow.is_some());
    }
}
