//! Consistency checkers.
//!
//! Two complementary families:
//!
//! * [`search`] + [`models`]: exact, search-based checkers that decide whether
//!   a (small) history satisfies a consistency model by looking for a legal
//!   sequence. Used for the Table 1 / Appendix A comparisons and for property
//!   tests of the definitions themselves.
//! * [`certificate`]: scalable witness checkers. The protocol implementations
//!   (Spanner-RSS, Gryff-RSC, and their baselines) emit a serialization
//!   witness (commit timestamps / carstamps); the certificate checker
//!   validates the witness against the model's constraints in near-linear
//!   time, which lets the integration tests verify histories with tens of
//!   thousands of operations.
//! * [`proximal`]: checkers for the neighbouring consistency models discussed
//!   in Appendix A (CRDB, strong snapshot isolation, OSC(U), VV-regularity,
//!   real-time causal, and the Shao et al. multi-writer regularity family).

pub mod assemble;
pub mod certificate;
pub mod models;
pub mod proximal;
pub mod search;

pub use assemble::{assemble_witness, AssembleError};
pub use certificate::{check_witness, check_witness_parallel, WitnessModel, WitnessViolation};
pub use models::{check, CheckOutcome, Model};
pub use search::{
    find_sequence, find_sequence_reference, find_sequence_with, ConstraintGraph, Constraints,
};
