//! Consistency checkers.
//!
//! Two complementary families:
//!
//! * [`search`] + [`models`]: exact, search-based checkers that decide whether
//!   a (small) history satisfies a consistency model by looking for a legal
//!   sequence. Used for the Table 1 / Appendix A comparisons and for property
//!   tests of the definitions themselves.
//! * [`certificate`]: scalable witness checkers. The protocol implementations
//!   (Spanner-RSS, Gryff-RSC, and their baselines) emit a serialization
//!   witness (commit timestamps / carstamps); the certificate checker
//!   validates the witness against the model's constraints in near-linear
//!   time, which lets the integration tests verify histories with tens of
//!   thousands of operations.
//! * [`proximal`]: checkers for the neighbouring consistency models discussed
//!   in Appendix A (CRDB, strong snapshot isolation, OSC(U), VV-regularity,
//!   real-time causal, and the Shao et al. multi-writer regularity family).
//! * [`saturate`](mod@saturate) + [`decompose`] + [`window`]: the certification cascade for
//!   large histories — a polynomial saturation prefilter deriving forced
//!   order edges (cycle ⇒ counterexample without search), communication-
//!   component decomposition so independent components certify separately,
//!   and a streaming checker that certifies windows of a still-growing run
//!   with memory bounded by window size.

pub mod assemble;
pub mod certificate;
pub mod decompose;
pub mod models;
pub mod proximal;
pub mod saturate;
pub mod search;
pub mod window;

pub use assemble::{assemble_witness, AssembleError};
pub use certificate::{check_witness, check_witness_parallel, WitnessModel, WitnessViolation};
pub use decompose::{
    check_witness_decomposed, find_sequence_decomposed, ComponentSplit, CrossEdges,
};
pub use models::{check, CheckOutcome, Model};
pub use saturate::{find_sequence_saturated, saturate, Saturation};
pub use search::{
    find_sequence, find_sequence_reference, find_sequence_with, ConstraintGraph, Constraints,
};
pub use window::{StreamingChecker, WindowBuffer};
