//! Checkers for the consistency models *proximal* to RSS and RSC (Appendix A).
//!
//! The paper positions RSS between strict serializability and PO
//! serializability, and RSC between linearizability and sequential
//! consistency, and compares them against a set of neighbouring models:
//! CockroachDB's model, strong snapshot isolation, OSC(U), real-time causal,
//! Viotti–Vukolić regularity, and the Shao et al. multi-writer regularity
//! family. This module implements checkers for those models so the Appendix A
//! schedules (Figures 9–16) can be reproduced mechanically.
//!
//! Formalization notes (documented because the appendix describes some of
//! these models informally):
//!
//! * **CRDB**: a total order respecting each process's order and the real-time
//!   order between transactions that access a common key. This captures
//!   CockroachDB's "no stale reads on a key" guarantee while permitting
//!   real-time inversions between transactions on disjoint keys (Figure 9
//!   allowed, Figure 10 disallowed).
//! * **OSC(U)**: a total order respecting process order in which every
//!   operation that precedes a write in real time is ordered before that
//!   write.
//! * **VV regularity**: a total order in which every operation that follows a
//!   completed write in real time is ordered after it; no process-order or
//!   causal requirement.
//! * **Real-time causal**: per-process serializations of all writes plus the
//!   process's reads, respecting causality and the real-time order of writes.
//! * **Strong snapshot isolation**: snapshot isolation (start-timestamp
//!   snapshots, first-committer-wins) strengthened so a transaction that
//!   begins after another ends sees its effects.
//! * **MWR-Weak / WO / RF / NI**: per-read serializations of all writes plus
//!   that read, respecting real time, with the additional agreement
//!   constraints described by Shao et al.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::checker::decompose::{find_sequence_decomposed, CrossEdges};
use crate::checker::saturate::find_sequence_saturated;
use crate::checker::search::{Constraints, SearchError};
use crate::history::{History, HistoryIndex};
use crate::order::{real_time_precedes, CausalOrder};
use crate::types::{Key, OpId, Value};

/// The proximal models of Appendix A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProximalModel {
    /// CockroachDB's consistency model.
    Crdb,
    /// Strong snapshot isolation (Daudjee & Salem).
    StrongSnapshotIsolation,
    /// Ordered sequential consistency OSC(U) (Lev-Ari et al.).
    OscU,
    /// Real-time causal consistency (Mahajan et al.).
    RealTimeCausal,
    /// Viotti–Vukolić multi-writer regularity.
    VvRegularity,
    /// Shao et al. MWR-Weak.
    MwrWeak,
    /// Shao et al. MWR-Write-Order.
    MwrWriteOrder,
    /// Shao et al. MWR-Reads-From.
    MwrReadsFrom,
    /// Shao et al. MWR-No-Inversion.
    MwrNoInversion,
}

impl ProximalModel {
    /// Short display name used by the Appendix A harness.
    pub fn name(&self) -> &'static str {
        match self {
            ProximalModel::Crdb => "CRDB",
            ProximalModel::StrongSnapshotIsolation => "Strong SI",
            ProximalModel::OscU => "OSC(U)",
            ProximalModel::RealTimeCausal => "Real-Time Causal",
            ProximalModel::VvRegularity => "VV Regularity",
            ProximalModel::MwrWeak => "MWR-Weak",
            ProximalModel::MwrWriteOrder => "MWR-WO",
            ProximalModel::MwrReadsFrom => "MWR-RF",
            ProximalModel::MwrNoInversion => "MWR-NI",
        }
    }
}

/// Checks whether `history` is allowed under the given proximal model.
///
/// # Errors
///
/// The `Result` is kept for signature stability, but the search-based
/// checkers no longer have a size ceiling (the scheduled-set is an
/// [`crate::opset::OpSet`] bitset arena); these checkers are still meant for
/// the small hand-built schedules of the appendix comparisons and for
/// property tests — they are exponential in the worst case.
pub fn check_proximal(history: &History, model: ProximalModel) -> Result<bool, SearchError> {
    let index = HistoryIndex::new(history);
    match model {
        // CRDB's real-time edges require a shared key, so they never cross
        // communication components.
        ProximalModel::Crdb => {
            check_total_order(history, &index, crdb_constraints(&index), CrossEdges::None)
        }
        ProximalModel::OscU => check_total_order(
            history,
            &index,
            osc_u_constraints(&index),
            CrossEdges::CompleteToWrite,
        ),
        ProximalModel::VvRegularity => {
            check_total_order(history, &index, vv_constraints(&index), CrossEdges::WriteToAll)
        }
        ProximalModel::RealTimeCausal => check_real_time_causal(history, &index),
        ProximalModel::StrongSnapshotIsolation => Ok(check_strong_si(history)),
        ProximalModel::MwrWeak => Ok(check_mwr(history, MwrVariant::Weak)),
        ProximalModel::MwrWriteOrder => Ok(check_mwr(history, MwrVariant::WriteOrder)),
        ProximalModel::MwrReadsFrom => Ok(check_mwr(history, MwrVariant::ReadsFrom)),
        ProximalModel::MwrNoInversion => Ok(check_mwr(history, MwrVariant::NoInversion)),
    }
}

fn check_total_order(
    history: &History,
    index: &HistoryIndex,
    constraints: Constraints,
    cross: CrossEdges,
) -> Result<bool, SearchError> {
    let required = index.complete_ids();
    let optional = index.pending_mutations();
    Ok(find_sequence_decomposed(history, index, required, optional, &constraints, cross)?.is_some())
}

/// CRDB: process order + real-time order between operations sharing a key.
fn crdb_constraints(index: &HistoryIndex) -> Constraints {
    let mut edges: Vec<(OpId, OpId)> = index.process_order_pairs().collect();
    let accessed = |i: usize| index.read_key_ids(i).iter().chain(index.write_key_ids(i));
    for a in 0..index.len() {
        if !index.is_complete(a) {
            continue;
        }
        for b in 0..index.len() {
            if a == b || !index.real_time_precedes(a, b) {
                continue;
            }
            // Dense key ids already encode the service, so a shared key id
            // implies a shared service.
            if accessed(a).any(|k| accessed(b).any(|k2| k2 == k)) {
                edges.push((OpId(a as u32), OpId(b as u32)));
            }
        }
    }
    Constraints::from_edges(edges)
}

/// OSC(U): process order + everything that precedes a write in real time is
/// ordered before that write.
fn osc_u_constraints(index: &HistoryIndex) -> Constraints {
    let mut edges: Vec<(OpId, OpId)> = index.process_order_pairs().collect();
    for a in 0..index.len() {
        if !index.is_complete(a) {
            continue;
        }
        for b in 0..index.len() {
            if a != b && index.is_mutating(b) && index.real_time_precedes(a, b) {
                edges.push((OpId(a as u32), OpId(b as u32)));
            }
        }
    }
    Constraints::from_edges(edges)
}

/// VV regularity: everything that follows a completed write in real time is
/// ordered after it; no process-order requirement.
fn vv_constraints(index: &HistoryIndex) -> Constraints {
    let mut edges = Vec::new();
    for w in 0..index.len() {
        if !index.is_mutating(w) || !index.is_complete(w) {
            continue;
        }
        for o in 0..index.len() {
            if w != o && index.real_time_precedes(w, o) {
                edges.push((OpId(w as u32), OpId(o as u32)));
            }
        }
    }
    Constraints::from_edges(edges)
}

/// Real-time causal: for every process, a serialization of all writes plus the
/// process's own read-only operations, respecting causality and the real-time
/// order of writes.
fn check_real_time_causal(history: &History, index: &HistoryIndex) -> Result<bool, SearchError> {
    let causal = CausalOrder::new(history);
    let closure = causal.closure();
    let writes: Vec<OpId> = (0..index.len())
        .filter(|&o| index.is_mutating(o) && index.is_complete(o))
        .map(|o| OpId(o as u32))
        .collect();
    let pending = index.pending_mutations();
    for (_, process_ops) in index.ops_by_process() {
        let mut included: Vec<OpId> = writes.clone();
        for &id in process_ops {
            if index.is_read_only(id.index()) && index.is_complete(id.index()) {
                included.push(id);
            }
        }
        included.sort();
        included.dedup();
        // Causal edges (transitively closed, restricted to the included set)
        // plus real-time order among writes.
        let mut edges = Vec::new();
        for &a in &included {
            for &b in &included {
                if a != b && closure[a.index()][b.index()] {
                    edges.push((a, b));
                }
            }
        }
        for &a in &writes {
            for &b in &writes {
                if a != b && index.real_time_precedes(a.index(), b.index()) {
                    edges.push((a, b));
                }
            }
        }
        let constraints = Constraints::from_edges(edges);
        if find_sequence_saturated(index, &included, pending, &constraints)?.is_none() {
            return Ok(false);
        }
    }
    Ok(true)
}

// ---------------------------------------------------------------------------
// Strong snapshot isolation
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnEvent {
    Start(usize),
    Commit(usize),
}

/// Strong snapshot isolation over the complete transactions of a history.
///
/// Non-transactional reads and writes are treated as single-operation
/// transactions. The check searches for an interleaving of per-transaction
/// start and commit events such that every transaction reads from the
/// committed state at its start, no two concurrent transactions write the same
/// key (first-committer-wins), and a transaction that begins after another
/// ends starts after it commits (the "strong" session guarantee).
fn check_strong_si(history: &History) -> bool {
    let txns: Vec<OpId> = history.complete_ids();
    let n = txns.len();
    if n == 0 {
        return true;
    }
    // rt_edges[i] holds j iff txn j must commit before txn i starts.
    let mut must_commit_before_start: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, &a) in txns.iter().enumerate() {
        for (j, &b) in txns.iter().enumerate() {
            if i != j && real_time_precedes(history, b, a) {
                must_commit_before_start[i].push(j);
            }
        }
    }
    let mut state = SiState {
        committed_values: HashMap::new(),
        last_commit_index: HashMap::new(),
        start_index: vec![None; n],
        committed: vec![false; n],
        event_count: 0,
    };
    si_search(history, &txns, &must_commit_before_start, &mut state)
}

struct SiState {
    committed_values: HashMap<(u32, Key), Value>,
    last_commit_index: HashMap<(u32, Key), usize>,
    start_index: Vec<Option<usize>>,
    committed: Vec<bool>,
    event_count: usize,
}

fn si_search(
    history: &History,
    txns: &[OpId],
    must_commit_before_start: &[Vec<usize>],
    state: &mut SiState,
) -> bool {
    let n = txns.len();
    if state.event_count == 2 * n {
        return true;
    }
    for i in 0..n {
        let candidates: Vec<TxnEvent> = if state.start_index[i].is_none() {
            vec![TxnEvent::Start(i)]
        } else if !state.committed[i] {
            vec![TxnEvent::Commit(i)]
        } else {
            vec![]
        };
        for event in candidates {
            match event {
                TxnEvent::Start(i) => {
                    // Strong constraint: all real-time predecessors committed.
                    if must_commit_before_start[i].iter().any(|&j| !state.committed[j]) {
                        continue;
                    }
                    // Snapshot reads must match the recorded values.
                    let op = history.op(txns[i]);
                    let reads_ok = op.kind.read_keys().iter().all(|k| {
                        let snapshot = state
                            .committed_values
                            .get(&(op.service.0, *k))
                            .copied()
                            .unwrap_or(Value::NULL);
                        op.observed_value(*k).map(|v| v == snapshot).unwrap_or(true)
                    });
                    if !reads_ok {
                        continue;
                    }
                    state.start_index[i] = Some(state.event_count);
                    state.event_count += 1;
                    if si_search(history, txns, must_commit_before_start, state) {
                        return true;
                    }
                    state.event_count -= 1;
                    state.start_index[i] = None;
                }
                TxnEvent::Commit(i) => {
                    let op = history.op(txns[i]);
                    let start = state.start_index[i].expect("started before committing");
                    // First-committer-wins: nobody committed a write to any of
                    // our written keys after we started.
                    let conflict = op.kind.written_keys().iter().any(|k| {
                        state
                            .last_commit_index
                            .get(&(op.service.0, *k))
                            .map(|&idx| idx > start)
                            .unwrap_or(false)
                    });
                    if conflict {
                        continue;
                    }
                    let saved_values: Vec<((u32, Key), Option<Value>)> = op
                        .kind
                        .written_values()
                        .iter()
                        .map(|(k, _)| {
                            (
                                (op.service.0, *k),
                                state.committed_values.get(&(op.service.0, *k)).copied(),
                            )
                        })
                        .collect();
                    let saved_indices: Vec<((u32, Key), Option<usize>)> = op
                        .kind
                        .written_keys()
                        .iter()
                        .map(|k| {
                            (
                                (op.service.0, *k),
                                state.last_commit_index.get(&(op.service.0, *k)).copied(),
                            )
                        })
                        .collect();
                    for (k, v) in op.kind.written_values() {
                        state.committed_values.insert((op.service.0, k), v);
                        state.last_commit_index.insert((op.service.0, k), state.event_count);
                    }
                    state.committed[i] = true;
                    state.event_count += 1;
                    if si_search(history, txns, must_commit_before_start, state) {
                        return true;
                    }
                    state.event_count -= 1;
                    state.committed[i] = false;
                    for (key, old) in saved_values {
                        match old {
                            Some(v) => state.committed_values.insert(key, v),
                            None => state.committed_values.remove(&key),
                        };
                    }
                    for (key, old) in saved_indices {
                        match old {
                            Some(v) => state.last_commit_index.insert(key, v),
                            None => state.last_commit_index.remove(&key),
                        };
                    }
                }
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Shao et al. multi-writer regularity
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MwrVariant {
    Weak,
    WriteOrder,
    ReadsFrom,
    NoInversion,
}

/// A serialization for one read: a permutation of all complete writes with the
/// read inserted at some position. Represented as the write order plus the
/// read's insertion index.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ReadSerialization {
    write_order: Vec<OpId>,
    read_position: usize,
}

fn check_mwr(history: &History, variant: MwrVariant) -> bool {
    let writes: Vec<OpId> = history
        .ops()
        .iter()
        .filter(|o| o.kind.is_mutating() && o.is_complete())
        .map(|o| o.id)
        .collect();
    let reads: Vec<OpId> = history
        .ops()
        .iter()
        .filter(|o| o.kind.is_read_only() && o.is_complete())
        .map(|o| o.id)
        .collect();

    // Additional write-write precedence constraints for MWR-RF, derived from
    // the transitive closure of real-time order and the reads-from relation.
    let derived_ww: Vec<(OpId, OpId)> = if variant == MwrVariant::ReadsFrom {
        derived_write_order(history, &writes)
    } else {
        Vec::new()
    };

    // Enumerate the valid serializations of every read.
    let mut per_read: Vec<Vec<ReadSerialization>> = Vec::new();
    for &r in &reads {
        let serializations = valid_serializations(history, &writes, r, &derived_ww);
        if serializations.is_empty() {
            return false;
        }
        per_read.push(serializations);
    }
    match variant {
        MwrVariant::Weak | MwrVariant::ReadsFrom => true,
        MwrVariant::WriteOrder => choose_compatible(
            history,
            &reads,
            &per_read,
            0,
            &mut Vec::new(),
            &|h, reads, choice| write_order_agreement(h, reads, choice),
        ),
        MwrVariant::NoInversion => choose_compatible(
            history,
            &reads,
            &per_read,
            0,
            &mut Vec::new(),
            &|h, reads, choice| no_inversion_agreement(h, reads, choice),
        ),
    }
}

/// Write-write order constraints implied by paths through the combined
/// real-time and reads-from relation (used by MWR-RF).
fn derived_write_order(history: &History, writes: &[OpId]) -> Vec<(OpId, OpId)> {
    let n = history.len();
    let mut reach = vec![vec![false; n]; n];
    for a in history.ops() {
        for b in history.ops() {
            if a.id != b.id && real_time_precedes(history, a.id, b.id) {
                reach[a.id.index()][b.id.index()] = true;
            }
        }
    }
    for (w, r) in crate::order::reads_from_edges(history) {
        reach[w.index()][r.index()] = true;
    }
    for k in 0..n {
        let row_k = reach[k].clone();
        for row in reach.iter_mut() {
            if row[k] {
                for (cell, &via_k) in row.iter_mut().zip(&row_k) {
                    *cell |= via_k;
                }
            }
        }
    }
    let mut edges = Vec::new();
    for &a in writes {
        for &b in writes {
            if a != b && reach[a.index()][b.index()] {
                edges.push((a, b));
            }
        }
    }
    edges
}

/// All serializations of `writes` plus read `r` that respect real time (and
/// any extra write-write constraints) and explain `r`'s return value.
fn valid_serializations(
    history: &History,
    writes: &[OpId],
    r: OpId,
    extra_ww: &[(OpId, OpId)],
) -> Vec<ReadSerialization> {
    let mut result = Vec::new();
    let mut order = Vec::new();
    permute_writes(history, writes, extra_ww, &mut order, &mut |write_order| {
        for pos in 0..=write_order.len() {
            if serialization_is_valid(history, write_order, pos, r) {
                result.push(ReadSerialization {
                    write_order: write_order.to_vec(),
                    read_position: pos,
                });
            }
        }
    });
    result
}

fn permute_writes(
    history: &History,
    writes: &[OpId],
    extra_ww: &[(OpId, OpId)],
    order: &mut Vec<OpId>,
    visit: &mut impl FnMut(&[OpId]),
) {
    if order.len() == writes.len() {
        visit(order);
        return;
    }
    for &w in writes {
        if order.contains(&w) {
            continue;
        }
        // Real-time order among writes must be respected: every write that
        // finished before `w` started must already be placed.
        let rt_ok = writes.iter().all(|&other| {
            other == w || !real_time_precedes(history, other, w) || order.contains(&other)
        });
        let extra_ok =
            extra_ww.iter().all(|&(a, b)| b != w || order.contains(&a) || !writes.contains(&a));
        if !rt_ok || !extra_ok {
            continue;
        }
        order.push(w);
        permute_writes(history, writes, extra_ww, order, visit);
        order.pop();
    }
}

fn serialization_is_valid(
    history: &History,
    write_order: &[OpId],
    read_pos: usize,
    r: OpId,
) -> bool {
    let read = history.op(r);
    // Real-time constraints between the read and the writes.
    for (i, &w) in write_order.iter().enumerate() {
        if real_time_precedes(history, w, r) && i >= read_pos {
            return false;
        }
        if real_time_precedes(history, r, w) && i < read_pos {
            return false;
        }
    }
    // The read must return the latest preceding write to each key it reads
    // (NULL if none precedes it).
    for key in read.kind.read_keys() {
        let expected = write_order[..read_pos]
            .iter()
            .rev()
            .find_map(|&w| {
                history.op(w).kind.written_values().iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
            })
            .unwrap_or(Value::NULL);
        if let Some(observed) = read.observed_value(key) {
            if observed != expected {
                return false;
            }
        }
    }
    true
}

/// Agreement predicate over the chosen per-read serializations.
type AgreementFn = dyn Fn(&History, &[OpId], &[ReadSerialization]) -> bool;

fn choose_compatible(
    history: &History,
    reads: &[OpId],
    per_read: &[Vec<ReadSerialization>],
    index: usize,
    chosen: &mut Vec<ReadSerialization>,
    agree: &AgreementFn,
) -> bool {
    if index == per_read.len() {
        return agree(history, reads, chosen);
    }
    for candidate in &per_read[index] {
        chosen.push(candidate.clone());
        if choose_compatible(history, reads, per_read, index + 1, chosen, agree) {
            return true;
        }
        chosen.pop();
    }
    false
}

/// MWR-WO agreement: every pair of reads orders the writes relevant to both
/// identically. A write is relevant to a read if it does not begin after the
/// read ends (i.e., it precedes or is concurrent with the read).
fn write_order_agreement(history: &History, reads: &[OpId], chosen: &[ReadSerialization]) -> bool {
    for i in 0..reads.len() {
        for j in (i + 1)..reads.len() {
            let relevant = |w: OpId, r: OpId| !real_time_precedes(history, r, w);
            let common: Vec<OpId> = chosen[i]
                .write_order
                .iter()
                .copied()
                .filter(|&w| relevant(w, reads[i]) && relevant(w, reads[j]))
                .collect();
            for a in 0..common.len() {
                for b in 0..common.len() {
                    if a == b {
                        continue;
                    }
                    let pos = |serial: &ReadSerialization, w: OpId| {
                        serial.write_order.iter().position(|&x| x == w).expect("write present")
                    };
                    let order_i = pos(&chosen[i], common[a]) < pos(&chosen[i], common[b]);
                    let order_j = pos(&chosen[j], common[a]) < pos(&chosen[j], common[b]);
                    if order_i != order_j {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// MWR-NI agreement: reads issued by the same process order all writes
/// identically (different processes may disagree).
fn no_inversion_agreement(history: &History, reads: &[OpId], chosen: &[ReadSerialization]) -> bool {
    for i in 0..reads.len() {
        for j in (i + 1)..reads.len() {
            if history.op(reads[i]).process != history.op(reads[j]).process {
                continue;
            }
            if chosen[i].write_order != chosen[j].write_order {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::models::{satisfies, Model};
    use crate::history::{History, HistoryBuilder};

    fn allowed(h: &History, m: ProximalModel) -> bool {
        check_proximal(h, m).expect("history small enough for the exact checkers")
    }

    /// Figure 9: w1(x=1) precedes w2(y=1) in real time; a read-only
    /// transaction concurrent with both sees only the later write.
    fn figure_9() -> History {
        let mut b = HistoryBuilder::new();
        b.rw_txn(2, &[], &[(1, 1)], 0, 10); // w1: x = 1
        b.rw_txn(3, &[], &[(2, 1)], 20, 30); // w2: y = 1
        b.ro_txn(1, &[(1, 0), (2, 1)], 5, 40); // r1: x = 0, y = 1
        b.build()
    }

    /// Figure 10: both reads are concurrent with the long-running write; the
    /// first (by real time) sees it, the later one does not.
    fn figure_10() -> History {
        let mut b = HistoryBuilder::new();
        b.rw_txn(2, &[], &[(1, 1)], 0, 100); // w1: x = 1
        b.ro_txn(1, &[(1, 1)], 10, 20); // r1: x = 1
        b.ro_txn(3, &[(1, 0)], 30, 40); // r2: x = 0
        b.build()
    }

    /// Figure 11: write skew between two concurrent read-write transactions.
    fn figure_11() -> History {
        let mut b = HistoryBuilder::new();
        b.rw_txn(3, &[], &[(1, 1), (2, 1)], 0, 5); // initialize x = y = 1
        b.rw_txn(1, &[(1, 1), (2, 1)], &[(1, 2)], 10, 20);
        b.rw_txn(2, &[(1, 1), (2, 1)], &[(2, 2)], 10, 20);
        b.build()
    }

    /// Figure 13: a stale read strictly after a completed write.
    fn figure_13() -> History {
        let mut b = HistoryBuilder::new();
        b.write(1, 1, 1, 0, 10);
        b.read(2, 1, 0, 20, 30);
        b.build()
    }

    /// Figure 14: r1 precedes w1 in real time; P4 then reads x=1 followed by
    /// x=2 while w2 is still in flight.
    fn figure_14() -> History {
        let mut b = HistoryBuilder::new();
        b.write(2, 1, 2, 5, 60); // w2: x = 2, long running
        b.read(3, 1, 2, 8, 15); // r1: x = 2
        b.write(1, 1, 1, 20, 30); // w1: x = 1
        b.read(4, 1, 1, 35, 45); // r2: x = 1
        b.read(4, 1, 2, 46, 55); // r3: x = 2
        b.build()
    }

    /// Figure 15: the IRIW (independent reads of independent writes) shape.
    fn figure_15() -> History {
        let mut b = HistoryBuilder::new();
        b.write(1, 1, 1, 0, 100); // w1: x = 1
        b.write(2, 2, 1, 0, 100); // w2: y = 1
        b.read(3, 1, 1, 20, 25); // r1: x = 1
        b.read(3, 2, 0, 26, 30); // r2: y = 0
        b.read(4, 2, 1, 20, 25); // r3: y = 1
        b.read(4, 1, 0, 26, 30); // r4: x = 0
        b.build()
    }

    /// Figure 16: two concurrent writes; later reads by different processes
    /// disagree on which one is newer.
    fn figure_16() -> History {
        let mut b = HistoryBuilder::new();
        b.write(1, 1, 1, 0, 10); // w1: x = 1
        b.write(3, 1, 2, 0, 10); // w2: x = 2
        b.read(2, 1, 1, 20, 30); // r1: x = 1
        b.read(4, 1, 2, 20, 30); // r2: x = 2
        b.build()
    }

    #[test]
    fn figure_9_crdb_allows_rss_disallows() {
        let h = figure_9();
        assert!(allowed(&h, ProximalModel::Crdb));
        assert!(!satisfies(&h, Model::RegularSequentialSerializability));
        // Strong SI also disallows it (real-time order of the two writes).
        assert!(!allowed(&h, ProximalModel::StrongSnapshotIsolation));
        // PO serializability allows it.
        assert!(satisfies(&h, Model::ProcessOrderedSerializability));
    }

    #[test]
    fn figure_10_rss_allows_crdb_disallows() {
        let h = figure_10();
        assert!(satisfies(&h, Model::RegularSequentialSerializability));
        assert!(!allowed(&h, ProximalModel::Crdb));
    }

    #[test]
    fn figure_11_write_skew_allowed_by_strong_si_only() {
        let h = figure_11();
        assert!(allowed(&h, ProximalModel::StrongSnapshotIsolation));
        assert!(!satisfies(&h, Model::RegularSequentialSerializability));
        assert!(!satisfies(&h, Model::ProcessOrderedSerializability));
    }

    #[test]
    fn figure_13_osc_u_allows_rsc_disallows() {
        let h = figure_13();
        assert!(allowed(&h, ProximalModel::OscU));
        assert!(!satisfies(&h, Model::RegularSequentialConsistency));
        // VV regularity also disallows the stale read.
        assert!(!allowed(&h, ProximalModel::VvRegularity));
        // Real-time causal allows it: the read is causally unrelated to the
        // write, so it may return a stale value.
        assert!(allowed(&h, ProximalModel::RealTimeCausal));
    }

    #[test]
    fn figure_14_rsc_allows_osc_u_disallows() {
        let h = figure_14();
        assert!(satisfies(&h, Model::RegularSequentialConsistency));
        assert!(!allowed(&h, ProximalModel::OscU));
        assert!(allowed(&h, ProximalModel::VvRegularity));
    }

    #[test]
    fn figure_15_mwr_allows_rsc_disallows() {
        let h = figure_15();
        assert!(!satisfies(&h, Model::RegularSequentialConsistency));
        assert!(!satisfies(&h, Model::SequentialConsistency));
        assert!(allowed(&h, ProximalModel::MwrWeak));
        assert!(allowed(&h, ProximalModel::MwrWriteOrder));
        assert!(allowed(&h, ProximalModel::MwrNoInversion));
    }

    #[test]
    fn figure_16_mwr_rf_and_ni_allow_rsc_disallows() {
        let h = figure_16();
        assert!(!satisfies(&h, Model::RegularSequentialConsistency));
        assert!(allowed(&h, ProximalModel::MwrReadsFrom));
        assert!(allowed(&h, ProximalModel::MwrNoInversion));
        assert!(allowed(&h, ProximalModel::MwrWeak));
    }

    #[test]
    fn linearizable_history_allowed_by_all_weaker_models() {
        let mut b = HistoryBuilder::new();
        b.write(1, 1, 1, 0, 10);
        b.read(2, 1, 1, 20, 30);
        b.write(1, 1, 2, 40, 50);
        b.read(2, 1, 2, 60, 70);
        let h = b.build();
        assert!(satisfies(&h, Model::Linearizability));
        for model in [
            ProximalModel::Crdb,
            ProximalModel::StrongSnapshotIsolation,
            ProximalModel::OscU,
            ProximalModel::RealTimeCausal,
            ProximalModel::VvRegularity,
            ProximalModel::MwrWeak,
            ProximalModel::MwrWriteOrder,
            ProximalModel::MwrReadsFrom,
            ProximalModel::MwrNoInversion,
        ] {
            assert!(allowed(&h, model), "linearizable history rejected by {}", model.name());
        }
    }

    #[test]
    fn unexplainable_value_rejected_by_all_models() {
        let mut b = HistoryBuilder::new();
        b.write(1, 1, 1, 0, 10);
        b.read(2, 1, 42, 20, 30); // value nobody wrote
        let h = b.build();
        for model in [
            ProximalModel::Crdb,
            ProximalModel::OscU,
            ProximalModel::RealTimeCausal,
            ProximalModel::VvRegularity,
            ProximalModel::MwrWeak,
            ProximalModel::MwrWriteOrder,
            ProximalModel::MwrReadsFrom,
            ProximalModel::MwrNoInversion,
        ] {
            assert!(!allowed(&h, model), "impossible history accepted by {}", model.name());
        }
    }

    #[test]
    fn model_names() {
        assert_eq!(ProximalModel::Crdb.name(), "CRDB");
        assert_eq!(ProximalModel::MwrReadsFrom.name(), "MWR-RF");
    }
}
