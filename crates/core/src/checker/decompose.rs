//! Communication-component decomposition: stage 2 of the certification
//! cascade.
//!
//! Two operations must be ordered *relative to each other* by a checker only
//! if some chain of constraints connects them. [`ComponentSplit`] computes
//! the connected components of the communication graph — union-find over
//! shared `(service, key)` accesses, process membership, and message /
//! external-communication endpoints (fences and causal-context handoffs ride
//! along through their process) — so certification runs per component:
//!
//! * **Search** ([`find_sequence_decomposed`]): each component is searched
//!   independently (through the saturation prefilter of
//!   [`crate::checker::saturate`](mod@crate::checker::saturate)); per-component
//!   witnesses are then merged
//!   into one global witness. Since components share no keys, the merged
//!   sequence replays exactly as the components did; the only global
//!   constraints a model imposes *across* components are real-time edges,
//!   which [`CrossEdges`] characterizes per model and the merge enforces by
//!   interleaving on invocation/response times. If the greedy merge cannot
//!   honor them (per-component witnesses over-committed an internal order),
//!   the checker falls back to the whole-history search, so the verdict is
//!   always exact.
//! * **Witness checking** ([`check_witness_decomposed`]): a certificate for a
//!   large history is validated per component on scoped threads — membership
//!   globally, then each component's sub-history/sub-witness through
//!   [`check_witness`], plus the one truly global constraint (the RSS/RSC
//!   write-write real-time sweep) checked directly on the full witness.
//!
//! The decomposition is sound in both directions: a violation inside a
//! component is a violation of the whole history (the component's ops are
//! constrained only among themselves plus cross real-time edges, which the
//! merge/global sweep handles), and per-component witnesses concatenate into
//! a legal global witness because components are key-disjoint.

use std::collections::HashMap;

use crate::checker::certificate::{check_witness, check_witness_parallel, OrderKind};
use crate::checker::models::Model;
use crate::checker::saturate::find_sequence_saturated;
use crate::checker::search::{Constraints, SearchError};
use crate::checker::{WitnessModel, WitnessViolation};
use crate::hashing::FxBuildHasher;
use crate::history::{History, HistoryIndex};
use crate::spec::SpecViolation;
use crate::types::OpId;

/// Union-find with path halving; elements are op ids.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n as u32).collect() }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }
}

/// The communication components of a history.
#[derive(Debug, Clone)]
pub struct ComponentSplit {
    comp_of: Vec<u32>,
    components: Vec<Vec<OpId>>,
}

impl ComponentSplit {
    /// Computes the components: ops are connected if they share a process, a
    /// `(service, key)`, or their processes exchanged a message (application
    /// or external). Over-unioning is always sound — it only costs
    /// parallelism, never correctness.
    pub fn split(history: &History) -> Self {
        let n = history.len();
        let mut uf = UnionFind::new(n);
        let mut proc_rep: HashMap<u32, u32, FxBuildHasher> = HashMap::default();
        let mut key_rep: HashMap<(u32, u64), u32, FxBuildHasher> = HashMap::default();
        for op in history.ops() {
            let id = op.id.0;
            match proc_rep.entry(op.process.0) {
                std::collections::hash_map::Entry::Occupied(e) => uf.union(*e.get(), id),
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(id);
                }
            }
            for k in op.kind.accessed_keys() {
                match key_rep.entry((op.service.0, k.0)) {
                    std::collections::hash_map::Entry::Occupied(e) => uf.union(*e.get(), id),
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(id);
                    }
                }
            }
        }
        for m in history.messages().iter().chain(history.external_communications()) {
            if let (Some(&a), Some(&b)) = (proc_rep.get(&m.from.0), proc_rep.get(&m.to.0)) {
                uf.union(a, b);
            }
        }
        let mut comp_of = vec![0u32; n];
        let mut components: Vec<Vec<OpId>> = Vec::new();
        let mut root_comp: HashMap<u32, u32, FxBuildHasher> = HashMap::default();
        for i in 0..n as u32 {
            let root = uf.find(i);
            let c = *root_comp.entry(root).or_insert_with(|| {
                components.push(Vec::new());
                (components.len() - 1) as u32
            });
            comp_of[i as usize] = c;
            components[c as usize].push(OpId(i));
        }
        ComponentSplit { comp_of, components }
    }

    /// The component index of an operation.
    #[inline]
    pub fn comp_of(&self, id: OpId) -> usize {
        self.comp_of[id.index()] as usize
    }

    /// The components, each a list of op ids in ascending order. Numbered by
    /// first appearance in the history.
    #[inline]
    pub fn components(&self) -> &[Vec<OpId>] {
        &self.components
    }

    /// Number of components.
    #[inline]
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True if the history had no operations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

/// Which real-time edges a model imposes *across* components.
///
/// Every other constraint family is intra-component by construction: process
/// order stays inside one process (one component), reads-from and per-key
/// conflicts share a key, and message edges connect processes the split
/// unioned. Real-time edges are the exception — they hold between concurrent
/// processes that never communicate — and each model draws them between a
/// specific source/target class:
///
/// | variant | source (must respond) | target | model |
/// |---|---|---|---|
/// | `None` | — | — | PO ser. / SC / CRDB (CRDB's real-time edges require a shared key) |
/// | `AllPairs` | any complete | any | strict ser. / linearizability |
/// | `WriteWrite` | complete mutating | mutating | RSS / RSC (cross-component conflicting reads can't exist) |
/// | `CompleteToWrite` | any complete | mutating | OSC(U) |
/// | `WriteToAll` | complete mutating | any | VV regularity |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossEdges {
    /// No cross-component constraints: concatenation is a legal merge.
    None,
    /// `resp(a) < inv(b)` constrains every pair.
    AllPairs,
    /// Completed mutating ops precede mutating ops they really precede.
    WriteWrite,
    /// Every completed op precedes mutating ops it really precedes.
    CompleteToWrite,
    /// Completed mutating ops precede every op they really precede.
    WriteToAll,
}

impl CrossEdges {
    /// The cross-component edge class of a search [`Model`].
    pub fn for_model(model: Model) -> CrossEdges {
        match model {
            Model::StrictSerializability | Model::Linearizability => CrossEdges::AllPairs,
            Model::RegularSequentialSerializability | Model::RegularSequentialConsistency => {
                CrossEdges::WriteWrite
            }
            Model::ProcessOrderedSerializability | Model::SequentialConsistency => CrossEdges::None,
        }
    }

    /// True if `op` can be the source of a cross-component edge (sources must
    /// have responded — real-time edges need a response instant).
    #[inline]
    fn is_source(self, index: &HistoryIndex, op: usize) -> bool {
        if index.response_us(op).is_none() {
            return false;
        }
        match self {
            CrossEdges::None => false,
            CrossEdges::AllPairs | CrossEdges::CompleteToWrite => true,
            CrossEdges::WriteWrite | CrossEdges::WriteToAll => index.is_mutating(op),
        }
    }

    /// True if `op` can be the target of a cross-component edge.
    #[inline]
    fn is_target(self, index: &HistoryIndex, op: usize) -> bool {
        match self {
            CrossEdges::None => false,
            CrossEdges::AllPairs | CrossEdges::WriteToAll => true,
            CrossEdges::WriteWrite | CrossEdges::CompleteToWrite => index.is_mutating(op),
        }
    }
}

/// The saturated search run per communication component, with per-component
/// witnesses merged into one global witness.
///
/// Verdict-equivalent to
/// [`find_sequence_with`](crate::checker::search::find_sequence_with) on the
/// same inputs, provided `cross` matches the model that produced
/// `constraints` (see [`CrossEdges::for_model`]): an unsatisfiable component
/// is unsatisfiable globally (its ops are constrained only among themselves
/// and by cross real-time edges, which only *further* restrict), and a
/// successful merge yields a sequence respecting every constraint. When the
/// greedy merge cannot interleave the component witnesses (possible when a
/// component's internal order over-commits), the whole-history saturated
/// search decides — so no verdict is ever lost to decomposition.
///
/// # Errors
///
/// Propagates [`SearchError`] from the underlying searches.
pub fn find_sequence_decomposed(
    history: &History,
    index: &HistoryIndex,
    required: &[OpId],
    optional: &[OpId],
    constraints: &Constraints,
    cross: CrossEdges,
) -> Result<Option<Vec<OpId>>, SearchError> {
    let split = ComponentSplit::split(history);
    if split.len() <= 1 {
        return find_sequence_saturated(index, required, optional, constraints);
    }
    let k = split.len();
    let mut req_by: Vec<Vec<OpId>> = vec![Vec::new(); k];
    let mut opt_by: Vec<Vec<OpId>> = vec![Vec::new(); k];
    for &id in required {
        req_by[split.comp_of(id)].push(id);
    }
    for &id in optional {
        opt_by[split.comp_of(id)].push(id);
    }
    let mut edges_by: Vec<Vec<(OpId, OpId)>> = vec![Vec::new(); k];
    for &(a, b) in constraints.edges() {
        let (ca, cb) = (split.comp_of(a), split.comp_of(b));
        if ca == cb {
            edges_by[ca].push((a, b));
        }
        // Cross-component edges are dropped here and re-imposed by the merge
        // (they are always of the `cross` time-edge class for a well-formed
        // model constraint set).
    }
    let mut witnesses: Vec<Vec<OpId>> = Vec::with_capacity(k);
    for c in 0..k {
        if req_by[c].is_empty() && opt_by[c].is_empty() {
            witnesses.push(Vec::new());
            continue;
        }
        let comp_constraints = Constraints::from_edges(std::mem::take(&mut edges_by[c]));
        match find_sequence_saturated(index, &req_by[c], &opt_by[c], &comp_constraints)? {
            Some(w) => witnesses.push(w),
            None => return Ok(None),
        }
    }
    if cross == CrossEdges::None {
        return Ok(Some(witnesses.concat()));
    }
    match merge_witnesses(index, &witnesses, cross) {
        Some(merged) => Ok(Some(merged)),
        None => find_sequence_saturated(index, required, optional, constraints),
    }
}

/// Greedily interleaves per-component witnesses so that every cross-component
/// time edge (`resp(source) < inv(target)`, source/target per `cross`) is
/// respected. Returns `None` if stuck — the caller falls back to the
/// whole-history search.
///
/// Greedy is safe here: emitting an op only advances component pointers, and
/// the per-component suffix-minimum of unemitted source response times is
/// non-decreasing as the pointer advances — so an emittable head can never
/// become unemittable. If the loop stalls, no interleaving of *these*
/// witnesses exists.
fn merge_witnesses(
    index: &HistoryIndex,
    witnesses: &[Vec<OpId>],
    cross: CrossEdges,
) -> Option<Vec<OpId>> {
    const INF: u64 = u64::MAX;
    // suffix_min[c][p]: the minimum response time among source-class ops at
    // positions >= p of component c's witness.
    let suffix_min: Vec<Vec<u64>> = witnesses
        .iter()
        .map(|w| {
            let mut v = vec![INF; w.len() + 1];
            for p in (0..w.len()).rev() {
                let op = w[p].index();
                let s = if cross.is_source(index, op) {
                    index.response_us(op).unwrap_or(INF)
                } else {
                    INF
                };
                v[p] = v[p + 1].min(s);
            }
            v
        })
        .collect();
    let total: usize = witnesses.iter().map(Vec::len).sum();
    let mut ptr = vec![0usize; witnesses.len()];
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        let mut emitted = false;
        for (c, w) in witnesses.iter().enumerate() {
            let p = ptr[c];
            if p >= w.len() {
                continue;
            }
            let head = w[p].index();
            let emittable = if !cross.is_target(index, head) {
                true
            } else {
                let inv = index.invoke_us(head);
                // No other component may still hold an unemitted source that
                // really precedes this head (strictly: resp < inv).
                suffix_min.iter().enumerate().all(|(d, sm)| d == c || sm[ptr[d]] >= inv)
            };
            if emittable {
                out.push(w[p]);
                ptr[c] += 1;
                emitted = true;
                break;
            }
        }
        if !emitted {
            return None;
        }
    }
    Some(out)
}

/// [`check_witness_parallel`] with component-level parallelism: membership is
/// validated globally, each component's sub-history and sub-witness are
/// checked independently on scoped threads, and the one cross-component
/// constraint (the RSS/RSC global write-write real-time sweep) is checked
/// directly on the full witness. Accepts and rejects exactly the same
/// witnesses as [`check_witness`]; as with the sharded checker, *which*
/// violation is reported may differ.
///
/// [`WitnessModel::RealTime`] histories take the whole-history path — the
/// all-pairs real-time sweep is inherently global.
pub fn check_witness_decomposed(
    history: &History,
    witness: &[OpId],
    model: WitnessModel,
    threads: usize,
) -> Result<(), WitnessViolation> {
    let split = ComponentSplit::split(history);
    if model == WitnessModel::RealTime || split.len() <= 1 {
        let index = HistoryIndex::new(history);
        return check_witness_parallel(history, &index, witness, model, threads);
    }

    // Global membership: unknown ids, duplicates, missing complete ops.
    let mut positions = vec![u32::MAX; history.len()];
    for (pos, &id) in witness.iter().enumerate() {
        if id.index() >= history.len() {
            return Err(WitnessViolation::UnknownOp(id));
        }
        if positions[id.index()] != u32::MAX {
            return Err(WitnessViolation::DuplicateOp(id));
        }
        positions[id.index()] = pos as u32;
    }
    for op in history.ops() {
        if op.is_complete() && positions[op.id.index()] == u32::MAX {
            return Err(WitnessViolation::MissingCompleteOp(op.id));
        }
    }

    // Per-component sub-histories (fresh dense ids in ascending old-id order,
    // which preserves per-process `(invoke, id)` sorting) and sub-witnesses.
    let comps = split.components();
    let mut tasks: Vec<(History, Vec<OpId>, &[OpId])> = Vec::with_capacity(comps.len());
    for old_ids in comps {
        let mut sub = History::new();
        for &old in old_ids {
            let op = history.op(old);
            match (&op.response, &op.result) {
                (Some(resp), Some(result)) => {
                    sub.add_complete(
                        op.process,
                        op.service,
                        op.kind.clone(),
                        op.invoke,
                        *resp,
                        result.clone(),
                    );
                }
                _ => {
                    sub.add_incomplete(op.process, op.service, op.kind.clone(), op.invoke);
                }
            }
        }
        // Copy every message edge; edges whose endpoint processes are not in
        // this component bind no operations here (and both endpoints of a
        // message always share a component, so the owning component sees the
        // identical edge set).
        for m in history.messages() {
            sub.add_message(m.from, m.sent_at, m.to, m.received_at);
        }
        tasks.push((sub, Vec::new(), old_ids));
    }
    for &id in witness {
        let c = split.comp_of(id);
        let local = comps[c].binary_search(&id).expect("witness op is in its component");
        tasks[c].1.push(OpId(local as u32));
    }

    let threads = threads.max(1).min(tasks.len());
    let failure: std::sync::Mutex<Option<WitnessViolation>> = std::sync::Mutex::new(None);
    std::thread::scope(|scope| {
        let failure = &failure;
        let tasks = &tasks;
        for t in 0..threads {
            scope.spawn(move || {
                for (c, (sub, sub_witness, old_ids)) in tasks.iter().enumerate() {
                    if c % threads != t {
                        continue;
                    }
                    if let Err(v) = check_witness(sub, sub_witness, model) {
                        let remapped = remap_violation(v, old_ids);
                        failure.lock().unwrap_or_else(|e| e.into_inner()).get_or_insert(remapped);
                        return;
                    }
                }
            });
        }
    });
    if let Some(v) = failure.into_inner().unwrap_or_else(|e| e.into_inner()) {
        return Err(v);
    }

    // The global write-write real-time sweep (clause 3 of RSS/RSC) is the one
    // Regular constraint that crosses components; every other family was
    // covered per component.
    if model == WitnessModel::Regular {
        check_global_write_write(history, &positions)?;
    }
    Ok(())
}

/// Maps a violation reported against a component sub-history back to the
/// original op ids.
fn remap_violation(v: WitnessViolation, old_ids: &[OpId]) -> WitnessViolation {
    let map = |id: OpId| old_ids[id.index()];
    match v {
        WitnessViolation::UnknownOp(id) => WitnessViolation::UnknownOp(map(id)),
        WitnessViolation::DuplicateOp(id) => WitnessViolation::DuplicateOp(map(id)),
        WitnessViolation::MissingCompleteOp(id) => WitnessViolation::MissingCompleteOp(map(id)),
        WitnessViolation::Spec(SpecViolation { op, expected, actual }) => {
            WitnessViolation::Spec(SpecViolation { op: map(op), expected, actual })
        }
        WitnessViolation::OrderViolation { kind, first, second } => {
            WitnessViolation::OrderViolation { kind, first: map(first), second: map(second) }
        }
    }
}

/// The global RSS/RSC write-write constraint on the full witness: every
/// completed mutating op precedes (in the witness) every mutating op that
/// follows it in real time. Mirrors the certificate checker's sweep exactly
/// (strict `<` on times, running maximum over responded sources).
fn check_global_write_write(history: &History, positions: &[u32]) -> Result<(), WitnessViolation> {
    let mut sources: Vec<(u64, u32, u32)> = Vec::new();
    let mut targets: Vec<(u64, u32, u32)> = Vec::new();
    for op in history.ops() {
        let pos = positions[op.id.index()];
        if pos == u32::MAX || !op.kind.is_mutating() {
            continue;
        }
        if let Some(resp) = op.response {
            sources.push((resp.as_micros(), pos, op.id.0));
        }
        targets.push((op.invoke.as_micros(), pos, op.id.0));
    }
    sources.sort_unstable();
    targets.sort_unstable();
    let mut max_pos: Option<(u32, u32)> = None;
    let mut si = 0;
    for &(t_inv, pos_b, id_b) in &targets {
        while si < sources.len() && sources[si].0 < t_inv {
            let (_, pos_a, id_a) = sources[si];
            if max_pos.map(|(p, _)| pos_a > p).unwrap_or(true) {
                max_pos = Some((pos_a, id_a));
            }
            si += 1;
        }
        if let Some((p, id_a)) = max_pos {
            if p > pos_b && id_a != id_b {
                return Err(WitnessViolation::OrderViolation {
                    kind: OrderKind::RegularWrite,
                    first: OpId(id_a),
                    second: OpId(id_b),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::models::{check, constraints_for_with, satisfies};
    use crate::history::HistoryBuilder;
    use crate::spec::check_sequence;

    /// Two groups: processes 1-2 on keys 1-2, processes 3-4 on keys 11-12.
    /// No messages — two components.
    fn two_group_history() -> History {
        let mut b = HistoryBuilder::new();
        b.write(1, 1, 10, 0, 5);
        b.read(2, 1, 10, 6, 9);
        b.write(2, 2, 20, 10, 15);
        b.read(1, 2, 20, 16, 19);
        b.write(3, 11, 30, 2, 7);
        b.read(4, 11, 30, 8, 11);
        b.write(4, 12, 40, 12, 17);
        b.read(3, 12, 40, 18, 21);
        b.build()
    }

    #[test]
    fn split_finds_independent_groups() {
        let h = two_group_history();
        let split = ComponentSplit::split(&h);
        assert_eq!(split.len(), 2);
        assert_eq!(split.comp_of(OpId(0)), split.comp_of(OpId(3)));
        assert_ne!(split.comp_of(OpId(0)), split.comp_of(OpId(4)));
        assert_eq!(split.components()[0].len(), 4);
        assert_eq!(split.components()[1].len(), 4);
    }

    #[test]
    fn messages_union_components() {
        let mut b = HistoryBuilder::new();
        b.write(1, 1, 10, 0, 5);
        b.write(2, 2, 20, 0, 5);
        b.message(1, 6, 2, 7);
        let h = b.build();
        assert_eq!(ComponentSplit::split(&h).len(), 1);
    }

    #[test]
    fn shared_key_unions_components() {
        let mut b = HistoryBuilder::new();
        b.write(1, 1, 10, 0, 5);
        b.read(2, 1, 10, 6, 9);
        b.write(3, 2, 30, 0, 5);
        let h = b.build();
        let split = ComponentSplit::split(&h);
        assert_eq!(split.len(), 2);
        assert_eq!(split.comp_of(OpId(0)), split.comp_of(OpId(1)));
    }

    #[test]
    fn decomposed_search_agrees_across_models() {
        let h = two_group_history();
        let index = HistoryIndex::new(&h);
        for model in [
            Model::StrictSerializability,
            Model::Linearizability,
            Model::RegularSequentialSerializability,
            Model::RegularSequentialConsistency,
            Model::ProcessOrderedSerializability,
            Model::SequentialConsistency,
        ] {
            let constraints = constraints_for_with(&h, &index, model);
            let plain = crate::checker::search::find_sequence_with(
                &index,
                index.complete_ids(),
                index.pending_mutations(),
                &constraints,
            )
            .unwrap();
            let decomposed = find_sequence_decomposed(
                &h,
                &index,
                index.complete_ids(),
                index.pending_mutations(),
                &constraints,
                CrossEdges::for_model(model),
            )
            .unwrap();
            assert_eq!(plain.is_some(), decomposed.is_some(), "{model:?}");
            if let Some(seq) = &decomposed {
                assert!(check_sequence(&h, seq).is_ok(), "{model:?} witness replays");
            }
        }
    }

    #[test]
    fn merged_witness_respects_cross_component_real_time() {
        // Component A finishes entirely before component B starts; the merged
        // linearizability witness must order A's ops before B's, which the
        // real-time witness checker verifies end-to-end.
        let mut b = HistoryBuilder::new();
        b.write(1, 1, 10, 0, 5);
        b.read(1, 1, 10, 6, 9);
        b.write(2, 2, 20, 100, 105);
        b.read(2, 2, 20, 106, 109);
        let h = b.build();
        let index = HistoryIndex::new(&h);
        assert_eq!(ComponentSplit::split(&h).len(), 2);
        let constraints = constraints_for_with(&h, &index, Model::Linearizability);
        let witness = find_sequence_decomposed(
            &h,
            &index,
            index.complete_ids(),
            index.pending_mutations(),
            &constraints,
            CrossEdges::AllPairs,
        )
        .unwrap()
        .expect("linearizable history");
        assert_eq!(check_witness(&h, &witness, WitnessModel::RealTime), Ok(()));
    }

    #[test]
    fn unsatisfiable_component_fails_the_whole_history() {
        let mut b = HistoryBuilder::new();
        b.write(1, 1, 10, 0, 5); // healthy component
        b.write(3, 11, 30, 0, 5); // stale-read component
        b.read(4, 11, 0, 20, 30);
        let h = b.build();
        let index = HistoryIndex::new(&h);
        assert_eq!(ComponentSplit::split(&h).len(), 2);
        let constraints = constraints_for_with(&h, &index, Model::Linearizability);
        let verdict = find_sequence_decomposed(
            &h,
            &index,
            index.complete_ids(),
            index.pending_mutations(),
            &constraints,
            CrossEdges::AllPairs,
        )
        .unwrap();
        assert!(verdict.is_none());
        assert!(!satisfies(&h, Model::Linearizability));
    }

    #[test]
    fn decomposed_witness_check_agrees_with_whole_check() {
        let h = two_group_history();
        let outcome = check(&h, Model::RegularSequentialConsistency).unwrap();
        let witness = outcome.witness.expect("satisfiable");
        for threads in [1, 2, 4] {
            assert_eq!(
                check_witness_decomposed(&h, &witness, WitnessModel::Regular, threads),
                Ok(()),
                "{threads} threads accept"
            );
            // Swap two ops of one process: a process-order violation both
            // checkers reject.
            let mut bad = witness.clone();
            let (i, j) = (
                bad.iter().position(|&x| x == OpId(0)).unwrap(),
                bad.iter().position(|&x| x == OpId(3)).unwrap(),
            );
            bad.swap(i, j);
            assert!(
                check_witness(&h, &bad, WitnessModel::Regular).is_err(),
                "whole checker rejects"
            );
            assert!(
                check_witness_decomposed(&h, &bad, WitnessModel::Regular, threads).is_err(),
                "{threads} threads reject"
            );
        }
    }

    #[test]
    fn decomposed_witness_check_enforces_cross_component_write_write() {
        // Two disjoint components; w1 finishes before w2 starts, so Regular
        // requires w1 before w2 in the witness even though no key is shared.
        let mut b = HistoryBuilder::new();
        let w1 = b.write(1, 1, 10, 0, 5);
        let w2 = b.write(2, 2, 20, 10, 15);
        let h = b.build();
        assert_eq!(ComponentSplit::split(&h).len(), 2);
        assert_eq!(check_witness_decomposed(&h, &[w1, w2], WitnessModel::Regular, 2), Ok(()));
        let err = check_witness_decomposed(&h, &[w2, w1], WitnessModel::Regular, 2).unwrap_err();
        assert!(matches!(
            err,
            WitnessViolation::OrderViolation { kind: OrderKind::RegularWrite, .. }
        ));
        // And matches the whole-history checker.
        assert!(check_witness(&h, &[w2, w1], WitnessModel::Regular).is_err());
    }

    #[test]
    fn decomposed_witness_check_reports_membership_errors() {
        let h = two_group_history();
        let witness = check(&h, Model::SequentialConsistency).unwrap().witness.unwrap();
        let mut missing = witness.clone();
        let dropped = missing.pop().unwrap();
        assert_eq!(
            check_witness_decomposed(&h, &missing, WitnessModel::ProcessOrder, 2),
            Err(WitnessViolation::MissingCompleteOp(dropped))
        );
        let mut dup = witness.clone();
        dup.push(witness[0]);
        assert_eq!(
            check_witness_decomposed(&h, &dup, WitnessModel::ProcessOrder, 2),
            Err(WitnessViolation::DuplicateOp(witness[0]))
        );
    }
}
