//! Property-based tests of the consistency-model core: checker soundness,
//! witness/search agreement, spec replay determinism, and the witness
//! assembler.

use proptest::prelude::*;
use regular_core::checker::assemble::assemble_witness;
use regular_core::checker::certificate::{check_witness, check_witness_parallel, WitnessModel};
use regular_core::checker::decompose::{
    check_witness_decomposed, find_sequence_decomposed, CrossEdges,
};
use regular_core::checker::models::{check, constraints_for, Model};
use regular_core::checker::saturate::find_sequence_saturated;
use regular_core::checker::search::{find_sequence, find_sequence_reference};
use regular_core::checker::window::StreamingChecker;
use regular_core::history::History;
use regular_core::history::HistoryIndex;
use regular_core::op::{OpKind, OpResult};
use regular_core::order::{message_edges, reads_from_edges, CausalOrder};
use regular_core::spec::{check_sequence, SpecState};
use regular_core::types::{Key, ProcessId, ServiceId, Timestamp, Value};

/// Operation description used by the generators.
#[derive(Debug, Clone)]
struct GenOp {
    process: u8,
    key: u8,
    is_write: bool,
    duration: u8,
    pick: u8,
}

fn gen_ops(max: usize) -> impl Strategy<Value = Vec<GenOp>> {
    prop::collection::vec(
        (0u8..3, 0u8..3, any::<bool>(), 0u8..3, any::<u8>()).prop_map(
            |(process, key, is_write, duration, pick)| GenOp {
                process,
                key,
                is_write,
                duration,
                pick,
            },
        ),
        1..max,
    )
}

/// Builds a well-formed history where reads return either null or a value some
/// write (anywhere in the history) wrote to the same key. Not necessarily
/// satisfiable under any model.
fn build_history(ops: &[GenOp]) -> History {
    let mut history = History::new();
    let mut writes: Vec<(Key, Value)> = Vec::new();
    // Pre-assign write values so reads can "read from the future" too — the
    // checkers must handle that (it is simply unsatisfiable in most models).
    for (i, op) in ops.iter().enumerate() {
        if op.is_write {
            writes.push((Key((op.key % 3) as u64 + 1), Value(1_000 + i as u64)));
        }
    }
    let mut now = 0u64;
    let mut free_at = [0u64; 4];
    for (i, op) in ops.iter().enumerate() {
        let pidx = (op.process % 3) as usize + 1;
        let key = Key((op.key % 3) as u64 + 1);
        now += 7;
        let invoke = now.max(free_at[pidx] + 1);
        let response = invoke + 3 + (op.duration as u64 % 3) * 15;
        free_at[pidx] = response;
        if op.is_write {
            history.add_complete(
                ProcessId(pidx as u32),
                ServiceId::KV,
                OpKind::Write { key, value: Value(1_000 + i as u64) },
                Timestamp(invoke),
                Timestamp(response),
                OpResult::Ack,
            );
        } else {
            let candidates: Vec<Value> =
                writes.iter().filter(|(k, _)| *k == key).map(|(_, v)| *v).collect();
            let value = if candidates.is_empty()
                || (op.pick as usize).is_multiple_of(candidates.len() + 1)
            {
                Value::NULL
            } else {
                candidates[(op.pick as usize) % candidates.len()]
            };
            history.add_complete(
                ProcessId(pidx as u32),
                ServiceId::KV,
                OpKind::Read { key },
                Timestamp(invoke),
                Timestamp(response),
                OpResult::Value(value),
            );
        }
    }
    history
}

/// Like [`build_history`], but writes with `duration == 2` are recorded as
/// incomplete (pending), so the optional-subset enumeration of the search is
/// exercised as well.
fn build_history_with_pending(ops: &[GenOp]) -> History {
    let complete = build_history(ops);
    let mut history = History::new();
    for (op, gen) in complete.ops().iter().zip(ops) {
        if gen.is_write && gen.duration == 2 {
            history.add_incomplete(op.process, op.service, op.kind.clone(), op.invoke);
        } else {
            history.add_complete(
                op.process,
                op.service,
                op.kind.clone(),
                op.invoke,
                op.response.expect("build_history records complete ops"),
                op.result.clone().expect("build_history records results"),
            );
        }
    }
    history
}

/// Builds `groups` disjoint copies of the generated history — distinct
/// processes, keys, and write values per group, but overlapping real-time
/// intervals — so the component decomposition actually splits the work and
/// the cross-component real-time sweep has pairs to look at.
fn build_grouped_history(ops: &[GenOp], groups: usize) -> History {
    let mut history = History::new();
    for g in 0..groups as u64 {
        let value_of = |i: usize| Value(1_000 + g * 10_000 + i as u64);
        let key_of = |k: u8| Key((k % 3) as u64 + 1 + g * 3);
        let writes: Vec<(Key, Value)> = ops
            .iter()
            .enumerate()
            .filter(|(_, op)| op.is_write)
            .map(|(i, op)| (key_of(op.key), value_of(i)))
            .collect();
        let mut now = 0u64;
        let mut free_at = [0u64; 4];
        for (i, op) in ops.iter().enumerate() {
            let pslot = (op.process % 3) as usize + 1;
            let process = ProcessId(g as u32 * 3 + pslot as u32);
            let key = key_of(op.key);
            now += 7;
            let invoke = now.max(free_at[pslot] + 1);
            let response = invoke + 3 + (op.duration as u64 % 3) * 15;
            free_at[pslot] = response;
            if op.is_write {
                history.add_complete(
                    process,
                    ServiceId::KV,
                    OpKind::Write { key, value: value_of(i) },
                    Timestamp(invoke),
                    Timestamp(response),
                    OpResult::Ack,
                );
            } else {
                let candidates: Vec<Value> =
                    writes.iter().filter(|(k, _)| *k == key).map(|(_, v)| *v).collect();
                let value = if candidates.is_empty()
                    || (op.pick as usize).is_multiple_of(candidates.len() + 1)
                {
                    Value::NULL
                } else {
                    candidates[(op.pick as usize) % candidates.len()]
                };
                history.add_complete(
                    process,
                    ServiceId::KV,
                    OpKind::Read { key },
                    Timestamp(invoke),
                    Timestamp(response),
                    OpResult::Value(value),
                );
            }
        }
    }
    history
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Whenever the exact search finds a witness for a model, the certificate
    /// checker accepts that witness for the corresponding witness model (the
    /// two characterizations of the definitions agree).
    #[test]
    fn search_witnesses_pass_the_certificate_checker(ops in gen_ops(8)) {
        let h = build_history(&ops);
        for (model, witness_model) in [
            (Model::Linearizability, WitnessModel::RealTime),
            (Model::RegularSequentialConsistency, WitnessModel::Regular),
            (Model::SequentialConsistency, WitnessModel::ProcessOrder),
        ] {
            let outcome = check(&h, model).unwrap();
            if let (true, Some(witness)) = (outcome.satisfied, outcome.witness) {
                prop_assert!(
                    check_witness(&h, &witness, witness_model).is_ok(),
                    "{} witness rejected by the certificate checker",
                    model.name()
                );
            }
        }
    }

    /// The witness found by the search is always a legal sequence per the spec
    /// and respects the model's constraint edges.
    #[test]
    fn witnesses_respect_spec_and_constraints(ops in gen_ops(8)) {
        let h = build_history(&ops);
        let model = Model::RegularSequentialSerializability;
        let outcome = check(&h, model).unwrap();
        if let (true, Some(witness)) = (outcome.satisfied, outcome.witness) {
            prop_assert!(check_sequence(&h, &witness).is_ok());
            let constraints = constraints_for(&h, model);
            let pos = |id| witness.iter().position(|x| *x == id);
            for (a, b) in constraints.edges() {
                if let (Some(pa), Some(pb)) = (pos(*a), pos(*b)) {
                    prop_assert!(pa < pb, "constraint {a} -> {b} violated");
                }
            }
        }
    }

    /// The two reachability implementations of the causal order (per-query DFS
    /// and the all-pairs closure) agree, and reads-from edges always point
    /// from a write to a read of the same key. (Acyclicity is only guaranteed
    /// for histories recorded from real executions; this generator can create
    /// impossible "read from the future" histories, which the model checkers
    /// simply reject.)
    #[test]
    fn causal_order_reachability_and_reads_from_are_well_typed(ops in gen_ops(10)) {
        let h = build_history(&ops);
        let causal = CausalOrder::new(&h);
        let closure = causal.closure();
        for a in h.complete_ids() {
            for b in h.complete_ids() {
                if a != b {
                    prop_assert_eq!(
                        causal.precedes(a, b),
                        closure[a.index()][b.index()],
                        "reachability implementations disagree for {} -> {}",
                        a,
                        b
                    );
                }
            }
        }
        for (w, r) in reads_from_edges(&h) {
            prop_assert!(h.op(w).kind.is_mutating());
            prop_assert!(!h.op(r).kind.is_mutating());
            let wk = h.op(w).kind.written_keys();
            let rk = h.op(r).kind.read_keys();
            prop_assert!(wk.iter().any(|k| rk.contains(k)));
        }
    }

    /// A sequence accepted by the spec replay yields exactly the same final
    /// state regardless of how many times it is replayed (replay determinism).
    #[test]
    fn spec_replay_is_deterministic(ops in gen_ops(10)) {
        let h = build_history(&ops);
        let order = h.complete_ids();
        let mut s1 = SpecState::new();
        let mut s2 = SpecState::new();
        for id in &order {
            let op = h.op(*id);
            s1.apply(op.service, &op.kind);
        }
        for id in &order {
            let op = h.op(*id);
            s2.apply(op.service, &op.kind);
        }
        prop_assert_eq!(s1.fingerprint(), s2.fingerprint());
        prop_assert_eq!(s1, s2);
    }

    /// If the search says a history is linearizable, the assembler — given the
    /// per-key order implied by the search witness — also produces a witness
    /// the certificate checker accepts.
    #[test]
    fn assembler_reconstructs_linearizable_witnesses(ops in gen_ops(7)) {
        let h = build_history(&ops);
        let outcome = check(&h, Model::Linearizability).unwrap();
        if let (true, Some(witness)) = (outcome.satisfied, outcome.witness) {
            // Derive per-key chains from the search witness (what a protocol
            // would provide via its per-key metadata).
            let mut edges = Vec::new();
            for key in 1..=3u64 {
                let chain: Vec<_> = witness
                    .iter()
                    .copied()
                    .filter(|id| h.op(*id).kind.accessed_keys().contains(&Key(key)))
                    .collect();
                for w in chain.windows(2) {
                    edges.push((w[0], w[1]));
                }
            }
            let assembled = assemble_witness(&h, &edges, WitnessModel::RealTime);
            prop_assert!(assembled.is_ok(), "assembler failed on a linearizable history");
            prop_assert!(check_witness(&h, &assembled.unwrap(), WitnessModel::RealTime).is_ok());
        }
    }

    /// The index-based search (compiled constraint graph, mutable spec state
    /// with undo, bitmask cycle checks) agrees exactly with the retained
    /// naive reference implementation — same satisfiability verdict under
    /// every model's constraint set, and any witness it produces passes the
    /// spec replay and the constraints.
    #[test]
    fn optimized_search_agrees_with_reference(ops in gen_ops(8)) {
        let h = build_history_with_pending(&ops);
        let required = h.complete_ids();
        let optional = h.pending_mutations();
        for model in [
            Model::StrictSerializability,
            Model::Linearizability,
            Model::RegularSequentialSerializability,
            Model::RegularSequentialConsistency,
            Model::ProcessOrderedSerializability,
            Model::SequentialConsistency,
        ] {
            let constraints = constraints_for(&h, model);
            let fast = find_sequence(&h, &required, &optional, &constraints).unwrap();
            let slow = find_sequence_reference(&h, &required, &optional, &constraints).unwrap();
            prop_assert_eq!(
                fast.is_some(),
                slow.is_some(),
                "{} verdicts diverge: optimized={:?} reference={:?}",
                model.name(),
                &fast,
                &slow
            );
            if let Some(witness) = &fast {
                prop_assert!(check_sequence(&h, witness).is_ok());
                let pos = |id| witness.iter().position(|x| *x == id);
                for (a, b) in constraints.edges() {
                    if let (Some(pa), Some(pb)) = (pos(*a), pos(*b)) {
                        prop_assert!(pa < pb, "constraint {a} -> {b} violated under {}", model.name());
                    }
                }
            }
        }
    }

    /// Sharded parallel witness checking is *equivalent* to the sequential
    /// checker: identical accept/reject verdicts at every thread count, on
    /// random histories well past the 128-op ceiling the old `u128` search
    /// masks imposed on the exact checkers. Histories range to ~700 ops so
    /// a large fraction exceed the checker's parallel-dispatch threshold and
    /// exercise the real multi-thread shards, while the smaller ones pin the
    /// sequential fallback. (When a witness is invalid the *reported*
    /// violation may differ between shards — only the verdict is compared.)
    #[test]
    fn parallel_witness_check_agrees_with_sequential(ops in gen_ops(700), flip in any::<bool>()) {
        let h = build_history(&ops);
        let index = HistoryIndex::new(&h);
        // Candidate witnesses: history order (often valid for ProcessOrder,
        // sometimes for the others) and a deliberately perturbed order that
        // usually trips a constraint.
        let mut witness = h.complete_ids();
        if flip && witness.len() >= 2 {
            let n = witness.len();
            witness.swap(0, n - 1);
        }
        for model in [WitnessModel::RealTime, WitnessModel::Regular, WitnessModel::ProcessOrder] {
            let sequential = check_witness(&h, &witness, model);
            for threads in [2usize, 3, 5] {
                let parallel = check_witness_parallel(&h, &index, &witness, model, threads);
                prop_assert_eq!(
                    sequential.is_ok(),
                    parallel.is_ok(),
                    "verdicts diverge ({} ops, {} threads, {:?}): seq={:?} par={:?}",
                    h.len(),
                    threads,
                    model,
                    &sequential,
                    &parallel
                );
            }
        }
    }

    /// The certification cascade — saturation prefilter alone, and saturation
    /// + component decomposition — reaches exactly the same satisfiability
    /// verdict as the naive reference search under every model, on histories
    /// whose disjoint groups force the decomposed path to actually split.
    /// Any witness the cascade produces passes the spec replay and the
    /// model's constraint edges.
    #[test]
    fn certification_cascade_agrees_with_reference_search(
        ops in gen_ops(7),
        groups in 1usize..3,
    ) {
        let h = build_grouped_history(&ops, groups);
        let index = HistoryIndex::new(&h);
        let required = h.complete_ids();
        let optional = h.pending_mutations();
        for model in [
            Model::StrictSerializability,
            Model::Linearizability,
            Model::RegularSequentialSerializability,
            Model::RegularSequentialConsistency,
            Model::ProcessOrderedSerializability,
            Model::SequentialConsistency,
        ] {
            let constraints = constraints_for(&h, model);
            let reference =
                find_sequence_reference(&h, &required, &optional, &constraints).unwrap();
            let saturated =
                find_sequence_saturated(&index, &required, &optional, &constraints).unwrap();
            let cascaded = find_sequence_decomposed(
                &h,
                &index,
                &required,
                &optional,
                &constraints,
                CrossEdges::for_model(model),
            )
            .unwrap();
            prop_assert_eq!(
                saturated.is_some(),
                reference.is_some(),
                "{} verdicts diverge: saturated={:?} reference={:?}",
                model.name(),
                &saturated,
                &reference
            );
            prop_assert_eq!(
                cascaded.is_some(),
                reference.is_some(),
                "{} verdicts diverge: decomposed={:?} reference={:?}",
                model.name(),
                &cascaded,
                &reference
            );
            for witness in [&saturated, &cascaded].into_iter().flatten() {
                prop_assert!(check_sequence(&h, witness).is_ok());
                let pos = |id| witness.iter().position(|x| *x == id);
                for (a, b) in constraints.edges() {
                    if let (Some(pa), Some(pb)) = (pos(*a), pos(*b)) {
                        prop_assert!(pa < pb, "constraint {a} -> {b} violated under {}", model.name());
                    }
                }
            }
        }
    }

    /// The windowed streaming checker — fed the witness one operation at a
    /// time, with the same message edges and per-process predecessor pairs
    /// the batch checker walks — reaches exactly the batch checker's verdict
    /// under every witness model, on valid and deliberately perturbed
    /// witnesses alike.
    #[test]
    fn streaming_checker_agrees_with_batch(ops in gen_ops(40), flip in any::<bool>()) {
        let h = build_history(&ops);
        let mut witness = h.complete_ids();
        if flip && witness.len() >= 2 {
            let n = witness.len();
            witness.swap(0, n - 1);
        }
        let edges = message_edges(&h);
        let complete = h.complete_ids();
        let mut prev = vec![None; h.len()];
        for p in h.processes() {
            let mut last = None;
            for id in h.ops_of_process(p) {
                prev[id.index()] = last;
                last = Some(id);
            }
        }
        for model in [WitnessModel::RealTime, WitnessModel::Regular, WitnessModel::ProcessOrder] {
            let batch = check_witness(&h, &witness, model);
            let mut checker = StreamingChecker::with_message_edges(model, &edges);
            let mut streamed = Ok(());
            for &id in &witness {
                if let Err(v) = checker.push(h.op(id), prev[id.index()]) {
                    streamed = Err(v);
                    break;
                }
            }
            let streamed = streamed.and_then(|()| checker.finish(&complete));
            prop_assert_eq!(
                batch.is_ok(),
                streamed.is_ok(),
                "verdicts diverge ({} ops, {:?}): batch={:?} streamed={:?}",
                h.len(),
                model,
                &batch,
                &streamed
            );
        }
    }

    /// Component-decomposed witness checking is equivalent to the sequential
    /// checker — identical accept/reject verdicts at every thread count and
    /// witness model, on multi-group histories where the decomposition
    /// genuinely splits (and the cross-component write-write sweep carries
    /// the global constraint).
    #[test]
    fn decomposed_witness_check_agrees_with_sequential(
        ops in gen_ops(40),
        groups in 1usize..4,
        flip in any::<bool>(),
    ) {
        let h = build_grouped_history(&ops, groups);
        // A plausibly-valid candidate: global invocation order interleaves
        // the groups; the flip perturbation usually trips a constraint.
        let mut witness = h.complete_ids();
        witness.sort_by_key(|&id| (h.op(id).invoke.as_micros(), id));
        if flip && witness.len() >= 2 {
            let n = witness.len();
            witness.swap(0, n - 1);
        }
        for model in [WitnessModel::RealTime, WitnessModel::Regular, WitnessModel::ProcessOrder] {
            let sequential = check_witness(&h, &witness, model);
            for threads in [1usize, 3] {
                let decomposed = check_witness_decomposed(&h, &witness, model, threads);
                prop_assert_eq!(
                    sequential.is_ok(),
                    decomposed.is_ok(),
                    "verdicts diverge ({} ops, {} groups, {} threads, {:?}): seq={:?} dec={:?}",
                    h.len(),
                    groups,
                    threads,
                    model,
                    &sequential,
                    &decomposed
                );
            }
        }
    }

    /// The exact search and the constraint structure agree on monotonicity:
    /// adding the pending-writes subsets can only help, never hurt — if a
    /// history is satisfiable using only complete operations it stays
    /// satisfiable when the same call may also include pending ones.
    #[test]
    fn find_sequence_is_monotone_in_optional_ops(ops in gen_ops(7)) {
        let h = build_history(&ops);
        let constraints = constraints_for(&h, Model::RegularSequentialConsistency);
        let required = h.complete_ids();
        let without = find_sequence(&h, &required, &[], &constraints).unwrap();
        let with = find_sequence(&h, &required, &h.pending_mutations(), &constraints).unwrap();
        if without.is_some() {
            prop_assert!(with.is_some());
        }
    }
}
