//! Property tests for the wire framing layer: a reader fed torn, truncated,
//! or corrupted byte streams must fail cleanly (`UnexpectedEof` /
//! `InvalidData`) and must never panic, over-allocate, or mis-decode.
//!
//! This is the socket-transport analogue of the storage crate's torn-write
//! recovery tests: a crashed peer or a half-flushed kernel buffer presents
//! exactly these prefixes to the survivor.

use std::io::ErrorKind;

use proptest::prelude::*;
use regular_live::wire::{read_wire_frame, write_wire_frame, Frame, WireEvent, MAX_FRAME_LEN};
use regular_spanner::prelude::{SpannerMsg, TxnId};

/// Builds one of six frame shapes from a selector and four seeds — the
/// vendored proptest has no `prop_oneof`, so variant choice is explicit.
fn frame_from(sel: u8, a: u64, b: u64, c: u64, d: u64) -> Frame<SpannerMsg> {
    match sel % 6 {
        0 => Frame::Hello { worker: a, nodes: vec![b, c, d] },
        1 => Frame::Welcome { epoch_unix_nanos: a, time_scale: b | 1 },
        2 => Frame::Event { to: a, ev: WireEvent::Start },
        3 => Frame::Event {
            to: a,
            ev: WireEvent::Msg {
                from: b,
                msg: SpannerMsg::StatusRequest { txn: TxnId { client: c as usize, seq: d } },
            },
        },
        4 => Frame::Out {
            from: a,
            to: b,
            extra_us: c,
            msg: SpannerMsg::AbortRequest { txn: TxnId { client: d as usize, seq: a } },
        },
        _ => Frame::NodeDone { node: a, expired: b },
    }
}

fn arb_frame() -> impl Strategy<Value = Frame<SpannerMsg>> {
    (0u8..6, any::<u64>(), any::<u64>(), (any::<u64>(), any::<u64>()))
        .prop_map(|(sel, a, b, (c, d))| frame_from(sel, a, b, c, d))
}

proptest! {
    /// Every strict prefix of a valid multi-frame stream decodes exactly
    /// the intact leading frames, then reports `UnexpectedEof` — the torn
    /// trailing frame is never yielded, and nothing panics.
    #[test]
    fn torn_streams_never_panic_and_stop_at_the_tear(
        frames in prop::collection::vec(arb_frame(), 1..5),
        cut_permille in 0usize..=1000,
    ) {
        let mut stream = Vec::new();
        let mut boundaries = Vec::new();
        for f in &frames {
            write_wire_frame(&mut stream, f).unwrap();
            boundaries.push(stream.len());
        }
        let cut = stream.len() * cut_permille / 1000;
        let torn = &stream[..cut];
        let intact = boundaries.iter().filter(|&&b| b <= cut).count();

        let mut r = torn;
        let mut buf = Vec::new();
        let mut decoded = 0usize;
        loop {
            match read_wire_frame::<SpannerMsg>(&mut r, &mut buf) {
                Ok(f) => {
                    prop_assert_eq!(&f, &frames[decoded], "decoded frame diverged");
                    decoded += 1;
                }
                Err(e) => {
                    prop_assert_eq!(e.kind(), ErrorKind::UnexpectedEof);
                    break;
                }
            }
        }
        prop_assert_eq!(decoded, intact, "reader must decode exactly the intact frames");
    }

    /// Flipping any single bit of a framed stream is detected: decoding
    /// either fails (`InvalidData` from the CRC or an absurd length,
    /// `UnexpectedEof` when a corrupted length points past the tail) or —
    /// if the flip lands beyond the first frame — still yields the intact
    /// first frame and then fails. No path panics or mis-decodes.
    #[test]
    fn corrupted_bytes_are_rejected_not_misread(
        frame in arb_frame(),
        flip_permille in 0usize..1000,
        flip_bit in 0u8..8,
    ) {
        let mut stream = Vec::new();
        write_wire_frame(&mut stream, &frame).unwrap();
        let first_len = stream.len();
        write_wire_frame(&mut stream, &frame).unwrap();
        let at = (stream.len() - 1) * flip_permille / 1000;
        stream[at] ^= 1 << flip_bit;

        let mut r = &stream[..];
        let mut buf = Vec::new();
        match read_wire_frame::<SpannerMsg>(&mut r, &mut buf) {
            Ok(f) => {
                // The flip landed in the second frame; the first is intact.
                prop_assert!(at >= first_len, "corrupted first frame decoded anyway");
                prop_assert_eq!(&f, &frame);
                match read_wire_frame::<SpannerMsg>(&mut r, &mut buf) {
                    Ok(_) => prop_assert!(false, "corrupted second frame decoded anyway"),
                    Err(e) => prop_assert!(matches!(
                        e.kind(),
                        ErrorKind::InvalidData | ErrorKind::UnexpectedEof
                    )),
                }
            }
            Err(e) => {
                prop_assert!(at < first_len, "clean first frame rejected");
                prop_assert!(matches!(
                    e.kind(),
                    ErrorKind::InvalidData | ErrorKind::UnexpectedEof
                ));
            }
        }
    }

    /// Hostile length prefixes — up to `u32::MAX`, far beyond
    /// `MAX_FRAME_LEN` — are rejected as `InvalidData` before any
    /// allocation of that size is attempted.
    #[test]
    fn hostile_length_prefixes_are_rejected(len in (MAX_FRAME_LEN as u32 + 1)..=u32::MAX) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&len.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        let mut r = &bytes[..];
        let mut buf = Vec::new();
        let err = read_wire_frame::<SpannerMsg>(&mut r, &mut buf).unwrap_err();
        prop_assert_eq!(err.kind(), ErrorKind::InvalidData);
    }
}
