//! Smoke tests for the live execution plane: small clusters on real
//! threads must make progress, stop on time, and survive scripted faults.

use rand::rngs::SmallRng;
use rand::Rng;
use regular_gryff::prelude::{ConflictWorkload, GryffClientSpec, GryffConfig, Mode as GryffMode};
use regular_live::prelude::*;
use regular_session::{SessionConfig, SessionOp, SessionWorkload};
use regular_sim::{LatencyMatrix, SimDuration, SimTime};
use regular_spanner::prelude::{ClientSpec, Mode, SpannerConfig, UniformWorkload};

/// Wraps a workload so a fixed fraction of operations are libRSS fences.
struct WithFences<W>(W, f64);

impl<W: SessionWorkload> SessionWorkload for WithFences<W> {
    fn next_op(&mut self, rng: &mut SmallRng) -> SessionOp {
        if rng.gen_bool(self.1) {
            SessionOp::Fence
        } else {
            self.0.next_op(rng)
        }
    }
}

fn spanner_spec(seed: u64, scale: u64) -> SpannerLiveSpec {
    let clients = (0..3)
        .map(|region| ClientSpec {
            region,
            sessions: SessionConfig::partly_open(4.0, 0.9, SimDuration::ZERO),
            workload: Box::new(UniformWorkload { num_keys: 500, ro_fraction: 0.5, keys_per_txn: 2 })
                as Box<dyn SessionWorkload>,
        })
        .collect();
    SpannerLiveSpec {
        config: SpannerConfig::wan(Mode::SpannerRss),
        net: LatencyMatrix::spanner_wan(),
        seed,
        clients,
        stop_issuing_at: SimTime::from_secs(10),
        drain: SimDuration::from_secs(5),
        measure_from: SimTime::from_secs(1),
        time_scale: scale,
        record_deliveries: true,
        transport: TransportKind::Mpsc,
    }
}

#[test]
fn live_spanner_makes_progress_and_stops() {
    let r = run_cluster_live(spanner_spec(7, 40));
    let total: usize = r.completed.iter().map(|(_, v)| v.len()).sum();
    assert!(total > 50, "live cluster barely progressed: {} completions", total);
    assert!(r.net_stats.delivered > 0);
    assert!(!r.deliveries.is_empty(), "delivery log should be recorded");
    // Delivery log is ordered by simulated delivery time.
    assert!(r.deliveries.windows(2).all(|w| w[0].at_us <= w[1].at_us));
    // 15 simulated seconds at 40x must not take anywhere near real time.
    assert!(r.wall.as_secs() < 10, "run took {:?} wall", r.wall);
}

#[test]
fn live_gryff_makes_progress_under_crash() {
    let config = GryffConfig {
        faults: regular_sim::FaultSchedule::new().crash(
            1,
            SimTime::from_secs(3),
            SimTime::from_secs(6),
        ),
        ..GryffConfig::wan(GryffMode::GryffRsc)
    };
    let clients = (0..3)
        .map(|region| GryffClientSpec {
            region,
            sessions: SessionConfig::partly_open(4.0, 0.9, SimDuration::ZERO),
            workload: Box::new(ConflictWorkload {
                rmw_ratio: 0.2,
                ..ConflictWorkload::ycsb(0.5, 0.2, region as u64)
            }) as Box<dyn SessionWorkload>,
        })
        .collect();
    let r = run_gryff_live(GryffLiveSpec {
        config,
        net: LatencyMatrix::gryff_wan(),
        seed: 3,
        clients,
        stop_issuing_at: SimTime::from_secs(10),
        drain: SimDuration::from_secs(5),
        measure_from: SimTime::ZERO,
        time_scale: 40,
        record_deliveries: false,
        transport: TransportKind::Mpsc,
    });
    let total: usize = r.completed.iter().map(|(_, v)| v.len()).sum();
    assert!(total > 50, "live gryff barely progressed: {} completions", total);
    assert!(r.net_stats.expired > 0, "crashed replica should have expired deliveries");
}

#[test]
fn fence_ops_flow_through_live_plane() {
    let mut spec = spanner_spec(11, 50);
    for c in &mut spec.clients {
        c.workload = Box::new(WithFences(
            UniformWorkload { num_keys: 500, ro_fraction: 0.5, keys_per_txn: 2 },
            0.1,
        ));
    }
    let r = run_cluster_live(spec);
    assert!(r.client_stats.fences > 0, "fence workload should issue fences");
}
