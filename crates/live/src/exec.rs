//! The live executor: one OS thread per protocol node, driven by a mailbox.
//!
//! Each node thread owns its [`Node`] state machine, a local timer heap, a
//! seeded RNG stream, and a TrueTime clock, and builds the same
//! [`Context`] the discrete-event engine builds (via
//! [`ContextParts`]) — so Spanner shards, Gryff replicas, and session
//! runners execute **unmodified** on real threads. The differences from the
//! simulator are exactly the ones the live plane exists to exercise: `now`
//! comes from the wall clock (scaled, see [`crate::clock::LiveClock`]),
//! handlers run concurrently across nodes, and handler CPU cost is real
//! instead of a configured service time.
//!
//! Crash semantics mirror the engine: a crashed node loses messages
//! (counted as expired), defers pending timers until recovery, and any
//! output produced by the `on_crash` hook itself is discarded.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use regular_session::CompletedRecord;
use regular_sim::engine::{Context, ContextParts, Node};
use regular_sim::fault::FaultSchedule;
use regular_sim::net::{NetworkModel, Region};
use regular_sim::{MessageStats, NodeId, SimDuration, SimTime, TrueTime};

use crate::clock::LiveClock;
use crate::net::{run_hub_conns, run_worker_conn, SocketStream, WireStats};
use crate::transport::{
    run_router, DeliveryRecord, LiveEvent, Mailbox, Outgoing, RouterReport, TransportKind,
};
use crate::wire::Wire;

/// A node that can run on the live plane.
///
/// The supertrait bound is the whole contract: any `Send` [`Node`] runs
/// unmodified. `drain_completions` is the bridge into the online recorder —
/// client nodes surface the operations their sessions completed since the
/// last handler; server nodes use the default no-op.
pub trait LiveNode<M>: Node<M> + Send {
    /// Appends `(stream, record)` pairs completed since the last call.
    ///
    /// `stream` distinguishes services on multi-service (composed) nodes;
    /// single-service nodes use 0.
    fn drain_completions(&mut self, _out: &mut Vec<(usize, CompletedRecord)>) {}
}

/// Configuration of a live run.
pub struct LiveConfig {
    /// Random seed; each node and the router derive disjoint RNG streams
    /// from it.
    pub seed: u64,
    /// Scripted fault plane, reinterpreted on the scaled wall clock.
    pub faults: FaultSchedule,
    /// TrueTime uncertainty bound ε for all nodes.
    pub truetime_epsilon: SimDuration,
    /// Simulated microseconds per wall microsecond (≥ 1).
    pub time_scale: u64,
    /// Hard stop: the run ends when the scaled clock reaches this instant.
    pub stop_at: SimTime,
    /// Record the delivery log (for failure artifacts / replay evidence).
    pub record_deliveries: bool,
}

/// What a live run produced.
pub struct LiveOutcome<N> {
    /// The node state machines, in id order, as they were at the end.
    pub nodes: Vec<N>,
    /// Completions per node in completion order (empty for server nodes),
    /// tagged with the originating service stream.
    pub completed: Vec<Vec<(usize, CompletedRecord)>>,
    /// Message counters with engine semantics (`delivered` excludes
    /// deliveries that expired at a crashed node).
    pub net_stats: MessageStats,
    /// The delivery log (empty unless recording was enabled).
    pub deliveries: Vec<DeliveryRecord>,
    /// Simulated time when the run stopped.
    pub finished_at: SimTime,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Socket traffic counters (all zeros on the mpsc transport).
    pub wire: WireStats,
}

/// What a node handler is being invoked for.
enum Invoke<M> {
    Start,
    Msg(NodeId, M),
    Timer(u64),
    Crash,
    Recover,
}

pub(crate) struct NodeResult<N> {
    pub(crate) node: N,
    pub(crate) expired: u64,
}

/// The per-node thread loop.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_node<M, N>(
    mut node: N,
    id: NodeId,
    clock: LiveClock,
    seed: u64,
    epsilon: SimDuration,
    mailbox: Receiver<LiveEvent<M>>,
    net_tx: Sender<Outgoing<M>>,
    rec_tx: Sender<(NodeId, usize, CompletedRecord)>,
) -> NodeResult<N>
where
    M: Send + 'static,
    N: LiveNode<M>,
{
    // Disjoint per-node stream from the run seed (golden-ratio mix).
    let mut rng = SmallRng::seed_from_u64(
        seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(id as u64 + 1)),
    );
    let mut truetime = TrueTime::new(epsilon, seed);
    // (deadline, set-order, tag): same-instant timers fire in set order.
    let mut timers: BinaryHeap<Reverse<(SimTime, u64, u64)>> = BinaryHeap::new();
    let mut timer_seq = 0u64;
    let mut crashed = false;
    let mut expired = 0u64;
    // Handler scratch, reused across events like the engine's.
    let mut outbox: Vec<(NodeId, SimDuration, M)> = Vec::new();
    let mut to_set: Vec<(SimDuration, u64)> = Vec::new();
    let mut comps: Vec<(usize, CompletedRecord)> = Vec::new();

    loop {
        // Fire a due timer, unless crashed (crashed nodes defer timers).
        let mut invoke = None;
        if !crashed {
            if let Some(&Reverse((at, _, tag))) = timers.peek() {
                if at <= clock.sim_now() {
                    timers.pop();
                    invoke = Some(Invoke::Timer(tag));
                }
            }
        }
        let invoke = match invoke {
            Some(i) => i,
            None => {
                // Sleep until the next timer deadline or the next mailbox
                // event, whichever comes first.
                let ev = if crashed {
                    // No timers can fire; only the mailbox can wake us.
                    match mailbox.recv() {
                        Ok(e) => e,
                        Err(_) => break,
                    }
                } else {
                    match timers.peek() {
                        Some(&Reverse((at, _, _))) => {
                            match mailbox.recv_timeout(clock.wall_until(at)) {
                                Ok(e) => e,
                                Err(RecvTimeoutError::Timeout) => continue,
                                Err(RecvTimeoutError::Disconnected) => break,
                            }
                        }
                        None => match mailbox.recv() {
                            Ok(e) => e,
                            Err(_) => break,
                        },
                    }
                };
                match ev {
                    LiveEvent::Stop => break,
                    LiveEvent::Start => Invoke::Start,
                    LiveEvent::Msg { from, msg } => {
                        if crashed {
                            // Engine semantics: deliveries to a crashed node
                            // are lost.
                            expired += 1;
                            continue;
                        }
                        Invoke::Msg(from, msg)
                    }
                    LiveEvent::Crash => {
                        if crashed {
                            continue;
                        }
                        crashed = true;
                        Invoke::Crash
                    }
                    LiveEvent::Recover => {
                        if !crashed {
                            continue;
                        }
                        crashed = false;
                        Invoke::Recover
                    }
                }
            }
        };

        let discard_output = matches!(invoke, Invoke::Crash);
        let now = clock.sim_now();
        {
            let mut ctx = Context::from_parts(ContextParts {
                now,
                node_id: id,
                rng: &mut rng,
                truetime: &mut truetime,
                outbox: &mut outbox,
                timers: &mut to_set,
            });
            match invoke {
                Invoke::Start => node.on_start(&mut ctx),
                Invoke::Msg(from, msg) => node.on_message(&mut ctx, from, msg),
                Invoke::Timer(tag) => node.on_timer(&mut ctx, tag),
                Invoke::Crash => node.on_crash(&mut ctx),
                Invoke::Recover => node.on_recover(&mut ctx),
            }
        }
        if discard_output {
            // Whatever on_crash tried to send or schedule died with the node.
            outbox.clear();
            to_set.clear();
            continue;
        }
        for (to, extra, msg) in outbox.drain(..) {
            let _ = net_tx.send(Outgoing { from: id, to, extra, msg });
        }
        for (delay, tag) in to_set.drain(..) {
            timer_seq += 1;
            timers.push(Reverse((now + delay, timer_seq, tag)));
        }
        node.drain_completions(&mut comps);
        for (stream, rec) in comps.drain(..) {
            let _ = rec_tx.send((id, stream, rec));
        }
    }
    NodeResult { node, expired }
}

/// Runs `nodes` (each with its region index) on one thread apiece until
/// `cfg.stop_at`, routing messages through the live transport.
///
/// Node ids are assigned by position, matching the discrete-event engine's
/// `add_node` order, so cluster assemblies translate one-to-one.
pub fn run_live<M, N>(
    cfg: LiveConfig,
    net: Box<dyn NetworkModel>,
    nodes: Vec<(N, usize)>,
) -> LiveOutcome<N>
where
    M: Clone + Send + 'static,
    N: LiveNode<M> + 'static,
{
    let start_wall = Instant::now();
    let num_nodes = nodes.len();
    let regions: Vec<Region> = nodes.iter().map(|&(_, r)| Region(r)).collect();

    let mut mailboxes: Vec<Sender<LiveEvent<M>>> = Vec::with_capacity(num_nodes);
    let mut inboxes: Vec<Receiver<LiveEvent<M>>> = Vec::with_capacity(num_nodes);
    for _ in 0..num_nodes {
        let (tx, rx) = mpsc::channel();
        mailboxes.push(tx);
        inboxes.push(rx);
    }
    let (net_tx, net_rx) = mpsc::channel::<Outgoing<M>>();
    let (rec_tx, rec_rx) = mpsc::channel::<(NodeId, usize, CompletedRecord)>();

    let clock = LiveClock::start(cfg.time_scale);
    let router_stop = Arc::new(AtomicBool::new(false));

    let router = {
        let faults = cfg.faults.clone();
        let regions = regions.clone();
        let router_boxes: Vec<Arc<dyn Mailbox<M>>> =
            mailboxes.iter().map(|tx| Arc::new(tx.clone()) as Arc<dyn Mailbox<M>>).collect();
        let stop = Arc::clone(&router_stop);
        let seed = cfg.seed;
        let record = cfg.record_deliveries;
        std::thread::spawn(move || {
            run_router(clock, net, faults, regions, router_boxes, net_rx, seed, record, stop)
        })
    };

    let mut workers = Vec::with_capacity(num_nodes);
    for (id, ((node, _), inbox)) in nodes.into_iter().zip(inboxes).enumerate() {
        let net_tx = net_tx.clone();
        let rec_tx = rec_tx.clone();
        let seed = cfg.seed;
        let epsilon = cfg.truetime_epsilon;
        workers.push(std::thread::spawn(move || {
            run_node(node, id, clock, seed, epsilon, inbox, net_tx, rec_tx)
        }));
    }
    // The threads hold the only clones that matter; dropping ours lets the
    // channels disconnect when the run winds down.
    drop(net_tx);
    drop(rec_tx);

    for tx in &mailboxes {
        let _ = tx.send(LiveEvent::Start);
    }

    // Collect completions online until the hard stop.
    let mut completed: Vec<Vec<(usize, CompletedRecord)>> = vec![Vec::new(); num_nodes];
    loop {
        if clock.sim_now() >= cfg.stop_at {
            break;
        }
        let wait = clock.wall_until(cfg.stop_at).min(Duration::from_millis(50));
        match rec_rx.recv_timeout(wait) {
            Ok((id, stream, rec)) => completed[id].push((stream, rec)),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    let finished_at = clock.sim_now();

    for tx in &mailboxes {
        let _ = tx.send(LiveEvent::Stop);
    }
    router_stop.store(true, Ordering::Relaxed);
    drop(mailboxes);

    let mut out_nodes = Vec::with_capacity(num_nodes);
    let mut expired_total = 0u64;
    for w in workers {
        let r = w.join().expect("live node thread panicked");
        expired_total += r.expired;
        out_nodes.push(r.node);
    }
    // Node threads are gone; drain the stragglers they sent before exiting.
    while let Ok((id, stream, rec)) = rec_rx.recv() {
        completed[id].push((stream, rec));
    }
    let RouterReport { mut stats, deliveries } = router.join().expect("live router panicked");
    // The router counted every mailbox push as delivered; expired ones
    // never reached a live node.
    stats.delivered = stats.delivered.saturating_sub(expired_total);
    stats.expired = expired_total;

    LiveOutcome {
        nodes: out_nodes,
        completed,
        net_stats: stats,
        deliveries,
        finished_at,
        wall: start_wall.elapsed(),
        wire: WireStats::default(),
    }
}

/// [`run_live`] behind a chosen [`TransportKind`].
///
/// `Mpsc` is exactly `run_live`. The socket kinds run the same cluster with
/// every message crossing a real kernel socket: the node threads live in one
/// worker group connected to the router over an in-process socket pair
/// (`UnixStream::pair` or loopback TCP), exercising the full wire path —
/// encode, frame, syscall, decode — of a multi-process deployment while
/// still returning the final node states. For genuinely separate OS
/// processes, see [`crate::net::run_hub_multiproc`] /
/// [`crate::net::run_worker_multiproc`].
///
/// The extra `M: Wire` bound is what a socket demands: messages must
/// serialize.
///
/// # Panics
///
/// Panics if socket setup fails (an in-process pair failing means the host
/// is out of descriptors) or a node/router thread panics.
pub fn run_live_transport<M, N>(
    cfg: LiveConfig,
    net: Box<dyn NetworkModel>,
    nodes: Vec<(N, usize)>,
    transport: TransportKind,
) -> LiveOutcome<N>
where
    M: Wire + Clone + Send + 'static,
    N: LiveNode<M> + 'static,
{
    if matches!(transport, TransportKind::Mpsc) {
        return run_live(cfg, net, nodes);
    }
    let (hub_end, worker_end) =
        SocketStream::pair(transport).expect("live transport socket pair");
    let regions: Vec<Region> = nodes.iter().map(|&(_, r)| Region(r)).collect();
    let with_ids: Vec<(NodeId, N)> =
        nodes.into_iter().enumerate().map(|(id, (n, _))| (id, n)).collect();
    let (seed, epsilon) = (cfg.seed, cfg.truetime_epsilon);
    let worker = std::thread::spawn(move || {
        run_worker_conn::<M, N>(worker_end, 0, with_ids, seed, epsilon)
    });
    let hub =
        run_hub_conns::<M>(&cfg, net, regions, vec![hub_end]).expect("live transport hub failed");
    let w = worker
        .join()
        .expect("live transport worker panicked")
        .expect("live transport worker failed");
    let mut nodes_by_id = w.nodes;
    nodes_by_id.sort_by_key(|&(id, _)| id);
    LiveOutcome {
        nodes: nodes_by_id.into_iter().map(|(_, n)| n).collect(),
        completed: hub.completed,
        net_stats: hub.net_stats,
        deliveries: hub.deliveries,
        finished_at: hub.finished_at,
        wall: hub.wall,
        wire: hub.wire,
    }
}
