//! Hand-rolled wire codec for the socket transports.
//!
//! The socket backends ([`crate::net`]) move protocol messages between OS
//! processes, so everything that crosses a connection is encoded here with
//! the same little-endian [`Enc`]/[`Dec`] helpers and the same
//! `[len u32][crc32 u32][payload]` frame shape as the write-ahead log
//! (`regular_storage::codec` / `regular_storage::wal`). The workspace's
//! vendored `serde` is derive-only, so — exactly like the WAL record
//! encodings — the codecs are written by hand: one [`Wire`] impl per
//! protocol message and per control frame, a tag byte per enum variant.
//!
//! Decoding never panics. A truncated buffer yields `None` from [`Wire`]
//! decoders; a torn or corrupted frame yields an `io::Error` from
//! [`read_frame`] (`UnexpectedEof` for a clean cut at a frame boundary or
//! inside one, `InvalidData` for a CRC mismatch or an absurd length). The
//! framing proptests in `crates/live/tests/wire_torn.rs` pin both
//! properties: every prefix of a valid stream decodes the intact frames and
//! then fails cleanly, and no mutation of the bytes is ever accepted with a
//! different payload.

use std::io::{self, Read, Write};

use regular_core::op::{OpKind, OpResult};
use regular_core::types::{Key, ServiceId, Value};
use regular_gryff::messages::{Dep, GryffMsg, OpRef};
use regular_gryff::Carstamp;
use regular_session::{CompletedRecord, WitnessHint};
use regular_sim::{SimDuration, SimTime};
use regular_spanner::messages::{PreparedInfo, SpannerMsg, TxnId};
pub use regular_storage::codec::{crc32, Dec, Enc};

/// A value that can cross a socket connection.
///
/// Mirrors the WAL-record contract: `encode` appends to an [`Enc`],
/// `decode` reads back from a [`Dec`] and returns `None` on truncation or
/// an unknown tag, never panicking.
pub trait Wire: Sized {
    /// Appends this value's encoding.
    fn encode(&self, e: &mut Enc);
    /// Decodes one value, consuming exactly what `encode` produced.
    fn decode(d: &mut Dec<'_>) -> Option<Self>;

    /// Encodes into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut e = Enc::new();
        self.encode(&mut e);
        e.finish()
    }

    /// Decodes from a buffer, requiring it to be fully consumed.
    fn from_bytes(buf: &[u8]) -> Option<Self> {
        let mut d = Dec::new(buf);
        let v = Self::decode(&mut d)?;
        if d.is_empty() {
            Some(v)
        } else {
            None
        }
    }
}

// ----- primitives and containers -----

impl Wire for u64 {
    fn encode(&self, e: &mut Enc) {
        e.u64(*self);
    }
    fn decode(d: &mut Dec<'_>) -> Option<Self> {
        d.u64()
    }
}

impl Wire for usize {
    fn encode(&self, e: &mut Enc) {
        e.usize(*self);
    }
    fn decode(d: &mut Dec<'_>) -> Option<Self> {
        d.usize()
    }
}

impl Wire for bool {
    fn encode(&self, e: &mut Enc) {
        e.bool(*self);
    }
    fn decode(d: &mut Dec<'_>) -> Option<Self> {
        d.bool()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, e: &mut Enc) {
        e.u32(self.len() as u32);
        for item in self {
            item.encode(e);
        }
    }
    fn decode(d: &mut Dec<'_>) -> Option<Self> {
        let len = d.u32()? as usize;
        // Each element consumes at least one byte, so a length beyond the
        // remaining buffer is garbage — reject it before allocating.
        if len > d.remaining() {
            return None;
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(d)?);
        }
        Some(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, e: &mut Enc) {
        match self {
            None => {
                e.bool(false);
            }
            Some(v) => {
                e.bool(true);
                v.encode(e);
            }
        }
    }
    fn decode(d: &mut Dec<'_>) -> Option<Self> {
        if d.bool()? {
            Some(Some(T::decode(d)?))
        } else {
            Some(None)
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, e: &mut Enc) {
        self.0.encode(e);
        self.1.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Option<Self> {
        Some((A::decode(d)?, B::decode(d)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, e: &mut Enc) {
        self.0.encode(e);
        self.1.encode(e);
        self.2.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Option<Self> {
        Some((A::decode(d)?, B::decode(d)?, C::decode(d)?))
    }
}

// ----- core vocabulary -----

impl Wire for Key {
    fn encode(&self, e: &mut Enc) {
        e.u64(self.0);
    }
    fn decode(d: &mut Dec<'_>) -> Option<Self> {
        d.u64().map(Key)
    }
}

impl Wire for Value {
    fn encode(&self, e: &mut Enc) {
        e.u64(self.0);
    }
    fn decode(d: &mut Dec<'_>) -> Option<Self> {
        d.u64().map(Value)
    }
}

impl Wire for ServiceId {
    fn encode(&self, e: &mut Enc) {
        e.u32(self.0);
    }
    fn decode(d: &mut Dec<'_>) -> Option<Self> {
        d.u32().map(ServiceId)
    }
}

impl Wire for SimTime {
    fn encode(&self, e: &mut Enc) {
        e.u64(self.0);
    }
    fn decode(d: &mut Dec<'_>) -> Option<Self> {
        d.u64().map(SimTime)
    }
}

impl Wire for SimDuration {
    fn encode(&self, e: &mut Enc) {
        e.u64(self.0);
    }
    fn decode(d: &mut Dec<'_>) -> Option<Self> {
        d.u64().map(SimDuration)
    }
}

impl Wire for OpKind {
    fn encode(&self, e: &mut Enc) {
        match self {
            OpKind::Read { key } => {
                e.u8(0);
                key.encode(e);
            }
            OpKind::Write { key, value } => {
                e.u8(1);
                key.encode(e);
                value.encode(e);
            }
            OpKind::Rmw { key, value } => {
                e.u8(2);
                key.encode(e);
                value.encode(e);
            }
            OpKind::RoTxn { keys } => {
                e.u8(3);
                keys.encode(e);
            }
            OpKind::RwTxn { read_keys, writes } => {
                e.u8(4);
                read_keys.encode(e);
                writes.encode(e);
            }
            OpKind::Enqueue { queue, value } => {
                e.u8(5);
                queue.encode(e);
                value.encode(e);
            }
            OpKind::Dequeue { queue } => {
                e.u8(6);
                queue.encode(e);
            }
            OpKind::Fence => {
                e.u8(7);
            }
        }
    }
    fn decode(d: &mut Dec<'_>) -> Option<Self> {
        Some(match d.u8()? {
            0 => OpKind::Read { key: Wire::decode(d)? },
            1 => OpKind::Write { key: Wire::decode(d)?, value: Wire::decode(d)? },
            2 => OpKind::Rmw { key: Wire::decode(d)?, value: Wire::decode(d)? },
            3 => OpKind::RoTxn { keys: Wire::decode(d)? },
            4 => OpKind::RwTxn { read_keys: Wire::decode(d)?, writes: Wire::decode(d)? },
            5 => OpKind::Enqueue { queue: Wire::decode(d)?, value: Wire::decode(d)? },
            6 => OpKind::Dequeue { queue: Wire::decode(d)? },
            7 => OpKind::Fence,
            _ => return None,
        })
    }
}

impl Wire for OpResult {
    fn encode(&self, e: &mut Enc) {
        match self {
            OpResult::Value(v) => {
                e.u8(0);
                v.encode(e);
            }
            OpResult::Values(vs) => {
                e.u8(1);
                vs.encode(e);
            }
            OpResult::Ack => {
                e.u8(2);
            }
        }
    }
    fn decode(d: &mut Dec<'_>) -> Option<Self> {
        Some(match d.u8()? {
            0 => OpResult::Value(Wire::decode(d)?),
            1 => OpResult::Values(Wire::decode(d)?),
            2 => OpResult::Ack,
            _ => return None,
        })
    }
}

impl Wire for WitnessHint {
    fn encode(&self, e: &mut Enc) {
        match self {
            WitnessHint::None => {
                e.u8(0);
            }
            WitnessHint::Timestamp { ts } => {
                e.u8(1);
                e.u64(*ts);
            }
            WitnessHint::Carstamp { count, writer, rmwc } => {
                e.u8(2);
                e.u64(*count).u64(*writer).u64(*rmwc);
            }
        }
    }
    fn decode(d: &mut Dec<'_>) -> Option<Self> {
        Some(match d.u8()? {
            0 => WitnessHint::None,
            1 => WitnessHint::Timestamp { ts: d.u64()? },
            2 => WitnessHint::Carstamp { count: d.u64()?, writer: d.u64()?, rmwc: d.u64()? },
            _ => return None,
        })
    }
}

impl Wire for CompletedRecord {
    fn encode(&self, e: &mut Enc) {
        self.service.encode(e);
        self.kind.encode(e);
        self.result.encode(e);
        self.invoke.encode(e);
        self.finish.encode(e);
        e.u64(self.session);
        e.u32(self.slot);
        e.u32(self.attempts);
        e.u8(self.rounds);
        e.bool(self.orphan);
        self.witness.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Option<Self> {
        Some(CompletedRecord {
            service: Wire::decode(d)?,
            kind: Wire::decode(d)?,
            result: Wire::decode(d)?,
            invoke: Wire::decode(d)?,
            finish: Wire::decode(d)?,
            session: d.u64()?,
            slot: d.u32()?,
            attempts: d.u32()?,
            rounds: d.u8()?,
            orphan: d.bool()?,
            witness: Wire::decode(d)?,
        })
    }
}

// ----- Spanner protocol messages -----

impl Wire for TxnId {
    fn encode(&self, e: &mut Enc) {
        e.usize(self.client).u64(self.seq);
    }
    fn decode(d: &mut Dec<'_>) -> Option<Self> {
        Some(TxnId { client: d.usize()?, seq: d.u64()? })
    }
}

impl Wire for PreparedInfo {
    fn encode(&self, e: &mut Enc) {
        self.txn.encode(e);
        e.u64(self.t_prepare);
    }
    fn decode(d: &mut Dec<'_>) -> Option<Self> {
        Some(PreparedInfo { txn: Wire::decode(d)?, t_prepare: d.u64()? })
    }
}

impl Wire for SpannerMsg {
    fn encode(&self, e: &mut Enc) {
        match self {
            SpannerMsg::ExecRead { txn, keys } => {
                e.u8(0);
                txn.encode(e);
                keys.encode(e);
            }
            SpannerMsg::ExecReadReply { txn, values } => {
                e.u8(1);
                txn.encode(e);
                values.encode(e);
            }
            SpannerMsg::CommitRequest { txn, writes_by_shard, t_ee } => {
                e.u8(2);
                txn.encode(e);
                writes_by_shard.encode(e);
                e.u64(*t_ee);
            }
            SpannerMsg::Prepare { txn, writes, t_ee, coordinator } => {
                e.u8(3);
                txn.encode(e);
                writes.encode(e);
                e.u64(*t_ee).usize(*coordinator);
            }
            SpannerMsg::PrepareOk { txn, shard, t_prepare } => {
                e.u8(4);
                txn.encode(e);
                e.usize(*shard).u64(*t_prepare);
            }
            SpannerMsg::CommitDecision { txn, commit, t_commit } => {
                e.u8(5);
                txn.encode(e);
                e.bool(*commit).u64(*t_commit);
            }
            SpannerMsg::StatusRequest { txn } => {
                e.u8(6);
                txn.encode(e);
            }
            SpannerMsg::CommitReply { txn, commit, t_commit } => {
                e.u8(7);
                txn.encode(e);
                e.bool(*commit).u64(*t_commit);
            }
            SpannerMsg::AbortRequest { txn } => {
                e.u8(8);
                txn.encode(e);
            }
            SpannerMsg::RoCommit { txn, keys, t_read, t_min } => {
                e.u8(9);
                txn.encode(e);
                keys.encode(e);
                e.u64(*t_read).u64(*t_min);
            }
            SpannerMsg::RoReply { txn, shard, values } => {
                e.u8(10);
                txn.encode(e);
                e.usize(*shard);
                values.encode(e);
            }
            SpannerMsg::RoFastReply { txn, shard, skipped, values } => {
                e.u8(11);
                txn.encode(e);
                e.usize(*shard);
                skipped.encode(e);
                values.encode(e);
            }
            SpannerMsg::RoSlowReply { txn, shard, resolved, committed, t_commit, values } => {
                e.u8(12);
                txn.encode(e);
                e.usize(*shard);
                resolved.encode(e);
                e.bool(*committed).u64(*t_commit);
                values.encode(e);
            }
        }
    }
    fn decode(d: &mut Dec<'_>) -> Option<Self> {
        Some(match d.u8()? {
            0 => SpannerMsg::ExecRead { txn: Wire::decode(d)?, keys: Wire::decode(d)? },
            1 => SpannerMsg::ExecReadReply { txn: Wire::decode(d)?, values: Wire::decode(d)? },
            2 => SpannerMsg::CommitRequest {
                txn: Wire::decode(d)?,
                writes_by_shard: Wire::decode(d)?,
                t_ee: d.u64()?,
            },
            3 => SpannerMsg::Prepare {
                txn: Wire::decode(d)?,
                writes: Wire::decode(d)?,
                t_ee: d.u64()?,
                coordinator: d.usize()?,
            },
            4 => SpannerMsg::PrepareOk {
                txn: Wire::decode(d)?,
                shard: d.usize()?,
                t_prepare: d.u64()?,
            },
            5 => SpannerMsg::CommitDecision {
                txn: Wire::decode(d)?,
                commit: d.bool()?,
                t_commit: d.u64()?,
            },
            6 => SpannerMsg::StatusRequest { txn: Wire::decode(d)? },
            7 => SpannerMsg::CommitReply {
                txn: Wire::decode(d)?,
                commit: d.bool()?,
                t_commit: d.u64()?,
            },
            8 => SpannerMsg::AbortRequest { txn: Wire::decode(d)? },
            9 => SpannerMsg::RoCommit {
                txn: Wire::decode(d)?,
                keys: Wire::decode(d)?,
                t_read: d.u64()?,
                t_min: d.u64()?,
            },
            10 => SpannerMsg::RoReply {
                txn: Wire::decode(d)?,
                shard: d.usize()?,
                values: Wire::decode(d)?,
            },
            11 => SpannerMsg::RoFastReply {
                txn: Wire::decode(d)?,
                shard: d.usize()?,
                skipped: Wire::decode(d)?,
                values: Wire::decode(d)?,
            },
            12 => SpannerMsg::RoSlowReply {
                txn: Wire::decode(d)?,
                shard: d.usize()?,
                resolved: Wire::decode(d)?,
                committed: d.bool()?,
                t_commit: d.u64()?,
                values: Wire::decode(d)?,
            },
            _ => return None,
        })
    }
}

// ----- Gryff protocol messages -----

impl Wire for OpRef {
    fn encode(&self, e: &mut Enc) {
        e.usize(self.node).u64(self.seq);
    }
    fn decode(d: &mut Dec<'_>) -> Option<Self> {
        Some(OpRef { node: d.usize()?, seq: d.u64()? })
    }
}

impl Wire for Carstamp {
    fn encode(&self, e: &mut Enc) {
        e.u64(self.count).u64(self.writer).u64(self.rmwc);
    }
    fn decode(d: &mut Dec<'_>) -> Option<Self> {
        Some(Carstamp { count: d.u64()?, writer: d.u64()?, rmwc: d.u64()? })
    }
}

impl Wire for Dep {
    fn encode(&self, e: &mut Enc) {
        self.key.encode(e);
        self.value.encode(e);
        self.cs.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Option<Self> {
        Some(Dep { key: Wire::decode(d)?, value: Wire::decode(d)?, cs: Wire::decode(d)? })
    }
}

impl Wire for GryffMsg {
    fn encode(&self, e: &mut Enc) {
        // The tag is the message's coverage class: a stable small integer
        // already pinned by the protocol crate.
        e.u8(self.class() as u8);
        match self {
            GryffMsg::Read1 { op, key, dep } | GryffMsg::Write1 { op, key, dep } => {
                op.encode(e);
                key.encode(e);
                dep.encode(e);
            }
            GryffMsg::Read1Reply { op, value, cs } => {
                op.encode(e);
                value.encode(e);
                cs.encode(e);
            }
            GryffMsg::Write1Reply { op, cs } => {
                op.encode(e);
                cs.encode(e);
            }
            GryffMsg::Write2 { op, key, value, cs } => {
                op.encode(e);
                key.encode(e);
                value.encode(e);
                cs.encode(e);
            }
            GryffMsg::Write2Reply { op } => {
                op.encode(e);
            }
            GryffMsg::Rmw { op, key, new_value, dep } => {
                op.encode(e);
                key.encode(e);
                new_value.encode(e);
                dep.encode(e);
            }
            GryffMsg::RmwReply { op, old_value, cs } => {
                op.encode(e);
                old_value.encode(e);
                cs.encode(e);
            }
        }
    }
    fn decode(d: &mut Dec<'_>) -> Option<Self> {
        Some(match d.u8()? {
            0 => GryffMsg::Read1 {
                op: Wire::decode(d)?,
                key: Wire::decode(d)?,
                dep: Wire::decode(d)?,
            },
            1 => GryffMsg::Read1Reply {
                op: Wire::decode(d)?,
                value: Wire::decode(d)?,
                cs: Wire::decode(d)?,
            },
            2 => GryffMsg::Write1 {
                op: Wire::decode(d)?,
                key: Wire::decode(d)?,
                dep: Wire::decode(d)?,
            },
            3 => GryffMsg::Write1Reply { op: Wire::decode(d)?, cs: Wire::decode(d)? },
            4 => GryffMsg::Write2 {
                op: Wire::decode(d)?,
                key: Wire::decode(d)?,
                value: Wire::decode(d)?,
                cs: Wire::decode(d)?,
            },
            5 => GryffMsg::Write2Reply { op: Wire::decode(d)? },
            6 => GryffMsg::Rmw {
                op: Wire::decode(d)?,
                key: Wire::decode(d)?,
                new_value: Wire::decode(d)?,
                dep: Wire::decode(d)?,
            },
            7 => GryffMsg::RmwReply {
                op: Wire::decode(d)?,
                old_value: Wire::decode(d)?,
                cs: Wire::decode(d)?,
            },
            _ => return None,
        })
    }
}

// ----- control frames -----

/// One frame of the hub/worker control protocol.
///
/// Everything a socket connection ever carries is one of these, inside a
/// `[len][crc]` frame. `Hello`/`Welcome` form the handshake; `Event` flows
/// hub → worker (router deliveries and power events); `Out`, `Completion`,
/// and `NodeDone` flow worker → hub.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame<M> {
    /// Worker → hub, first frame on a connection: which nodes this worker
    /// process hosts.
    Hello {
        /// Worker index (0-based).
        worker: u64,
        /// Node ids hosted by this worker.
        nodes: Vec<u64>,
    },
    /// Hub → worker handshake reply: the shared clock anchor. Every process
    /// reconstructs the same simulated-time epoch from the wall clock (see
    /// [`crate::clock::LiveClock::from_unix_anchor`]).
    Welcome {
        /// `SystemTime` of simulated time zero, as nanoseconds since the
        /// UNIX epoch.
        epoch_unix_nanos: u64,
        /// Simulated microseconds per wall microsecond.
        time_scale: u64,
    },
    /// Hub → worker: a mailbox event for one hosted node.
    Event {
        /// Destination node.
        to: u64,
        /// The event.
        ev: WireEvent<M>,
    },
    /// Worker → hub: a node sent a message; the router applies network and
    /// fault verdicts exactly as it does for in-process senders.
    Out {
        /// Sending node.
        from: u64,
        /// Destination node.
        to: u64,
        /// Extra delay on top of network latency (`Context::send_after`).
        extra_us: u64,
        /// The message.
        msg: M,
    },
    /// Worker → hub: a session completed an operation (streams into online
    /// certification at the hub).
    Completion {
        /// The node whose session completed.
        node: u64,
        /// Service stream on multi-service nodes (0 otherwise).
        stream: u64,
        /// The completion record.
        rec: CompletedRecord,
    },
    /// Worker → hub, once per hosted node after its thread exits: the
    /// node's expired-delivery count (messages that arrived while crashed).
    NodeDone {
        /// The node.
        node: u64,
        /// Deliveries that expired at this node.
        expired: u64,
    },
}

/// The mailbox event kinds that cross a connection (the wire form of
/// [`crate::transport::LiveEvent`]).
#[derive(Debug, Clone, PartialEq)]
pub enum WireEvent<M> {
    /// Run `on_start`.
    Start,
    /// A message delivery.
    Msg {
        /// Sending node.
        from: u64,
        /// The message.
        msg: M,
    },
    /// Scripted crash.
    Crash,
    /// Recovery from a scripted crash.
    Recover,
    /// End of run.
    Stop,
}

impl<M: Wire> Wire for WireEvent<M> {
    fn encode(&self, e: &mut Enc) {
        match self {
            WireEvent::Start => {
                e.u8(0);
            }
            WireEvent::Msg { from, msg } => {
                e.u8(1);
                e.u64(*from);
                msg.encode(e);
            }
            WireEvent::Crash => {
                e.u8(2);
            }
            WireEvent::Recover => {
                e.u8(3);
            }
            WireEvent::Stop => {
                e.u8(4);
            }
        }
    }
    fn decode(d: &mut Dec<'_>) -> Option<Self> {
        Some(match d.u8()? {
            0 => WireEvent::Start,
            1 => WireEvent::Msg { from: d.u64()?, msg: M::decode(d)? },
            2 => WireEvent::Crash,
            3 => WireEvent::Recover,
            4 => WireEvent::Stop,
            _ => return None,
        })
    }
}

impl<M: Wire> Wire for Frame<M> {
    fn encode(&self, e: &mut Enc) {
        match self {
            Frame::Hello { worker, nodes } => {
                e.u8(0);
                e.u64(*worker);
                nodes.encode(e);
            }
            Frame::Welcome { epoch_unix_nanos, time_scale } => {
                e.u8(1);
                e.u64(*epoch_unix_nanos).u64(*time_scale);
            }
            Frame::Event { to, ev } => {
                e.u8(2);
                e.u64(*to);
                ev.encode(e);
            }
            Frame::Out { from, to, extra_us, msg } => {
                e.u8(3);
                e.u64(*from).u64(*to).u64(*extra_us);
                msg.encode(e);
            }
            Frame::Completion { node, stream, rec } => {
                e.u8(4);
                e.u64(*node).u64(*stream);
                rec.encode(e);
            }
            Frame::NodeDone { node, expired } => {
                e.u8(5);
                e.u64(*node).u64(*expired);
            }
        }
    }
    fn decode(d: &mut Dec<'_>) -> Option<Self> {
        Some(match d.u8()? {
            0 => Frame::Hello { worker: d.u64()?, nodes: Wire::decode(d)? },
            1 => Frame::Welcome { epoch_unix_nanos: d.u64()?, time_scale: d.u64()? },
            2 => Frame::Event { to: d.u64()?, ev: Wire::decode(d)? },
            3 => Frame::Out {
                from: d.u64()?,
                to: d.u64()?,
                extra_us: d.u64()?,
                msg: M::decode(d)?,
            },
            4 => Frame::Completion { node: d.u64()?, stream: d.u64()?, rec: Wire::decode(d)? },
            5 => Frame::NodeDone { node: d.u64()?, expired: d.u64()? },
            _ => return None,
        })
    }
}

// ----- frame IO -----

/// Upper bound on one frame's payload. Protocol messages are a few hundred
/// bytes; anything near this is a corrupted length prefix.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Writes one `[len u32][crc32 u32][payload]` frame (the WAL frame shape on
/// a byte stream). Does not flush.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN);
    let mut header = [0u8; 8];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)
}

/// Reads one frame's payload into `buf` (replacing its contents).
///
/// Errors: `UnexpectedEof` when the stream ends (at a frame boundary or
/// inside a frame — a torn read), `InvalidData` when the length prefix is
/// absurd or the CRC does not match (a corrupted frame).
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> io::Result<()> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(header[4..].try_into().unwrap());
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_LEN}-byte bound"),
        ));
    }
    buf.clear();
    buf.resize(len, 0);
    r.read_exact(buf)?;
    if crc32(buf) != crc {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame CRC mismatch"));
    }
    Ok(())
}

/// Encodes `frame` and writes it as one wire frame. Does not flush.
pub fn write_wire_frame<M: Wire>(w: &mut impl Write, frame: &Frame<M>) -> io::Result<()> {
    write_frame(w, &frame.to_bytes())
}

/// Reads and decodes one wire frame, using `buf` as scratch.
pub fn read_wire_frame<M: Wire>(r: &mut impl Read, buf: &mut Vec<u8>) -> io::Result<Frame<M>> {
    read_frame(r, buf)?;
    Frame::from_bytes(buf)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "undecodable frame payload"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).as_ref(), Some(&v), "round trip failed");
        // Every strict prefix must decode to None, never panic.
        for cut in 0..bytes.len() {
            let mut d = Dec::new(&bytes[..cut]);
            let _ = T::decode(&mut d);
        }
    }

    #[test]
    fn spanner_messages_round_trip() {
        round_trip(SpannerMsg::CommitRequest {
            txn: TxnId { client: 7, seq: 42 },
            writes_by_shard: vec![(0, vec![(Key(1), Value(2))]), (1, vec![])],
            t_ee: 12345,
        });
        round_trip(SpannerMsg::RoFastReply {
            txn: TxnId { client: 3, seq: 9 },
            shard: 2,
            skipped: vec![PreparedInfo { txn: TxnId { client: 1, seq: 1 }, t_prepare: 77 }],
            values: vec![(Key(5), 88, Value(6))],
        });
        round_trip(SpannerMsg::StatusRequest { txn: TxnId { client: 0, seq: 0 } });
    }

    #[test]
    fn gryff_messages_round_trip() {
        let cs = Carstamp { count: 4, writer: 2, rmwc: 1 };
        round_trip(GryffMsg::Read1 {
            op: OpRef { node: 5, seq: 6 },
            key: Key(7),
            dep: Some(Dep { key: Key(7), value: Value(8), cs }),
        });
        round_trip(GryffMsg::Write1 { op: OpRef { node: 1, seq: 2 }, key: Key(3), dep: None });
        round_trip(GryffMsg::RmwReply {
            op: OpRef { node: 9, seq: 10 },
            old_value: Value(11),
            cs,
        });
    }

    #[test]
    fn completion_and_control_frames_round_trip() {
        let rec = CompletedRecord {
            service: ServiceId(1),
            kind: OpKind::RwTxn {
                read_keys: vec![Key(1)],
                writes: vec![(Key(2), Value(3))],
            },
            result: OpResult::Values(vec![(Key(1), Value(9))]),
            invoke: SimTime::from_micros(10),
            finish: SimTime::from_micros(30),
            session: 4,
            slot: 1,
            attempts: 2,
            rounds: 3,
            orphan: false,
            witness: WitnessHint::Timestamp { ts: 25 },
        };
        round_trip(Frame::<SpannerMsg>::Completion { node: 3, stream: 0, rec });
        round_trip(Frame::<SpannerMsg>::Hello { worker: 1, nodes: vec![0, 2, 4] });
        round_trip(Frame::<SpannerMsg>::Welcome { epoch_unix_nanos: 1_700_000, time_scale: 40 });
        round_trip(Frame::Event {
            to: 2,
            ev: WireEvent::Msg {
                from: 1,
                msg: SpannerMsg::AbortRequest { txn: TxnId { client: 1, seq: 2 } },
            },
        });
        round_trip(Frame::<GryffMsg>::Event { to: 0, ev: WireEvent::Stop });
        round_trip(Frame::<GryffMsg>::NodeDone { node: 1, expired: 7 });
    }

    #[test]
    fn frame_io_round_trips_and_rejects_corruption() {
        let mut stream = Vec::new();
        let frames = [
            Frame::<SpannerMsg>::Hello { worker: 0, nodes: vec![1] },
            Frame::Event { to: 1, ev: WireEvent::Start },
        ];
        for f in &frames {
            write_wire_frame(&mut stream, f).unwrap();
        }
        let mut r = &stream[..];
        let mut buf = Vec::new();
        for f in &frames {
            assert_eq!(&read_wire_frame::<SpannerMsg>(&mut r, &mut buf).unwrap(), f);
        }
        assert_eq!(
            read_wire_frame::<SpannerMsg>(&mut r, &mut buf).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Flip one payload byte: CRC must reject it.
        let mut corrupt = stream.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x01;
        let mut r = &corrupt[..];
        assert!(read_wire_frame::<SpannerMsg>(&mut r, &mut buf).is_ok());
        assert_eq!(
            read_wire_frame::<SpannerMsg>(&mut r, &mut buf).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn hostile_lengths_are_rejected_without_allocation() {
        // A vector length prefix beyond the buffer is rejected.
        let mut e = Enc::new();
        e.u32(u32::MAX);
        assert_eq!(Vec::<u64>::from_bytes(&e.finish()), None);
        // A frame length prefix beyond the bound is InvalidData.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let mut r = &bytes[..];
        let mut buf = Vec::new();
        assert_eq!(read_frame(&mut r, &mut buf).unwrap_err().kind(), io::ErrorKind::InvalidData);
    }
}
