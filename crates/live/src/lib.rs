//! Live execution plane: the same protocol state machines the
//! discrete-event simulator drives, run on real OS threads.
//!
//! The simulator (`regular-sim`) validates the protocols and the RSS/RSC
//! checkers under deterministic schedules; this crate validates them under
//! *real* concurrency. Every node — Spanner shard or client, Gryff replica
//! or client — becomes one OS thread with a private mailbox, timer heap,
//! RNG stream, and TrueTime clock. A router thread plays the network: it
//! applies the same [`NetworkModel`](regular_sim::NetworkModel) base
//! verdicts and the same
//! [`FaultSchedule::verdict`](regular_sim::fault::FaultSchedule) fault
//! composition as the engine, with scripted crash windows turned into
//! `Crash`/`Recover` mailbox events, so the entire fault plane carries over
//! to wall-clock time unchanged.
//!
//! Time is *scaled wall time* ([`clock::LiveClock`]): protocol code keeps
//! reading `SimTime` microseconds, but they now advance with the monotonic
//! clock, compressed by a configurable factor so multi-minute fault scripts
//! finish in wall-clock seconds. Because the [`Context`](regular_sim::Context)
//! handed to handlers is assembled from [`ContextParts`](regular_sim::ContextParts),
//! the protocol crates run **unmodified** — the acceptance bar for the
//! whole plane.
//!
//! Completions stream out of node threads through a channel into the
//! caller, which can feed them to the streaming certifier online. Live runs
//! are *not* bit-deterministic (thread interleaving is real); the transport
//! records its delivery order so a failing run leaves replayable evidence.
//!
//! Messages travel over a chosen [`transport::TransportKind`]: in-process
//! mpsc channels, Unix-domain sockets, or TCP. The socket backends
//! ([`net`], framed by [`wire`]) carry the same router semantics across
//! process boundaries, so nodes can run as separate OS processes — see
//! `OPERATIONS.md` at the repository root for running such clusters.

pub mod clock;
pub mod exec;
pub mod gryff_live;
pub mod net;
pub mod spanner_live;
pub mod transport;
pub mod wire;

pub mod prelude {
    //! Everything a live harness needs.
    pub use crate::clock::LiveClock;
    pub use crate::exec::{run_live, run_live_transport, LiveConfig, LiveNode, LiveOutcome};
    pub use crate::gryff_live::{build_gryff_nodes, run_gryff_live, GryffLiveResult, GryffLiveSpec};
    pub use crate::net::{
        run_hub_multiproc, run_worker_multiproc, ListenAddr, Listener, MultiprocOutcome,
        SocketStream, WireStats,
    };
    pub use crate::spanner_live::{
        build_spanner_nodes, run_cluster_live, SpannerLiveResult, SpannerLiveSpec,
    };
    pub use crate::transport::{DeliveryRecord, LiveEvent, Mailbox, Outgoing, TransportKind};
    pub use crate::wire::Wire;
}

pub use prelude::*;
