//! Live-plane deployment of the Spanner-style protocol.
//!
//! Mirrors `regular_spanner::harness::run_cluster` node for node — shards
//! first (ids `0..num_shards`), then clients, the same `ClientConfig` from
//! the same builder — but each node is an OS thread and time is the scaled
//! wall clock. The protocol crates are reused unmodified; only the
//! execution substrate changes.

use std::time::Duration;

use regular_session::{CompletedRecord, SessionRunner, SessionStats};
use regular_sim::{LatencyMatrix, LatencyRecorder, MessageStats, NodeId, SimDuration, SimTime};
use regular_spanner::prelude::*;
use regular_spanner::shard::ShardStats;

use crate::exec::{run_live_transport, LiveConfig, LiveNode, LiveOutcome};
use crate::net::WireStats;
use crate::transport::{DeliveryRecord, TransportKind};

impl LiveNode<SpannerMsg> for SpannerNode {
    fn drain_completions(&mut self, out: &mut Vec<(usize, CompletedRecord)>) {
        if let SpannerNode::Client(c) = self {
            out.extend(c.completed.drain(..).map(|r| (0, r)));
        }
    }
}

/// Specification of a live cluster run (the live-plane analogue of
/// [`ClusterSpec`]).
pub struct SpannerLiveSpec {
    /// Protocol and topology configuration (including the fault schedule).
    pub config: SpannerConfig,
    /// Wide-area network model.
    pub net: LatencyMatrix,
    /// Random seed (derives per-thread RNG streams; live runs are *not*
    /// bit-deterministic — thread interleaving is real).
    pub seed: u64,
    /// Client nodes.
    pub clients: Vec<ClientSpec>,
    /// Clients stop issuing new transactions at this instant.
    pub stop_issuing_at: SimTime,
    /// Extra time to let in-flight transactions drain.
    pub drain: SimDuration,
    /// Measurements only cover completions at or after this instant.
    pub measure_from: SimTime,
    /// Simulated microseconds per wall microsecond.
    pub time_scale: u64,
    /// Record the transport's delivery log.
    pub record_deliveries: bool,
    /// Which transport carries the messages (mpsc, UDS, or TCP; see
    /// [`TransportKind`]).
    pub transport: TransportKind,
}

/// The outcome of a live cluster run.
pub struct SpannerLiveResult {
    /// Protocol variant that was run.
    pub mode: Mode,
    /// Read-write transaction latencies, in simulated time (comparable to
    /// simulator runs at any scale).
    pub rw_latencies: LatencyRecorder,
    /// Read-only transaction latencies (simulated time).
    pub ro_latencies: LatencyRecorder,
    /// Completed transactions per client node, in completion order.
    pub completed: Vec<(NodeId, Vec<CompletedRecord>)>,
    /// Throughput over the measurement window, in simulated txn/s.
    pub throughput: f64,
    /// Measured completions per wall-clock second.
    pub wall_throughput: f64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Aggregated client statistics.
    pub client_stats: ClientStats,
    /// Per-shard statistics.
    pub shard_stats: Vec<ShardStats>,
    /// Simulated time when the run stopped.
    pub finished_at: SimTime,
    /// Full message counters.
    pub net_stats: MessageStats,
    /// The transport's delivery log (empty unless recording was enabled).
    pub deliveries: Vec<DeliveryRecord>,
    /// Socket traffic counters (all zeros on the mpsc transport).
    pub wire: WireStats,
    /// Aggregated session-scheduler statistics across all clients
    /// (arrivals/shed matter for open-loop runs).
    pub session_stats: SessionStats,
}

/// Builds the live cluster's node list — shards first (ids
/// `0..num_shards`), then clients — deterministically from the spec parts.
///
/// Public because multi-process workers need it: every process rebuilds the
/// identical list from the shared scenario spec so node ids line up, then
/// hosts only its own partition (see [`crate::net::run_worker_multiproc`]).
pub fn build_spanner_nodes(
    config: &SpannerConfig,
    net: &LatencyMatrix,
    clients: Vec<ClientSpec>,
    stop_issuing_at: SimTime,
) -> Vec<(SpannerNode, usize)> {
    let mut nodes: Vec<(SpannerNode, usize)> = Vec::new();
    let mut shard_nodes = Vec::new();
    let mut replication_delays = Vec::new();
    for shard in 0..config.num_shards {
        let delay = config.replication_delay(shard, net);
        replication_delays.push(delay);
        shard_nodes.push(nodes.len());
        nodes.push((
            SpannerNode::Shard(Box::new(ShardNode::new(config, shard, delay))),
            config.leader_regions[shard],
        ));
    }
    for c in clients {
        let cfg =
            client_config(config, net, c.region, shard_nodes.clone(), replication_delays.clone());
        let runner =
            SessionRunner::new(SpannerService::new(cfg), c.sessions, stop_issuing_at, c.workload);
        nodes.push((SpannerNode::Client(Box::new(runner)), c.region));
    }
    nodes
}

/// Builds and runs a cluster on the live plane.
///
/// # Panics
///
/// Panics if the configuration is structurally invalid (see
/// [`SpannerConfig::validate`]).
pub fn run_cluster_live(spec: SpannerLiveSpec) -> SpannerLiveResult {
    let SpannerLiveSpec {
        config,
        net,
        seed,
        clients,
        stop_issuing_at,
        drain,
        measure_from,
        time_scale,
        record_deliveries,
        transport,
    } = spec;
    config.validate().expect("invalid Spanner configuration");

    // Shards first (node ids 0..num_shards), exactly like the simulator
    // harness, so NodeIds line up across planes.
    let nodes = build_spanner_nodes(&config, &net, clients, stop_issuing_at);
    let shard_count = config.num_shards;
    let client_ids: Vec<NodeId> = (shard_count..nodes.len()).collect();

    let live_cfg = LiveConfig {
        seed,
        faults: config.faults.clone(),
        truetime_epsilon: config.truetime_epsilon,
        time_scale,
        stop_at: stop_issuing_at + drain,
        record_deliveries,
    };
    let outcome: LiveOutcome<SpannerNode> =
        run_live_transport(live_cfg, Box::new(net), nodes, transport);
    let LiveOutcome { nodes, completed, net_stats, deliveries, finished_at, wall, wire } = outcome;

    let mut rw = LatencyRecorder::new();
    let mut ro = LatencyRecorder::new();
    let mut client_stats = ClientStats::default();
    let mut per_client = Vec::new();
    let mut window_count = 0u64;
    let mut measured = 0u64;
    for (&id, recs) in client_ids.iter().zip(&completed[shard_count..]) {
        let recs: Vec<CompletedRecord> = recs.iter().map(|(_, r)| r.clone()).collect();
        for txn in &recs {
            if txn.finish >= measure_from && !txn.orphan && !txn.kind.is_fence() {
                let latency = txn.latency();
                if txn.kind.is_read_only() {
                    ro.record(latency);
                } else {
                    rw.record(latency);
                }
                measured += 1;
                if txn.finish < stop_issuing_at {
                    window_count += 1;
                }
            }
        }
        per_client.push((id, recs));
    }
    let mut shard_stats = Vec::new();
    let mut session_stats = SessionStats::default();
    for (i, node) in nodes.into_iter().enumerate() {
        match node {
            SpannerNode::Shard(s) => shard_stats.push(s.stats),
            SpannerNode::Client(c) => {
                let s = &c.service.stats;
                client_stats.rw_completed += s.rw_completed;
                client_stats.ro_completed += s.ro_completed;
                client_stats.fences += s.fences;
                client_stats.aborted_attempts += s.aborted_attempts;
                client_stats.ro_waited_slow += s.ro_waited_slow;
                client_stats.timeout_retries += s.timeout_retries;
                session_stats.merge(&c.stats);
                debug_assert!(i >= shard_count);
            }
        }
    }

    let window = stop_issuing_at.since(measure_from).as_micros();
    let throughput =
        if window > 0 { window_count as f64 * 1_000_000.0 / window as f64 } else { 0.0 };
    let wall_secs = wall.as_secs_f64();
    let wall_throughput = if wall_secs > 0.0 { measured as f64 / wall_secs } else { 0.0 };

    SpannerLiveResult {
        mode: config.mode,
        rw_latencies: rw,
        ro_latencies: ro,
        completed: per_client,
        throughput,
        wall_throughput,
        wall,
        client_stats,
        shard_stats,
        finished_at,
        net_stats,
        deliveries,
        wire,
        session_stats,
    }
}
