//! The wall-to-simulated time mapping shared by every live thread.
//!
//! The live plane keeps the protocol code's notion of time — [`SimTime`]
//! microseconds — and defines it as *scaled wall time*: `sim_us = wall_us ×
//! scale`, anchored at an epoch captured when the run starts. A scale of 1
//! runs in real time; a scale of 30 compresses a 30-simulated-second fault
//! script into one wall-clock second. Because every thread reads the same
//! monotonic clock, the mapping is globally consistent without any
//! coordination, and TrueTime's `[now-ε, now+ε]` bounds hold exactly as they
//! do in the simulator.

use std::time::{Duration, Instant};

use regular_sim::{SimDuration, SimTime};

/// A shared, copyable handle mapping the monotonic wall clock to simulated
/// time.
#[derive(Debug, Clone, Copy)]
pub struct LiveClock {
    epoch: Instant,
    scale: u64,
}

impl LiveClock {
    /// Starts the clock now, at simulated time zero, with the given
    /// compression factor (simulated microseconds per wall microsecond;
    /// clamped to at least 1).
    pub fn start(scale: u64) -> Self {
        LiveClock { epoch: Instant::now(), scale: scale.max(1) }
    }

    /// The compression factor.
    pub fn scale(&self) -> u64 {
        self.scale
    }

    /// The current simulated time.
    pub fn sim_now(&self) -> SimTime {
        let wall_us = self.epoch.elapsed().as_micros() as u64;
        SimTime(wall_us.saturating_mul(self.scale))
    }

    /// The wall-clock duration from now until simulated instant `t`
    /// (zero if `t` is already past).
    ///
    /// Rounded *up*, so sleeping this long never wakes before `t`: waking
    /// early would fire timers ahead of their simulated deadline, which the
    /// discrete-event engine can never do (commit-wait correctness depends
    /// on it). Waking late is always safe — the caller re-reads
    /// [`LiveClock::sim_now`] and fires only what is due.
    pub fn wall_until(&self, t: SimTime) -> Duration {
        let now = self.sim_now();
        if t <= now {
            return Duration::ZERO;
        }
        let sim_us = t.0 - now.0;
        Duration::from_micros(sim_us.div_ceil(self.scale))
    }

    /// Converts a simulated duration to its wall-clock equivalent (rounded
    /// up).
    pub fn to_wall(&self, d: SimDuration) -> Duration {
        Duration::from_micros(d.as_micros().div_ceil(self.scale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_scaled() {
        let c = LiveClock::start(1000);
        std::thread::sleep(Duration::from_millis(2));
        let t = c.sim_now();
        // 2ms wall at scale 1000 is at least 2 simulated seconds.
        assert!(t >= SimTime::from_secs(2), "sim clock too slow: {:?}", t);
    }

    #[test]
    fn wall_until_rounds_up_and_saturates() {
        let c = LiveClock::start(10);
        assert_eq!(c.wall_until(SimTime(0)), Duration::ZERO);
        let target = c.sim_now() + SimDuration::from_micros(25);
        // 25 sim-us at scale 10 needs at least 2 wall-us and at most 3.
        assert!(c.wall_until(target) <= Duration::from_micros(3));
    }
}
