//! The wall-to-simulated time mapping shared by every live thread.
//!
//! The live plane keeps the protocol code's notion of time — [`SimTime`]
//! microseconds — and defines it as *scaled wall time*: `sim_us = wall_us ×
//! scale`, anchored at an epoch captured when the run starts. A scale of 1
//! runs in real time; a scale of 30 compresses a 30-simulated-second fault
//! script into one wall-clock second. Because every thread reads the same
//! monotonic clock, the mapping is globally consistent without any
//! coordination, and TrueTime's `[now-ε, now+ε]` bounds hold exactly as they
//! do in the simulator.

use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use regular_sim::{SimDuration, SimTime};

/// A shared, copyable handle mapping the monotonic wall clock to simulated
/// time.
#[derive(Debug, Clone, Copy)]
pub struct LiveClock {
    epoch: Instant,
    /// The epoch on the shareable wall clock, for cross-process agreement
    /// (see [`LiveClock::from_unix_anchor`]).
    unix_anchor_nanos: u64,
    scale: u64,
}

impl LiveClock {
    /// Starts the clock now, at simulated time zero, with the given
    /// compression factor (simulated microseconds per wall microsecond;
    /// clamped to at least 1).
    pub fn start(scale: u64) -> Self {
        let unix_anchor_nanos =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0);
        LiveClock { epoch: Instant::now(), unix_anchor_nanos, scale: scale.max(1) }
    }

    /// Simulated time zero as nanoseconds since the UNIX epoch — the anchor
    /// a multi-process hub ships to its workers in the `Welcome` frame.
    ///
    /// `Instant` is process-private, but `CLOCK_REALTIME` is shared by every
    /// process on the machine, so shipping the `SystemTime` of the epoch
    /// lets each worker reconstruct the same simulated timeline. Skew over a
    /// run of wall-clock seconds on one host is far below the network
    /// latencies the router injects.
    pub fn unix_anchor_nanos(&self) -> u64 {
        self.unix_anchor_nanos
    }

    /// Reconstructs a clock from a hub-provided anchor (see
    /// [`LiveClock::unix_anchor_nanos`]). An anchor in the future (clock
    /// skew) clamps to "now": simulated time starts at zero rather than
    /// going negative.
    pub fn from_unix_anchor(anchor_nanos: u64, scale: u64) -> Self {
        let now_nanos =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0);
        let elapsed = Duration::from_nanos(now_nanos.saturating_sub(anchor_nanos));
        let epoch = Instant::now().checked_sub(elapsed).unwrap_or_else(Instant::now);
        LiveClock { epoch, unix_anchor_nanos: anchor_nanos, scale: scale.max(1) }
    }

    /// The compression factor.
    pub fn scale(&self) -> u64 {
        self.scale
    }

    /// The current simulated time.
    pub fn sim_now(&self) -> SimTime {
        let wall_us = self.epoch.elapsed().as_micros() as u64;
        SimTime(wall_us.saturating_mul(self.scale))
    }

    /// The wall-clock duration from now until simulated instant `t`
    /// (zero if `t` is already past).
    ///
    /// Rounded *up*, so sleeping this long never wakes before `t`: waking
    /// early would fire timers ahead of their simulated deadline, which the
    /// discrete-event engine can never do (commit-wait correctness depends
    /// on it). Waking late is always safe — the caller re-reads
    /// [`LiveClock::sim_now`] and fires only what is due.
    pub fn wall_until(&self, t: SimTime) -> Duration {
        let now = self.sim_now();
        if t <= now {
            return Duration::ZERO;
        }
        let sim_us = t.0 - now.0;
        Duration::from_micros(sim_us.div_ceil(self.scale))
    }

    /// Converts a simulated duration to its wall-clock equivalent (rounded
    /// up).
    pub fn to_wall(&self, d: SimDuration) -> Duration {
        Duration::from_micros(d.as_micros().div_ceil(self.scale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_scaled() {
        let c = LiveClock::start(1000);
        std::thread::sleep(Duration::from_millis(2));
        let t = c.sim_now();
        // 2ms wall at scale 1000 is at least 2 simulated seconds.
        assert!(t >= SimTime::from_secs(2), "sim clock too slow: {:?}", t);
    }

    #[test]
    fn anchored_clocks_agree_across_reconstructions() {
        let hub = LiveClock::start(50);
        std::thread::sleep(Duration::from_millis(2));
        let worker = LiveClock::from_unix_anchor(hub.unix_anchor_nanos(), hub.scale());
        let (a, b) = (hub.sim_now(), worker.sim_now());
        let skew = a.0.abs_diff(b.0);
        // Same process, same wall clock: the reconstruction should land
        // within a couple of simulated milliseconds (50x a few dozen µs).
        assert!(skew < 5_000, "reconstructed clock skew {skew}µs");
        // A future anchor clamps to sim-time zero instead of underflowing.
        let future = LiveClock::from_unix_anchor(u64::MAX, 10);
        assert!(future.sim_now() < SimTime::from_secs(1));
    }

    #[test]
    fn wall_until_rounds_up_and_saturates() {
        let c = LiveClock::start(10);
        assert_eq!(c.wall_until(SimTime(0)), Duration::ZERO);
        let target = c.sim_now() + SimDuration::from_micros(25);
        // 25 sim-us at scale 10 needs at least 2 wall-us and at most 3.
        assert!(c.wall_until(target) <= Duration::from_micros(3));
    }
}
