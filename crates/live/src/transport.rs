//! The live transport: a router thread that applies network and fault
//! verdicts to every message and delivers into per-node mailboxes.
//!
//! This is the wall-clock counterpart of the discrete-event engine's
//! `dispatch`: the base verdict comes from the same [`NetworkModel`], the
//! fault overlay from the same [`FaultSchedule::verdict`] composition, and
//! scripted crash windows become `Crash`/`Recover` control events pushed
//! through the victim's mailbox. Delivery times are *simulated* instants
//! (see [`LiveClock`]); the router sleeps until the earliest pending
//! delivery is due on the wall clock, so messages arrive in simulated-time
//! order with real concurrency between nodes.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use regular_sim::fault::FaultSchedule;
use regular_sim::net::{Delivery, NetworkModel, Region};
use regular_sim::{MessageStats, NodeId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::clock::LiveClock;

/// Which transport carries messages between the nodes and the router.
///
/// The router logic is identical for all three — same [`NetworkModel`]
/// latency, same [`FaultSchedule`] verdicts on the scaled wall clock, same
/// [`DeliveryRecord`] log. What changes is the path a message takes to and
/// from it: an in-process channel, or a kernel socket carrying
/// length-prefixed CRC-framed bytes (see [`crate::wire`]), which is also
/// what lets nodes live in separate OS processes ([`crate::net`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-process mpsc channels (PR 7's original plane). Zero
    /// serialization; nodes must share the router's address space.
    #[default]
    Mpsc,
    /// Unix-domain stream sockets: kernel-mediated, process-capable, no IP
    /// stack.
    Uds,
    /// TCP over loopback (or any address, for operator-driven multi-host
    /// clusters).
    Tcp,
}

impl TransportKind {
    /// Stable lowercase name (CLI and report vocabulary).
    pub fn name(&self) -> &'static str {
        match self {
            TransportKind::Mpsc => "mpsc",
            TransportKind::Uds => "uds",
            TransportKind::Tcp => "tcp",
        }
    }

    /// Parses a [`TransportKind::name`].
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "mpsc" => Some(TransportKind::Mpsc),
            "uds" | "unix" => Some(TransportKind::Uds),
            "tcp" => Some(TransportKind::Tcp),
            _ => None,
        }
    }
}

/// Where the router delivers a node's events: a local channel, or a socket
/// peer that encodes them onto a connection (implemented by
/// [`crate::net::RemotePeer`]).
///
/// `deliver` returns `false` only when the destination is gone (channel or
/// connection closed) — mirroring `Sender::send`'s error, which the router
/// uses to skip counting the delivery.
pub trait Mailbox<M>: Send + Sync {
    /// Delivers one event; `false` if the destination has disconnected.
    fn deliver(&self, ev: LiveEvent<M>) -> bool;
}

impl<M: Send> Mailbox<M> for Sender<LiveEvent<M>> {
    fn deliver(&self, ev: LiveEvent<M>) -> bool {
        self.send(ev).is_ok()
    }
}

/// An event delivered into a node thread's mailbox.
pub enum LiveEvent<M> {
    /// Run `on_start` (sent once, before any delivery).
    Start,
    /// A message delivery.
    Msg {
        /// Sending node.
        from: NodeId,
        /// The message.
        msg: M,
    },
    /// A scripted crash: the node discards its state per `on_crash` and
    /// ignores deliveries until `Recover`.
    Crash,
    /// Recovery from a scripted crash.
    Recover,
    /// End of run; the node thread exits.
    Stop,
}

/// A message handed to the router by a node thread.
pub struct Outgoing<M> {
    /// Sending node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Extra delay on top of network latency (`Context::send_after`).
    pub extra: SimDuration,
    /// The message.
    pub msg: M,
}

/// One delivery the router performed, in delivery order.
///
/// The recorded log makes a live run's nondeterministic interleaving
/// inspectable after the fact: it is attached to failure artifacts so a
/// violation found on the live plane ships with the exact delivery
/// sequence that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveryRecord {
    /// Delivery sequence number (0-based, global).
    pub seq: u64,
    /// Simulated delivery instant (microseconds).
    pub at_us: u64,
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
}

/// What the router accumulated over the run.
pub struct RouterReport {
    /// Message counters. `delivered` counts mailbox pushes; the executor
    /// subtracts the receivers' expired counts to match engine semantics.
    pub stats: MessageStats,
    /// The delivery log (empty unless recording was enabled).
    pub deliveries: Vec<DeliveryRecord>,
}

/// A scheduled router action: a future delivery or a scripted power event.
enum PendingKind<M> {
    Msg { from: NodeId, to: NodeId, msg: M },
    Crash { node: NodeId },
    Recover { node: NodeId },
}

struct Pending<M> {
    at: SimTime,
    /// Tie-break class: recoveries before crashes before messages at the
    /// same instant, mirroring the engine's power-event ordering.
    class: u8,
    seq: u64,
    kind: PendingKind<M>,
}

impl<M> Pending<M> {
    fn key(&self) -> (SimTime, u8, u64) {
        (self.at, self.class, self.seq)
    }
}

impl<M> PartialEq for Pending<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<M> Eq for Pending<M> {}
impl<M> PartialOrd for Pending<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Pending<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

const CLASS_RECOVER: u8 = 0;
const CLASS_CRASH: u8 = 1;
const CLASS_MSG: u8 = 2;

/// Mixed into the run seed for the router's RNG stream so it does not
/// collide with any node's stream.
const ROUTER_SALT: u64 = 0xF0E1_D2C3_B4A5_9687;

/// The router loop. Runs on its own thread until `stop` is raised or every
/// node-side sender is gone.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_router<M: Clone + Send + 'static>(
    clock: LiveClock,
    mut net: Box<dyn NetworkModel>,
    faults: FaultSchedule,
    regions: Vec<Region>,
    mailboxes: Vec<Arc<dyn Mailbox<M>>>,
    rx: Receiver<Outgoing<M>>,
    seed: u64,
    record_deliveries: bool,
    stop: Arc<AtomicBool>,
) -> RouterReport {
    let mut rng = SmallRng::seed_from_u64(seed ^ ROUTER_SALT);
    let mut heap: BinaryHeap<Reverse<Pending<M>>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut stats = MessageStats::default();
    let mut deliveries = Vec::new();

    // Scripted power events are known up front; seed the schedule with them.
    for w in faults.crashes() {
        heap.push(Reverse(Pending {
            at: w.at,
            class: CLASS_CRASH,
            seq,
            kind: PendingKind::Crash { node: w.node },
        }));
        seq += 1;
        if let Some(r) = w.recover_at {
            heap.push(Reverse(Pending {
                at: r,
                class: CLASS_RECOVER,
                seq,
                kind: PendingKind::Recover { node: w.node },
            }));
            seq += 1;
        }
    }

    let mut disconnected = false;
    loop {
        // Deliver everything that is due.
        let now = clock.sim_now();
        while heap.peek().is_some_and(|Reverse(p)| p.at <= now) {
            let Reverse(p) = heap.pop().unwrap();
            match p.kind {
                PendingKind::Msg { from, to, msg } => {
                    if mailboxes[to].deliver(LiveEvent::Msg { from, msg }) {
                        if record_deliveries {
                            deliveries.push(DeliveryRecord {
                                seq: deliveries.len() as u64,
                                at_us: p.at.0,
                                from,
                                to,
                            });
                        }
                        stats.delivered += 1;
                    }
                }
                PendingKind::Crash { node } => {
                    let _ = mailboxes[node].deliver(LiveEvent::Crash);
                }
                PendingKind::Recover { node } => {
                    let _ = mailboxes[node].deliver(LiveEvent::Recover);
                }
            }
        }
        if stop.load(Ordering::Relaxed) || (disconnected && heap.is_empty()) {
            break;
        }

        // Sleep until the next pending event is due, but wake periodically
        // to notice the stop flag even when the schedule holds only
        // far-future events.
        let cap = Duration::from_millis(20);
        let wait = match heap.peek() {
            Some(Reverse(p)) => clock.wall_until(p.at).min(cap),
            None => cap,
        };
        if disconnected {
            std::thread::sleep(wait);
            continue;
        }
        match rx.recv_timeout(wait) {
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => disconnected = true,
            Ok(out) => {
                // Drain the channel: verdicts are cheap, and batching keeps
                // the heap hot while senders are bursty.
                let mut next = Some(out);
                while let Some(o) = next {
                    let now = clock.sim_now();
                    let from_r = regions[o.from];
                    let to_r = regions[o.to];
                    let base = net.delivery(now, from_r, to_r, &mut rng);
                    let verdict = faults.verdict(now, from_r, to_r, &mut rng, base);
                    match verdict {
                        Delivery::Deliver { latency } => {
                            heap.push(Reverse(Pending {
                                at: now + latency + o.extra,
                                class: CLASS_MSG,
                                seq,
                                kind: PendingKind::Msg { from: o.from, to: o.to, msg: o.msg },
                            }));
                            seq += 1;
                        }
                        Delivery::Delay { latency, extra } => {
                            heap.push(Reverse(Pending {
                                at: now + latency + o.extra + extra,
                                class: CLASS_MSG,
                                seq,
                                kind: PendingKind::Msg { from: o.from, to: o.to, msg: o.msg },
                            }));
                            seq += 1;
                        }
                        Delivery::Drop => stats.dropped += 1,
                        Delivery::Duplicate { latency, echo_after } => {
                            let at = now + latency + o.extra;
                            heap.push(Reverse(Pending {
                                at,
                                class: CLASS_MSG,
                                seq,
                                kind: PendingKind::Msg {
                                    from: o.from,
                                    to: o.to,
                                    msg: o.msg.clone(),
                                },
                            }));
                            seq += 1;
                            heap.push(Reverse(Pending {
                                at: at + echo_after,
                                class: CLASS_MSG,
                                seq,
                                kind: PendingKind::Msg { from: o.from, to: o.to, msg: o.msg },
                            }));
                            seq += 1;
                            stats.duplicated += 1;
                        }
                    }
                    next = rx.try_recv().ok();
                }
            }
        }
    }
    RouterReport { stats, deliveries }
}
