//! Socket transports: the live plane across process boundaries.
//!
//! The mpsc transport (PR 7) moves messages between threads of one process.
//! This module carries the same traffic over kernel sockets — Unix-domain
//! or TCP — so protocol nodes can run as separate OS processes while the
//! router keeps doing exactly what it does in-process: apply
//! [`NetworkModel`] latency and [`FaultSchedule`](regular_sim::fault::FaultSchedule)
//! verdicts on the scaled wall clock, and record
//! [`DeliveryRecord`](crate::transport::DeliveryRecord)s for failure
//! artifacts.
//!
//! # Topology
//!
//! One **hub** process owns the router, the completion collector, and the
//! shared clock anchor. Each **worker** process hosts a subset of the node
//! threads. A worker's connection carries, framed by [`crate::wire`]:
//!
//! ```text
//!   worker → hub : Hello{worker, nodes}          (handshake)
//!   hub → worker : Welcome{epoch, scale}         (clock anchor)
//!   hub → worker : Event{to, Start/Msg/Crash/Recover/Stop}
//!   worker → hub : Out{from, to, extra, msg}     (sends, pre-verdict)
//!   worker → hub : Completion{node, stream, rec} (streams into certification)
//!   worker → hub : NodeDone{node, expired}       (per node, at exit)
//! ```
//!
//! Every message therefore crosses the kernel twice (sender → hub,
//! hub → receiver) and is encoded/decoded twice — the honest serialization
//! cost `live_bench --transport` measures against mpsc.
//!
//! The in-process entry point [`crate::exec::run_live_transport`] reuses
//! this exact machinery over a socket pair, so the differential tests pin
//! socket behaviour without spawning processes; the multi-process entry
//! points [`run_hub_multiproc`]/[`run_worker_multiproc`] are the same code
//! behind a listener.

use std::collections::HashMap;
use std::io::{self, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use regular_session::CompletedRecord;
use regular_sim::net::{NetworkModel, Region};
use regular_sim::{MessageStats, NodeId, SimDuration, SimTime};

use crate::clock::LiveClock;
use crate::exec::{run_node, LiveConfig, LiveNode};
use crate::transport::{
    run_router, DeliveryRecord, LiveEvent, Mailbox, Outgoing, TransportKind,
};
use crate::wire::{read_wire_frame, write_frame, Frame, Wire, WireEvent};

/// Byte/frame counters of one run's socket traffic, from the hub's
/// perspective (`tx` = hub → workers, `rx` = workers → hub). All zeros on
/// the mpsc transport.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Frames sent by the hub.
    pub frames_tx: u64,
    /// Payload + header bytes sent by the hub.
    pub bytes_tx: u64,
    /// Frames received by the hub.
    pub frames_rx: u64,
    /// Payload + header bytes received by the hub.
    pub bytes_rx: u64,
}

#[derive(Default)]
struct WireCounters {
    frames_tx: AtomicU64,
    bytes_tx: AtomicU64,
    frames_rx: AtomicU64,
    bytes_rx: AtomicU64,
}

impl WireCounters {
    fn count_tx(&self, payload_len: usize) {
        self.frames_tx.fetch_add(1, Ordering::Relaxed);
        self.bytes_tx.fetch_add(payload_len as u64 + 8, Ordering::Relaxed);
    }
    fn count_rx(&self, payload_len: usize) {
        self.frames_rx.fetch_add(1, Ordering::Relaxed);
        self.bytes_rx.fetch_add(payload_len as u64 + 8, Ordering::Relaxed);
    }
    fn snapshot(&self) -> WireStats {
        WireStats {
            frames_tx: self.frames_tx.load(Ordering::Relaxed),
            bytes_tx: self.bytes_tx.load(Ordering::Relaxed),
            frames_rx: self.frames_rx.load(Ordering::Relaxed),
            bytes_rx: self.bytes_rx.load(Ordering::Relaxed),
        }
    }
}

// ----- streams, listeners, addresses -----

/// A connected stream of either socket family.
#[derive(Debug)]
pub enum SocketStream {
    /// Unix-domain stream socket.
    Uds(UnixStream),
    /// TCP stream (`TCP_NODELAY` set — router frames are latency-bound).
    Tcp(TcpStream),
}

impl SocketStream {
    /// Duplicates the handle (for the read/write thread split).
    pub fn try_clone(&self) -> io::Result<SocketStream> {
        Ok(match self {
            SocketStream::Uds(s) => SocketStream::Uds(s.try_clone()?),
            SocketStream::Tcp(s) => SocketStream::Tcp(s.try_clone()?),
        })
    }

    /// Shuts down the write half, delivering EOF to the peer's reader.
    pub fn shutdown_write(&self) {
        let _ = match self {
            SocketStream::Uds(s) => s.shutdown(std::net::Shutdown::Write),
            SocketStream::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
        };
    }

    /// An in-process connected pair of the given kind — the transport the
    /// single-process socket modes run over ([`crate::exec::run_live_transport`]).
    ///
    /// `Mpsc` has no socket form and is rejected.
    pub fn pair(kind: TransportKind) -> io::Result<(SocketStream, SocketStream)> {
        match kind {
            TransportKind::Mpsc => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "the mpsc transport has no socket pair",
            )),
            TransportKind::Uds => {
                let (a, b) = UnixStream::pair()?;
                Ok((SocketStream::Uds(a), SocketStream::Uds(b)))
            }
            TransportKind::Tcp => {
                let listener = TcpListener::bind(("127.0.0.1", 0))?;
                let addr = listener.local_addr()?;
                let client = TcpStream::connect(addr)?;
                let (server, _) = listener.accept()?;
                client.set_nodelay(true)?;
                server.set_nodelay(true)?;
                Ok((SocketStream::Tcp(server), SocketStream::Tcp(client)))
            }
        }
    }
}

impl Read for SocketStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            SocketStream::Uds(s) => s.read(buf),
            SocketStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for SocketStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            SocketStream::Uds(s) => s.write(buf),
            SocketStream::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            SocketStream::Uds(s) => s.flush(),
            SocketStream::Tcp(s) => s.flush(),
        }
    }
}

/// Where a multi-process hub listens (and workers connect).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListenAddr {
    /// A Unix-domain socket path.
    Uds(PathBuf),
    /// A TCP `host:port` string.
    Tcp(String),
}

impl ListenAddr {
    /// Parses `uds:<path>` or `tcp:<host>:<port>`.
    pub fn parse(s: &str) -> Option<ListenAddr> {
        let s = s.trim();
        if let Some(path) = s.strip_prefix("uds:") {
            (!path.is_empty()).then(|| ListenAddr::Uds(PathBuf::from(path)))
        } else if let Some(addr) = s.strip_prefix("tcp:") {
            addr.contains(':').then(|| ListenAddr::Tcp(addr.to_string()))
        } else {
            None
        }
    }

    /// The transport family of this address.
    pub fn kind(&self) -> TransportKind {
        match self {
            ListenAddr::Uds(_) => TransportKind::Uds,
            ListenAddr::Tcp(_) => TransportKind::Tcp,
        }
    }
}

impl std::fmt::Display for ListenAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ListenAddr::Uds(p) => write!(f, "uds:{}", p.display()),
            ListenAddr::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// A bound listener of either socket family.
pub enum Listener {
    /// Unix-domain listener.
    Uds(UnixListener),
    /// TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Binds `addr`, removing a stale socket file first for UDS.
    pub fn bind(addr: &ListenAddr) -> io::Result<Listener> {
        match addr {
            ListenAddr::Uds(path) => {
                let _ = std::fs::remove_file(path);
                Ok(Listener::Uds(UnixListener::bind(path)?))
            }
            ListenAddr::Tcp(a) => Ok(Listener::Tcp(TcpListener::bind(a.as_str())?)),
        }
    }

    /// Accepts one worker connection.
    pub fn accept(&self) -> io::Result<SocketStream> {
        match self {
            Listener::Uds(l) => l.accept().map(|(s, _)| SocketStream::Uds(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true);
                SocketStream::Tcp(s)
            }),
        }
    }
}

/// Connects to a hub, retrying while it finishes binding (workers and hub
/// race at process spawn).
pub fn connect(addr: &ListenAddr, timeout: Duration) -> io::Result<SocketStream> {
    let deadline = Instant::now() + timeout;
    loop {
        let attempt = match addr {
            ListenAddr::Uds(path) => UnixStream::connect(path).map(SocketStream::Uds),
            ListenAddr::Tcp(a) => TcpStream::connect(a.as_str()).map(|s| {
                let _ = s.set_nodelay(true);
                SocketStream::Tcp(s)
            }),
        };
        match attempt {
            Ok(s) => return Ok(s),
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

// ----- the router's socket peer -----

/// The router-side mailbox of a node hosted in another process: events are
/// encoded as `Event` frames onto the owning connection's writer queue.
pub struct RemotePeer {
    node: u64,
    tx: Sender<Vec<u8>>,
}

impl<M: Wire + Send> Mailbox<M> for RemotePeer {
    fn deliver(&self, ev: LiveEvent<M>) -> bool {
        let ev = match ev {
            LiveEvent::Start => WireEvent::Start,
            LiveEvent::Msg { from, msg } => WireEvent::Msg { from: from as u64, msg },
            LiveEvent::Crash => WireEvent::Crash,
            LiveEvent::Recover => WireEvent::Recover,
            LiveEvent::Stop => WireEvent::Stop,
        };
        self.tx.send(Frame::Event { to: self.node, ev }.to_bytes()).is_ok()
    }
}

/// Writer loop: drains payload buffers from `rx` into framed writes,
/// flushing whenever the queue goes idle (group-commit shape: bursts share
/// one syscall). Exits when every sender is gone, then signals EOF.
fn write_loop(stream: SocketStream, rx: Receiver<Vec<u8>>, counters: Arc<WireCounters>) {
    let raw = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut w = BufWriter::new(raw);
    'outer: while let Ok(first) = rx.recv() {
        let mut payload = first;
        loop {
            if write_frame(&mut w, &payload).is_err() {
                break 'outer;
            }
            counters.count_tx(payload.len());
            match rx.try_recv() {
                Ok(next) => payload = next,
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break 'outer,
            }
        }
        if w.flush().is_err() {
            break;
        }
    }
    let _ = w.flush();
    stream.shutdown_write();
}

/// What one run accumulated at the hub.
pub(crate) struct HubRun {
    pub completed: Vec<Vec<(usize, CompletedRecord)>>,
    pub net_stats: MessageStats,
    pub deliveries: Vec<DeliveryRecord>,
    pub finished_at: SimTime,
    pub wall: Duration,
    pub wire: WireStats,
}

/// The hub half of a socket run: handshakes the given connections, runs the
/// router over remote mailboxes, collects completions online, and settles
/// expired-delivery accounting from the workers' `NodeDone` reports.
///
/// `regions` covers **all** nodes (id-indexed); the workers' `Hello` frames
/// must partition exactly that id space.
pub(crate) fn run_hub_conns<M>(
    cfg: &LiveConfig,
    net: Box<dyn NetworkModel>,
    regions: Vec<Region>,
    conns: Vec<SocketStream>,
) -> io::Result<HubRun>
where
    M: Wire + Clone + Send + 'static,
{
    let start_wall = Instant::now();
    let num_nodes = regions.len();
    let counters = Arc::new(WireCounters::default());

    // Handshake: every worker declares its node set; together they must
    // cover each node exactly once.
    let mut conn_of_node: Vec<Option<usize>> = vec![None; num_nodes];
    let mut streams = Vec::with_capacity(conns.len());
    let mut scratch = Vec::new();
    for (ci, mut conn) in conns.into_iter().enumerate() {
        match read_wire_frame::<M>(&mut conn, &mut scratch)? {
            Frame::Hello { nodes, .. } => {
                for id in nodes {
                    let id = id as usize;
                    if id >= num_nodes || conn_of_node[id].is_some() {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("worker hello claims node {id} twice or out of range"),
                        ));
                    }
                    conn_of_node[id] = Some(ci);
                }
            }
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "expected Hello as a connection's first frame",
                ))
            }
        }
        streams.push(conn);
    }
    if let Some(missing) = conn_of_node.iter().position(|c| c.is_none()) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("no worker hosts node {missing}"),
        ));
    }
    let conn_of_node: Vec<usize> = conn_of_node.into_iter().map(|c| c.unwrap()).collect();

    // All workers are connected: anchor the clock and release them.
    let clock = LiveClock::start(cfg.time_scale);
    let welcome = Frame::<M>::Welcome {
        epoch_unix_nanos: clock.unix_anchor_nanos(),
        time_scale: clock.scale(),
    }
    .to_bytes();
    for conn in &mut streams {
        write_frame(conn, &welcome)?;
        conn.flush()?;
    }

    // Per-connection writer and reader threads.
    let (net_tx, net_rx) = mpsc::channel::<Outgoing<M>>();
    let (rec_tx, rec_rx) = mpsc::channel::<(NodeId, usize, CompletedRecord)>();
    let (done_tx, done_rx) = mpsc::channel::<(NodeId, u64)>();
    let mut writer_txs = Vec::with_capacity(streams.len());
    let mut io_threads = Vec::new();
    for stream in streams {
        let (wtx, wrx) = mpsc::channel::<Vec<u8>>();
        writer_txs.push(wtx);
        let wcounters = Arc::clone(&counters);
        let wstream = stream.try_clone()?;
        io_threads.push(std::thread::spawn(move || write_loop(wstream, wrx, wcounters)));
        let rcounters = Arc::clone(&counters);
        let (net_tx, rec_tx, done_tx) = (net_tx.clone(), rec_tx.clone(), done_tx.clone());
        io_threads.push(std::thread::spawn(move || {
            let mut stream = stream;
            let mut buf = Vec::new();
            while let Ok(frame) = read_wire_frame::<M>(&mut stream, &mut buf) {
                rcounters.count_rx(buf.len());
                match frame {
                    Frame::Out { from, to, extra_us, msg } => {
                        let _ = net_tx.send(Outgoing {
                            from: from as usize,
                            to: to as usize,
                            extra: SimDuration::from_micros(extra_us),
                            msg,
                        });
                    }
                    Frame::Completion { node, stream: svc, rec } => {
                        let _ = rec_tx.send((node as usize, svc as usize, rec));
                    }
                    Frame::NodeDone { node, expired } => {
                        let _ = done_tx.send((node as usize, expired));
                    }
                    // Handshake frames after the handshake are a protocol
                    // error; drop the connection by exiting the reader.
                    Frame::Hello { .. } | Frame::Welcome { .. } | Frame::Event { .. } => break,
                }
            }
        }));
    }
    drop(net_tx);
    drop(rec_tx);
    drop(done_tx);

    // Remote mailboxes, then the standard router + online collector.
    let mailboxes: Vec<Arc<dyn Mailbox<M>>> = (0..num_nodes)
        .map(|id| {
            Arc::new(RemotePeer { node: id as u64, tx: writer_txs[conn_of_node[id]].clone() })
                as Arc<dyn Mailbox<M>>
        })
        .collect();
    let router_stop = Arc::new(AtomicBool::new(false));
    let router = {
        let faults = cfg.faults.clone();
        let mailboxes = mailboxes.clone();
        let stop = Arc::clone(&router_stop);
        let (seed, record) = (cfg.seed, cfg.record_deliveries);
        std::thread::spawn(move || {
            run_router(clock, net, faults, regions, mailboxes, net_rx, seed, record, stop)
        })
    };
    for mb in &mailboxes {
        mb.deliver(LiveEvent::Start);
    }

    let mut completed: Vec<Vec<(usize, CompletedRecord)>> = vec![Vec::new(); num_nodes];
    loop {
        if clock.sim_now() >= cfg.stop_at {
            break;
        }
        let wait = clock.wall_until(cfg.stop_at).min(Duration::from_millis(50));
        match rec_rx.recv_timeout(wait) {
            Ok((id, stream, rec)) => completed[id].push((stream, rec)),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    let finished_at = clock.sim_now();

    for mb in &mailboxes {
        mb.deliver(LiveEvent::Stop);
    }
    router_stop.store(true, Ordering::Relaxed);
    let report = router.join().expect("live router panicked");
    // Dropping every RemotePeer sender lets the writer threads drain, flush,
    // and shut the write halves down — which is what tells the workers the
    // hub is done once their own nodes have stopped.
    drop(mailboxes);
    drop(writer_txs);

    // Workers close their write halves after sending one NodeDone per node;
    // the reader threads then see EOF, disconnecting these channels.
    for (id, stream, rec) in rec_rx.iter() {
        completed[id].push((stream, rec));
    }
    let mut expired_total = 0u64;
    let mut done = 0usize;
    for (_, expired) in done_rx.iter() {
        expired_total += expired;
        done += 1;
    }
    if done != num_nodes {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("only {done}/{num_nodes} nodes reported NodeDone"),
        ));
    }
    for t in io_threads {
        let _ = t.join();
    }

    let mut stats = report.stats;
    stats.delivered = stats.delivered.saturating_sub(expired_total);
    stats.expired = expired_total;
    Ok(HubRun {
        completed,
        net_stats: stats,
        deliveries: report.deliveries,
        finished_at,
        wall: start_wall.elapsed(),
        wire: counters.snapshot(),
    })
}

/// What the worker half returns (useful in-process, discarded by worker
/// processes). Expired-delivery counts travel in `NodeDone` frames, so the
/// hub owns that accounting on every path.
pub(crate) struct WorkerRun<N> {
    pub nodes: Vec<(NodeId, N)>,
}

/// The worker half of a socket run: hosts `nodes` (with their global ids)
/// as one thread each, bridging their mailboxes and outboxes over `stream`.
pub(crate) fn run_worker_conn<M, N>(
    stream: SocketStream,
    worker: u64,
    nodes: Vec<(NodeId, N)>,
    seed: u64,
    epsilon: SimDuration,
) -> io::Result<WorkerRun<N>>
where
    M: Wire + Clone + Send + 'static,
    N: LiveNode<M> + 'static,
{
    // Handshake: declare our nodes, receive the shared clock anchor.
    let mut conn = stream;
    let hello = Frame::<M>::Hello {
        worker,
        nodes: nodes.iter().map(|&(id, _)| id as u64).collect(),
    };
    write_frame(&mut conn, &hello.to_bytes())?;
    conn.flush()?;
    let mut scratch = Vec::new();
    let clock = match read_wire_frame::<M>(&mut conn, &mut scratch)? {
        Frame::Welcome { epoch_unix_nanos, time_scale } => {
            LiveClock::from_unix_anchor(epoch_unix_nanos, time_scale)
        }
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "expected Welcome as the handshake reply",
            ))
        }
    };

    // One writer thread serializes everything we send; a demux thread fans
    // incoming events out to the node mailboxes.
    let counters = Arc::new(WireCounters::default());
    let (writer_tx, writer_rx) = mpsc::channel::<Vec<u8>>();
    let writer = {
        let stream = conn.try_clone()?;
        let counters = Arc::clone(&counters);
        std::thread::spawn(move || write_loop(stream, writer_rx, counters))
    };

    let (net_tx, net_rx) = mpsc::channel::<Outgoing<M>>();
    let (rec_tx, rec_rx) = mpsc::channel::<(NodeId, usize, CompletedRecord)>();
    let mut mailbox_of: HashMap<u64, Sender<LiveEvent<M>>> = HashMap::new();
    let mut node_threads = Vec::with_capacity(nodes.len());
    for (id, node) in nodes {
        let (tx, rx) = mpsc::channel::<LiveEvent<M>>();
        mailbox_of.insert(id as u64, tx);
        let (net_tx, rec_tx) = (net_tx.clone(), rec_tx.clone());
        node_threads.push((
            id,
            std::thread::spawn(move || run_node(node, id, clock, seed, epsilon, rx, net_tx, rec_tx)),
        ));
    }
    drop(net_tx);
    drop(rec_tx);

    let demux = std::thread::spawn(move || {
        let mut conn = conn;
        let mut buf = Vec::new();
        while let Ok(frame) = read_wire_frame::<M>(&mut conn, &mut buf) {
            if let Frame::Event { to, ev } = frame {
                let Some(mb) = mailbox_of.get(&to) else { continue };
                let ev = match ev {
                    WireEvent::Start => LiveEvent::Start,
                    WireEvent::Msg { from, msg } => LiveEvent::Msg { from: from as usize, msg },
                    WireEvent::Crash => LiveEvent::Crash,
                    WireEvent::Recover => LiveEvent::Recover,
                    WireEvent::Stop => LiveEvent::Stop,
                };
                let _ = mb.send(ev);
            }
        }
        // EOF or error: dropping the senders unblocks any node still
        // waiting on its mailbox (the hub is gone).
    });

    // Uplink: forward sends and completions as frames until the node
    // threads drop their channel ends.
    let up_out = {
        let writer_tx = writer_tx.clone();
        std::thread::spawn(move || {
            for o in net_rx.iter() {
                let frame = Frame::Out {
                    from: o.from as u64,
                    to: o.to as u64,
                    extra_us: o.extra.as_micros(),
                    msg: o.msg,
                };
                if writer_tx.send(frame.to_bytes()).is_err() {
                    break;
                }
            }
        })
    };
    let up_rec = {
        let writer_tx = writer_tx.clone();
        std::thread::spawn(move || {
            for (id, stream, rec) in rec_rx.iter() {
                let frame =
                    Frame::<M>::Completion { node: id as u64, stream: stream as u64, rec };
                if writer_tx.send(frame.to_bytes()).is_err() {
                    break;
                }
            }
        })
    };

    // Nodes exit on their Stop events; report each and wind down.
    let mut out_nodes = Vec::with_capacity(node_threads.len());
    let mut per_node_expired = Vec::with_capacity(node_threads.len());
    for (id, t) in node_threads {
        let r = t.join().expect("live node thread panicked");
        per_node_expired.push((id, r.expired));
        out_nodes.push((id, r.node));
    }
    let _ = up_out.join();
    let _ = up_rec.join();
    for (id, node_expired) in per_node_expired {
        let frame = Frame::<M>::NodeDone { node: id as u64, expired: node_expired };
        let _ = writer_tx.send(frame.to_bytes());
    }
    drop(writer_tx);
    let _ = writer.join();
    let _ = demux.join();
    Ok(WorkerRun { nodes: out_nodes })
}

// ----- multi-process entry points -----

/// What a multi-process run produced at the hub. Node state machines live
/// (and die) in the worker processes; certification needs only the
/// completion stream, which is collected here.
pub struct MultiprocOutcome {
    /// Completions per node in completion order, tagged with the service
    /// stream.
    pub completed: Vec<Vec<(usize, CompletedRecord)>>,
    /// Message counters with engine semantics.
    pub net_stats: MessageStats,
    /// The delivery log (empty unless recording was enabled).
    pub deliveries: Vec<DeliveryRecord>,
    /// Simulated time when the run stopped.
    pub finished_at: SimTime,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Socket traffic counters.
    pub wire: WireStats,
}

/// Runs the hub of a multi-process cluster: accepts `workers` connections
/// on `listener`, then routes and collects until `cfg.stop_at`.
///
/// `regions` is the full id-indexed region list (the same one the workers
/// derive from the shared scenario spec).
pub fn run_hub_multiproc<M>(
    cfg: &LiveConfig,
    net: Box<dyn NetworkModel>,
    regions: Vec<usize>,
    listener: Listener,
    workers: usize,
) -> io::Result<MultiprocOutcome>
where
    M: Wire + Clone + Send + 'static,
{
    let mut conns = Vec::with_capacity(workers);
    for _ in 0..workers {
        conns.push(listener.accept()?);
    }
    let regions = regions.into_iter().map(Region).collect();
    let run = run_hub_conns::<M>(cfg, net, regions, conns)?;
    Ok(MultiprocOutcome {
        completed: run.completed,
        net_stats: run.net_stats,
        deliveries: run.deliveries,
        finished_at: run.finished_at,
        wall: run.wall,
        wire: run.wire,
    })
}

/// Runs one worker process of a multi-process cluster.
///
/// `nodes` is the **full** deterministic node list of the scenario (every
/// worker builds it identically from the shared spec, so ids line up); this
/// worker keeps and hosts the ids with `id % num_workers == worker`.
pub fn run_worker_multiproc<M, N>(
    addr: &ListenAddr,
    worker: usize,
    num_workers: usize,
    nodes: Vec<(N, usize)>,
    seed: u64,
    epsilon: SimDuration,
) -> io::Result<()>
where
    M: Wire + Clone + Send + 'static,
    N: LiveNode<M> + 'static,
{
    assert!(num_workers > 0 && worker < num_workers, "worker index out of range");
    let mine: Vec<(NodeId, N)> = nodes
        .into_iter()
        .enumerate()
        .filter(|(id, _)| id % num_workers == worker)
        .map(|(id, (n, _region))| (id, n))
        .collect();
    let stream = connect(addr, Duration::from_secs(10))?;
    run_worker_conn::<M, N>(stream, worker as u64, mine, seed, epsilon)?;
    Ok(())
}
