//! Live-plane deployment of the Gryff-style protocol.
//!
//! Mirrors `regular_gryff::harness::run_gryff` node for node — replicas
//! first (ids `0..num_replicas`), then clients — on OS threads with the
//! scaled wall clock. The protocol crate runs unmodified.

use std::time::Duration;

use regular_core::OpKind;
use regular_gryff::prelude::*;
use regular_gryff::replica::{GryffReplica, ReplicaStats};
use regular_session::{CompletedRecord, SessionRunner, SessionStats};
use regular_sim::{LatencyMatrix, LatencyRecorder, MessageStats, NodeId, SimDuration, SimTime};

use crate::exec::{run_live_transport, LiveConfig, LiveNode, LiveOutcome};
use crate::net::WireStats;
use crate::transport::{DeliveryRecord, TransportKind};

impl LiveNode<GryffMsg> for GryffNode {
    fn drain_completions(&mut self, out: &mut Vec<(usize, CompletedRecord)>) {
        if let GryffNode::Client(c) = self {
            out.extend(c.completed.drain(..).map(|r| (0, r)));
        }
    }
}

/// Specification of a live deployment run (the live-plane analogue of
/// [`GryffClusterSpec`]).
pub struct GryffLiveSpec {
    /// Protocol and topology configuration (including the fault schedule).
    pub config: GryffConfig,
    /// Network model.
    pub net: LatencyMatrix,
    /// Random seed.
    pub seed: u64,
    /// Client nodes.
    pub clients: Vec<GryffClientSpec>,
    /// Clients stop issuing new operations at this instant.
    pub stop_issuing_at: SimTime,
    /// Extra time to let in-flight operations drain.
    pub drain: SimDuration,
    /// Measurements only cover completions at or after this instant.
    pub measure_from: SimTime,
    /// Simulated microseconds per wall microsecond.
    pub time_scale: u64,
    /// Record the transport's delivery log.
    pub record_deliveries: bool,
    /// Which transport carries the messages (mpsc, UDS, or TCP; see
    /// [`TransportKind`]).
    pub transport: TransportKind,
}

/// The outcome of a live deployment run.
pub struct GryffLiveResult {
    /// Protocol variant that was run.
    pub mode: Mode,
    /// Read latencies (simulated time).
    pub read_latencies: LatencyRecorder,
    /// Write latencies (simulated time).
    pub write_latencies: LatencyRecorder,
    /// Read-modify-write latencies (simulated time).
    pub rmw_latencies: LatencyRecorder,
    /// Completed operations per client node, in completion order.
    pub completed: Vec<(NodeId, Vec<CompletedRecord>)>,
    /// Throughput over the measurement window, in simulated op/s.
    pub throughput: f64,
    /// Measured completions per wall-clock second.
    pub wall_throughput: f64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Aggregated client statistics.
    pub client_stats: GryffClientStats,
    /// Per-replica statistics.
    pub replica_stats: Vec<ReplicaStats>,
    /// Simulated time when the run stopped.
    pub finished_at: SimTime,
    /// Full message counters.
    pub net_stats: MessageStats,
    /// The transport's delivery log (empty unless recording was enabled).
    pub deliveries: Vec<DeliveryRecord>,
    /// Socket traffic counters (all zeros on the mpsc transport).
    pub wire: WireStats,
    /// Aggregated session-scheduler statistics across all clients
    /// (arrivals/shed matter for open-loop runs).
    pub session_stats: SessionStats,
}

/// Builds the live deployment's node list — replicas first (ids
/// `0..num_replicas`), then clients — deterministically from the spec
/// parts, for the same reason as
/// [`build_spanner_nodes`](crate::spanner_live::build_spanner_nodes):
/// multi-process workers rebuild it identically and host a partition.
pub fn build_gryff_nodes(
    config: &GryffConfig,
    clients: Vec<GryffClientSpec>,
    stop_issuing_at: SimTime,
) -> Vec<(GryffNode, usize)> {
    let mut nodes: Vec<(GryffNode, usize)> = Vec::new();
    let mut replica_ids = Vec::new();
    for i in 0..config.num_replicas {
        replica_ids.push(nodes.len());
        nodes.push((
            GryffNode::Replica(Box::new(GryffReplica::new(config, i))),
            config.replica_regions[i],
        ));
    }
    for c in clients {
        let cfg = client_config(config, replica_ids.clone());
        let runner =
            SessionRunner::new(GryffService::new(cfg), c.sessions, stop_issuing_at, c.workload);
        nodes.push((GryffNode::Client(Box::new(runner)), c.region));
    }
    nodes
}

/// Builds and runs a deployment on the live plane.
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn run_gryff_live(spec: GryffLiveSpec) -> GryffLiveResult {
    let GryffLiveSpec {
        config,
        net,
        seed,
        clients,
        stop_issuing_at,
        drain,
        measure_from,
        time_scale,
        record_deliveries,
        transport,
    } = spec;
    config.validate().expect("invalid Gryff configuration");

    let nodes = build_gryff_nodes(&config, clients, stop_issuing_at);
    let replica_count = config.num_replicas;
    let client_ids: Vec<NodeId> = (replica_count..nodes.len()).collect();

    let live_cfg = LiveConfig {
        seed,
        faults: config.faults.clone(),
        truetime_epsilon: SimDuration::ZERO,
        time_scale,
        stop_at: stop_issuing_at + drain,
        record_deliveries,
    };
    let outcome: LiveOutcome<GryffNode> =
        run_live_transport(live_cfg, Box::new(net), nodes, transport);
    let LiveOutcome { nodes, completed, net_stats, deliveries, finished_at, wall, wire } = outcome;

    let mut read = LatencyRecorder::new();
    let mut write = LatencyRecorder::new();
    let mut rmw = LatencyRecorder::new();
    let mut client_stats = GryffClientStats::default();
    let mut per_client = Vec::new();
    let mut window_count = 0u64;
    let mut measured = 0u64;
    for (&id, recs) in client_ids.iter().zip(&completed[replica_count..]) {
        let recs: Vec<CompletedRecord> = recs.iter().map(|(_, r)| r.clone()).collect();
        for op in &recs {
            if op.finish >= measure_from {
                let latency = op.latency();
                match op.kind {
                    OpKind::Read { .. } => read.record(latency),
                    OpKind::Write { .. } => write.record(latency),
                    OpKind::Rmw { .. } => rmw.record(latency),
                    _ => {}
                }
                measured += 1;
                if op.finish < stop_issuing_at {
                    window_count += 1;
                }
            }
        }
        per_client.push((id, recs));
    }
    let mut replica_stats = Vec::new();
    let mut session_stats = SessionStats::default();
    for node in nodes {
        match node {
            GryffNode::Replica(r) => replica_stats.push(r.stats),
            GryffNode::Client(c) => {
                let s = &c.service.stats;
                client_stats.reads += s.reads;
                client_stats.slow_reads += s.slow_reads;
                client_stats.writes += s.writes;
                client_stats.rmws += s.rmws;
                client_stats.fences += s.fences;
                client_stats.deps_piggybacked += s.deps_piggybacked;
                client_stats.timeout_retries += s.timeout_retries;
                session_stats.merge(&c.stats);
            }
        }
    }

    let window = stop_issuing_at.since(measure_from).as_micros();
    let throughput =
        if window > 0 { window_count as f64 * 1_000_000.0 / window as f64 } else { 0.0 };
    let wall_secs = wall.as_secs_f64();
    let wall_throughput = if wall_secs > 0.0 { measured as f64 / wall_secs } else { 0.0 };

    GryffLiveResult {
        mode: config.mode,
        read_latencies: read,
        write_latencies: write,
        rmw_latencies: rmw,
        completed: per_client,
        throughput,
        wall_throughput,
        wall,
        client_stats,
        replica_stats,
        finished_at,
        net_stats,
        deliveries,
        wire,
        session_stats,
    }
}
