//! Arena-backed indexed event queues for the discrete-event engine.
//!
//! The engine's hot loop is push/pop on a priority queue keyed by
//! `(time, seq)`. The seed implementation was a `BinaryHeap` of whole
//! event entries, which memcpy'd every payload (protocol messages carry
//! `Vec`s of writes) `O(log n)` times per sift. This module rebuilds the
//! queue the way PR 1 rebuilt the checker — on dense indices:
//!
//! * **Arena** ([`EventId`]): payloads are written into a slab slot exactly
//!   once, at [`SimQueue::alloc`], and moved out exactly once, at
//!   [`SimQueue::pop`]. Nothing is cloned in between; the only cloning API
//!   is [`SimQueue::alloc_duplicate`], which the engine uses for the one
//!   path that semantically *is* a copy (`Delivery::Duplicate`).
//! * **Calendar time wheel**: near-future events (the common case — message
//!   latencies and service times are micro- to milliseconds) land in one of
//!   [`NUM_BUCKETS`] buckets of [`BUCKET_WIDTH_US`] µs; each bucket holds
//!   compact 24-byte `(time, seq, slot)` refs, scanned linearly on pop
//!   (buckets hold a handful of events in practice).
//! * **Heap fallback for far timers**: events beyond the wheel's span
//!   (commit timeouts, crash windows seconds away) overflow into a small
//!   binary heap of refs and are folded back into the wheel as its horizon
//!   advances past them.
//!
//! Pops are in strict global `(time, seq)` order — the exact order the seed
//! heap produced — so a fixed seed replays to a byte-identical history on
//! either implementation. That equivalence is pinned by the differential
//! tests below and in `tests/queue_determinism.rs`, against
//! [`QueueKind::ReferenceHeap`], a retained reference implementation that
//! reproduces the seed engine's heap-of-whole-entries layout (and its cost
//! profile, which is what `benches/engine_hotpath.rs` measures against).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Which event-queue implementation an engine runs on.
///
/// Selected through `EngineConfig::queue`; harness configs surface it so
/// differential tests and the `engine_hotpath` bench can A/B full protocol
/// runs. Both implementations pop in identical `(time, seq)` order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// The arena + calendar-wheel queue (the default).
    #[default]
    Indexed,
    /// The seed engine's `BinaryHeap`-of-whole-entries layout, retained as
    /// the reference for differential tests and benchmarks.
    ReferenceHeap,
}

/// Handle to an event payload parked in the queue's arena.
///
/// Returned by [`SimQueue::alloc`]; the payload does nothing until the id is
/// [`SimQueue::schedule`]d. The type is `#[must_use]` so a call site cannot
/// silently allocate (or clone) a payload and drop the handle — the mistake
/// that used to reintroduce per-message clones.
#[must_use = "an allocated event does nothing until it is scheduled"]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventId(u32);

/// Bucket width of the calendar wheel, in microseconds (64 µs — the scale
/// of service times and single-DC latencies, so dense workloads spread over
/// many buckets instead of piling into one).
const BUCKET_SHIFT: u32 = 6;
/// Bucket width of the calendar wheel, in microseconds.
pub const BUCKET_WIDTH_US: u64 = 1 << BUCKET_SHIFT;
/// Number of wheel buckets; the wheel spans `NUM_BUCKETS * BUCKET_WIDTH_US`
/// µs (~0.26 s) of near future — past every WAN latency and commit wait —
/// beyond which events overflow to the heap.
pub const NUM_BUCKETS: usize = 4_096;
/// Words of the bucket-occupancy bitmap.
const OCCUPANCY_WORDS: usize = NUM_BUCKETS / 64;

/// A compact reference to an arena slot, ordered by `(time, seq)`.
///
/// `target` packs the event's destination node and the power-event flag
/// (bit 31), so the engine can route busy-deferral decisions from the ref
/// alone — [`SimQueue::defer_head`] never touches the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EventRef {
    time: SimTime,
    seq: u64,
    slot: u32,
    target: u32,
}

/// Bit 31 of a packed target: set for power (crash/recover) events, which
/// bypass the CPU/busy model.
const POWER_BIT: u32 = 1 << 31;

fn pack_target(node: usize, power: bool) -> u32 {
    let node = u32::try_from(node).expect("node id fits u31");
    assert!(node & POWER_BIT == 0, "node id fits u31");
    node | if power { POWER_BIT } else { 0 }
}

/// The arena + calendar-wheel queue.
///
/// Buckets are small binary heaps of 24-byte [`EventRef`]s: radix
/// bucketing does the coarse (64 µs) ordering, the per-bucket heap the fine
/// ordering, so even pathological buckets (a saturated node deferring
/// hundreds of events to the same busy instant) cost `O(log k)` per
/// operation — and nothing ever moves a payload.
struct IndexedQueue<T> {
    /// Slab of payloads; `None` slots are free.
    slots: Vec<Option<T>>,
    /// Free slot ids, reused LIFO.
    free: Vec<u32>,
    /// The wheel: bucket `abs % NUM_BUCKETS` holds refs whose absolute
    /// bucket index is in `[min_abs, min_abs + NUM_BUCKETS)`.
    wheel: Vec<BinaryHeap<Reverse<EventRef>>>,
    /// One bit per bucket: set iff the bucket is non-empty. Lets the cursor
    /// leap over empty stretches with `trailing_zeros` instead of walking
    /// them bucket by bucket.
    occupancy: [u64; OCCUPANCY_WORDS],
    /// Absolute bucket index of the wheel cursor (earliest live bucket).
    min_abs: u64,
    /// Events beyond the wheel horizon, by `(time, seq)`.
    overflow: BinaryHeap<Reverse<EventRef>>,
    /// Scheduled refs currently in the wheel (not the overflow).
    wheel_len: usize,
    /// Total scheduled refs.
    len: usize,
}

impl<T> IndexedQueue<T> {
    fn new() -> Self {
        IndexedQueue {
            slots: Vec::new(),
            free: Vec::new(),
            wheel: (0..NUM_BUCKETS).map(|_| BinaryHeap::new()).collect(),
            occupancy: [0; OCCUPANCY_WORDS],
            min_abs: 0,
            overflow: BinaryHeap::new(),
            wheel_len: 0,
            len: 0,
        }
    }

    #[inline]
    fn mark_occupied(&mut self, bucket: usize) {
        self.occupancy[bucket / 64] |= 1 << (bucket % 64);
    }

    #[inline]
    fn mark_empty(&mut self, bucket: usize) {
        self.occupancy[bucket / 64] &= !(1 << (bucket % 64));
    }

    /// The first occupied bucket at or after `bucket(min_abs)`, in circular
    /// order, as an offset from the cursor (`None` if the wheel is empty).
    fn next_occupied_offset(&self) -> Option<u64> {
        if self.wheel_len == 0 {
            return None;
        }
        let start = (self.min_abs % NUM_BUCKETS as u64) as usize;
        let (start_word, start_bit) = (start / 64, start % 64);
        // First word: mask off bits before the cursor.
        let masked = self.occupancy[start_word] & (!0u64 << start_bit);
        if masked != 0 {
            return Some(masked.trailing_zeros() as u64 - start_bit as u64);
        }
        // Subsequent words, wrapping circularly; the final step re-reads the
        // first word, whose pre-cursor bits are buckets almost a full
        // rotation ahead (still in-span).
        for step in 1..=OCCUPANCY_WORDS {
            let word = self.occupancy[(start_word + step) % OCCUPANCY_WORDS];
            if word != 0 {
                let bit = word.trailing_zeros() as u64;
                return Some(step as u64 * 64 - start_bit as u64 + bit);
            }
        }
        unreachable!("wheel_len > 0 but no occupied bucket found")
    }

    fn alloc(&mut self, payload: T) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(payload);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("event arena exceeds u32 slots");
                self.slots.push(Some(payload));
                slot
            }
        }
    }

    /// Absolute wheel bucket of an instant.
    fn abs_bucket(time: SimTime) -> u64 {
        time.as_micros() >> BUCKET_SHIFT
    }

    fn schedule(&mut self, entry: EventRef) {
        let abs = Self::abs_bucket(entry.time);
        if abs >= self.min_abs + NUM_BUCKETS as u64 {
            self.overflow.push(Reverse(entry));
        } else {
            // An entry at or before the cursor's bucket (the engine only
            // schedules at or after `now`) joins the cursor bucket; pops
            // compare full `(time, seq)` keys, so ordering is unaffected.
            let abs = abs.max(self.min_abs);
            let bucket = (abs % NUM_BUCKETS as u64) as usize;
            self.wheel[bucket].push(Reverse(entry));
            self.mark_occupied(bucket);
            self.wheel_len += 1;
        }
        self.len += 1;
    }

    /// Folds overflow events that now fall inside the wheel horizon back
    /// into their buckets.
    fn drain_overflow(&mut self) {
        let horizon = self.min_abs + NUM_BUCKETS as u64;
        while let Some(&Reverse(entry)) = self.overflow.peek() {
            if Self::abs_bucket(entry.time) >= horizon {
                break;
            }
            let entry = self.overflow.pop().expect("peeked entry exists").0;
            let bucket = (Self::abs_bucket(entry.time) % NUM_BUCKETS as u64) as usize;
            self.wheel[bucket].push(Reverse(entry));
            self.mark_occupied(bucket);
            self.wheel_len += 1;
        }
    }

    /// Locates the bucket holding the minimum `(time, seq)` ref, advancing
    /// the cursor past empty buckets (and leaping straight to the overflow's
    /// first bucket when the wheel is empty). Returns `None` on an empty
    /// queue.
    fn min_bucket(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        if self.wheel_len == 0 {
            // Everything lives past the horizon: leap the wheel to the
            // earliest overflow event's bucket.
            let &Reverse(first) = self.overflow.peek().expect("len > 0");
            self.min_abs = Self::abs_bucket(first.time);
            self.drain_overflow();
        }
        // Leap the cursor to the first occupied bucket, then restore the
        // overflow invariant for the advanced horizon (folded events always
        // land at or after the new cursor, so one leap settles it).
        let offset = self.next_occupied_offset().expect("wheel_len > 0");
        if offset > 0 {
            self.min_abs += offset;
            self.drain_overflow();
        }
        Some((self.min_abs % NUM_BUCKETS as u64) as usize)
    }

    fn peek_head(&mut self) -> Option<EventRef> {
        let bucket = self.min_bucket()?;
        self.wheel[bucket].peek().map(|&Reverse(e)| e)
    }

    /// Removes and returns the head ref, leaving its payload slot in place.
    fn pop_head_ref(&mut self) -> Option<EventRef> {
        let bucket = self.min_bucket()?;
        let Reverse(entry) = self.wheel[bucket].pop().expect("min bucket is non-empty");
        if self.wheel[bucket].is_empty() {
            self.mark_empty(bucket);
        }
        self.wheel_len -= 1;
        self.len -= 1;
        Some(entry)
    }

    fn pop(&mut self) -> Option<(SimTime, T)> {
        let entry = self.pop_head_ref()?;
        let payload = self.slots[entry.slot as usize].take().expect("scheduled slot is occupied");
        self.free.push(entry.slot);
        Some((entry.time, payload))
    }
}

/// The seed engine's queue layout, retained as the differential-testing and
/// benchmarking reference: a binary heap whose entries carry the whole
/// payload (so every sift moves it).
struct HeapEntry<T> {
    time: SimTime,
    seq: u64,
    target: u32,
    payload: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Reference queue: payloads allocated into a small pending list, moved into
/// the heap at schedule time (reproducing the seed engine's cost profile).
struct HeapQueue<T> {
    pending: Vec<(u32, T)>,
    next_pending: u32,
    heap: BinaryHeap<Reverse<HeapEntry<T>>>,
}

impl<T> HeapQueue<T> {
    fn new() -> Self {
        HeapQueue { pending: Vec::new(), next_pending: 0, heap: BinaryHeap::new() }
    }

    fn alloc(&mut self, payload: T) -> u32 {
        let id = self.next_pending;
        self.next_pending = self.next_pending.wrapping_add(1);
        self.pending.push((id, payload));
        id
    }

    fn take_pending(&mut self, id: u32) -> T {
        let pos = self
            .pending
            .iter()
            .position(|(p, _)| *p == id)
            .expect("event id was allocated and not yet scheduled");
        self.pending.swap_remove(pos).1
    }
}

/// The engine-facing event queue: one arena-id API over both implementations.
///
/// The lifecycle of every event is `alloc` (payload moves into the queue
/// exactly once) then `schedule` (the event gets its tie-breaking sequence
/// number, in call order) then `pop` (payload moves out). Sequence numbers
/// are assigned at `schedule` time, so for an identical sequence of calls
/// both [`QueueKind`]s pop in the identical global `(time, seq)` order.
pub struct SimQueue<T> {
    inner: QueueImpl<T>,
    /// Tie-breaking sequence counter, assigned at `schedule` time. It lives
    /// here (not per implementation) so both kinds share the exact
    /// assignment discipline.
    seq: u64,
}

// One queue exists per engine, so the variants' inline-size difference (the
// wheel's occupancy bitmap lives inline) costs nothing per event.
#[allow(clippy::large_enum_variant)]
enum QueueImpl<T> {
    Indexed(IndexedQueue<T>),
    Heap(HeapQueue<T>),
}

impl<T> SimQueue<T> {
    /// Creates an empty queue of the given kind.
    pub fn new(kind: QueueKind) -> Self {
        let inner = match kind {
            QueueKind::Indexed => QueueImpl::Indexed(IndexedQueue::new()),
            QueueKind::ReferenceHeap => QueueImpl::Heap(HeapQueue::new()),
        };
        SimQueue { inner, seq: 0 }
    }

    /// The kind this queue was created with.
    pub fn kind(&self) -> QueueKind {
        match &self.inner {
            QueueImpl::Indexed(_) => QueueKind::Indexed,
            QueueImpl::Heap(_) => QueueKind::ReferenceHeap,
        }
    }

    /// Parks `payload` in the arena and returns its handle. The payload is
    /// inert until [`SimQueue::schedule`] is called with the handle.
    pub fn alloc(&mut self, payload: T) -> EventId {
        match &mut self.inner {
            QueueImpl::Indexed(q) => EventId(q.alloc(payload)),
            QueueImpl::Heap(q) => EventId(q.alloc(payload)),
        }
    }

    /// Clones the (allocated but not yet scheduled) payload behind `of` into
    /// a fresh arena slot — the only cloning path in the queue, used by the
    /// engine exclusively for `Delivery::Duplicate`.
    pub fn alloc_duplicate(&mut self, of: EventId) -> EventId
    where
        T: Clone,
    {
        match &mut self.inner {
            QueueImpl::Indexed(q) => {
                let copy =
                    q.slots[of.0 as usize].clone().expect("duplicated event must be allocated");
                EventId(q.alloc(copy))
            }
            QueueImpl::Heap(q) => {
                let copy = q
                    .pending
                    .iter()
                    .find(|(p, _)| *p == of.0)
                    .map(|(_, payload)| payload.clone())
                    .expect("duplicated event must be pending");
                EventId(q.alloc(copy))
            }
        }
    }

    /// Schedules an allocated event at `time`, assigning it the next
    /// tie-breaking sequence number (same-instant events pop in schedule
    /// order). `node` is the destination node and `power` marks
    /// crash/recover events; both ride on the queue ref so the engine can
    /// answer "who is this for?" — and defer it — without reading the
    /// payload.
    pub fn schedule(&mut self, time: SimTime, id: EventId, node: usize, power: bool) {
        let seq = self.seq;
        self.seq += 1;
        let target = pack_target(node, power);
        match &mut self.inner {
            QueueImpl::Indexed(q) => q.schedule(EventRef { time, seq, slot: id.0, target }),
            QueueImpl::Heap(q) => {
                let payload = q.take_pending(id.0);
                q.heap.push(Reverse(HeapEntry { time, seq, target, payload }));
            }
        }
    }

    /// Number of scheduled (not yet popped) events.
    pub fn len(&self) -> usize {
        match &self.inner {
            QueueImpl::Indexed(q) => q.len,
            QueueImpl::Heap(q) => q.heap.len(),
        }
    }

    /// True if no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The instant of the earliest scheduled event, without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.peek_head().map(|(time, _, _)| time)
    }

    /// The `(time, node, power)` routing header of the earliest scheduled
    /// event, without removing it.
    pub fn peek_head(&mut self) -> Option<(SimTime, usize, bool)> {
        let (time, target) = match &mut self.inner {
            QueueImpl::Indexed(q) => q.peek_head().map(|e| (e.time, e.target))?,
            QueueImpl::Heap(q) => q.heap.peek().map(|Reverse(e)| (e.time, e.target))?,
        };
        Some((time, (target & !POWER_BIT) as usize, target & POWER_BIT != 0))
    }

    /// Reschedules the earliest event at `new_time` with a fresh sequence
    /// number — the busy-deferral path. The indexed queue moves only the
    /// 24-byte ref; the reference heap pops and re-pushes the whole entry,
    /// which is exactly what the seed engine's deferral did.
    ///
    /// # Panics
    ///
    /// Panics if the queue is empty.
    pub fn defer_head(&mut self, new_time: SimTime) {
        let seq = self.seq;
        self.seq += 1;
        match &mut self.inner {
            QueueImpl::Indexed(q) => {
                let entry = q.pop_head_ref().expect("defer_head on an empty queue");
                q.schedule(EventRef { time: new_time, seq, ..entry });
            }
            QueueImpl::Heap(q) => {
                let Reverse(entry) = q.heap.pop().expect("defer_head on an empty queue");
                q.heap.push(Reverse(HeapEntry { time: new_time, seq, ..entry }));
            }
        }
    }

    /// Removes and returns the earliest scheduled event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        match &mut self.inner {
            QueueImpl::Indexed(q) => q.pop(),
            QueueImpl::Heap(q) => q.heap.pop().map(|Reverse(e)| (e.time, e.payload)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn push(q: &mut SimQueue<u64>, time_us: u64, payload: u64) {
        let id = q.alloc(payload);
        q.schedule(SimTime::from_micros(time_us), id, 0, false);
    }

    fn drain(q: &mut SimQueue<u64>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some((t, p)) = q.pop() {
            out.push((t.as_micros(), p));
        }
        out
    }

    #[test]
    fn pops_in_time_order_with_schedule_order_ties() {
        for kind in [QueueKind::Indexed, QueueKind::ReferenceHeap] {
            let mut q = SimQueue::new(kind);
            push(&mut q, 50, 1);
            push(&mut q, 10, 2);
            push(&mut q, 10, 3); // same instant: must pop after payload 2
            push(&mut q, 7, 4);
            assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
            assert_eq!(drain(&mut q), vec![(7, 4), (10, 2), (10, 3), (50, 1)], "{kind:?}");
            assert!(q.is_empty());
        }
    }

    #[test]
    fn far_timers_overflow_and_fold_back() {
        let mut q = SimQueue::new(QueueKind::Indexed);
        // Beyond the wheel span from t=0.
        let far = NUM_BUCKETS as u64 * BUCKET_WIDTH_US * 3 + 17;
        push(&mut q, far, 1);
        push(&mut q, 5, 2);
        assert_eq!(q.pop(), Some((SimTime::from_micros(5), 2)));
        // The wheel is empty now; the pop must leap to the overflow event.
        assert_eq!(q.pop(), Some((SimTime::from_micros(far), 1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_preserves_global_order() {
        let mut q = SimQueue::new(QueueKind::Indexed);
        push(&mut q, 100, 1);
        push(&mut q, 200, 2);
        assert_eq!(q.pop(), Some((SimTime::from_micros(100), 1)));
        // Push earlier than the remaining event but later than the last pop.
        push(&mut q, 150, 3);
        push(&mut q, 150, 4);
        assert_eq!(q.pop(), Some((SimTime::from_micros(150), 3)));
        push(&mut q, 150, 5); // same bucket as the cursor, after a pop
        assert_eq!(drain(&mut q), vec![(150, 4), (150, 5), (200, 2)]);
    }

    #[test]
    fn duplicate_allocates_a_clone() {
        for kind in [QueueKind::Indexed, QueueKind::ReferenceHeap] {
            let mut q: SimQueue<u64> = SimQueue::new(kind);
            let a = q.alloc(9);
            let b = q.alloc_duplicate(a);
            q.schedule(SimTime::from_micros(1), a, 0, false);
            q.schedule(SimTime::from_micros(2), b, 0, false);
            assert_eq!(drain(&mut q), vec![(1, 9), (2, 9)], "{kind:?}");
        }
    }

    /// The pin for byte-identical replay: any interleaving of pushes and
    /// pops produces the same pop sequence on both implementations,
    /// including same-instant tie-breaks and wheel/overflow boundaries.
    #[test]
    fn randomized_differential_wheel_vs_reference_heap() {
        for trial in 0..50u64 {
            let mut rng = SmallRng::seed_from_u64(trial);
            let mut wheel = SimQueue::new(QueueKind::Indexed);
            let mut heap = SimQueue::new(QueueKind::ReferenceHeap);
            let mut now = 0u64;
            let mut next_payload = 0u64;
            let mut popped_wheel = Vec::new();
            let mut popped_heap = Vec::new();
            for _ in 0..400 {
                if rng.gen_bool(0.6) || wheel.is_empty() {
                    // Schedules are at or after the latest pop, like the
                    // engine's. Mix of near (same bucket), mid (in-span), and
                    // far (overflow) horizons, with deliberate exact ties.
                    let delta = match rng.gen_range(0..10u32) {
                        0..=3 => rng.gen_range(0..BUCKET_WIDTH_US),
                        4..=7 => rng.gen_range(0..NUM_BUCKETS as u64 * BUCKET_WIDTH_US),
                        8 => 0,
                        _ => rng.gen_range(0..4 * NUM_BUCKETS as u64 * BUCKET_WIDTH_US),
                    };
                    let t = SimTime::from_micros(now + delta);
                    let p = next_payload;
                    next_payload += 1;
                    let id = wheel.alloc(p);
                    wheel.schedule(t, id, 0, false);
                    let id = heap.alloc(p);
                    heap.schedule(t, id, 0, false);
                } else {
                    let (tw, pw) = wheel.pop().expect("non-empty");
                    let (th, ph) = heap.pop().expect("same length");
                    assert_eq!((tw, pw), (th, ph), "trial {trial} diverged");
                    now = tw.as_micros();
                    popped_wheel.push((tw, pw));
                    popped_heap.push((th, ph));
                }
                assert_eq!(wheel.len(), heap.len());
                assert_eq!(wheel.peek_time(), heap.peek_time(), "trial {trial} peek diverged");
            }
            while let Some(entry) = wheel.pop() {
                popped_wheel.push(entry);
                popped_heap.push(heap.pop().expect("same length"));
            }
            assert!(heap.pop().is_none());
            assert_eq!(popped_wheel, popped_heap, "trial {trial}");
            // And the pop sequence is globally sorted by time.
            for w in popped_wheel.windows(2) {
                assert!(w[0].0 <= w[1].0);
            }
        }
    }
}
