//! TrueTime emulation with bounded uncertainty.
//!
//! Spanner relies on Google's TrueTime API, which returns an interval
//! `[earliest, latest]` guaranteed to contain the current absolute time. The
//! Spanner evaluation in the paper emulates a TrueTime error of 10 ms (the
//! p99.9 value observed in production) and sets it to zero for the overhead
//! experiment.
//!
//! In the simulator the "absolute time" is the simulated clock itself, so the
//! interval `[now - ε, now + ε]` always satisfies the TrueTime contract. The
//! bounds are symmetric and deterministic: every clock reports the same
//! maximal uncertainty, which models the worst case the protocols must absorb
//! (commit wait of ≈ 2ε) while keeping protocol timestamps monotone with real
//! time — exactly the property the paper's correctness argument (Appendix D.1)
//! relies on.

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// An interval returned by [`TrueTime::now`]; the true (simulated) time is
/// guaranteed to lie within `[earliest, latest]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TtInterval {
    /// Lower bound on the current time.
    pub earliest: SimTime,
    /// Upper bound on the current time.
    pub latest: SimTime,
}

impl TtInterval {
    /// Width of the interval.
    pub fn width(&self) -> SimDuration {
        self.latest - self.earliest
    }
}

/// A per-node TrueTime clock with uncertainty bounded by `epsilon`.
#[derive(Debug, Clone)]
pub struct TrueTime {
    epsilon: SimDuration,
}

impl TrueTime {
    /// Creates a TrueTime clock with uncertainty bound `epsilon`.
    ///
    /// The `seed` parameter is accepted for interface stability (per-node
    /// clocks are constructed with distinct seeds) but the emulation is
    /// deterministic, so it is unused.
    pub fn new(epsilon: SimDuration, _seed: u64) -> Self {
        TrueTime { epsilon }
    }

    /// A perfect clock (ε = 0), used by the overhead experiments.
    pub fn perfect(seed: u64) -> Self {
        Self::new(SimDuration::ZERO, seed)
    }

    /// The configured uncertainty bound.
    pub fn epsilon(&self) -> SimDuration {
        self.epsilon
    }

    /// Returns an interval containing the true simulated time `now`.
    ///
    /// The returned interval always satisfies
    /// `earliest ≤ now ≤ latest` and `latest - earliest ≤ 2ε`.
    pub fn now(&mut self, now: SimTime) -> TtInterval {
        TtInterval { earliest: now - self.epsilon, latest: now + self.epsilon }
    }

    /// Returns the duration a process must wait (from `now`) until `t` is
    /// guaranteed to be in the past, i.e. until `TT.now().earliest > t`.
    ///
    /// This is the *commit wait* primitive: waiting `commit_wait(t, now)`
    /// guarantees that every clock's earliest bound has passed `t`.
    pub fn commit_wait(&self, t: SimTime, now: SimTime) -> SimDuration {
        let target = t + self.epsilon + SimDuration::from_micros(1);
        target.since(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_contains_now() {
        let mut tt = TrueTime::new(SimDuration::from_millis(10), 3);
        for i in 0..1000u64 {
            let now = SimTime::from_micros(i * 137 + 20_000);
            let iv = tt.now(now);
            assert!(iv.earliest <= now, "earliest must not exceed now");
            assert!(iv.latest >= now, "latest must not precede now");
            assert!(iv.width() <= SimDuration::from_millis(20));
        }
    }

    #[test]
    fn perfect_clock_has_zero_width() {
        let mut tt = TrueTime::perfect(9);
        let iv = tt.now(SimTime::from_millis(5));
        assert_eq!(iv.earliest, iv.latest);
        assert_eq!(iv.width(), SimDuration::ZERO);
    }

    #[test]
    fn latest_is_monotone_with_real_time() {
        let mut a = TrueTime::new(SimDuration::from_millis(10), 1);
        let mut b = TrueTime::new(SimDuration::from_millis(10), 2);
        // Any clock's `latest` at a later instant exceeds any clock's `latest`
        // at an earlier instant — the property that keeps read timestamps
        // monotone across clients.
        let t1 = a.now(SimTime::from_millis(100)).latest;
        let t2 = b.now(SimTime::from_millis(101)).latest;
        assert!(t2 > t1);
    }

    #[test]
    fn commit_wait_clears_uncertainty() {
        let tt = TrueTime::new(SimDuration::from_millis(10), 1);
        let t = SimTime::from_millis(100);
        let now = SimTime::from_millis(100);
        let wait = tt.commit_wait(t, now);
        // After waiting, even a maximally lagging clock has earliest > t.
        let after = now + wait;
        assert!(after - tt.epsilon() > t);
    }

    #[test]
    fn commit_wait_zero_when_already_past() {
        let tt = TrueTime::new(SimDuration::from_millis(10), 1);
        let t = SimTime::from_millis(100);
        let now = SimTime::from_millis(200);
        assert_eq!(tt.commit_wait(t, now), SimDuration::ZERO);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = TrueTime::new(SimDuration::from_millis(10), 42);
        let mut b = TrueTime::new(SimDuration::from_millis(10), 43);
        for i in 0..100u64 {
            let now = SimTime::from_micros(50_000 + i * 61);
            assert_eq!(a.now(now), b.now(now));
        }
    }
}
