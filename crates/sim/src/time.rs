//! Simulated time: instants and durations with microsecond resolution.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// An instant on the simulated clock, measured in microseconds since the start
/// of the simulation.
///
/// `SimTime` is totally ordered and starts at [`SimTime::ZERO`]. It is *not* a
/// wall-clock time; protocol code that needs bounded-uncertainty wall-clock
/// time uses [`crate::truetime::TrueTime`] on top of it.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Returns the instant as microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the instant as (truncated) milliseconds since simulation start.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the instant as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional milliseconds (rounded down to µs).
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms * 1_000.0).max(0.0) as u64)
    }

    /// Returns the duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns true if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_millis(5));
        // Subtraction saturates rather than panicking.
        assert_eq!(SimTime::from_millis(1) - SimDuration::from_millis(5), SimTime::ZERO);
        assert_eq!(SimDuration::from_millis(1) - SimDuration::from_millis(5), SimDuration::ZERO);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(9);
        assert_eq!(b.since(a), SimDuration::from_millis(4));
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn fractional_millis() {
        let d = SimDuration::from_millis_f64(1.5);
        assert_eq!(d.as_micros(), 1_500);
        assert!((d.as_millis_f64() - 1.5).abs() < 1e-9);
        assert_eq!(SimDuration::from_millis_f64(-2.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_micros(10) < SimDuration::from_micros(20));
        assert_eq!(format!("{}", SimTime::from_micros(1500)), "1.500ms");
        assert_eq!(format!("{}", SimDuration::from_micros(250)), "0.250ms");
    }

    #[test]
    fn scaling() {
        assert_eq!(SimDuration::from_millis(2) * 3, SimDuration::from_millis(6));
        assert_eq!(SimDuration::from_millis(6) / 2, SimDuration::from_millis(3));
    }
}
