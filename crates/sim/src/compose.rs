//! Multi-protocol simulations: run nodes written for one message type inside
//! an engine whose wire type is an enum over several protocols.
//!
//! The engine is generic over a single message type `M`. To simulate two
//! protocols side by side (e.g. a Spanner-RSS store and a Gryff-RSC store in
//! one composite deployment, Section 4 of the paper), the harness defines a
//! combined message enum and lifts each protocol's nodes into it with
//! [`Embedded`]:
//!
//! * outgoing messages are converted with `P: Into<M>`,
//! * incoming messages are narrowed with `M: TryInto<P>`; messages of another
//!   protocol are ignored (routing them to the wrong node is a harness bug,
//!   not a protocol event).
//!
//! Timers, the simulated clock, TrueTime, and the engine RNG are shared
//! transparently via [`Context::with_protocol`].

use std::marker::PhantomData;

use crate::engine::{Context, Node, NodeId};

/// Adapts a `Node<P>` into a `Node<M>` for a combined message enum `M`.
pub struct Embedded<N, P> {
    /// The wrapped protocol node.
    pub inner: N,
    _protocol: PhantomData<fn() -> P>,
}

impl<N, P> Embedded<N, P> {
    /// Wraps a protocol node for use in a combined simulation.
    pub fn new(inner: N) -> Self {
        Embedded { inner, _protocol: PhantomData }
    }
}

impl<M, P, N> Node<M> for Embedded<N, P>
where
    M: TryInto<P> + 'static,
    P: Into<M> + 'static,
    N: Node<P>,
{
    fn on_start(&mut self, ctx: &mut Context<M>) {
        let inner = &mut self.inner;
        ctx.with_protocol(|c| inner.on_start(c));
    }

    fn on_message(&mut self, ctx: &mut Context<M>, from: NodeId, msg: M) {
        if let Ok(p) = msg.try_into() {
            let inner = &mut self.inner;
            ctx.with_protocol(|c| inner.on_message(c, from, p));
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<M>, tag: u64) {
        let inner = &mut self.inner;
        ctx.with_protocol(|c| inner.on_timer(c, tag));
    }

    fn on_crash(&mut self, ctx: &mut Context<M>) {
        let inner = &mut self.inner;
        ctx.with_protocol(|c| inner.on_crash(c));
    }

    fn on_recover(&mut self, ctx: &mut Context<M>) {
        let inner = &mut self.inner;
        ctx.with_protocol(|c| inner.on_recover(c));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use crate::net::LatencyMatrix;
    use crate::time::SimDuration;

    #[derive(Clone, Debug, PartialEq)]
    struct PingMsg(u32);
    #[derive(Clone, Debug, PartialEq)]
    struct TockMsg(u32);

    #[derive(Clone, Debug, PartialEq)]
    enum Combined {
        Ping(PingMsg),
        Tock(TockMsg),
    }
    impl From<PingMsg> for Combined {
        fn from(m: PingMsg) -> Self {
            Combined::Ping(m)
        }
    }
    impl From<TockMsg> for Combined {
        fn from(m: TockMsg) -> Self {
            Combined::Tock(m)
        }
    }
    impl TryFrom<Combined> for PingMsg {
        type Error = ();
        fn try_from(m: Combined) -> Result<Self, ()> {
            match m {
                Combined::Ping(p) => Ok(p),
                _ => Err(()),
            }
        }
    }
    impl TryFrom<Combined> for TockMsg {
        type Error = ();
        fn try_from(m: Combined) -> Result<Self, ()> {
            match m {
                Combined::Tock(t) => Ok(t),
                _ => Err(()),
            }
        }
    }

    /// Echoes pings back, incremented.
    #[derive(Default)]
    struct PingNode {
        got: Vec<u32>,
        timer_fired: bool,
    }
    impl Node<PingMsg> for PingNode {
        fn on_start(&mut self, ctx: &mut Context<PingMsg>) {
            if ctx.node_id() == 0 {
                ctx.send(1, PingMsg(1));
                ctx.set_timer(SimDuration::from_millis(1), 9);
            }
        }
        fn on_message(&mut self, ctx: &mut Context<PingMsg>, from: NodeId, msg: PingMsg) {
            self.got.push(msg.0);
            if msg.0 < 3 {
                ctx.send(from, PingMsg(msg.0 + 1));
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<PingMsg>, tag: u64) {
            assert_eq!(tag, 9);
            self.timer_fired = true;
        }
    }

    /// A node of the other protocol, sharing the simulation.
    #[derive(Default)]
    struct TockNode {
        got: Vec<u32>,
    }
    impl Node<TockMsg> for TockNode {
        fn on_start(&mut self, ctx: &mut Context<TockMsg>) {
            ctx.send(ctx.node_id(), TockMsg(7));
        }
        fn on_message(&mut self, _ctx: &mut Context<TockMsg>, _from: NodeId, msg: TockMsg) {
            self.got.push(msg.0);
        }
    }

    enum AnyNode {
        Ping(Embedded<PingNode, PingMsg>),
        Tock(Embedded<TockNode, TockMsg>),
    }
    impl Node<Combined> for AnyNode {
        fn on_start(&mut self, ctx: &mut Context<Combined>) {
            match self {
                AnyNode::Ping(n) => n.on_start(ctx),
                AnyNode::Tock(n) => n.on_start(ctx),
            }
        }
        fn on_message(&mut self, ctx: &mut Context<Combined>, from: NodeId, msg: Combined) {
            match self {
                AnyNode::Ping(n) => n.on_message(ctx, from, msg),
                AnyNode::Tock(n) => n.on_message(ctx, from, msg),
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<Combined>, tag: u64) {
            match self {
                AnyNode::Ping(n) => n.on_timer(ctx, tag),
                AnyNode::Tock(n) => n.on_timer(ctx, tag),
            }
        }
    }

    #[test]
    fn two_protocols_share_one_simulation() {
        let net = LatencyMatrix::single_region(SimDuration::from_millis(1));
        let mut engine: Engine<Combined, AnyNode> = Engine::new(EngineConfig::default(), net, 11);
        engine.add_node(AnyNode::Ping(Embedded::new(PingNode::default())), 0);
        engine.add_node(AnyNode::Ping(Embedded::new(PingNode::default())), 0);
        engine.add_node(AnyNode::Tock(Embedded::new(TockNode::default())), 0);
        engine.run();
        match engine.node(1) {
            AnyNode::Ping(n) => assert_eq!(n.inner.got, vec![1, 3]),
            _ => panic!("node 1 is a ping node"),
        }
        match engine.node(0) {
            AnyNode::Ping(n) => {
                assert_eq!(n.inner.got, vec![2]);
                assert!(n.inner.timer_fired, "timers reach the embedded node");
            }
            _ => panic!("node 0 is a ping node"),
        }
        match engine.node(2) {
            AnyNode::Tock(n) => assert_eq!(n.inner.got, vec![7]),
            _ => panic!("node 2 is a tock node"),
        }
    }
}
