//! Wide-area network models: regions, round-trip latency matrices, and the
//! pluggable [`NetworkModel`] trait the engine delivers messages through.
//!
//! The paper's evaluations use two wide-area configurations:
//!
//! * **Spanner / Spanner-RSS (Section 6)**: three regions — California,
//!   Virginia, Ireland — with round-trip times CA–VA = 62 ms, CA–IR = 136 ms,
//!   VA–IR = 68 ms.
//! * **Gryff / Gryff-RSC (Table 2)**: five regions — California, Virginia,
//!   Ireland, Oregon, Japan — with the round-trip matrix reproduced by
//!   [`LatencyMatrix::gryff_wan`].
//!
//! One-way message latency between two regions is half the round-trip time
//! plus optional random jitter.
//!
//! A [`NetworkModel`] decides, per message, both the latency *and* whether
//! the message is delivered at all (the [`Delivery`] verdict). The default
//! implementation on [`LatencyMatrix`] is the happy-path WAN: every message
//! is delivered at the sampled latency. Lossy or adversarial networks
//! implement the trait themselves, and scripted fault windows (partitions,
//! drop/duplicate windows, node crashes) are layered on top by the engine
//! through [`crate::fault::FaultSchedule`].

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// A geographic region (data center) hosting simulation nodes.
///
/// Regions are small integer identifiers into a [`LatencyMatrix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Region(pub usize);

/// Well-known regions used by the paper's experiments.
pub mod regions {
    use super::Region;

    /// California (us-west).
    pub const CALIFORNIA: Region = Region(0);
    /// Virginia (us-east).
    pub const VIRGINIA: Region = Region(1);
    /// Ireland (eu-west).
    pub const IRELAND: Region = Region(2);
    /// Oregon (us-northwest); Gryff experiments only.
    pub const OREGON: Region = Region(3);
    /// Japan (ap-northeast); Gryff experiments only.
    pub const JAPAN: Region = Region(4);
}

/// The per-message verdict of a [`NetworkModel`]: what happens to one
/// message handed to the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Deliver after the given one-way latency.
    Deliver {
        /// One-way latency (jitter included).
        latency: SimDuration,
    },
    /// Deliver, but late: `extra` is added on top of the base latency
    /// (congestion, retransmission, a grey link).
    Delay {
        /// One-way latency (jitter included).
        latency: SimDuration,
        /// Additional delay beyond the base latency.
        extra: SimDuration,
    },
    /// Drop the message silently (the sender learns nothing).
    Drop,
    /// Deliver twice: once after `latency`, and an identical copy
    /// `echo_after` later (retransmission races, routing flaps).
    Duplicate {
        /// One-way latency of the first copy.
        latency: SimDuration,
        /// Extra delay of the duplicate copy relative to the first.
        echo_after: SimDuration,
    },
}

/// A pluggable network: topology, latency, and per-message delivery policy.
///
/// The engine consults the model once per sent message. Implementations must
/// be deterministic given the RNG (all randomness flows through `rng`), which
/// keeps every simulated run — including lossy ones — bit-for-bit replayable
/// from its seed.
pub trait NetworkModel: Send + 'static {
    /// Number of regions the model spans.
    fn num_regions(&self) -> usize;

    /// Samples the base one-way latency between two regions (jitter
    /// included).
    fn sample_latency(&self, from: Region, to: Region, rng: &mut SmallRng) -> SimDuration;

    /// The per-message verdict. The default is the happy path: deliver every
    /// message at the sampled latency.
    ///
    /// `now` is the simulated send instant, so time-varying models (fault
    /// windows, diurnal congestion) can script behavior against the clock.
    fn delivery(&mut self, now: SimTime, from: Region, to: Region, rng: &mut SmallRng) -> Delivery {
        let _ = now;
        Delivery::Deliver { latency: self.sample_latency(from, to, rng) }
    }
}

impl NetworkModel for LatencyMatrix {
    fn num_regions(&self) -> usize {
        LatencyMatrix::num_regions(self)
    }

    fn sample_latency(&self, from: Region, to: Region, rng: &mut SmallRng) -> SimDuration {
        self.sample_one_way(from, to, rng)
    }
}

/// A symmetric matrix of round-trip times between regions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyMatrix {
    /// `rtt[i][j]` is the round-trip time between regions `i` and `j`.
    rtt: Vec<Vec<SimDuration>>,
    /// Maximum uniform jitter added to each one-way delivery.
    jitter: SimDuration,
}

impl LatencyMatrix {
    /// Builds a matrix from round-trip times given in milliseconds.
    ///
    /// `rtt_ms[i][j]` must equal `rtt_ms[j][i]`; the diagonal is the
    /// intra-region round-trip time.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or not symmetric.
    pub fn from_rtt_ms(rtt_ms: &[&[f64]], jitter: SimDuration) -> Self {
        let n = rtt_ms.len();
        let mut rtt = vec![vec![SimDuration::ZERO; n]; n];
        for (i, row) in rtt_ms.iter().enumerate() {
            assert_eq!(row.len(), n, "latency matrix must be square");
            for (j, ms) in row.iter().enumerate() {
                assert!(
                    *ms == rtt_ms[j][i],
                    "round-trip times must be symmetric: rtt_ms[{i}][{j}] = {ms} \
                     but rtt_ms[{j}][{i}] = {}",
                    rtt_ms[j][i]
                );
                rtt[i][j] = SimDuration::from_millis_f64(*ms);
            }
        }
        LatencyMatrix { rtt, jitter }
    }

    /// A single region where every message takes `one_way` to deliver.
    pub fn single_region(one_way: SimDuration) -> Self {
        LatencyMatrix { rtt: vec![vec![one_way * 2]], jitter: SimDuration::ZERO }
    }

    /// The three-region EC2 configuration of the Spanner evaluation (§6):
    /// CA–VA = 62 ms, CA–IR = 136 ms, VA–IR = 68 ms; 0.2 ms within a region.
    pub fn spanner_wan() -> Self {
        Self::from_rtt_ms(
            &[&[0.2, 62.0, 136.0], &[62.0, 0.2, 68.0], &[136.0, 68.0, 0.2]],
            SimDuration::from_micros(200),
        )
    }

    /// The five-region CloudLab configuration of the Gryff evaluation (Table 2).
    ///
    /// Order: CA, VA, IR, OR, JP.
    pub fn gryff_wan() -> Self {
        Self::from_rtt_ms(
            &[
                &[0.2, 72.0, 151.0, 59.0, 113.0],
                &[72.0, 0.2, 88.0, 93.0, 162.0],
                &[151.0, 88.0, 0.2, 145.0, 220.0],
                &[59.0, 93.0, 145.0, 0.2, 121.0],
                &[113.0, 162.0, 220.0, 121.0, 0.2],
            ],
            SimDuration::from_micros(200),
        )
    }

    /// A single data center with sub-millisecond latency, used by the overhead
    /// experiments (§6.2 and §7.4): inter-machine latency below 200 µs.
    pub fn single_dc() -> Self {
        LatencyMatrix {
            rtt: vec![vec![SimDuration::from_micros(150)]],
            jitter: SimDuration::from_micros(20),
        }
    }

    /// Number of regions in the matrix.
    pub fn num_regions(&self) -> usize {
        self.rtt.len()
    }

    /// Round-trip time between two regions (without jitter).
    ///
    /// # Panics
    ///
    /// Panics if either region is out of range.
    pub fn rtt(&self, a: Region, b: Region) -> SimDuration {
        self.rtt[a.0][b.0]
    }

    /// One-way latency between two regions (without jitter).
    pub fn one_way(&self, a: Region, b: Region) -> SimDuration {
        self.rtt(a, b) / 2
    }

    /// Samples the one-way delivery latency between two regions, adding
    /// uniform jitter in `[0, jitter]`.
    pub fn sample_one_way<R: Rng>(&self, a: Region, b: Region, rng: &mut R) -> SimDuration {
        let base = self.one_way(a, b);
        if self.jitter.is_zero() {
            base
        } else {
            base + SimDuration::from_micros(rng.gen_range(0..=self.jitter.as_micros()))
        }
    }

    /// Replaces the jitter bound, returning the modified matrix.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// The region nearest to `from` other than itself (minimum RTT); used to
    /// model replication to the closest majority.
    pub fn nearest_peer(&self, from: Region) -> Option<Region> {
        (0..self.num_regions())
            .filter(|&i| i != from.0)
            .min_by_key(|&i| self.rtt[from.0][i])
            .map(Region)
    }

    /// The minimum round-trip time from `from` to any of `peers`.
    pub fn min_rtt_to(&self, from: Region, peers: &[Region]) -> Option<SimDuration> {
        peers.iter().filter(|r| **r != from).map(|r| self.rtt(from, *r)).min()
    }

    /// The RTT from `from` to the `k`-th closest of `peers` (0-indexed,
    /// excluding `from` itself). Used to model waiting for a quorum of
    /// replies: with `q` remote acknowledgements required, the wait is the
    /// RTT to the `(q-1)`-th closest peer.
    pub fn kth_closest_rtt(&self, from: Region, peers: &[Region], k: usize) -> Option<SimDuration> {
        let mut rtts: Vec<SimDuration> =
            peers.iter().filter(|r| **r != from).map(|r| self.rtt(from, *r)).collect();
        rtts.sort();
        rtts.get(k).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn spanner_wan_matches_paper() {
        let m = LatencyMatrix::spanner_wan();
        assert_eq!(m.num_regions(), 3);
        assert_eq!(m.rtt(regions::CALIFORNIA, regions::VIRGINIA).as_millis(), 62);
        assert_eq!(m.rtt(regions::CALIFORNIA, regions::IRELAND).as_millis(), 136);
        assert_eq!(m.rtt(regions::VIRGINIA, regions::IRELAND).as_millis(), 68);
    }

    #[test]
    fn gryff_wan_matches_table_2() {
        let m = LatencyMatrix::gryff_wan();
        assert_eq!(m.num_regions(), 5);
        assert_eq!(m.rtt(regions::CALIFORNIA, regions::VIRGINIA).as_millis(), 72);
        assert_eq!(m.rtt(regions::CALIFORNIA, regions::IRELAND).as_millis(), 151);
        assert_eq!(m.rtt(regions::VIRGINIA, regions::IRELAND).as_millis(), 88);
        assert_eq!(m.rtt(regions::CALIFORNIA, regions::OREGON).as_millis(), 59);
        assert_eq!(m.rtt(regions::VIRGINIA, regions::OREGON).as_millis(), 93);
        assert_eq!(m.rtt(regions::IRELAND, regions::OREGON).as_millis(), 145);
        assert_eq!(m.rtt(regions::CALIFORNIA, regions::JAPAN).as_millis(), 113);
        assert_eq!(m.rtt(regions::VIRGINIA, regions::JAPAN).as_millis(), 162);
        assert_eq!(m.rtt(regions::IRELAND, regions::JAPAN).as_millis(), 220);
        assert_eq!(m.rtt(regions::OREGON, regions::JAPAN).as_millis(), 121);
    }

    #[test]
    fn matrix_is_symmetric() {
        for m in [LatencyMatrix::spanner_wan(), LatencyMatrix::gryff_wan()] {
            for i in 0..m.num_regions() {
                for j in 0..m.num_regions() {
                    assert_eq!(m.rtt(Region(i), Region(j)), m.rtt(Region(j), Region(i)));
                }
            }
        }
    }

    #[test]
    fn one_way_is_half_rtt() {
        let m = LatencyMatrix::spanner_wan();
        assert_eq!(m.one_way(regions::CALIFORNIA, regions::VIRGINIA).as_millis(), 31);
    }

    #[test]
    fn jitter_bounded() {
        let m = LatencyMatrix::spanner_wan().with_jitter(SimDuration::from_millis(1));
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let d = m.sample_one_way(regions::CALIFORNIA, regions::VIRGINIA, &mut rng);
            assert!(d >= SimDuration::from_millis(31));
            assert!(d <= SimDuration::from_millis(32));
        }
    }

    #[test]
    fn nearest_peer_and_quorum_rtt() {
        let m = LatencyMatrix::spanner_wan();
        // California's nearest peer is Virginia (62 ms < 136 ms).
        assert_eq!(m.nearest_peer(regions::CALIFORNIA), Some(regions::VIRGINIA));
        let peers = [regions::CALIFORNIA, regions::VIRGINIA, regions::IRELAND];
        assert_eq!(m.min_rtt_to(regions::CALIFORNIA, &peers), Some(SimDuration::from_millis(62)));
        // Majority of 3 replicas needs 1 remote ack: the closest peer.
        assert_eq!(
            m.kth_closest_rtt(regions::CALIFORNIA, &peers, 0),
            Some(SimDuration::from_millis(62))
        );
        assert_eq!(
            m.kth_closest_rtt(regions::CALIFORNIA, &peers, 1),
            Some(SimDuration::from_millis(136))
        );
        assert_eq!(m.kth_closest_rtt(regions::CALIFORNIA, &peers, 2), None);
    }

    #[test]
    #[should_panic(expected = "round-trip times must be symmetric")]
    fn asymmetric_matrix_is_rejected() {
        let _ = LatencyMatrix::from_rtt_ms(
            &[&[0.2, 62.0, 136.0], &[62.0, 0.2, 68.0], &[136.0, 99.0, 0.2]],
            SimDuration::ZERO,
        );
    }

    #[test]
    fn latency_matrix_is_the_happy_path_network_model() {
        let mut m = LatencyMatrix::spanner_wan();
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(NetworkModel::num_regions(&m), 3);
        for _ in 0..50 {
            match m.delivery(
                SimTime::from_secs(1),
                regions::CALIFORNIA,
                regions::VIRGINIA,
                &mut rng,
            ) {
                Delivery::Deliver { latency } => {
                    assert!(latency >= SimDuration::from_millis(31));
                }
                other => panic!("the default model always delivers, got {other:?}"),
            }
        }
    }

    #[test]
    fn single_region_and_dc() {
        let m = LatencyMatrix::single_region(SimDuration::from_millis(1));
        assert_eq!(m.one_way(Region(0), Region(0)), SimDuration::from_millis(1));
        let dc = LatencyMatrix::single_dc();
        assert!(dc.rtt(Region(0), Region(0)) < SimDuration::from_millis(1));
    }
}
