//! The discrete-event engine driving protocol nodes.
//!
//! Protocols (Spanner, Spanner-RSS, Gryff, Gryff-RSC) are written as
//! deterministic state machines implementing [`Node`]. Nodes react to
//! delivered messages and expired timers through a [`Context`] that lets them
//! send messages, set timers, read the simulated clock, query TrueTime, and
//! draw random numbers from the engine's seeded generator.
//!
//! # Time model
//!
//! * Message delivery is decided by the engine's [`NetworkModel`]: the
//!   one-way latency between the sender's and receiver's regions (plus
//!   jitter and any extra delay requested by the sender), and a per-message
//!   [`Delivery`] verdict — deliver, delay, drop, or duplicate. The default
//!   model, [`crate::net::LatencyMatrix`], always delivers.
//! * A scripted [`FaultSchedule`] (see [`Engine::install_faults`]) overlays
//!   link partitions, probabilistic drop/duplicate/delay windows, and node
//!   crash/recover events on top of the model's verdicts. Messages addressed
//!   to a crashed node expire; its timers are deferred to the recovery
//!   instant (the durable state machine resumes where it left off), and the
//!   [`Node::on_crash`] / [`Node::on_recover`] hooks let protocols drop
//!   volatile state and re-drive stalled work.
//! * Each node has a *service time*: the CPU cost of handling one event. If a
//!   message arrives while the node is still busy, its processing is delayed
//!   until the node frees up. This produces queueing, which is what makes the
//!   throughput/latency experiments (Figure 6, §7.4) saturate realistically.
//! * Events scheduled for the same instant are processed in scheduling order,
//!   which keeps runs bit-for-bit deterministic for a fixed seed — with or
//!   without faults, since drop/duplicate sampling draws from the same
//!   seeded RNG stream.
//!
//! # Event storage
//!
//! Events live in an arena-backed indexed queue ([`crate::queue`]): payloads
//! are written into a slab once at dispatch and moved out once at delivery,
//! with a calendar time wheel ordering the near future and a heap fallback
//! for far timers. Message delivery is zero-clone — the only path that
//! clones a message is a `Delivery::Duplicate` verdict, which copies the
//! payload in-arena for the echo. Per-turn outbox/timer buffers are engine
//! scratch, reused across turns. The seed engine's heap-of-whole-entries
//! queue survives as [`crate::queue::QueueKind::ReferenceHeap`]; both kinds
//! pop in identical `(time, seq)` order, so they replay identical histories
//! (differentially tested in `tests/queue_determinism.rs`).

use std::collections::BTreeSet;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::fault::FaultSchedule;
use crate::metrics::MessageStats;
use crate::net::{Delivery, NetworkModel, Region};
use crate::queue::{QueueKind, SimQueue};
use crate::time::{SimDuration, SimTime};
use crate::truetime::{TrueTime, TtInterval};

/// Index of a node within the engine.
pub type NodeId = usize;

/// A protocol participant driven by the engine.
///
/// All methods receive a [`Context`] used to interact with the simulated
/// world. Implementations must be deterministic given the context's RNG.
pub trait Node<M>: 'static {
    /// Called once when the simulation starts, before any message delivery.
    fn on_start(&mut self, _ctx: &mut Context<M>) {}

    /// Called when a message from `from` is delivered to this node.
    fn on_message(&mut self, ctx: &mut Context<M>, from: NodeId, msg: M);

    /// Called when a timer previously set with [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<M>, _tag: u64) {}

    /// Called when a scripted [`FaultSchedule`] crash takes this node down.
    ///
    /// Implementations drop their *volatile* state here (in-memory queues,
    /// client-facing read sessions) and keep what the real system would have
    /// made durable (replicated logs, on-disk stores). Anything sent or
    /// scheduled from this hook is discarded — a crashing node cannot act.
    fn on_crash(&mut self, _ctx: &mut Context<M>) {}

    /// Called when a crashed node recovers.
    ///
    /// The node resumes from its durable state: timers that would have fired
    /// while it was down fire right after this hook, and implementations
    /// re-drive any coordination that stalled while they were away (e.g.
    /// re-sending the current round of an in-flight agreement).
    fn on_recover(&mut self, _ctx: &mut Context<M>) {}

    /// A small tag naming the node's current protocol phase, sampled at each
    /// message delivery when coverage instrumentation is installed (see
    /// [`Engine::install_coverage`]). The engine records the pair
    /// `(message class, receiver phase tag)` as a behaviour-coverage
    /// feature; protocols encode "what am I in the middle of" here (e.g.
    /// bits for in-flight RMW coordinations, pending WAL writes, queued
    /// re-drives). The default — a constant — collapses all phases into one.
    fn phase_tag(&self) -> u16 {
        0
    }
}

/// Engine-wide configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// CPU cost of handling one event at a node, unless overridden per node.
    pub default_service_time: SimDuration,
    /// Hard stop: events scheduled after this instant are not processed.
    pub max_time: SimTime,
    /// TrueTime uncertainty bound ε for all nodes.
    pub truetime_epsilon: SimDuration,
    /// Event-queue implementation (see [`QueueKind`]): the indexed
    /// arena/time-wheel queue by default, or the retained reference heap for
    /// differential tests and benchmarks. Both pop in identical order, so
    /// this knob never changes a simulation's history — only its wall-clock.
    pub queue: QueueKind,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            default_service_time: SimDuration::from_micros(10),
            max_time: SimTime::from_secs(3_600),
            truetime_epsilon: SimDuration::ZERO,
            queue: QueueKind::Indexed,
        }
    }
}

#[derive(Clone)]
enum EventKind<M> {
    Start { node: NodeId },
    Message { from: NodeId, to: NodeId, msg: M },
    Timer { node: NodeId, tag: u64 },
    Crash { node: NodeId, recover_at: Option<SimTime> },
    Recover { node: NodeId },
}

/// The node-facing handle into the simulation.
///
/// The outbox/timer buffers are engine-owned scratch vectors, reused across
/// turns (the engine drains them after every handler) instead of allocating
/// per event.
pub struct Context<'a, M> {
    now: SimTime,
    node_id: NodeId,
    rng: &'a mut SmallRng,
    truetime: &'a mut TrueTime,
    /// Messages to send: (destination, extra delay, message).
    outbox: &'a mut Vec<(NodeId, SimDuration, M)>,
    /// Timers to set: (delay, tag).
    timers: &'a mut Vec<(SimDuration, u64)>,
}

/// The borrowed state an execution engine lends a [`Context`] for one
/// handler invocation.
///
/// [`Node`] implementations only ever see a `Context`, so any engine that
/// can produce these parts can drive them: the discrete-event [`Engine`]
/// assembles contexts from its own arrays, and the live (threaded) execution
/// plane assembles them from per-thread state with `now` mapped from the
/// wall clock. This is what makes a protocol node engine-agnostic.
pub struct ContextParts<'a, M> {
    /// The current (simulated or wall-mapped) time.
    pub now: SimTime,
    /// The node being invoked.
    pub node_id: NodeId,
    /// The node's deterministic RNG stream.
    pub rng: &'a mut SmallRng,
    /// The node's TrueTime clock.
    pub truetime: &'a mut TrueTime,
    /// Receives messages the handler sends: (destination, extra delay, msg).
    pub outbox: &'a mut Vec<(NodeId, SimDuration, M)>,
    /// Receives timers the handler sets: (delay, tag).
    pub timers: &'a mut Vec<(SimDuration, u64)>,
}

impl<'a, M> Context<'a, M> {
    /// Assembles a context from engine-owned parts (see [`ContextParts`]).
    pub fn from_parts(parts: ContextParts<'a, M>) -> Self {
        Context {
            now: parts.now,
            node_id: parts.node_id,
            rng: parts.rng,
            truetime: parts.truetime,
            outbox: parts.outbox,
            timers: parts.timers,
        }
    }
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The identifier of the node being invoked.
    pub fn node_id(&self) -> NodeId {
        self.node_id
    }

    /// Sends `msg` to node `to` with network latency only.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push((to, SimDuration::ZERO, msg));
    }

    /// Sends `msg` to node `to`, adding `extra` delay on top of the network
    /// latency (used, e.g., to model replication to a majority).
    pub fn send_after(&mut self, to: NodeId, extra: SimDuration, msg: M) {
        self.outbox.push((to, extra, msg));
    }

    /// Schedules [`Node::on_timer`] to fire on this node after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        self.timers.push((delay, tag));
    }

    /// Reads this node's TrueTime clock.
    pub fn truetime_now(&mut self) -> TtInterval {
        self.truetime.now(self.now)
    }

    /// The TrueTime uncertainty bound ε.
    pub fn truetime_epsilon(&self) -> SimDuration {
        self.truetime.epsilon()
    }

    /// The engine's deterministic random number generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Runs `f` with a context typed for an *embedded* protocol whose message
    /// type `P` can be lifted into this simulation's message type `M`.
    ///
    /// This is the substrate for multi-protocol simulations (see
    /// [`crate::compose`]): a node written against `Context<P>` can run
    /// unchanged inside an engine whose wire type is an enum over several
    /// protocols. Messages the inner node sends are converted with
    /// `P::into()`; timers and the clock/TrueTime/RNG state are shared with
    /// the outer context.
    pub fn with_protocol<P, R>(&mut self, f: impl FnOnce(&mut Context<'_, P>) -> R) -> R
    where
        P: Into<M>,
    {
        self.with_protocol_tagged(|t| t, f)
    }

    /// [`Context::with_protocol`] with a timer-tag transform applied to every
    /// timer the inner protocol sets. Hosts that embed *several* protocol
    /// state machines in one node use it to keep their timer namespaces
    /// disjoint (the host applies the inverse transform before delivering
    /// `on_timer`).
    pub fn with_protocol_tagged<P, R>(
        &mut self,
        map_tag: impl Fn(u64) -> u64,
        f: impl FnOnce(&mut Context<'_, P>) -> R,
    ) -> R
    where
        P: Into<M>,
    {
        let mut outbox: Vec<(NodeId, SimDuration, P)> = Vec::new();
        let mut timers: Vec<(SimDuration, u64)> = Vec::new();
        let mut inner: Context<'_, P> = Context {
            now: self.now,
            node_id: self.node_id,
            rng: &mut *self.rng,
            truetime: &mut *self.truetime,
            outbox: &mut outbox,
            timers: &mut timers,
        };
        let r = f(&mut inner);
        let _ = inner;
        for (to, extra, msg) in outbox {
            self.outbox.push((to, extra, msg.into()));
        }
        for (delay, tag) in timers {
            self.timers.push((delay, map_tag(tag)));
        }
        r
    }
}

/// Classifier turning a protocol message into a coverage class (see
/// [`Engine::install_coverage`]).
type CoverageClassify<M> = Box<dyn Fn(&M) -> u16>;

/// The discrete-event engine.
///
/// `M` is the protocol's message type; `N` is the node type (typically an enum
/// over the protocol's roles so the harness can inspect nodes after the run).
pub struct Engine<M, N> {
    cfg: EngineConfig,
    net: Box<dyn NetworkModel>,
    faults: FaultSchedule,
    nodes: Vec<N>,
    regions: Vec<Region>,
    service_times: Vec<SimDuration>,
    truetimes: Vec<TrueTime>,
    busy_until: Vec<SimTime>,
    crashed: Vec<bool>,
    crashed_until: Vec<Option<SimTime>>,
    queue: SimQueue<EventKind<M>>,
    now: SimTime,
    rng: SmallRng,
    started: bool,
    messages: MessageStats,
    processed_events: u64,
    dispatch_seq: u64,
    coverage_classify: Option<CoverageClassify<M>>,
    coverage_hits: BTreeSet<(u16, u16)>,
    seed: u64,
    /// Scratch buffers lent to [`Context`]s and drained after every handler,
    /// so a turn costs no allocation once they reach steady-state capacity.
    outbox_scratch: Vec<(NodeId, SimDuration, M)>,
    timers_scratch: Vec<(SimDuration, u64)>,
}

impl<M: Clone + 'static, N: Node<M>> Engine<M, N> {
    /// Creates an engine with the given configuration, network model, and
    /// random seed.
    pub fn new(cfg: EngineConfig, net: impl NetworkModel, seed: u64) -> Self {
        let queue = SimQueue::new(cfg.queue);
        Engine {
            cfg,
            net: Box::new(net),
            faults: FaultSchedule::default(),
            nodes: Vec::new(),
            regions: Vec::new(),
            service_times: Vec::new(),
            truetimes: Vec::new(),
            busy_until: Vec::new(),
            crashed: Vec::new(),
            crashed_until: Vec::new(),
            queue,
            now: SimTime::ZERO,
            rng: SmallRng::seed_from_u64(seed),
            started: false,
            messages: MessageStats::default(),
            processed_events: 0,
            dispatch_seq: 0,
            coverage_classify: None,
            coverage_hits: BTreeSet::new(),
            seed,
            outbox_scratch: Vec::new(),
            timers_scratch: Vec::new(),
        }
    }

    /// Installs a scripted fault schedule: link cuts and message windows
    /// apply to every message sent from now on; crash/recover events fire at
    /// their scripted instants.
    ///
    /// # Panics
    ///
    /// Panics if the simulation already started, or if two crash windows of
    /// the same node overlap.
    pub fn install_faults(&mut self, faults: FaultSchedule) {
        assert!(!self.started, "install faults before running the simulation");
        let mut windows: Vec<_> =
            faults.crashes().iter().map(|c| (c.node, c.at, c.recover_at)).collect();
        windows.sort_unstable();
        for pair in windows.windows(2) {
            let ((node_a, _, recover_a), (node_b, at_b, _)) = (pair[0], pair[1]);
            if node_a == node_b {
                assert!(
                    recover_a.is_some_and(|r| r <= at_b),
                    "crash windows of node {node_a} overlap"
                );
            }
        }
        self.faults = faults;
    }

    /// Adds a node placed in `region`, returning its [`NodeId`].
    pub fn add_node(&mut self, node: N, region: usize) -> NodeId {
        self.add_node_with(node, region, self.cfg.default_service_time)
    }

    /// Adds a node with an explicit per-event service time.
    pub fn add_node_with(&mut self, node: N, region: usize, service_time: SimDuration) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(node);
        self.regions.push(Region(region));
        self.service_times.push(service_time);
        self.truetimes
            .push(TrueTime::new(self.cfg.truetime_epsilon, self.seed.wrapping_add(id as u64 * 77)));
        self.busy_until.push(SimTime::ZERO);
        self.crashed.push(false);
        self.crashed_until.push(None);
        id
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable access to a node (typically after the run, to read metrics).
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id]
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id]
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &N> {
        self.nodes.iter()
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The region a node was placed in.
    pub fn region_of(&self, id: NodeId) -> Region {
        self.regions[id]
    }

    /// The network model.
    pub fn network(&self) -> &dyn NetworkModel {
        &*self.net
    }

    /// The installed fault schedule (empty unless
    /// [`Engine::install_faults`] was called).
    pub fn faults(&self) -> &FaultSchedule {
        &self.faults
    }

    /// True while `node` is down under a scripted crash window.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed[node]
    }

    /// Total messages delivered so far.
    pub fn delivered_messages(&self) -> u64 {
        self.messages.delivered
    }

    /// Message delivery counters: delivered, dropped (verdicts and cut
    /// links), duplicated (extra copies injected), and expired (addressed to
    /// a node that was down at delivery time).
    pub fn message_stats(&self) -> MessageStats {
        self.messages
    }

    /// Total events (start, message, timer) processed so far.
    pub fn processed_events(&self) -> u64 {
        self.processed_events
    }

    /// Total messages dispatched so far — the sequence space
    /// [`FaultSchedule::nudge_message`] indexes into. After a run this is the
    /// exclusive upper bound on meaningful nudge sequence numbers.
    pub fn dispatched_messages(&self) -> u64 {
        self.dispatch_seq
    }

    /// Installs behaviour-coverage instrumentation: `classify` maps each
    /// message to a small class (typically its enum discriminant), and the
    /// engine records the pair `(class, receiver phase tag)` at every
    /// delivery — plus `(class, 0xFFFF)` for messages that expire at a
    /// crashed receiver. The distinct pairs a run produced are read back with
    /// [`Engine::coverage_pairs`]. Without this call the engine records
    /// nothing and delivery stays zero-overhead.
    pub fn install_coverage(&mut self, classify: impl Fn(&M) -> u16 + 'static) {
        self.coverage_classify = Some(Box::new(classify));
    }

    /// The distinct `(message class, receiver phase tag)` pairs observed so
    /// far, in sorted order. Empty unless [`Engine::install_coverage`] was
    /// called.
    pub fn coverage_pairs(&self) -> impl Iterator<Item = (u16, u16)> + '_ {
        self.coverage_hits.iter().copied()
    }

    /// Allocates `kind` into the event arena and schedules it at `time`.
    /// The payload moves into the queue exactly once (see
    /// [`SimQueue::alloc`]'s `#[must_use]` id for why there is no
    /// by-reference variant to clone from).
    fn push_event(&mut self, time: SimTime, kind: EventKind<M>) {
        let (node, power) = Self::route(&kind);
        let id = self.queue.alloc(kind);
        self.queue.schedule(time, id, node, power);
    }

    /// The routing header of an event: destination node, and whether it is
    /// a power (crash/recover) event that bypasses the CPU/busy model.
    fn route(kind: &EventKind<M>) -> (NodeId, bool) {
        match kind {
            EventKind::Start { node } => (*node, false),
            EventKind::Message { to, .. } => (*to, false),
            EventKind::Timer { node, .. } => (*node, false),
            EventKind::Crash { node, .. } => (*node, true),
            EventKind::Recover { node } => (*node, true),
        }
    }

    fn schedule_start_events(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for node in 0..self.nodes.len() {
            self.push_event(SimTime::ZERO, EventKind::Start { node });
        }
        // Same-time events process in push order, so order the power events
        // chronologically with recoveries first: when one window's recovery
        // coincides with the next window's crash, the node must come up
        // before it goes down again, not end up alive through the second
        // window.
        let mut power: Vec<(SimTime, u8, NodeId, Option<SimTime>)> = Vec::new();
        for crash in self.faults.crashes() {
            assert!(
                crash.node < self.nodes.len(),
                "crash window names unknown node {}",
                crash.node
            );
            power.push((crash.at, 1, crash.node, crash.recover_at));
            if let Some(at) = crash.recover_at {
                power.push((at, 0, crash.node, None));
            }
        }
        power.sort_unstable();
        for (time, kind, node, recover_at) in power {
            if kind == 0 {
                self.push_event(time, EventKind::Recover { node });
            } else {
                self.push_event(time, EventKind::Crash { node, recover_at });
            }
        }
    }

    /// Schedules one sent message according to the network verdict.
    fn dispatch(&mut self, from: NodeId, to: NodeId, extra: SimDuration, msg: M) {
        // A scripted nudge stretches this dispatch's delivery by a fixed
        // extra delay, keyed on the global dispatch counter. It composes
        // with (never overrides) the network/fault verdict: a dropped
        // message stays dropped, a duplicate's both copies shift.
        let extra = match self.faults.nudge_for(self.dispatch_seq) {
            Some(nudge) => extra + nudge,
            None => extra,
        };
        self.dispatch_seq += 1;
        let base = self.net.delivery(self.now, self.regions[from], self.regions[to], &mut self.rng);
        let verdict = self.faults.verdict(
            self.now,
            self.regions[from],
            self.regions[to],
            &mut self.rng,
            base,
        );
        match verdict {
            Delivery::Deliver { latency } => {
                self.push_event(self.now + latency + extra, EventKind::Message { from, to, msg });
            }
            Delivery::Delay { latency, extra: fault_extra } => {
                self.push_event(
                    self.now + latency + extra + fault_extra,
                    EventKind::Message { from, to, msg },
                );
            }
            Delivery::Drop => {
                self.messages.dropped += 1;
            }
            Delivery::Duplicate { latency, echo_after } => {
                self.messages.duplicated += 1;
                let at = self.now + latency + extra;
                // The only cloning path in delivery: the echo copy is cloned
                // in-arena; the original is moved, never copied.
                let first = self.queue.alloc(EventKind::Message { from, to, msg });
                let echo = self.queue.alloc_duplicate(first);
                self.queue.schedule(at, first, to, false);
                self.queue.schedule(at + echo_after, echo, to, false);
            }
        }
    }

    /// Runs until the event queue is empty or [`EngineConfig::max_time`] is
    /// reached. Returns the final simulated time.
    pub fn run(&mut self) -> SimTime {
        self.run_until(self.cfg.max_time)
    }

    /// True when per-turn buffers are reused across turns. The reference
    /// engine allocates fresh ones per handler, exactly like the seed
    /// engine, so the `engine_hotpath` A/B measures the full before/after
    /// (queue layout *and* allocation discipline) in one binary.
    fn reuse_scratch(&self) -> bool {
        self.queue.kind() == QueueKind::Indexed
    }

    /// The outbox/timer buffers for one turn: the engine's scratch (empty,
    /// capacity warm) under the indexed queue, fresh allocations under the
    /// reference engine.
    #[allow(clippy::type_complexity)]
    fn take_turn_buffers(&mut self) -> (Vec<(NodeId, SimDuration, M)>, Vec<(SimDuration, u64)>) {
        if self.reuse_scratch() {
            (std::mem::take(&mut self.outbox_scratch), std::mem::take(&mut self.timers_scratch))
        } else {
            (Vec::new(), Vec::new())
        }
    }

    /// Hands (emptied) turn buffers back to the engine for reuse; the
    /// reference engine drops them, exactly like the seed engine did.
    fn return_turn_buffers(
        &mut self,
        outbox: Vec<(NodeId, SimDuration, M)>,
        timers: Vec<(SimDuration, u64)>,
    ) {
        debug_assert!(outbox.is_empty() && timers.is_empty());
        if self.reuse_scratch() {
            self.outbox_scratch = outbox;
            self.timers_scratch = timers;
        }
    }

    /// Drains the turn buffers into dispatched messages and scheduled timers
    /// for `node`, then hands the buffers — emptied, capacity intact — back
    /// to the engine for the next turn.
    fn flush_turn(
        &mut self,
        node: NodeId,
        mut outbox: Vec<(NodeId, SimDuration, M)>,
        mut timers: Vec<(SimDuration, u64)>,
    ) {
        for (to, extra, msg) in outbox.drain(..) {
            self.dispatch(node, to, extra, msg);
        }
        for (delay, tag) in timers.drain(..) {
            self.push_event(self.now + delay, EventKind::Timer { node, tag });
        }
        self.return_turn_buffers(outbox, timers);
    }

    /// Runs until the event queue is empty or the given deadline is reached.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        self.schedule_start_events();
        while let Some((head_time, head_node, head_power)) = self.queue.peek_head() {
            if head_time > deadline {
                break;
            }
            // Model CPU contention from the routing header alone: if the
            // target node is still busy, defer the head to when it frees up
            // without ever touching the payload. (Power events bypass the
            // busy model, and events for crashed nodes are handled below.)
            if !head_power && !self.crashed[head_node] {
                let busy = self.busy_until[head_node];
                if busy > head_time {
                    self.queue.defer_head(busy);
                    // Advance time to the event we deferred from, keeping
                    // `now` monotone for observers.
                    self.now = self.now.max(head_time);
                    continue;
                }
            }
            let (time, kind) = self.queue.pop().expect("peeked entry must exist");
            let node_id = head_node;
            // Crash and recover are external power events: they bypass the
            // CPU/busy model and the crashed-node filters below.
            match kind {
                EventKind::Crash { node, recover_at } => {
                    self.now = self.now.max(time);
                    self.processed_events += 1;
                    self.crashed[node] = true;
                    self.crashed_until[node] = recover_at;
                    self.busy_until[node] = self.now;
                    let (mut outbox, mut timers) = self.take_turn_buffers();
                    let mut ctx = Context {
                        now: self.now,
                        node_id: node,
                        rng: &mut self.rng,
                        truetime: &mut self.truetimes[node],
                        outbox: &mut outbox,
                        timers: &mut timers,
                    };
                    self.nodes[node].on_crash(&mut ctx);
                    let _ = ctx;
                    // A crashing node cannot act: discard anything the hook
                    // tried to send or schedule.
                    outbox.clear();
                    timers.clear();
                    self.return_turn_buffers(outbox, timers);
                    continue;
                }
                EventKind::Recover { node } => {
                    self.now = self.now.max(time);
                    self.processed_events += 1;
                    self.crashed[node] = false;
                    self.crashed_until[node] = None;
                    self.busy_until[node] = self.now;
                    let (mut outbox, mut timers) = self.take_turn_buffers();
                    let mut ctx = Context {
                        now: self.now,
                        node_id: node,
                        rng: &mut self.rng,
                        truetime: &mut self.truetimes[node],
                        outbox: &mut outbox,
                        timers: &mut timers,
                    };
                    self.nodes[node].on_recover(&mut ctx);
                    let _ = ctx;
                    self.flush_turn(node, outbox, timers);
                    continue;
                }
                _ => {}
            }
            if self.crashed[node_id] {
                self.now = self.now.max(time);
                match kind {
                    EventKind::Message { msg, .. } => {
                        // Addressed to a node that is down: the message is
                        // lost (the transport cannot hold it).
                        self.messages.expired += 1;
                        if let Some(classify) = &self.coverage_classify {
                            self.coverage_hits.insert((classify(&msg), 0xFFFF));
                        }
                    }
                    EventKind::Timer { node, tag } => {
                        // The durable state machine resumes after recovery:
                        // defer the timer to the recovery instant (or drop it
                        // if the node never comes back).
                        if let Some(recover_at) = self.crashed_until[node] {
                            self.push_event(recover_at, EventKind::Timer { node, tag });
                        }
                    }
                    EventKind::Start { .. } => {}
                    EventKind::Crash { .. } | EventKind::Recover { .. } => {
                        unreachable!("handled above")
                    }
                }
                continue;
            }
            self.now = self.now.max(time);
            self.busy_until[node_id] = self.now + self.service_times[node_id];
            self.processed_events += 1;

            let (mut outbox, mut timers) = self.take_turn_buffers();
            let mut ctx = Context {
                now: self.now,
                node_id,
                rng: &mut self.rng,
                truetime: &mut self.truetimes[node_id],
                outbox: &mut outbox,
                timers: &mut timers,
            };
            match kind {
                EventKind::Start { .. } => self.nodes[node_id].on_start(&mut ctx),
                EventKind::Message { from, msg, .. } => {
                    self.messages.delivered += 1;
                    if let Some(classify) = &self.coverage_classify {
                        self.coverage_hits
                            .insert((classify(&msg), self.nodes[node_id].phase_tag()));
                    }
                    self.nodes[node_id].on_message(&mut ctx, from, msg);
                }
                EventKind::Timer { tag, .. } => self.nodes[node_id].on_timer(&mut ctx, tag),
                EventKind::Crash { .. } | EventKind::Recover { .. } => {
                    unreachable!("handled above")
                }
            }
            let _ = ctx;
            self.flush_turn(node_id, outbox, timers);
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::LatencyMatrix;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    #[derive(Default)]
    struct PingNode {
        sent: u32,
        received_pongs: Vec<u32>,
        pong_times: Vec<SimTime>,
    }

    #[derive(Default)]
    struct EchoNode {
        received_pings: Vec<u32>,
    }

    enum TestNode {
        Ping(PingNode),
        Echo(EchoNode),
    }

    impl Node<Msg> for TestNode {
        fn on_start(&mut self, ctx: &mut Context<Msg>) {
            if let TestNode::Ping(p) = self {
                p.sent = 1;
                ctx.send(1, Msg::Ping(1));
                ctx.set_timer(SimDuration::from_millis(500), 7);
            }
        }

        fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
            match (self, msg) {
                (TestNode::Echo(e), Msg::Ping(n)) => {
                    e.received_pings.push(n);
                    ctx.send(from, Msg::Pong(n));
                }
                (TestNode::Ping(p), Msg::Pong(n)) => {
                    p.received_pongs.push(n);
                    p.pong_times.push(ctx.now());
                    if n < 3 {
                        p.sent += 1;
                        ctx.send(from, Msg::Ping(n + 1));
                    }
                }
                _ => {}
            }
        }

        fn on_timer(&mut self, _ctx: &mut Context<Msg>, tag: u64) {
            if let TestNode::Ping(p) = self {
                assert_eq!(tag, 7);
                p.received_pongs.push(1000);
            }
        }
    }

    fn build_engine(seed: u64) -> Engine<Msg, TestNode> {
        let cfg = EngineConfig {
            default_service_time: SimDuration::from_micros(10),
            max_time: SimTime::from_secs(10),
            truetime_epsilon: SimDuration::from_millis(5),
            ..EngineConfig::default()
        };
        let net = LatencyMatrix::spanner_wan();
        let mut engine = Engine::new(cfg, net, seed);
        engine.add_node(TestNode::Ping(PingNode::default()), 0);
        engine.add_node(TestNode::Echo(EchoNode::default()), 1);
        engine
    }

    #[test]
    fn ping_pong_round_trips_match_wan_latency() {
        let mut engine = build_engine(1);
        engine.run();
        let ping = match engine.node(0) {
            TestNode::Ping(p) => p,
            _ => panic!("node 0 must be the ping node"),
        };
        // Three pongs plus the timer marker.
        assert_eq!(ping.received_pongs.iter().filter(|&&n| n < 1000).count(), 3);
        assert!(ping.received_pongs.contains(&1000));
        // First pong arrives no earlier than one CA-VA round trip (62 ms).
        assert!(ping.pong_times[0] >= SimTime::from_millis(62));
        // And within a couple ms of it (jitter + service time).
        assert!(ping.pong_times[0] <= SimTime::from_millis(65));
        let echo = match engine.node(1) {
            TestNode::Echo(e) => e,
            _ => panic!("node 1 must be the echo node"),
        };
        assert_eq!(echo.received_pings, vec![1, 2, 3]);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = build_engine(99);
        let mut b = build_engine(99);
        a.run();
        b.run();
        let (pa, pb) = match (a.node(0), b.node(0)) {
            (TestNode::Ping(x), TestNode::Ping(y)) => (x, y),
            _ => panic!("node 0 must be the ping node"),
        };
        assert_eq!(pa.pong_times, pb.pong_times);
        assert_eq!(a.processed_events(), b.processed_events());
    }

    #[test]
    fn different_seeds_change_jitter() {
        let mut a = build_engine(1);
        let mut b = build_engine(2);
        a.run();
        b.run();
        let (pa, pb) = match (a.node(0), b.node(0)) {
            (TestNode::Ping(x), TestNode::Ping(y)) => (x, y),
            _ => panic!("node 0 must be the ping node"),
        };
        // Jitter is sampled from the seeded RNG, so times should differ.
        assert_ne!(pa.pong_times, pb.pong_times);
    }

    #[test]
    fn run_until_stops_early() {
        let mut engine = build_engine(1);
        engine.run_until(SimTime::from_millis(10));
        let ping = match engine.node(0) {
            TestNode::Ping(p) => p,
            _ => panic!("node 0 must be the ping node"),
        };
        // No pong can arrive within 10 ms over a 62 ms RTT.
        assert!(ping.received_pongs.is_empty());
        assert!(engine.now() <= SimTime::from_millis(10));
    }

    /// A node that floods itself with timers to exercise the busy/service-time
    /// queueing path.
    struct BusyNode {
        handled: u64,
        last_handled_at: SimTime,
    }

    impl Node<Msg> for BusyNode {
        fn on_start(&mut self, ctx: &mut Context<Msg>) {
            // Schedule 100 timers at the same instant.
            for _ in 0..100 {
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<Msg>, _from: NodeId, _msg: Msg) {}
        fn on_timer(&mut self, ctx: &mut Context<Msg>, _tag: u64) {
            self.handled += 1;
            self.last_handled_at = ctx.now();
        }
    }

    /// A node that pings a peer every 100 ms and records replies; used by the
    /// fault tests.
    struct Chatter {
        peer: NodeId,
        got: u64,
        pings_heard: u64,
        crashes: u64,
        recoveries: u64,
    }

    impl Node<Msg> for Chatter {
        fn on_start(&mut self, ctx: &mut Context<Msg>) {
            ctx.set_timer(SimDuration::from_millis(100), 1);
        }
        fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
            match msg {
                Msg::Ping(n) => {
                    self.pings_heard += 1;
                    ctx.send(from, Msg::Pong(n));
                }
                Msg::Pong(_) => self.got += 1,
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<Msg>, _tag: u64) {
            ctx.send(self.peer, Msg::Ping(1));
            if ctx.now() < SimTime::from_secs(10) {
                ctx.set_timer(SimDuration::from_millis(100), 1);
            }
        }
        fn on_crash(&mut self, _ctx: &mut Context<Msg>) {
            self.crashes += 1;
        }
        fn on_recover(&mut self, _ctx: &mut Context<Msg>) {
            self.recoveries += 1;
        }
    }

    fn chatter_engine(seed: u64) -> Engine<Msg, Chatter> {
        let cfg = EngineConfig {
            default_service_time: SimDuration::from_micros(10),
            max_time: SimTime::from_secs(12),
            truetime_epsilon: SimDuration::ZERO,
            ..EngineConfig::default()
        };
        // Two regions, 10 ms one-way.
        let net = LatencyMatrix::from_rtt_ms(&[&[0.2, 20.0], &[20.0, 0.2]], SimDuration::ZERO);
        let mut engine = Engine::new(cfg, net, seed);
        engine.add_node(Chatter { peer: 1, got: 0, pings_heard: 0, crashes: 0, recoveries: 0 }, 0);
        engine.add_node(Chatter { peer: 0, got: 0, pings_heard: 0, crashes: 0, recoveries: 0 }, 1);
        engine
    }

    #[test]
    fn crashed_nodes_expire_messages_and_hooks_fire() {
        let mut engine = chatter_engine(1);
        engine.install_faults(FaultSchedule::new().crash(
            1,
            SimTime::from_secs(2),
            SimTime::from_secs(4),
        ));
        engine.run();
        let healthy = {
            let mut e = chatter_engine(1);
            e.run();
            e.node(0).got
        };
        assert_eq!(engine.node(1).crashes, 1);
        assert_eq!(engine.node(1).recoveries, 1);
        // Pings sent into the 2-second outage expire; the sender hears fewer
        // pongs than in the healthy run but traffic resumes after recovery.
        let stats = engine.message_stats();
        assert!(stats.expired >= 15, "~20 pings expire at the crashed node ({stats:?})");
        assert!(engine.node(0).got < healthy, "the outage cost replies");
        assert!(engine.node(0).got > healthy / 2, "traffic resumed after recovery");
        assert!(!engine.is_crashed(1), "recovered by the end of the run");
    }

    #[test]
    fn partition_drops_messages_on_cut_links_only() {
        let mut engine = chatter_engine(2);
        engine.install_faults(FaultSchedule::new().partition_region(
            Region(1),
            SimTime::from_secs(2),
            SimTime::from_secs(5),
        ));
        engine.run();
        let stats = engine.message_stats();
        // Both directions of the cross-region link are cut for 3 s: ~30 pings
        // from each side are dropped at send time.
        assert!(stats.dropped >= 40, "cut-link sends are dropped ({stats:?})");
        assert_eq!(stats.expired, 0, "no node crashed");
        assert!(engine.node(0).got > 0 && engine.node(1).got > 0, "both sides resume after heal");
    }

    #[test]
    fn oneway_cut_drops_only_one_direction() {
        // Cut region 0 -> region 1 for most of the run. Node 0's pings (and
        // its pongs answering node 1) vanish at the send, so node 1 hears
        // nothing; node 1's pings still cross 1 -> 0 and node 0 keeps
        // hearing them. That inbound asymmetry is the one-way signature —
        // a symmetric Pair cut would starve both inboxes equally.
        let mut engine = chatter_engine(8);
        engine.install_faults(FaultSchedule::new().cut_link_oneway(
            Region(0),
            Region(1),
            SimTime::from_secs(1),
            SimTime::from_secs(9),
        ));
        engine.run();
        let stats = engine.message_stats();
        assert!(stats.dropped >= 100, "all 0->1 sends were dropped ({stats:?})");
        assert_eq!(stats.expired, 0, "no node crashed");
        let (zero, one) = (engine.node(0), engine.node(1));
        assert!(
            zero.pings_heard >= one.pings_heard + 60,
            "node 0 keeps receiving on the healthy direction ({} vs {})",
            zero.pings_heard,
            one.pings_heard
        );
        assert!(one.pings_heard < 25, "node 1's inbound link is cut ({})", one.pings_heard);
    }

    #[test]
    fn duplicate_windows_inject_extra_copies() {
        let mut engine = chatter_engine(3);
        engine.install_faults(FaultSchedule::new().duplicate_window(
            crate::fault::LinkScope::All,
            SimTime::from_secs(1),
            SimTime::from_secs(9),
            1.0,
        ));
        engine.run();
        let stats = engine.message_stats();
        assert!(stats.duplicated > 100, "every in-window message is duplicated ({stats:?})");
        // Duplicated pongs are counted twice by the receiver: protocols must
        // tolerate duplicates (the protocol crates dedup by op id).
        assert!(engine.node(0).got > engine.node(1).got / 2);
    }

    #[test]
    fn faulty_runs_are_deterministic_for_a_seed() {
        let schedule = || {
            FaultSchedule::new().crash(1, SimTime::from_secs(2), SimTime::from_secs(3)).drop_window(
                crate::fault::LinkScope::All,
                SimTime::from_secs(4),
                SimTime::from_secs(6),
                0.3,
            )
        };
        let mut a = chatter_engine(9);
        a.install_faults(schedule());
        let mut b = chatter_engine(9);
        b.install_faults(schedule());
        a.run();
        b.run();
        assert_eq!(a.message_stats(), b.message_stats());
        assert_eq!(a.node(0).got, b.node(0).got);
        assert_eq!(a.processed_events(), b.processed_events());
    }

    #[test]
    fn timers_of_crashed_nodes_defer_to_recovery() {
        // Node 1 sets a timer for t=2.5 s and is down [2 s, 4 s): the timer
        // must fire right after recovery, not be lost.
        struct OneTimer {
            fired_at: Option<SimTime>,
        }
        impl Node<Msg> for OneTimer {
            fn on_start(&mut self, ctx: &mut Context<Msg>) {
                ctx.set_timer(SimDuration::from_millis(2_500), 7);
            }
            fn on_message(&mut self, _: &mut Context<Msg>, _: NodeId, _: Msg) {}
            fn on_timer(&mut self, ctx: &mut Context<Msg>, _tag: u64) {
                self.fired_at = Some(ctx.now());
            }
        }
        let cfg = EngineConfig::default();
        let net = LatencyMatrix::single_region(SimDuration::from_millis(1));
        let mut engine: Engine<Msg, OneTimer> = Engine::new(cfg, net, 4);
        engine.add_node(OneTimer { fired_at: None }, 0);
        engine.install_faults(FaultSchedule::new().crash(
            0,
            SimTime::from_secs(2),
            SimTime::from_secs(4),
        ));
        engine.run();
        assert_eq!(engine.node(0).fired_at, Some(SimTime::from_secs(4)));
    }

    #[test]
    fn back_to_back_crash_windows_keep_the_node_down() {
        // Two adjacent windows, listed out of chronological order: at the
        // shared boundary (t = 4 s) the first window's recovery must process
        // before the second window's crash, leaving the node down through
        // [2 s, 6 s) with an instantaneous blip at 4 s.
        let mut engine = chatter_engine(6);
        engine.install_faults(
            FaultSchedule::new().crash(1, SimTime::from_secs(4), SimTime::from_secs(6)).crash(
                1,
                SimTime::from_secs(2),
                SimTime::from_secs(4),
            ),
        );
        engine.run_until(SimTime::from_secs(5));
        assert!(engine.is_crashed(1), "still inside the second window at t = 5 s");
        engine.run();
        assert!(!engine.is_crashed(1));
        assert_eq!(engine.node(1).crashes, 2);
        assert_eq!(engine.node(1).recoveries, 2);
    }

    #[test]
    #[should_panic(expected = "crash windows of node 0 overlap")]
    fn overlapping_crash_windows_are_rejected() {
        let mut engine = chatter_engine(1);
        engine.install_faults(
            FaultSchedule::new().crash(0, SimTime::from_secs(1), SimTime::from_secs(3)).crash(
                0,
                SimTime::from_secs(2),
                SimTime::from_secs(4),
            ),
        );
    }

    #[test]
    fn service_time_serializes_event_handling() {
        let cfg = EngineConfig {
            default_service_time: SimDuration::from_micros(100),
            max_time: SimTime::from_secs(10),
            truetime_epsilon: SimDuration::ZERO,
            ..EngineConfig::default()
        };
        let net = LatencyMatrix::single_region(SimDuration::from_micros(50));
        let mut engine: Engine<Msg, BusyNode> = Engine::new(cfg, net, 5);
        engine.add_node(BusyNode { handled: 0, last_handled_at: SimTime::ZERO }, 0);
        engine.run();
        let node = engine.node(0);
        assert_eq!(node.handled, 100);
        // 100 events at 100 µs each cannot all finish before ~1 ms + 99 * 100 µs.
        assert!(node.last_handled_at >= SimTime::from_micros(1_000 + 99 * 100));
    }
}
