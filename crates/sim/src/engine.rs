//! The discrete-event engine driving protocol nodes.
//!
//! Protocols (Spanner, Spanner-RSS, Gryff, Gryff-RSC) are written as
//! deterministic state machines implementing [`Node`]. Nodes react to
//! delivered messages and expired timers through a [`Context`] that lets them
//! send messages, set timers, read the simulated clock, query TrueTime, and
//! draw random numbers from the engine's seeded generator.
//!
//! # Time model
//!
//! * Message delivery latency is one-way WAN latency between the sender's and
//!   receiver's regions (plus jitter), sampled from the engine's
//!   [`LatencyMatrix`], plus any extra delay requested by the sender.
//! * Each node has a *service time*: the CPU cost of handling one event. If a
//!   message arrives while the node is still busy, its processing is delayed
//!   until the node frees up. This produces queueing, which is what makes the
//!   throughput/latency experiments (Figure 6, §7.4) saturate realistically.
//! * Events scheduled for the same instant are processed in scheduling order,
//!   which keeps runs bit-for-bit deterministic for a fixed seed.

use std::cmp::Ordering;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::net::{LatencyMatrix, Region};
use crate::time::{SimDuration, SimTime};
use crate::truetime::{TrueTime, TtInterval};

/// Index of a node within the engine.
pub type NodeId = usize;

/// A protocol participant driven by the engine.
///
/// All methods receive a [`Context`] used to interact with the simulated
/// world. Implementations must be deterministic given the context's RNG.
pub trait Node<M>: 'static {
    /// Called once when the simulation starts, before any message delivery.
    fn on_start(&mut self, _ctx: &mut Context<M>) {}

    /// Called when a message from `from` is delivered to this node.
    fn on_message(&mut self, ctx: &mut Context<M>, from: NodeId, msg: M);

    /// Called when a timer previously set with [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<M>, _tag: u64) {}
}

/// Engine-wide configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// CPU cost of handling one event at a node, unless overridden per node.
    pub default_service_time: SimDuration,
    /// Hard stop: events scheduled after this instant are not processed.
    pub max_time: SimTime,
    /// TrueTime uncertainty bound ε for all nodes.
    pub truetime_epsilon: SimDuration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            default_service_time: SimDuration::from_micros(10),
            max_time: SimTime::from_secs(3_600),
            truetime_epsilon: SimDuration::ZERO,
        }
    }
}

enum EventKind<M> {
    Start { node: NodeId },
    Message { from: NodeId, to: NodeId, msg: M },
    Timer { node: NodeId, tag: u64 },
}

struct EventEntry<M> {
    time: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for EventEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for EventEntry<M> {}
impl<M> PartialOrd for EventEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for EventEntry<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The node-facing handle into the simulation.
pub struct Context<'a, M> {
    now: SimTime,
    node_id: NodeId,
    rng: &'a mut SmallRng,
    truetime: &'a mut TrueTime,
    /// Messages to send: (destination, extra delay, message).
    outbox: Vec<(NodeId, SimDuration, M)>,
    /// Timers to set: (delay, tag).
    timers: Vec<(SimDuration, u64)>,
}

impl<'a, M> Context<'a, M> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The identifier of the node being invoked.
    pub fn node_id(&self) -> NodeId {
        self.node_id
    }

    /// Sends `msg` to node `to` with network latency only.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push((to, SimDuration::ZERO, msg));
    }

    /// Sends `msg` to node `to`, adding `extra` delay on top of the network
    /// latency (used, e.g., to model replication to a majority).
    pub fn send_after(&mut self, to: NodeId, extra: SimDuration, msg: M) {
        self.outbox.push((to, extra, msg));
    }

    /// Schedules [`Node::on_timer`] to fire on this node after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        self.timers.push((delay, tag));
    }

    /// Reads this node's TrueTime clock.
    pub fn truetime_now(&mut self) -> TtInterval {
        self.truetime.now(self.now)
    }

    /// The TrueTime uncertainty bound ε.
    pub fn truetime_epsilon(&self) -> SimDuration {
        self.truetime.epsilon()
    }

    /// The engine's deterministic random number generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Runs `f` with a context typed for an *embedded* protocol whose message
    /// type `P` can be lifted into this simulation's message type `M`.
    ///
    /// This is the substrate for multi-protocol simulations (see
    /// [`crate::compose`]): a node written against `Context<P>` can run
    /// unchanged inside an engine whose wire type is an enum over several
    /// protocols. Messages the inner node sends are converted with
    /// `P::into()`; timers and the clock/TrueTime/RNG state are shared with
    /// the outer context.
    pub fn with_protocol<P, R>(&mut self, f: impl FnOnce(&mut Context<'_, P>) -> R) -> R
    where
        P: Into<M>,
    {
        self.with_protocol_tagged(|t| t, f)
    }

    /// [`Context::with_protocol`] with a timer-tag transform applied to every
    /// timer the inner protocol sets. Hosts that embed *several* protocol
    /// state machines in one node use it to keep their timer namespaces
    /// disjoint (the host applies the inverse transform before delivering
    /// `on_timer`).
    pub fn with_protocol_tagged<P, R>(
        &mut self,
        map_tag: impl Fn(u64) -> u64,
        f: impl FnOnce(&mut Context<'_, P>) -> R,
    ) -> R
    where
        P: Into<M>,
    {
        let mut inner: Context<'_, P> = Context {
            now: self.now,
            node_id: self.node_id,
            rng: &mut *self.rng,
            truetime: &mut *self.truetime,
            outbox: Vec::new(),
            timers: Vec::new(),
        };
        let r = f(&mut inner);
        let Context { outbox, timers, .. } = inner;
        for (to, extra, msg) in outbox {
            self.outbox.push((to, extra, msg.into()));
        }
        for (delay, tag) in timers {
            self.timers.push((delay, map_tag(tag)));
        }
        r
    }
}

/// The discrete-event engine.
///
/// `M` is the protocol's message type; `N` is the node type (typically an enum
/// over the protocol's roles so the harness can inspect nodes after the run).
pub struct Engine<M, N> {
    cfg: EngineConfig,
    net: LatencyMatrix,
    nodes: Vec<N>,
    regions: Vec<Region>,
    service_times: Vec<SimDuration>,
    truetimes: Vec<TrueTime>,
    busy_until: Vec<SimTime>,
    queue: BinaryHeap<Reverse<EventEntry<M>>>,
    now: SimTime,
    seq: u64,
    rng: SmallRng,
    started: bool,
    delivered_messages: u64,
    processed_events: u64,
    seed: u64,
}

impl<M: 'static, N: Node<M>> Engine<M, N> {
    /// Creates an engine with the given configuration, network model, and
    /// random seed.
    pub fn new(cfg: EngineConfig, net: LatencyMatrix, seed: u64) -> Self {
        Engine {
            cfg,
            net,
            nodes: Vec::new(),
            regions: Vec::new(),
            service_times: Vec::new(),
            truetimes: Vec::new(),
            busy_until: Vec::new(),
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            rng: SmallRng::seed_from_u64(seed),
            started: false,
            delivered_messages: 0,
            processed_events: 0,
            seed,
        }
    }

    /// Adds a node placed in `region`, returning its [`NodeId`].
    pub fn add_node(&mut self, node: N, region: usize) -> NodeId {
        self.add_node_with(node, region, self.cfg.default_service_time)
    }

    /// Adds a node with an explicit per-event service time.
    pub fn add_node_with(&mut self, node: N, region: usize, service_time: SimDuration) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(node);
        self.regions.push(Region(region));
        self.service_times.push(service_time);
        self.truetimes
            .push(TrueTime::new(self.cfg.truetime_epsilon, self.seed.wrapping_add(id as u64 * 77)));
        self.busy_until.push(SimTime::ZERO);
        id
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable access to a node (typically after the run, to read metrics).
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id]
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id]
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &N> {
        self.nodes.iter()
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The region a node was placed in.
    pub fn region_of(&self, id: NodeId) -> Region {
        self.regions[id]
    }

    /// The network model.
    pub fn network(&self) -> &LatencyMatrix {
        &self.net
    }

    /// Total messages delivered so far.
    pub fn delivered_messages(&self) -> u64 {
        self.delivered_messages
    }

    /// Total events (start, message, timer) processed so far.
    pub fn processed_events(&self) -> u64 {
        self.processed_events
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(EventEntry { time, seq, kind }));
    }

    fn schedule_start_events(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for node in 0..self.nodes.len() {
            self.push_event(SimTime::ZERO, EventKind::Start { node });
        }
    }

    /// Runs until the event queue is empty or [`EngineConfig::max_time`] is
    /// reached. Returns the final simulated time.
    pub fn run(&mut self) -> SimTime {
        self.run_until(self.cfg.max_time)
    }

    /// Runs until the event queue is empty or the given deadline is reached.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        self.schedule_start_events();
        while let Some(Reverse(entry)) = self.queue.peek() {
            if entry.time > deadline {
                break;
            }
            let Reverse(entry) = self.queue.pop().expect("peeked entry must exist");
            let node_id = match &entry.kind {
                EventKind::Start { node } => *node,
                EventKind::Message { to, .. } => *to,
                EventKind::Timer { node, .. } => *node,
            };
            // Model CPU contention: if the target node is still busy, push the
            // event back to when the node frees up.
            let busy = self.busy_until[node_id];
            if busy > entry.time {
                self.push_event(busy, entry.kind);
                // Advance time to the event we deferred from, keeping `now`
                // monotone for observers.
                self.now = self.now.max(entry.time);
                continue;
            }
            self.now = self.now.max(entry.time);
            self.busy_until[node_id] = self.now + self.service_times[node_id];
            self.processed_events += 1;

            let mut ctx = Context {
                now: self.now,
                node_id,
                rng: &mut self.rng,
                truetime: &mut self.truetimes[node_id],
                outbox: Vec::new(),
                timers: Vec::new(),
            };
            match entry.kind {
                EventKind::Start { .. } => self.nodes[node_id].on_start(&mut ctx),
                EventKind::Message { from, msg, .. } => {
                    self.delivered_messages += 1;
                    self.nodes[node_id].on_message(&mut ctx, from, msg);
                }
                EventKind::Timer { tag, .. } => self.nodes[node_id].on_timer(&mut ctx, tag),
            }
            let Context { outbox, timers, .. } = ctx;
            for (to, extra, msg) in outbox {
                let latency =
                    self.net.sample_one_way(self.regions[node_id], self.regions[to], &mut self.rng);
                let at = self.now + latency + extra;
                self.push_event(at, EventKind::Message { from: node_id, to, msg });
            }
            for (delay, tag) in timers {
                let at = self.now + delay;
                self.push_event(at, EventKind::Timer { node: node_id, tag });
            }
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    #[derive(Default)]
    struct PingNode {
        sent: u32,
        received_pongs: Vec<u32>,
        pong_times: Vec<SimTime>,
    }

    #[derive(Default)]
    struct EchoNode {
        received_pings: Vec<u32>,
    }

    enum TestNode {
        Ping(PingNode),
        Echo(EchoNode),
    }

    impl Node<Msg> for TestNode {
        fn on_start(&mut self, ctx: &mut Context<Msg>) {
            if let TestNode::Ping(p) = self {
                p.sent = 1;
                ctx.send(1, Msg::Ping(1));
                ctx.set_timer(SimDuration::from_millis(500), 7);
            }
        }

        fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
            match (self, msg) {
                (TestNode::Echo(e), Msg::Ping(n)) => {
                    e.received_pings.push(n);
                    ctx.send(from, Msg::Pong(n));
                }
                (TestNode::Ping(p), Msg::Pong(n)) => {
                    p.received_pongs.push(n);
                    p.pong_times.push(ctx.now());
                    if n < 3 {
                        p.sent += 1;
                        ctx.send(from, Msg::Ping(n + 1));
                    }
                }
                _ => {}
            }
        }

        fn on_timer(&mut self, _ctx: &mut Context<Msg>, tag: u64) {
            if let TestNode::Ping(p) = self {
                assert_eq!(tag, 7);
                p.received_pongs.push(1000);
            }
        }
    }

    fn build_engine(seed: u64) -> Engine<Msg, TestNode> {
        let cfg = EngineConfig {
            default_service_time: SimDuration::from_micros(10),
            max_time: SimTime::from_secs(10),
            truetime_epsilon: SimDuration::from_millis(5),
        };
        let net = LatencyMatrix::spanner_wan();
        let mut engine = Engine::new(cfg, net, seed);
        engine.add_node(TestNode::Ping(PingNode::default()), 0);
        engine.add_node(TestNode::Echo(EchoNode::default()), 1);
        engine
    }

    #[test]
    fn ping_pong_round_trips_match_wan_latency() {
        let mut engine = build_engine(1);
        engine.run();
        let ping = match engine.node(0) {
            TestNode::Ping(p) => p,
            _ => panic!("node 0 must be the ping node"),
        };
        // Three pongs plus the timer marker.
        assert_eq!(ping.received_pongs.iter().filter(|&&n| n < 1000).count(), 3);
        assert!(ping.received_pongs.contains(&1000));
        // First pong arrives no earlier than one CA-VA round trip (62 ms).
        assert!(ping.pong_times[0] >= SimTime::from_millis(62));
        // And within a couple ms of it (jitter + service time).
        assert!(ping.pong_times[0] <= SimTime::from_millis(65));
        let echo = match engine.node(1) {
            TestNode::Echo(e) => e,
            _ => panic!("node 1 must be the echo node"),
        };
        assert_eq!(echo.received_pings, vec![1, 2, 3]);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = build_engine(99);
        let mut b = build_engine(99);
        a.run();
        b.run();
        let (pa, pb) = match (a.node(0), b.node(0)) {
            (TestNode::Ping(x), TestNode::Ping(y)) => (x, y),
            _ => panic!("node 0 must be the ping node"),
        };
        assert_eq!(pa.pong_times, pb.pong_times);
        assert_eq!(a.processed_events(), b.processed_events());
    }

    #[test]
    fn different_seeds_change_jitter() {
        let mut a = build_engine(1);
        let mut b = build_engine(2);
        a.run();
        b.run();
        let (pa, pb) = match (a.node(0), b.node(0)) {
            (TestNode::Ping(x), TestNode::Ping(y)) => (x, y),
            _ => panic!("node 0 must be the ping node"),
        };
        // Jitter is sampled from the seeded RNG, so times should differ.
        assert_ne!(pa.pong_times, pb.pong_times);
    }

    #[test]
    fn run_until_stops_early() {
        let mut engine = build_engine(1);
        engine.run_until(SimTime::from_millis(10));
        let ping = match engine.node(0) {
            TestNode::Ping(p) => p,
            _ => panic!("node 0 must be the ping node"),
        };
        // No pong can arrive within 10 ms over a 62 ms RTT.
        assert!(ping.received_pongs.is_empty());
        assert!(engine.now() <= SimTime::from_millis(10));
    }

    /// A node that floods itself with timers to exercise the busy/service-time
    /// queueing path.
    struct BusyNode {
        handled: u64,
        last_handled_at: SimTime,
    }

    impl Node<Msg> for BusyNode {
        fn on_start(&mut self, ctx: &mut Context<Msg>) {
            // Schedule 100 timers at the same instant.
            for _ in 0..100 {
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<Msg>, _from: NodeId, _msg: Msg) {}
        fn on_timer(&mut self, ctx: &mut Context<Msg>, _tag: u64) {
            self.handled += 1;
            self.last_handled_at = ctx.now();
        }
    }

    #[test]
    fn service_time_serializes_event_handling() {
        let cfg = EngineConfig {
            default_service_time: SimDuration::from_micros(100),
            max_time: SimTime::from_secs(10),
            truetime_epsilon: SimDuration::ZERO,
        };
        let net = LatencyMatrix::single_region(SimDuration::from_micros(50));
        let mut engine: Engine<Msg, BusyNode> = Engine::new(cfg, net, 5);
        engine.add_node(BusyNode { handled: 0, last_handled_at: SimTime::ZERO }, 0);
        engine.run();
        let node = engine.node(0);
        assert_eq!(node.handled, 100);
        // 100 events at 100 µs each cannot all finish before ~1 ms + 99 * 100 µs.
        assert!(node.last_handled_at >= SimTime::from_micros(1_000 + 99 * 100));
    }
}
