//! Latency and throughput metrics used to regenerate the paper's figures.
//!
//! The paper reports tail-latency CDFs (Figures 5 and 7), percentile columns
//! (p99, p99.9), and throughput-versus-median-latency curves (Figure 6 and
//! §7.4). [`LatencyRecorder`] collects per-operation latencies and produces
//! percentiles and CDF rows; [`ThroughputRecorder`] counts completed
//! operations over a measurement window.

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// Message delivery counters kept by the engine, including the fault plane's
/// outcomes (see [`crate::fault::FaultSchedule`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageStats {
    /// Messages delivered to a live node (both copies of a duplicate count).
    pub delivered: u64,
    /// Messages dropped by a network verdict, drop window, or cut link.
    pub dropped: u64,
    /// Extra message copies injected by duplicate verdicts.
    pub duplicated: u64,
    /// Messages that arrived at a node while it was crashed and were lost.
    pub expired: u64,
}

impl MessageStats {
    /// Sums the counters of two recorders (e.g. across simulations).
    pub fn merged(self, other: MessageStats) -> MessageStats {
        MessageStats {
            delivered: self.delivered + other.delivered,
            dropped: self.dropped + other.dropped,
            duplicated: self.duplicated + other.duplicated,
            expired: self.expired + other.expired,
        }
    }

    /// Messages lost for any reason (dropped or expired).
    pub fn lost(&self) -> u64 {
        self.dropped + self.expired
    }
}

/// Collects individual operation latencies and answers percentile queries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyRecorder {
    samples_us: Vec<u64>,
    sorted: bool,
}

/// A single row of a latency CDF: fraction of operations completing within
/// `latency`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CdfPoint {
    /// Cumulative fraction in `[0, 1]`.
    pub fraction: f64,
    /// Latency at that fraction.
    pub latency: SimDuration,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: SimDuration) {
        self.samples_us.push(latency.as_micros());
        self.sorted = false;
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// Merges all samples from `other` into `self`.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples_us.extend_from_slice(&other.samples_us);
        self.sorted = false;
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples_us.sort_unstable();
            self.sorted = true;
        }
    }

    /// Returns the `p`-th percentile latency (`p` in `[0, 100]`), or `None`
    /// if no samples were recorded.
    ///
    /// Uses the nearest-rank method, which is what latency-measurement
    /// frameworks in the systems literature typically report.
    pub fn percentile(&mut self, p: f64) -> Option<SimDuration> {
        if self.samples_us.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.samples_us.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        let idx = rank.clamp(1, n) - 1;
        Some(SimDuration::from_micros(self.samples_us[idx]))
    }

    /// Median latency.
    pub fn median(&mut self) -> Option<SimDuration> {
        self.percentile(50.0)
    }

    /// Arithmetic mean latency.
    pub fn mean(&self) -> Option<SimDuration> {
        if self.samples_us.is_empty() {
            return None;
        }
        let sum: u128 = self.samples_us.iter().map(|&v| v as u128).sum();
        Some(SimDuration::from_micros((sum / self.samples_us.len() as u128) as u64))
    }

    /// Maximum latency.
    pub fn max(&mut self) -> Option<SimDuration> {
        self.ensure_sorted();
        self.samples_us.last().map(|&us| SimDuration::from_micros(us))
    }

    /// Produces the CDF at the given fractions (e.g. `[0.5, 0.9, 0.99, 0.999]`).
    pub fn cdf(&mut self, fractions: &[f64]) -> Vec<CdfPoint> {
        fractions
            .iter()
            .filter_map(|&f| {
                self.percentile(f * 100.0).map(|latency| CdfPoint { fraction: f, latency })
            })
            .collect()
    }

    /// Produces a complete CDF suitable for plotting: one point per sample,
    /// downsampled to at most `max_points` points.
    pub fn full_cdf(&mut self, max_points: usize) -> Vec<CdfPoint> {
        if self.samples_us.is_empty() || max_points == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.samples_us.len();
        let step = (n / max_points).max(1);
        let mut points = Vec::new();
        let mut i = step - 1;
        while i < n {
            points.push(CdfPoint {
                fraction: (i + 1) as f64 / n as f64,
                latency: SimDuration::from_micros(self.samples_us[i]),
            });
            i += step;
        }
        if points.last().map(|p| p.fraction) != Some(1.0) {
            points.push(CdfPoint {
                fraction: 1.0,
                latency: SimDuration::from_micros(self.samples_us[n - 1]),
            });
        }
        points
    }
}

/// Counts operations completed within a measurement window to compute
/// throughput, optionally excluding a warm-up prefix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputRecorder {
    window_start: SimTime,
    window_end: SimTime,
    completed: u64,
}

impl ThroughputRecorder {
    /// Creates a recorder counting completions in `[window_start, window_end)`.
    pub fn new(window_start: SimTime, window_end: SimTime) -> Self {
        ThroughputRecorder { window_start, window_end, completed: 0 }
    }

    /// Records an operation that completed at `at`.
    pub fn record(&mut self, at: SimTime) {
        if at >= self.window_start && at < self.window_end {
            self.completed += 1;
        }
    }

    /// Number of completions inside the window.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Throughput in operations per second over the window.
    pub fn ops_per_sec(&self) -> f64 {
        let window = self.window_end.since(self.window_start).as_micros();
        if window == 0 {
            return 0.0;
        }
        self.completed as f64 * 1_000_000.0 / window as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder_with(samples_ms: &[u64]) -> LatencyRecorder {
        let mut r = LatencyRecorder::new();
        for &ms in samples_ms {
            r.record(SimDuration::from_millis(ms));
        }
        r
    }

    #[test]
    fn empty_recorder() {
        let mut r = LatencyRecorder::new();
        assert!(r.is_empty());
        assert_eq!(r.percentile(50.0), None);
        assert_eq!(r.mean(), None);
        assert!(r.full_cdf(10).is_empty());
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut r = recorder_with(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(r.percentile(50.0), Some(SimDuration::from_millis(5)));
        assert_eq!(r.percentile(90.0), Some(SimDuration::from_millis(9)));
        assert_eq!(r.percentile(99.0), Some(SimDuration::from_millis(10)));
        assert_eq!(r.percentile(100.0), Some(SimDuration::from_millis(10)));
        assert_eq!(r.percentile(0.0), Some(SimDuration::from_millis(1)));
    }

    #[test]
    fn mean_and_max() {
        let mut r = recorder_with(&[2, 4, 6]);
        assert_eq!(r.mean(), Some(SimDuration::from_millis(4)));
        assert_eq!(r.max(), Some(SimDuration::from_millis(6)));
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = recorder_with(&[1, 2]);
        let b = recorder_with(&[3, 4]);
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.percentile(100.0), Some(SimDuration::from_millis(4)));
    }

    #[test]
    fn cdf_points_are_monotone() {
        let mut r = recorder_with(&[5, 1, 9, 3, 7, 2, 8, 4, 6, 10]);
        let cdf = r.full_cdf(5);
        assert!(!cdf.is_empty());
        for w in cdf.windows(2) {
            assert!(w[0].fraction <= w[1].fraction);
            assert!(w[0].latency <= w[1].latency);
        }
        assert_eq!(cdf.last().unwrap().fraction, 1.0);
        assert_eq!(cdf.last().unwrap().latency, SimDuration::from_millis(10));
    }

    #[test]
    fn cdf_named_fractions() {
        let mut r = recorder_with(&(1..=100).collect::<Vec<_>>());
        let points = r.cdf(&[0.5, 0.99]);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].latency, SimDuration::from_millis(50));
        assert_eq!(points[1].latency, SimDuration::from_millis(99));
    }

    #[test]
    fn throughput_window() {
        let mut t = ThroughputRecorder::new(SimTime::from_secs(1), SimTime::from_secs(3));
        t.record(SimTime::from_millis(500)); // before window
        t.record(SimTime::from_millis(1_500));
        t.record(SimTime::from_millis(2_500));
        t.record(SimTime::from_millis(3_500)); // after window
        assert_eq!(t.completed(), 2);
        assert!((t.ops_per_sec() - 1.0).abs() < 1e-9);
    }
}
