//! Scripted fault plane: deterministic partitions, lossy windows, and node
//! crashes layered on top of any [`crate::net::NetworkModel`].
//!
//! The paper's guarantees (RSS/RSC) are claims about what clients observe
//! *through* failures; a [`FaultSchedule`] is the script that injects those
//! failures into a simulation without giving up determinism. All scripted
//! faults are keyed on simulated time, and all probabilistic ones (drop and
//! duplicate windows) sample from the engine's seeded RNG, so a fixed
//! `(engine seed, schedule)` pair always produces the same execution —
//! including which messages were lost.
//!
//! Three fault families:
//!
//! * **Link cuts** — a region pair, a whole region, or every link is
//!   partitioned for a window; messages sent across a cut link are dropped.
//! * **Message windows** — during a window every message (optionally
//!   restricted to a link) is dropped, duplicated, or delayed with a given
//!   probability.
//! * **Crash windows** — a node crashes at an instant and (optionally)
//!   recovers later. While crashed, messages addressed to it expire, its
//!   timers are deferred to the recovery instant, and the engine invokes the
//!   [`crate::engine::Node::on_crash`] / [`crate::engine::Node::on_recover`]
//!   hooks so protocols can drop volatile state and re-drive stalled work
//!   from their durable state.
//!
//! The schedule is installed with [`crate::engine::Engine::install_faults`].

use rand::rngs::SmallRng;
use rand::Rng;

use crate::net::{Delivery, Region};
use crate::time::{SimDuration, SimTime};

/// Which links a scripted network fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkScope {
    /// The (symmetric) link between two regions.
    Pair(Region, Region),
    /// Only messages travelling from the first region to the second — an
    /// asymmetric (grey) failure: requests flow, replies vanish, or vice
    /// versa. The reverse direction is unaffected.
    OneWay(Region, Region),
    /// Every link with this region at either end — the classic "partition a
    /// data center away" fault. Intra-region traffic of *other* regions is
    /// unaffected; the region's own loopback traffic still flows.
    Region(Region),
    /// Every link, loopback included.
    All,
}

impl LinkScope {
    /// True if a message from `from` to `to` travels a link in this scope.
    pub fn covers(&self, from: Region, to: Region) -> bool {
        match *self {
            LinkScope::Pair(a, b) => (from == a && to == b) || (from == b && to == a),
            LinkScope::OneWay(a, b) => from == a && to == b,
            // A region cut severs its links to OTHER regions only: nodes
            // co-located with a partitioned service keep talking to it.
            LinkScope::Region(r) => (from == r || to == r) && from != to,
            LinkScope::All => true,
        }
    }
}

/// A time window during which a link scope is fully cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkCut {
    /// The affected links.
    pub scope: LinkScope,
    /// Start of the cut (inclusive).
    pub from: SimTime,
    /// End of the cut (exclusive): the heal instant.
    pub until: SimTime,
}

/// What a probabilistic message window does to a matching message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageFault {
    /// Drop the message.
    Drop,
    /// Deliver the message twice (the copy trails by one base latency).
    Duplicate,
    /// Deliver the message late by the given extra delay.
    Delay(SimDuration),
}

/// A time window during which messages on a link scope suffer a
/// [`MessageFault`] with some probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MessageWindow {
    /// The affected links.
    pub scope: LinkScope,
    /// Start of the window (inclusive).
    pub from: SimTime,
    /// End of the window (exclusive).
    pub until: SimTime,
    /// Per-message probability of the fault, in `[0, 1]`.
    pub probability: f64,
    /// The fault applied to sampled messages.
    pub fault: MessageFault,
}

/// A scripted node crash: the node goes down at `at` and, if `recover_at` is
/// set, comes back at that instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// The crashing node.
    pub node: usize,
    /// Crash instant.
    pub at: SimTime,
    /// Recovery instant; `None` means the node never comes back.
    pub recover_at: Option<SimTime>,
}

/// A deterministic script of partitions, lossy windows, and node crashes.
///
/// Built with the fluent methods below; installed into an engine with
/// [`crate::engine::Engine::install_faults`]. An empty (default) schedule
/// injects nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    cuts: Vec<LinkCut>,
    windows: Vec<MessageWindow>,
    crashes: Vec<CrashWindow>,
    nudges: Vec<(u64, SimDuration)>,
}

impl FaultSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.cuts.is_empty()
            && self.windows.is_empty()
            && self.crashes.is_empty()
            && self.nudges.is_empty()
    }

    fn check_window(from: SimTime, until: SimTime) {
        assert!(until > from, "fault windows must have positive duration ({from} >= {until})");
    }

    /// Cuts the link between regions `a` and `b` during `[from, until)`.
    pub fn cut_link(mut self, a: Region, b: Region, from: SimTime, until: SimTime) -> Self {
        Self::check_window(from, until);
        self.cuts.push(LinkCut { scope: LinkScope::Pair(a, b), from, until });
        self
    }

    /// Cuts only the `a -> b` direction of a link during `[from, until)`:
    /// messages from `a` to `b` are dropped while `b -> a` traffic flows —
    /// the asymmetric (one-way) link failure of grey networks, where a
    /// request keeps arriving but its reply keeps vanishing.
    pub fn cut_link_oneway(mut self, a: Region, b: Region, from: SimTime, until: SimTime) -> Self {
        Self::check_window(from, until);
        self.cuts.push(LinkCut { scope: LinkScope::OneWay(a, b), from, until });
        self
    }

    /// Partitions `region` away from every other region during
    /// `[from, until)` — its inter-region links are cut in both directions;
    /// traffic inside the region still flows.
    pub fn partition_region(mut self, region: Region, from: SimTime, until: SimTime) -> Self {
        Self::check_window(from, until);
        self.cuts.push(LinkCut { scope: LinkScope::Region(region), from, until });
        self
    }

    /// During `[from, until)`, drops each message on `scope` with probability
    /// `p` (sampled from the engine's seeded RNG).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn drop_window(mut self, scope: LinkScope, from: SimTime, until: SimTime, p: f64) -> Self {
        Self::check_window(from, until);
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1], got {p}");
        self.windows.push(MessageWindow {
            scope,
            from,
            until,
            probability: p,
            fault: MessageFault::Drop,
        });
        self
    }

    /// During `[from, until)`, duplicates each message on `scope` with
    /// probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn duplicate_window(
        mut self,
        scope: LinkScope,
        from: SimTime,
        until: SimTime,
        p: f64,
    ) -> Self {
        Self::check_window(from, until);
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1], got {p}");
        self.windows.push(MessageWindow {
            scope,
            from,
            until,
            probability: p,
            fault: MessageFault::Duplicate,
        });
        self
    }

    /// During `[from, until)`, delays each message on `scope` by `extra` with
    /// probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn delay_window(
        mut self,
        scope: LinkScope,
        from: SimTime,
        until: SimTime,
        p: f64,
        extra: SimDuration,
    ) -> Self {
        Self::check_window(from, until);
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1], got {p}");
        self.windows.push(MessageWindow {
            scope,
            from,
            until,
            probability: p,
            fault: MessageFault::Delay(extra),
        });
        self
    }

    /// Crashes `node` at `at` and recovers it at `recover_at`.
    ///
    /// # Panics
    ///
    /// Panics if `recover_at <= at`.
    pub fn crash(mut self, node: usize, at: SimTime, recover_at: SimTime) -> Self {
        assert!(recover_at > at, "recovery must follow the crash ({at} >= {recover_at})");
        self.crashes.push(CrashWindow { node, at, recover_at: Some(recover_at) });
        self
    }

    /// Crashes `node` at `at` permanently.
    pub fn crash_forever(mut self, node: usize, at: SimTime) -> Self {
        self.crashes.push(CrashWindow { node, at, recover_at: None });
        self
    }

    /// Delays the `seq`-th dispatched message (the engine's global dispatch
    /// counter, starting at 0) by `extra` on top of whatever the network
    /// model and fault windows decide.
    ///
    /// This makes the *delivery order itself* an input: an explorer that
    /// recorded a run can re-run it with targeted per-message nudges,
    /// permuting deliveries without violating causality — a nudge can only
    /// delay a send that already happened, never deliver a message before it
    /// was sent. Nudging a sequence number the run never reaches is a no-op,
    /// and a nudged message that the fault plane drops stays dropped.
    pub fn nudge_message(mut self, seq: u64, extra: SimDuration) -> Self {
        match self.nudges.binary_search_by_key(&seq, |(s, _)| *s) {
            Ok(at) => self.nudges[at].1 = extra,
            Err(at) => self.nudges.insert(at, (seq, extra)),
        }
        self
    }

    /// The scripted per-dispatch delivery nudges, sorted by sequence number.
    pub fn message_nudges(&self) -> &[(u64, SimDuration)] {
        &self.nudges
    }

    /// The extra delay scripted for dispatch number `seq`, if any.
    pub fn nudge_for(&self, seq: u64) -> Option<SimDuration> {
        self.nudges.binary_search_by_key(&seq, |(s, _)| *s).ok().map(|at| self.nudges[at].1)
    }

    /// True if a message sent at `now` from `from` to `to` crosses a cut
    /// link.
    pub fn link_cut(&self, now: SimTime, from: Region, to: Region) -> bool {
        self.cuts.iter().any(|c| now >= c.from && now < c.until && c.scope.covers(from, to))
    }

    /// The message windows active at `now` on the `from -> to` link, in
    /// script order.
    pub fn active_windows(
        &self,
        now: SimTime,
        from: Region,
        to: Region,
    ) -> impl Iterator<Item = &MessageWindow> {
        self.windows
            .iter()
            .filter(move |w| now >= w.from && now < w.until && w.scope.covers(from, to))
    }

    /// The scripted crash windows.
    pub fn crashes(&self) -> &[CrashWindow] {
        &self.crashes
    }

    /// The scripted link cuts.
    pub fn link_cuts(&self) -> &[LinkCut] {
        &self.cuts
    }

    /// The scripted message windows.
    pub fn message_windows(&self) -> &[MessageWindow] {
        &self.windows
    }

    /// A compact human-readable description of the script (for reports and
    /// examples).
    pub fn describe(&self) -> String {
        if self.is_empty() {
            return "no faults".to_string();
        }
        let mut parts = Vec::new();
        if !self.cuts.is_empty() {
            parts.push(format!("{} link cut(s)", self.cuts.len()));
        }
        if !self.windows.is_empty() {
            parts.push(format!("{} message window(s)", self.windows.len()));
        }
        if !self.crashes.is_empty() {
            parts.push(format!("{} crash(es)", self.crashes.len()));
        }
        if !self.nudges.is_empty() {
            parts.push(format!("{} delivery nudge(s)", self.nudges.len()));
        }
        parts.join(", ")
    }

    /// Applies this schedule to a network model's base verdict for one
    /// message sent at `now` on the `from -> to` link.
    ///
    /// This is the single definition of how scripted faults compose with
    /// what the model already decided, shared by every execution engine
    /// (the discrete-event simulator and the live threaded plane): a cut
    /// link drops unconditionally; otherwise the first active window whose
    /// probability fires overlays its fault on the base verdict — a fault
    /// composes with (never cancels) a scripted duplicate or delay.
    /// Sampling draws from the caller's RNG, so a seeded engine stays
    /// deterministic.
    pub fn verdict(
        &self,
        now: SimTime,
        from: Region,
        to: Region,
        rng: &mut SmallRng,
        base: Delivery,
    ) -> Delivery {
        if self.link_cut(now, from, to) {
            return Delivery::Drop;
        }
        let mut fired = None;
        for w in self.active_windows(now, from, to) {
            if rng.gen_bool(w.probability) {
                fired = Some(w.fault);
                break;
            }
        }
        match (fired, base) {
            (None, base) => base,
            (Some(MessageFault::Drop), _) => Delivery::Drop,
            (Some(_), Delivery::Drop) => Delivery::Drop,
            (Some(MessageFault::Duplicate), d @ Delivery::Duplicate { .. }) => d,
            (Some(MessageFault::Duplicate), d) => {
                let latency = match d {
                    Delivery::Deliver { latency } => latency,
                    Delivery::Delay { latency, extra } => latency + extra,
                    Delivery::Duplicate { .. } | Delivery::Drop => unreachable!("handled above"),
                };
                Delivery::Duplicate { latency, echo_after: latency }
            }
            (Some(MessageFault::Delay(extra)), Delivery::Duplicate { latency, echo_after }) => {
                Delivery::Duplicate { latency: latency + extra, echo_after }
            }
            (Some(MessageFault::Delay(extra)), d) => {
                let latency = match d {
                    Delivery::Deliver { latency } => latency,
                    Delivery::Delay { latency, extra: e } => latency + e,
                    Delivery::Duplicate { .. } | Delivery::Drop => unreachable!("handled above"),
                };
                Delivery::Delay { latency, extra }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::regions;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn link_scopes_cover_the_right_links() {
        let pair = LinkScope::Pair(regions::CALIFORNIA, regions::VIRGINIA);
        assert!(pair.covers(regions::CALIFORNIA, regions::VIRGINIA));
        assert!(pair.covers(regions::VIRGINIA, regions::CALIFORNIA));
        assert!(!pair.covers(regions::CALIFORNIA, regions::IRELAND));

        let region = LinkScope::Region(regions::VIRGINIA);
        assert!(region.covers(regions::VIRGINIA, regions::IRELAND));
        assert!(region.covers(regions::CALIFORNIA, regions::VIRGINIA));
        assert!(!region.covers(regions::CALIFORNIA, regions::IRELAND));
        assert!(
            !region.covers(regions::VIRGINIA, regions::VIRGINIA),
            "intra-region traffic survives a region partition"
        );

        assert!(LinkScope::All.covers(regions::JAPAN, regions::JAPAN));

        let oneway = LinkScope::OneWay(regions::CALIFORNIA, regions::VIRGINIA);
        assert!(oneway.covers(regions::CALIFORNIA, regions::VIRGINIA));
        assert!(
            !oneway.covers(regions::VIRGINIA, regions::CALIFORNIA),
            "the reverse direction of a one-way cut keeps flowing"
        );
        assert!(!oneway.covers(regions::CALIFORNIA, regions::IRELAND));
    }

    #[test]
    fn oneway_cuts_are_asymmetric_in_time_and_direction() {
        let s = FaultSchedule::new().cut_link_oneway(
            regions::CALIFORNIA,
            regions::VIRGINIA,
            t(10),
            t(20),
        );
        assert!(s.link_cut(t(10), regions::CALIFORNIA, regions::VIRGINIA));
        assert!(!s.link_cut(t(10), regions::VIRGINIA, regions::CALIFORNIA));
        assert!(!s.link_cut(t(20), regions::CALIFORNIA, regions::VIRGINIA), "heals at `until`");
        assert_eq!(s.link_cuts().len(), 1);
    }

    #[test]
    fn cuts_apply_only_inside_their_window() {
        let s = FaultSchedule::new().partition_region(regions::VIRGINIA, t(10), t(20));
        assert!(!s.link_cut(t(9), regions::CALIFORNIA, regions::VIRGINIA));
        assert!(s.link_cut(t(10), regions::CALIFORNIA, regions::VIRGINIA));
        assert!(s.link_cut(t(19), regions::VIRGINIA, regions::IRELAND));
        assert!(!s.link_cut(t(20), regions::CALIFORNIA, regions::VIRGINIA), "heals at `until`");
        assert!(!s.link_cut(t(15), regions::CALIFORNIA, regions::IRELAND));
    }

    #[test]
    fn windows_filter_by_time_and_scope() {
        let s = FaultSchedule::new().drop_window(LinkScope::All, t(1), t(2), 0.5).duplicate_window(
            LinkScope::Pair(regions::CALIFORNIA, regions::IRELAND),
            t(1),
            t(3),
            0.1,
        );
        assert_eq!(s.active_windows(t(1), regions::CALIFORNIA, regions::VIRGINIA).count(), 1);
        assert_eq!(s.active_windows(t(1), regions::CALIFORNIA, regions::IRELAND).count(), 2);
        assert_eq!(s.active_windows(t(2), regions::CALIFORNIA, regions::IRELAND).count(), 1);
        assert_eq!(s.active_windows(t(3), regions::CALIFORNIA, regions::IRELAND).count(), 0);
    }

    #[test]
    fn schedule_describes_itself() {
        assert_eq!(FaultSchedule::new().describe(), "no faults");
        let s = FaultSchedule::new()
            .cut_link(regions::CALIFORNIA, regions::VIRGINIA, t(1), t(2))
            .crash(3, t(5), t(6));
        assert_eq!(s.describe(), "1 link cut(s), 1 crash(es)");
        assert_eq!(s.crashes().len(), 1);
        assert_eq!(s.crashes()[0].recover_at, Some(t(6)));
    }

    #[test]
    fn nudges_sort_replace_and_count_as_faults() {
        let s = FaultSchedule::new()
            .nudge_message(7, SimDuration::from_millis(5))
            .nudge_message(3, SimDuration::from_millis(1))
            .nudge_message(7, SimDuration::from_millis(9));
        assert_eq!(
            s.message_nudges(),
            &[(3, SimDuration::from_millis(1)), (7, SimDuration::from_millis(9)),]
        );
        assert_eq!(s.nudge_for(3), Some(SimDuration::from_millis(1)));
        assert_eq!(s.nudge_for(7), Some(SimDuration::from_millis(9)), "re-nudging replaces");
        assert_eq!(s.nudge_for(4), None);
        assert!(!s.is_empty(), "a nudge-only schedule still counts as faults");
        assert!(s.describe().contains("2 delivery nudge(s)"), "{}", s.describe());
    }

    #[test]
    #[should_panic(expected = "recovery must follow the crash")]
    fn crash_windows_must_be_ordered() {
        let _ = FaultSchedule::new().crash(0, t(5), t(5));
    }

    #[test]
    #[should_panic(expected = "probability must be in [0, 1]")]
    fn probabilities_are_validated() {
        let _ = FaultSchedule::new().drop_window(LinkScope::All, t(0), t(1), 1.5);
    }
}
