//! Deterministic discrete-event simulation substrate.
//!
//! The paper evaluates Spanner-RSS and Gryff-RSC on wide-area testbeds (EC2 and
//! CloudLab). This crate provides the substitute substrate: a deterministic
//! discrete-event simulator with
//!
//! * a simulated clock with microsecond resolution ([`SimTime`]),
//! * an event engine ([`engine::Engine`]) driving protocol nodes that exchange
//!   messages and set timers,
//! * a pluggable network model ([`net::NetworkModel`]) with per-message
//!   delivery verdicts; the default [`net::LatencyMatrix`] reproduces the
//!   round-trip times used in the paper (Section 6 and Table 2),
//! * a scripted fault plane ([`fault::FaultSchedule`]) — deterministic link
//!   partitions, drop/duplicate/delay windows, and node crash/recover —
//!   installed with [`engine::Engine::install_faults`],
//! * a TrueTime emulation with bounded uncertainty ([`truetime::TrueTime`]), and
//! * latency/throughput metrics ([`metrics`]) for regenerating the paper's
//!   figures.
//!
//! Determinism: all randomness flows through a seeded [`rand::rngs::SmallRng`]
//! owned by the engine, and simultaneous events are ordered by a monotonically
//! increasing sequence number, so a given seed always yields the same history.
//!
//! # Examples
//!
//! ```
//! use regular_sim::{
//!     engine::{Context, Engine, EngineConfig, Node},
//!     net::LatencyMatrix,
//!     time::SimDuration,
//! };
//!
//! #[derive(Clone)]
//! enum Msg {
//!     Ping,
//!     Pong,
//! }
//!
//! struct Echo {
//!     pongs: usize,
//! }
//!
//! impl Node<Msg> for Echo {
//!     fn on_start(&mut self, ctx: &mut Context<Msg>) {
//!         if ctx.node_id() == 0 {
//!             ctx.send(1, Msg::Ping);
//!         }
//!     }
//!     fn on_message(&mut self, ctx: &mut Context<Msg>, from: usize, msg: Msg) {
//!         match msg {
//!             Msg::Ping => ctx.send(from, Msg::Pong),
//!             Msg::Pong => self.pongs += 1,
//!         }
//!     }
//! }
//!
//! let cfg = EngineConfig::default();
//! let net = LatencyMatrix::single_region(SimDuration::from_millis(1));
//! let mut engine = Engine::new(cfg, net, 42);
//! engine.add_node(Echo { pongs: 0 }, 0);
//! engine.add_node(Echo { pongs: 0 }, 0);
//! engine.run();
//! assert_eq!(engine.node(0).pongs, 1);
//! ```

pub mod compose;
pub mod engine;
pub mod fault;
pub mod metrics;
pub mod net;
pub mod queue;
pub mod time;
pub mod truetime;

pub use compose::Embedded;
pub use engine::{Context, ContextParts, Engine, EngineConfig, Node, NodeId};
pub use fault::{CrashWindow, FaultSchedule, LinkScope, MessageFault};
pub use metrics::{LatencyRecorder, MessageStats, ThroughputRecorder};
pub use net::{Delivery, LatencyMatrix, NetworkModel, Region};
pub use queue::{QueueKind, SimQueue};
pub use time::{SimDuration, SimTime};
pub use truetime::{TrueTime, TtInterval};
