//! The indexed event queue replays the reference heap's executions exactly.
//!
//! The engine promises that `QueueKind` never changes a simulation — only
//! its wall-clock. These tests pin that promise at the engine level: the
//! same seeded simulation run on [`QueueKind::Indexed`] and
//! [`QueueKind::ReferenceHeap`] must process the same events in the same
//! order (same-timestamp tie-breaks included), deliver the same messages,
//! fire the same timers at the same instants, and count the same
//! drops/duplicates/expirations — under an empty schedule and under
//! proptest-generated random [`FaultSchedule`]s. The protocol-level
//! byte-identical-history pin lives in `tests/indexed_engine_equivalence.rs`
//! at the workspace root.

use proptest::prelude::*;
use regular_sim::engine::{Context, Engine, EngineConfig, Node, NodeId};
use regular_sim::fault::{FaultSchedule, LinkScope};
use regular_sim::net::{LatencyMatrix, Region};
use regular_sim::queue::QueueKind;
use regular_sim::time::{SimDuration, SimTime};

/// A chatty node that exercises every engine path the queue orders: paced
/// timers, request/reply messages, same-instant bursts (three sends per
/// tick), a saturating service time, and crash/recover hooks.
#[derive(Clone, Debug, PartialEq)]
enum Msg {
    Ping(u64),
    Pong(u64),
}

#[derive(Default)]
struct Chatty {
    peers: Vec<NodeId>,
    /// Trace of (now, from, payload) for every delivery, the equality pin.
    trace: Vec<(SimTime, NodeId, u64)>,
    timer_trace: Vec<(SimTime, u64)>,
    crashes: u64,
    recoveries: u64,
    sent: u64,
}

impl Node<Msg> for Chatty {
    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        ctx.set_timer(SimDuration::from_millis(50), 1);
    }
    fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Ping(n) => {
                self.trace.push((ctx.now(), from, n));
                ctx.send(from, Msg::Pong(n));
            }
            Msg::Pong(n) => {
                self.trace.push((ctx.now(), from, n | 1 << 32));
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<Msg>, tag: u64) {
        self.timer_trace.push((ctx.now(), tag));
        // A same-instant burst to every peer: exercises tie-breaking.
        for &p in &self.peers.clone() {
            self.sent += 1;
            ctx.send(p, Msg::Ping(self.sent));
        }
        if ctx.now() < SimTime::from_secs(8) {
            ctx.set_timer(SimDuration::from_millis(50), 1);
        }
    }
    fn on_crash(&mut self, _ctx: &mut Context<Msg>) {
        self.crashes += 1;
    }
    fn on_recover(&mut self, ctx: &mut Context<Msg>) {
        self.recoveries += 1;
        ctx.set_timer(SimDuration::from_millis(10), 2);
    }
}

fn build(seed: u64, kind: QueueKind, faults: &FaultSchedule) -> Engine<Msg, Chatty> {
    let cfg = EngineConfig {
        // Short service time but a dense send pattern: nodes saturate and
        // the busy-deferral path gets exercised heavily.
        default_service_time: SimDuration::from_micros(200),
        max_time: SimTime::from_secs(10),
        truetime_epsilon: SimDuration::from_millis(3),
        queue: kind,
    };
    let net = LatencyMatrix::from_rtt_ms(
        &[&[0.2, 10.0, 30.0], &[10.0, 0.2, 24.0], &[30.0, 24.0, 0.2]],
        SimDuration::from_micros(150),
    );
    let mut engine = Engine::new(cfg, net, seed);
    for region in 0..3 {
        engine.add_node(Chatty::default(), region);
    }
    let peers: Vec<NodeId> = (0..3).collect();
    for id in 0..3 {
        let mut p = peers.clone();
        p.retain(|&x| x != id);
        engine.node_mut(id).peers = p;
    }
    if !faults.is_empty() {
        engine.install_faults(faults.clone());
    }
    engine
}

fn assert_equivalent(seed: u64, faults: &FaultSchedule) {
    let mut indexed = build(seed, QueueKind::Indexed, faults);
    let mut heap = build(seed, QueueKind::ReferenceHeap, faults);
    indexed.run();
    heap.run();
    assert_eq!(
        indexed.processed_events(),
        heap.processed_events(),
        "seed {seed}: processed-event counts diverged"
    );
    assert_eq!(indexed.message_stats(), heap.message_stats(), "seed {seed}: stats diverged");
    assert_eq!(indexed.now(), heap.now(), "seed {seed}: final clocks diverged");
    for id in 0..3 {
        let (a, b) = (indexed.node(id), heap.node(id));
        assert_eq!(a.trace, b.trace, "seed {seed}: node {id} delivery traces diverged");
        assert_eq!(a.timer_trace, b.timer_trace, "seed {seed}: node {id} timer traces diverged");
        assert_eq!((a.crashes, a.recoveries), (b.crashes, b.recoveries), "seed {seed}: hooks");
    }
}

#[test]
fn fault_free_runs_are_identical_across_queue_kinds() {
    for seed in 0..8 {
        assert_equivalent(seed, &FaultSchedule::new());
    }
}

#[test]
fn scripted_fault_runs_are_identical_across_queue_kinds() {
    let faults = FaultSchedule::new()
        .crash(1, SimTime::from_secs(2), SimTime::from_secs(3))
        .partition_region(Region(2), SimTime::from_secs(4), SimTime::from_secs(5))
        .cut_link_oneway(Region(0), Region(1), SimTime::from_millis(5_500), SimTime::from_secs(6))
        .drop_window(LinkScope::All, SimTime::from_secs(6), SimTime::from_secs(7), 0.1)
        .duplicate_window(LinkScope::All, SimTime::from_secs(6), SimTime::from_secs(7), 0.1)
        .delay_window(
            LinkScope::All,
            SimTime::from_secs(7),
            SimTime::from_secs(8),
            0.2,
            SimDuration::from_millis(9),
        );
    for seed in [3, 17, 992] {
        assert_equivalent(seed, &faults);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The two queue kinds replay identically under *random* fault
    /// schedules: random crash windows (sometimes permanent), drop /
    /// duplicate / delay windows with random scopes and probabilities, and
    /// one-way cuts — the satellite's pinned property.
    #[test]
    fn random_fault_schedules_replay_identically(
        seed in 0u64..10_000,
        crash_node in 0usize..3,
        crash_at_ms in 500u64..4_000,
        crash_len_ms in 100u64..2_000,
        permanent_bit in 0u64..2,
        cut_from in 0usize..3,
        cut_to in 0usize..3,
        cut_at_ms in 500u64..6_000,
        drop_permille in 0u64..300,
        dup_permille in 0u64..300,
        delay_ms in 1u64..20,
    ) {
        let permanent = permanent_bit == 1;
        let mut faults = if permanent {
            FaultSchedule::new().crash_forever(crash_node, SimTime::from_millis(crash_at_ms))
        } else {
            FaultSchedule::new().crash(
                crash_node,
                SimTime::from_millis(crash_at_ms),
                SimTime::from_millis(crash_at_ms + crash_len_ms),
            )
        };
        if cut_from != cut_to {
            faults = faults.cut_link_oneway(
                Region(cut_from),
                Region(cut_to),
                SimTime::from_millis(cut_at_ms),
                SimTime::from_millis(cut_at_ms + 800),
            );
        }
        faults = faults
            .drop_window(
                LinkScope::All,
                SimTime::from_secs(5),
                SimTime::from_secs(7),
                drop_permille as f64 / 1_000.0,
            )
            .duplicate_window(
                LinkScope::Region(Region(1)),
                SimTime::from_secs(5),
                SimTime::from_secs(7),
                dup_permille as f64 / 1_000.0,
            )
            .delay_window(
                LinkScope::Pair(Region(0), Region(2)),
                SimTime::from_secs(7),
                SimTime::from_secs(8),
                0.5,
                SimDuration::from_millis(delay_ms),
            );
        assert_equivalent(seed, &faults);
    }
}
