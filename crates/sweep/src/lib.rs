//! Parallel conformance sweeps.
//!
//! The paper's central artifact is a *checkable guarantee*: every
//! Spanner-RSS / Gryff-RSC execution must produce a history certifiable as
//! RSS / RSC. The protocol crates certify one run at a time; this crate
//! scales that to *fleets* of seeded runs, the way automated
//! consistency-violation detectors sweep many executions:
//!
//! * [`pool`] — a work-stealing thread pool (vendored `parking_lot` +
//!   `std::thread::scope`) fanning coarse jobs across cores.
//! * [`scenario`] — seeded, certified runs of Spanner-RSS, Gryff-RSC, and
//!   the composed two-store deployment — each also swept under a
//!   seed-driven fault script (crashes, partitions, drop/duplicate windows
//!   fired during libRSS service switches); witness checks sharded via
//!   `regular_core::checker::certificate::check_witness_parallel`.
//! * [`composed`] — the multi-service deployment (extracted from the
//!   `multi_service` integration test) as a reusable scenario: round-robin
//!   or photo-sharing-app workloads, scripted faults, and cross-process
//!   `CausalContext` handoffs.
//! * [`stream`] — streaming certification: witnesses fed in completion
//!   order through `regular_core`'s windowed checker, plus the synthetic
//!   histories used by the scale benchmarks.
//! * [`report`] — sweep orchestration and the `BENCH_sweep.json` schema.
//! * [`artifact`] — replayable failing-history dumps for CI upload.
//! * [`json`] — the minimal JSON tree backing all of the above (the vendored
//!   `serde` is a derive-only stub).
//!
//! The `conformance_sweep` binary in `regular-bench` is the CLI front end;
//! CI runs it over ≥32 seeds per scenario (fault scenarios included) on
//! every push.

pub mod artifact;
pub mod composed;
pub mod json;
pub mod pool;
pub mod report;
pub mod scenario;
pub mod stream;

pub use artifact::FailureArtifact;
pub use json::Json;
pub use pool::{PoolStats, WorkStealingPool};
pub use report::{run_sweep, sweep_to_json, write_json, SweepOptions, SweepResult};
pub use scenario::{run_seed, run_seed_with, Scenario, SeedReport, SeedRun, LIVE_TIME_SCALE};
pub use stream::{certify_streaming, synthetic_history, StreamStats};
