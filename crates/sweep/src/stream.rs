//! Streaming certification: feed a run's witness through the windowed
//! [`StreamingChecker`] in arrival (completion-time) order.
//!
//! The batch certifier ([`regular_core::check_witness_parallel`]) holds the
//! whole history and witness in memory and makes several passes. The
//! streaming path instead replays the run as it would unfold at a live
//! certifier: records arrive as they *complete* (response time, invoke time
//! for pending ops), a [`WindowBuffer`] reorders them into witness order,
//! and contiguous windows are handed to a checker thread over a channel.
//! Memory above the history itself is bounded by the deepest window — the
//! largest set of completed-but-not-yet-releasable records — which for
//! protocol runs tracks the concurrency of the run, not its length.

use std::sync::mpsc;

use regular_core::{
    order::message_edges, ComponentSplit, History, HistoryBuilder, OpId, StreamingChecker,
    WindowBuffer, WitnessModel, WitnessViolation,
};

/// What the streaming pass observed while certifying a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Operations pushed through the checker.
    pub ops: usize,
    /// Contiguous windows released by the reorder buffer.
    pub windows: usize,
    /// High-water mark of the reorder buffer: the largest number of
    /// arrived-but-unreleasable records held at once.
    pub peak_window: usize,
    /// Connected components of the history (shared keys, processes,
    /// messages), as found by [`ComponentSplit`].
    pub components: usize,
}

/// Certifies `witness` for `history` under `model` by streaming records in
/// arrival order through a [`StreamingChecker`] on a dedicated thread.
///
/// The verdict is equivalent to [`regular_core::check_witness`]: `Ok` exactly
/// when the batch checker accepts, `Err` exactly when it rejects (the
/// specific violating pair reported for an ordering violation may differ,
/// as with the parallel batch checker).
pub fn certify_streaming(
    history: &History,
    witness: &[OpId],
    model: WitnessModel,
) -> Result<StreamStats, WitnessViolation> {
    let n = history.len();

    // Witness membership, mirrored from the batch checker's validation.
    let mut pos_of: Vec<u32> = vec![u32::MAX; n];
    for (pos, &id) in witness.iter().enumerate() {
        if id.index() >= n {
            return Err(WitnessViolation::UnknownOp(id));
        }
        if pos_of[id.index()] != u32::MAX {
            return Err(WitnessViolation::DuplicateOp(id));
        }
        pos_of[id.index()] = pos as u32;
    }

    // Process-order predecessor of every op, so the checker can enforce
    // process order incrementally.
    let mut prev: Vec<Option<OpId>> = vec![None; n];
    for p in history.processes() {
        let mut last: Option<OpId> = None;
        for id in history.ops_of_process(p) {
            prev[id.index()] = last;
            last = Some(id);
        }
    }

    // Arrival order: a record becomes available once it completes (or, for
    // pending ops, once it is invoked). Ties release in witness order.
    let mut arrivals: Vec<(u64, u32, OpId)> = witness
        .iter()
        .map(|&id| {
            let op = history.op(id);
            let at = op.response.unwrap_or(op.invoke).as_micros();
            (at, pos_of[id.index()], id)
        })
        .collect();
    arrivals.sort_unstable_by_key(|&(at, pos, _)| (at, pos));

    let edges = message_edges(history);
    let complete = history.complete_ids();
    let components = ComponentSplit::split(history).len();

    let mut buffer: WindowBuffer<OpId> = WindowBuffer::new();
    let mut windows = 0usize;
    let (tx, rx) = mpsc::channel::<Vec<OpId>>();

    let verdict = std::thread::scope(|scope| {
        let prev = &prev;
        let complete = &complete;
        let edges = &edges;
        let worker = scope.spawn(move || -> Result<usize, WitnessViolation> {
            let mut checker = StreamingChecker::with_message_edges(model, edges);
            while let Ok(batch) = rx.recv() {
                for id in batch {
                    checker.push(history.op(id), prev[id.index()])?;
                }
            }
            let pushed = checker.ops_pushed();
            checker.finish(complete)?;
            Ok(pushed)
        });

        for (_, pos, id) in arrivals {
            buffer.push(pos, id);
            let batch = buffer.pop_ready();
            if !batch.is_empty() {
                windows += 1;
                if tx.send(batch).is_err() {
                    // The checker hit a violation and hung up; stop feeding.
                    break;
                }
            }
        }
        drop(tx);
        worker.join().expect("streaming checker thread panicked")
    });

    let ops = verdict?;
    Ok(StreamStats { ops, windows, peak_window: buffer.peak_buffered(), components })
}

/// A synthetic key-value history of `ops` non-overlapping operations spread
/// over `groups` disjoint process/key groups, with its (identity) witness.
///
/// Each group alternates rounds of writes and reads over its own eight keys;
/// every read observes the latest write to its key, every written value is
/// globally unique, and operations never overlap in real time. The identity
/// witness is therefore valid under every [`WitnessModel`], and the history
/// decomposes into exactly `groups` components. Used by the scale benchmarks
/// and the `large_history_certify` example to get arbitrarily long histories
/// with known structure.
pub fn synthetic_history(ops: usize, groups: usize) -> (History, Vec<OpId>) {
    assert!(groups >= 1, "synthetic_history needs at least one group");
    const KEYS_PER_GROUP: u64 = 8;
    let mut builder = HistoryBuilder::new();
    let mut last_value: Vec<u64> = vec![0; groups * KEYS_PER_GROUP as usize];
    let mut witness = Vec::with_capacity(ops);
    for t in 0..ops {
        let g = t % groups;
        let round = t / groups;
        let slot = (round / 2) as u64 % KEYS_PER_GROUP;
        let key = 1 + g as u64 * KEYS_PER_GROUP + slot;
        let invoke = t as u64 * 10;
        let response = invoke + 5;
        let id = if round.is_multiple_of(2) {
            let value = t as u64 + 1;
            last_value[g * KEYS_PER_GROUP as usize + slot as usize] = value;
            builder.write(1 + g as u32 * 2, key, value, invoke, response)
        } else {
            let value = last_value[g * KEYS_PER_GROUP as usize + slot as usize];
            builder.read(2 + g as u32 * 2, key, value, invoke, response)
        };
        witness.push(id);
    }
    (builder.build(), witness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regular_core::check_witness;

    #[test]
    fn synthetic_history_streams_clean_under_every_model() {
        let (history, witness) = synthetic_history(2_000, 4);
        for model in [WitnessModel::ProcessOrder, WitnessModel::Regular, WitnessModel::RealTime] {
            assert!(check_witness(&history, &witness, model).is_ok());
            let stats = certify_streaming(&history, &witness, model)
                .unwrap_or_else(|v| panic!("streaming rejected under {model:?}: {v:?}"));
            assert_eq!(stats.ops, 2_000);
            assert_eq!(stats.components, 4);
            assert!(stats.windows >= 1);
            assert!(stats.peak_window >= 1);
        }
    }

    #[test]
    fn streaming_agrees_with_batch_on_a_corrupted_witness() {
        let (history, mut witness) = synthetic_history(400, 2);
        // Move a read before the write it observes: the replay produces a
        // different value than recorded, so every model rejects.
        witness.swap(0, 2);
        for model in [WitnessModel::ProcessOrder, WitnessModel::Regular, WitnessModel::RealTime] {
            let batch = check_witness(&history, &witness, model);
            let streamed = certify_streaming(&history, &witness, model);
            assert_eq!(batch.is_ok(), streamed.is_ok(), "disagreement under {model:?}");
            assert!(streamed.is_err(), "corrupted witness accepted under {model:?}");
        }
    }

    #[test]
    fn streaming_validates_witness_membership() {
        let (history, mut witness) = synthetic_history(64, 1);
        let dup = witness[0];
        witness[1] = dup;
        assert!(matches!(
            certify_streaming(&history, &witness, WitnessModel::Regular),
            Err(WitnessViolation::DuplicateOp(d)) if d == dup
        ));

        let (history, mut witness) = synthetic_history(64, 1);
        let dropped = witness.pop().unwrap();
        assert!(matches!(
            certify_streaming(&history, &witness, WitnessModel::Regular),
            Err(WitnessViolation::MissingCompleteOp(d)) if d == dropped
        ));
    }
}
