//! Sweepable scenarios: one seeded, certified simulator run per call.
//!
//! Each scenario builds a deterministic simulation from a seed (the engine
//! seed *and* the per-node workload RNG streams derive from it via
//! [`SessionConfig::with_workload_seed`]), runs it, assembles the recorded
//! history and serialization witness, and certifies the history against the
//! scenario's consistency model with the sharded certificate checker. A
//! failure yields a replayable [`FailureArtifact`].
//!
//! Run sizes are tuned so one seed takes on the order of a hundred
//! milliseconds: large enough that every history is far past the old 128-op
//! exact-search ceiling (thousands of operations), small enough that a
//! 32-seed × 3-scenario sweep finishes in CI minutes on one core.

use std::time::Instant;

use regular_core::checker::assemble::assemble_witness;
use regular_core::checker::certificate::{check_witness_parallel, WitnessModel};
use regular_core::history::HistoryIndex;
use regular_core::ComponentSplit;
use regular_gryff::prelude as gryff;
use regular_live::{
    run_cluster_live, run_gryff_live, DeliveryRecord, GryffLiveSpec, SpannerLiveSpec,
};
use regular_session::{CompletedRecord, SessionConfig, SessionWorkload};
use regular_sim::fault::{FaultSchedule, LinkScope};
use regular_sim::net::{LatencyMatrix, Region};
use regular_sim::time::{SimDuration, SimTime};
use regular_spanner::prelude as spanner;
use regular_storage::{Durability, StorageRegistry, StorageSummary, WalOptions};

use crate::artifact::{model_name, FailureArtifact};
use crate::composed::{
    certify_composed, run_composed, run_composed_live, ComposedRunConfig, ComposedWorkload,
};
use crate::stream::certify_streaming;

/// A sweepable scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Spanner-RSS over the three-region WAN topology; certified RSS.
    SpannerRss,
    /// Gryff-RSC over the five-region WAN topology; certified RSC.
    GryffRsc,
    /// The composed Spanner-RSS + Gryff-RSC deployment with libRSS fences;
    /// the combined history certified RSS.
    Composed,
    /// Spanner-RSS under a seed-driven fault script: a shard-leader crash,
    /// a region partition, and lossy/duplicating windows; still certified
    /// RSS.
    SpannerFaults,
    /// Gryff-RSC under a seed-driven fault script: a replica crash (losing
    /// an rmw coordinator), a region partition, and lossy windows; still
    /// certified RSC.
    GryffFaults,
    /// The composed deployment driven by the photo-sharing app with
    /// cross-process causal handoffs, under faults fired *during* service
    /// switches; the combined history still certified RSS.
    ComposedFaults,
    /// Spanner-RSS under asymmetric (one-way) link cuts: requests keep
    /// arriving while replies vanish, then the reverse direction fails —
    /// the grey-network failure mode; still certified RSS.
    SpannerOneWay,
    /// Spanner-RSS with short shard crashes timed to land inside commit-wait
    /// windows: prepared transactions lose their coordinator exactly between
    /// timestamp choice and decision release; still certified RSS.
    SpannerCommitCrash,
    /// The `spanner-faults` script with every shard running on a write-ahead
    /// log (`Durability::Wal`): crashes wipe all volatile state, recovery
    /// replays snapshot + log tail (seeded torn tails included), group
    /// commit batches fsyncs — and the history still certifies RSS.
    SpannerFaultsDurable,
    /// The `gryff-faults` script with every replica on a write-ahead log;
    /// still certified RSC.
    GryffFaultsDurable,
    /// The `composed-faults` script with both stores' nodes on write-ahead
    /// logs; the combined history still certified RSS.
    ComposedFaultsDurable,
    /// Spanner-RSS on the live execution plane (`regular-live`): every node
    /// an OS thread, time the scaled wall clock, completions certified RSS
    /// through the streaming checker. The sweep runs it over the in-process
    /// mpsc transport; the plane's socket backends (UDS/TCP, including
    /// multi-process deployments) are exercised by `live_bench --net`.
    /// Not bit-deterministic; the transport's delivery log rides along in
    /// failure artifacts.
    LiveSpannerRss,
    /// Gryff-RSC on the live execution plane; certified RSC.
    LiveGryffRsc,
    /// The composed two-store deployment with libRSS fences on the live
    /// execution plane; the combined history certified RSS.
    LiveComposed,
    /// Spanner-RSS on the live execution plane under the same seed-driven
    /// fault script as `spanner-faults`, the crash/partition windows
    /// reinterpreted on scaled wall-clock time; still certified RSS.
    LiveSpannerFaults,
}

impl Scenario {
    /// Every scenario, in sweep order.
    pub const ALL: [Scenario; 11] = [
        Scenario::SpannerRss,
        Scenario::GryffRsc,
        Scenario::Composed,
        Scenario::SpannerFaults,
        Scenario::GryffFaults,
        Scenario::ComposedFaults,
        Scenario::SpannerOneWay,
        Scenario::SpannerCommitCrash,
        Scenario::SpannerFaultsDurable,
        Scenario::GryffFaultsDurable,
        Scenario::ComposedFaultsDurable,
    ];

    /// The live-plane scenarios (not part of [`Scenario::ALL`]: live runs
    /// use real threads and scaled wall-clock time, so they are slower per
    /// seed and not bit-deterministic — sweeps opt into them explicitly).
    pub const LIVE: [Scenario; 4] = [
        Scenario::LiveSpannerRss,
        Scenario::LiveGryffRsc,
        Scenario::LiveComposed,
        Scenario::LiveSpannerFaults,
    ];

    /// True for scenarios that run on the live execution plane.
    pub fn is_live(&self) -> bool {
        matches!(
            self,
            Scenario::LiveSpannerRss
                | Scenario::LiveGryffRsc
                | Scenario::LiveComposed
                | Scenario::LiveSpannerFaults
        )
    }

    /// Stable scenario name (used in reports, artifacts, and CLI flags).
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::SpannerRss => "spanner-rss",
            Scenario::GryffRsc => "gryff-rsc",
            Scenario::Composed => "composed",
            Scenario::SpannerFaults => "spanner-faults",
            Scenario::GryffFaults => "gryff-faults",
            Scenario::ComposedFaults => "composed-faults",
            Scenario::SpannerOneWay => "spanner-oneway",
            Scenario::SpannerCommitCrash => "spanner-commit-crash",
            Scenario::SpannerFaultsDurable => "spanner-faults-durable",
            Scenario::GryffFaultsDurable => "gryff-faults-durable",
            Scenario::ComposedFaultsDurable => "composed-faults-durable",
            Scenario::LiveSpannerRss => "live-spanner-rss",
            Scenario::LiveGryffRsc => "live-gryff-rsc",
            Scenario::LiveComposed => "live-composed",
            Scenario::LiveSpannerFaults => "live-spanner-faults",
        }
    }

    /// Parses a scenario name (the inverse of [`Scenario::name`], with a few
    /// forgiving aliases).
    pub fn parse(name: &str) -> Option<Scenario> {
        match name.trim().to_ascii_lowercase().as_str() {
            "spanner-rss" | "spanner" | "rss" => Some(Scenario::SpannerRss),
            "gryff-rsc" | "gryff" | "rsc" => Some(Scenario::GryffRsc),
            "composed" | "multi-service" | "duo" => Some(Scenario::Composed),
            "spanner-faults" => Some(Scenario::SpannerFaults),
            "gryff-faults" => Some(Scenario::GryffFaults),
            "composed-faults" | "faults" | "chaos" => Some(Scenario::ComposedFaults),
            "spanner-oneway" | "oneway" | "grey" => Some(Scenario::SpannerOneWay),
            "spanner-commit-crash" | "commit-crash" => Some(Scenario::SpannerCommitCrash),
            "spanner-faults-durable" | "spanner-durable" => Some(Scenario::SpannerFaultsDurable),
            "gryff-faults-durable" | "gryff-durable" => Some(Scenario::GryffFaultsDurable),
            "composed-faults-durable" | "composed-durable" | "durable" => {
                Some(Scenario::ComposedFaultsDurable)
            }
            "live-spanner-rss" | "live-spanner" => Some(Scenario::LiveSpannerRss),
            "live-gryff-rsc" | "live-gryff" => Some(Scenario::LiveGryffRsc),
            "live-composed" => Some(Scenario::LiveComposed),
            "live-spanner-faults" | "live-faults" => Some(Scenario::LiveSpannerFaults),
            _ => None,
        }
    }

    /// The witness model this scenario is certified against.
    pub fn model(&self) -> WitnessModel {
        WitnessModel::Regular
    }

    /// True for the `*-durable` variants, which run every protocol node on a
    /// write-ahead log ([`Durability::Wal`]) instead of volatile state.
    pub fn is_durable(&self) -> bool {
        matches!(
            self,
            Scenario::SpannerFaultsDurable
                | Scenario::GryffFaultsDurable
                | Scenario::ComposedFaultsDurable
        )
    }

    /// The storage backing this scenario runs its protocol nodes on.
    fn durability(&self, seed: u64) -> Durability {
        if self.is_durable() {
            durable_wal(seed)
        } else {
            Durability::InMemory
        }
    }
}

/// The WAL configuration of the durable fault scenarios: deterministic
/// in-process devices, a group-commit window wide enough that fsyncs batch
/// under load, segments and checkpoints small enough that recovery exercises
/// snapshot-plus-log-tail replay within one sweep run, and torn tails seeded
/// from the sweep seed so partial-write recovery differs across the corpus.
fn durable_wal(seed: u64) -> Durability {
    Durability::Wal(
        WalOptions::mem(StorageRegistry::new())
            .with_group_commit_us(200)
            .with_segment_bytes(16 * 1024)
            .with_checkpoint_every(256)
            .with_torn_tail_seed(seed),
    )
}

/// Machine-readable outcome of one seeded run.
#[derive(Debug, Clone)]
pub struct SeedReport {
    /// Scenario name.
    pub scenario: &'static str,
    /// The seed.
    pub seed: u64,
    /// True if the history certified.
    pub certified: bool,
    /// Violation description when certification failed.
    pub violation: Option<String>,
    /// Operations in the certified history.
    pub history_ops: usize,
    /// End-to-end operation latency p50 (milliseconds, simulated time).
    pub p50_ms: f64,
    /// End-to-end operation latency p99 (milliseconds, simulated time).
    pub p99_ms: f64,
    /// Wall-clock milliseconds for the full run (simulate + certify).
    pub wall_ms: f64,
    /// Wall-clock milliseconds of the certification step alone.
    pub cert_ms: f64,
    /// Messages dropped by the fault plane (verdicts, windows, cut links).
    pub dropped: u64,
    /// Extra message copies injected by duplicate windows.
    pub duplicated: u64,
    /// Messages that expired at a crashed node.
    pub expired: u64,
    /// Connected components of the certified history (shared keys,
    /// processes, messages), as split by the decomposed checker.
    pub components: usize,
    /// High-water mark of the streaming reorder buffer; 0 on batch runs.
    pub peak_window: usize,
    /// Measured completions per wall-clock second on the live execution
    /// plane; 0 for simulator runs (their wall clock measures the host, not
    /// the system under test).
    pub wall_ops_per_sec: f64,
    /// Aggregated write-ahead-log counters across every protocol node (all
    /// zeroes outside the `*-durable` scenarios).
    pub storage: StorageSummary,
}

/// A seeded run: the report plus a replayable artifact when it failed.
pub struct SeedRun {
    /// The report.
    pub report: SeedReport,
    /// Present exactly when `report.certified` is false.
    pub artifact: Option<FailureArtifact>,
}

/// Simulated-latency percentiles (p50, p99) in milliseconds over the
/// non-orphan, non-fence completions.
fn latency_percentiles<'a>(records: impl Iterator<Item = &'a CompletedRecord>) -> (f64, f64) {
    let mut micros: Vec<u64> = records
        .filter(|r| !r.orphan && !r.kind.is_fence())
        .map(|r| r.latency().as_micros())
        .collect();
    if micros.is_empty() {
        return (0.0, 0.0);
    }
    micros.sort_unstable();
    let at = |q: f64| {
        let idx = ((micros.len() - 1) as f64 * q).round() as usize;
        micros[idx] as f64 / 1_000.0
    };
    (at(0.50), at(0.99))
}

/// The client-side operation timeout every fault scenario runs with.
const FAULT_OP_TIMEOUT: SimDuration = SimDuration::from_millis(1_500);

/// Per-message probability of the lossy windows in every fault scenario.
const FAULT_LOSS_P: f64 = 0.02;

/// The shared fault-script shape of every fault scenario: crash each listed
/// victim for its `[from, until)` window, partition one region, and run a
/// drop + duplicate window — all overlapping live client load.
fn fault_script(
    crashes: &[(usize, u64, u64)],
    cut_region: Region,
    cut: (u64, u64),
    lossy: (u64, u64),
) -> FaultSchedule {
    let mut schedule = FaultSchedule::new();
    for &(node, at, recover_at) in crashes {
        schedule = schedule.crash(node, SimTime::from_secs(at), SimTime::from_secs(recover_at));
    }
    schedule
        .partition_region(cut_region, SimTime::from_secs(cut.0), SimTime::from_secs(cut.1))
        .drop_window(
            LinkScope::All,
            SimTime::from_secs(lossy.0),
            SimTime::from_secs(lossy.1),
            FAULT_LOSS_P,
        )
        .duplicate_window(
            LinkScope::All,
            SimTime::from_secs(lossy.0),
            SimTime::from_secs(lossy.1),
            FAULT_LOSS_P,
        )
}

/// The seed-driven fault script of the `spanner-faults` scenario: the victim
/// shard and partitioned region rotate with the seed.
fn spanner_fault_schedule(seed: u64) -> FaultSchedule {
    let victim_shard = (seed % 3) as usize;
    let cut_region = Region(((seed + 1) % 3) as usize);
    fault_script(&[(victim_shard, 8, 12)], cut_region, (18, 21), (25, 32))
}

/// The seed-driven fault script of the `gryff-faults` scenario: the crashed
/// replica rotates with the seed (it coordinates rmws for keys equal to its
/// index mod 5).
fn gryff_fault_schedule(seed: u64) -> FaultSchedule {
    let victim_replica = (seed % 5) as usize;
    let cut_region = Region(((seed + 2) % 5) as usize);
    fault_script(&[(victim_replica, 8, 12)], cut_region, (18, 21), (25, 32))
}

/// The seed-driven script of the `spanner-oneway` scenario: two asymmetric
/// one-way cuts (first `a -> b`, later the reverse) plus a short two-way
/// lossy window, the victim pair rotating with the seed. One-way cuts are
/// the nastiest RSS stressor short of a crash: the receiver keeps serving
/// (and advancing its safe time) while every reply it sends evaporates, so
/// clients time out and retry transactions the shard already executed.
fn spanner_oneway_schedule(seed: u64) -> FaultSchedule {
    let a = Region((seed % 3) as usize);
    let b = Region(((seed + 1) % 3) as usize);
    FaultSchedule::new()
        .cut_link_oneway(a, b, SimTime::from_secs(8), SimTime::from_secs(12))
        .cut_link_oneway(b, a, SimTime::from_secs(18), SimTime::from_secs(21))
        .drop_window(LinkScope::All, SimTime::from_secs(25), SimTime::from_secs(29), FAULT_LOSS_P)
        .duplicate_window(
            LinkScope::All,
            SimTime::from_secs(25),
            SimTime::from_secs(29),
            FAULT_LOSS_P,
        )
}

/// The seed-driven script of the `spanner-commit-crash` scenario: three
/// short (400 ms) crashes of the victim shard. Under continuous load every
/// window lands on transactions that are mid commit-wait at that shard —
/// the coordinator has chosen `t_commit` and is waiting out TrueTime
/// uncertainty when it dies — so recovery must re-drive 2PC from the
/// decision log and deferred timers without ever releasing an outcome
/// early.
fn spanner_commit_crash_schedule(seed: u64) -> FaultSchedule {
    let victim = (seed % 3) as usize;
    let mut schedule = FaultSchedule::new();
    for start_s in [9u64, 19, 29] {
        let at = SimTime::from_millis(start_s * 1_000 + (seed % 7) * 50);
        let recover = SimTime::from_millis(start_s * 1_000 + (seed % 7) * 50 + 400);
        schedule = schedule.crash(victim, at, recover);
    }
    schedule
}

/// The `composed-faults` fault script. The photo app switches services on
/// *every* step, so each window fires during live libRSS service switches:
/// a Spanner shard crash (nodes 0..3), a Gryff replica crash (nodes 3..8),
/// a region partition, and lossy/duplicating windows.
fn composed_fault_schedule(seed: u64) -> FaultSchedule {
    let victim_shard = (seed % 3) as usize;
    let victim_replica = 3 + ((seed % 5) as usize);
    let cut_region = Region(((seed + 1) % 5) as usize);
    fault_script(&[(victim_shard, 5, 8), (victim_replica, 11, 14)], cut_region, (16, 18), (20, 25))
}

/// Approximate completed operations per simulated second of each scenario at
/// the sweep configuration (measured over seed sweeps); used to translate an
/// `--ops` target into a run duration.
fn ops_per_sim_sec(scenario: Scenario) -> f64 {
    match scenario {
        Scenario::SpannerRss => 57.0,
        Scenario::GryffRsc => 102.0,
        Scenario::Composed => 62.0,
        Scenario::SpannerFaults => 48.0,
        Scenario::GryffFaults => 97.0,
        Scenario::ComposedFaults => 30.0,
        Scenario::SpannerOneWay => 48.0,
        Scenario::SpannerCommitCrash => 54.0,
        // The WAL's group-commit window adds sub-millisecond latency, so the
        // durable variants track their volatile counterparts.
        Scenario::SpannerFaultsDurable => 48.0,
        Scenario::GryffFaultsDurable => 97.0,
        Scenario::ComposedFaultsDurable => 30.0,
        // The live plane runs the same configurations, so simulated-time op
        // rates carry over from the sim counterparts.
        Scenario::LiveSpannerRss => 57.0,
        Scenario::LiveGryffRsc => 102.0,
        Scenario::LiveComposed => 62.0,
        Scenario::LiveSpannerFaults => 48.0,
    }
}

/// Simulated microseconds per wall microsecond for the live sweep
/// scenarios: 40x compresses a 53-simulated-second Spanner run into ~1.3
/// wall seconds while keeping even the shortest WAN latency (a few hundred
/// simulated microseconds) well above the scheduler's wake-up jitter.
pub const LIVE_TIME_SCALE: u64 = 40;

/// The simulated seconds to issue load for: the scenario default, or the
/// duration expected to produce roughly `ops` operations when a target is
/// set. Clamped so fault scripts (which fire at fixed seconds) still get a
/// sane run, and so a typo cannot request a week of simulated time.
fn scaled_stop_secs(scenario: Scenario, ops: Option<u64>, default_secs: u64) -> u64 {
    match ops {
        None => default_secs,
        Some(target) => {
            let secs = (target as f64 / ops_per_sim_sec(scenario)).ceil() as u64;
            secs.clamp(5, 20_000)
        }
    }
}

/// Runs one seed of `scenario`, certifying the resulting history with the
/// witness check sharded across `check_threads` threads.
pub fn run_seed(scenario: Scenario, seed: u64, check_threads: usize) -> SeedRun {
    run_seed_with(scenario, seed, check_threads, None, false)
}

/// [`run_seed`] with scale knobs: `ops` scales the run duration to target
/// roughly that many operations, and `stream` certifies through the windowed
/// streaming checker (completion-order arrival, bounded reorder buffer)
/// instead of the batch parallel checker.
pub fn run_seed_with(
    scenario: Scenario,
    seed: u64,
    check_threads: usize,
    ops: Option<u64>,
    stream: bool,
) -> SeedRun {
    let started = Instant::now();
    // Live scenarios always certify through the streaming checker:
    // completions arrive in completion order (there is no global event queue
    // to replay), and the acceptance bar for the plane is *online*
    // certification.
    let stream = stream || scenario.is_live();
    let mut wall_ops_per_sec = 0.0;
    let mut deliveries: Vec<DeliveryRecord> = Vec::new();
    let mut storage = StorageSummary::default();
    let (history, witness, p50_ms, p99_ms, net, pre_violation) = match scenario {
        Scenario::SpannerRss
        | Scenario::SpannerFaults
        | Scenario::SpannerOneWay
        | Scenario::SpannerCommitCrash
        | Scenario::SpannerFaultsDurable => {
            let faults = match scenario {
                Scenario::SpannerFaults | Scenario::SpannerFaultsDurable => {
                    Some(spanner_fault_schedule(seed))
                }
                Scenario::SpannerOneWay => Some(spanner_oneway_schedule(seed)),
                Scenario::SpannerCommitCrash => Some(spanner_commit_crash_schedule(seed)),
                _ => None,
            };
            let result = run_spanner_seed(
                seed,
                faults,
                scenario.durability(seed),
                scaled_stop_secs(scenario, ops, 45),
            );
            storage = result.storage;
            let (p50, p99) =
                latency_percentiles(result.completed.iter().flat_map(|(_, recs)| recs.iter()));
            let (history, witness) = spanner::build_history(&result);
            (history, witness, p50, p99, result.net_stats, None)
        }
        Scenario::LiveSpannerRss | Scenario::LiveSpannerFaults => {
            let faults = match scenario {
                Scenario::LiveSpannerFaults => Some(spanner_fault_schedule(seed)),
                _ => None,
            };
            let result = run_spanner_live_seed(seed, faults, scaled_stop_secs(scenario, ops, 45));
            wall_ops_per_sec = result.wall_throughput;
            deliveries = result.deliveries;
            let (p50, p99) =
                latency_percentiles(result.completed.iter().flat_map(|(_, recs)| recs.iter()));
            let (history, witness) = spanner::build_history_from(&result.completed);
            (history, witness, p50, p99, result.net_stats, None)
        }
        Scenario::LiveGryffRsc => {
            let result = run_gryff_live_seed(seed, scaled_stop_secs(scenario, ops, 45));
            wall_ops_per_sec = result.wall_throughput;
            deliveries = result.deliveries;
            let (p50, p99) =
                latency_percentiles(result.completed.iter().flat_map(|(_, recs)| recs.iter()));
            let net = result.net_stats;
            let (history, edges) = gryff::build_history_from(&result.completed);
            match assemble_witness(&history, &edges, WitnessModel::Regular) {
                Ok(witness) => (history, witness, p50, p99, net, None),
                Err(e) => {
                    let reason = format!(
                        "carstamp/process-order constraints are cyclic ({} ops unordered)",
                        e.unordered
                    );
                    (history, Vec::new(), p50, p99, net, Some(reason))
                }
            }
        }
        Scenario::GryffRsc | Scenario::GryffFaults | Scenario::GryffFaultsDurable => {
            let faults = match scenario {
                Scenario::GryffFaults | Scenario::GryffFaultsDurable => {
                    Some(gryff_fault_schedule(seed))
                }
                _ => None,
            };
            let result = run_gryff_seed(
                seed,
                faults,
                scenario.durability(seed),
                scaled_stop_secs(scenario, ops, 45),
            );
            storage = result.storage;
            let (p50, p99) =
                latency_percentiles(result.completed.iter().flat_map(|(_, recs)| recs.iter()));
            let net = result.net_stats;
            let (history, edges) = gryff::build_history(&result);
            match assemble_witness(&history, &edges, WitnessModel::Regular) {
                Ok(witness) => (history, witness, p50, p99, net, None),
                Err(e) => {
                    let reason = format!(
                        "carstamp/process-order constraints are cyclic ({} ops unordered)",
                        e.unordered
                    );
                    (history, Vec::new(), p50, p99, net, Some(reason))
                }
            }
        }
        Scenario::Composed
        | Scenario::ComposedFaults
        | Scenario::ComposedFaultsDurable
        | Scenario::LiveComposed => {
            let duration_secs = scaled_stop_secs(scenario, ops, 30);
            let mut config = match scenario {
                Scenario::ComposedFaults | Scenario::ComposedFaultsDurable => {
                    composed_faults_seed_config(seed, duration_secs)
                }
                _ => composed_seed_config(duration_secs),
            };
            config.durability = scenario.durability(seed);
            let outcome = if scenario.is_live() {
                let live = run_composed_live(seed, &config, LIVE_TIME_SCALE, true);
                wall_ops_per_sec = live.wall_throughput;
                deliveries = live.deliveries;
                live.outcome
            } else {
                run_composed(seed, &config)
            };
            let (p50, p99) = latency_percentiles(
                outcome.apps.iter().flat_map(|a| a.completed.iter().map(|(_, r)| r)),
            );
            let net = outcome.net_stats;
            storage = outcome.storage;
            let cert_started = Instant::now();
            let (certified, violation, history_ops, components, peak_window, artifact) =
                match certify_composed(&outcome, check_threads) {
                    Ok(ok) => {
                        let components = ComponentSplit::split(&ok.history).len();
                        match stream_verdict(&ok.history, &ok.witness, scenario.model(), stream) {
                            Ok(peak) => (true, None, ok.history.len(), components, peak, None),
                            Err(reason) => (
                                false,
                                Some(reason.clone()),
                                ok.history.len(),
                                components,
                                0,
                                Some(FailureArtifact {
                                    scenario: scenario.name().to_string(),
                                    seed,
                                    model: scenario.model(),
                                    violation: reason,
                                    witness: ok.witness,
                                    history: ok.history,
                                    deliveries,
                                    durability: durability_tag(scenario),
                                    schedule: None,
                                    coverage: None,
                                }),
                            ),
                        }
                    }
                    Err(v) => (
                        false,
                        Some(v.reason.clone()),
                        v.history.len(),
                        ComponentSplit::split(&v.history).len(),
                        0,
                        Some(FailureArtifact {
                            scenario: scenario.name().to_string(),
                            seed,
                            model: scenario.model(),
                            violation: v.reason,
                            witness: v.witness,
                            history: v.history,
                            deliveries,
                            durability: durability_tag(scenario),
                            schedule: None,
                            coverage: None,
                        }),
                    ),
                };
            return SeedRun {
                report: SeedReport {
                    scenario: scenario.name(),
                    seed,
                    certified,
                    violation,
                    history_ops,
                    p50_ms: p50,
                    p99_ms: p99,
                    wall_ms: started.elapsed().as_secs_f64() * 1_000.0,
                    cert_ms: cert_started.elapsed().as_secs_f64() * 1_000.0,
                    dropped: net.dropped,
                    duplicated: net.duplicated,
                    expired: net.expired,
                    components,
                    peak_window,
                    wall_ops_per_sec,
                    storage,
                },
                artifact,
            };
        }
    };

    let cert_started = Instant::now();
    let components = ComponentSplit::split(&history).len();
    let verdict: Result<usize, String> = match pre_violation {
        Some(reason) => Err(reason),
        None if stream => stream_verdict(&history, &witness, scenario.model(), true),
        None => {
            let index = HistoryIndex::new(&history);
            check_witness_parallel(&history, &index, &witness, scenario.model(), check_threads)
                .map(|()| 0)
                .map_err(|v| format!("{} violation: {v:?}", model_name(scenario.model())))
        }
    };
    let cert_ms = cert_started.elapsed().as_secs_f64() * 1_000.0;
    let wall_ms = started.elapsed().as_secs_f64() * 1_000.0;
    let report = |certified: bool, violation: Option<String>, peak_window: usize| SeedReport {
        scenario: scenario.name(),
        seed,
        certified,
        violation,
        history_ops: history.len(),
        p50_ms,
        p99_ms,
        wall_ms,
        cert_ms,
        dropped: net.dropped,
        duplicated: net.duplicated,
        expired: net.expired,
        components,
        peak_window,
        wall_ops_per_sec,
        storage,
    };
    match verdict {
        Ok(peak_window) => SeedRun { report: report(true, None, peak_window), artifact: None },
        Err(reason) => SeedRun {
            report: report(false, Some(reason.clone()), 0),
            artifact: Some(FailureArtifact {
                scenario: scenario.name().to_string(),
                seed,
                model: scenario.model(),
                violation: reason,
                witness,
                history,
                deliveries,
                durability: durability_tag(scenario),
                schedule: None,
                coverage: None,
            }),
        },
    }
}

/// The durability tag a failure artifact carries: `Some("wal")` for the
/// durable scenarios, `None` (omitted from the JSON, keeping pre-storage
/// artifacts byte-identical) otherwise.
fn durability_tag(scenario: Scenario) -> Option<String> {
    scenario.is_durable().then(|| "wal".to_string())
}

/// The streaming leg of certification: when `stream` is set, runs the
/// windowed checker over the witness and returns the reorder buffer's peak
/// depth; otherwise a no-op. The verdict is equivalent to the batch check.
fn stream_verdict(
    history: &regular_core::History,
    witness: &[regular_core::OpId],
    model: WitnessModel,
    stream: bool,
) -> Result<usize, String> {
    if !stream {
        return Ok(0);
    }
    certify_streaming(history, witness, model)
        .map(|stats| stats.peak_window)
        .map_err(|v| format!("{} violation (streaming): {v:?}", model_name(model)))
}

/// Spanner-RSS sweep configuration: WAN topology, three client nodes with
/// two closed-loop sessions each, moderately contended uniform workload.
/// With a fault schedule, clients run with the standard operation timeout.
fn run_spanner_seed(
    seed: u64,
    faults: Option<FaultSchedule>,
    durability: Durability,
    stop_secs: u64,
) -> spanner::RunResult {
    let mut config =
        spanner::SpannerConfig::wan(spanner::Mode::SpannerRss).with_durability(durability);
    if let Some(faults) = faults {
        config = config.with_faults(faults, FAULT_OP_TIMEOUT);
    }
    let net = LatencyMatrix::spanner_wan();
    let clients = (0..3)
        .map(|i| spanner::ClientSpec {
            region: i % 3,
            sessions: SessionConfig::closed_loop(4, SimDuration::ZERO)
                .with_workload_seed(seed.wrapping_mul(1_000_003).wrapping_add(i as u64)),
            workload: Box::new(spanner::UniformWorkload {
                num_keys: 250,
                ro_fraction: 0.5,
                keys_per_txn: 2,
            }) as Box<dyn SessionWorkload>,
        })
        .collect();
    spanner::run_cluster(spanner::ClusterSpec {
        config,
        net,
        seed,
        clients,
        stop_issuing_at: SimTime::from_secs(stop_secs),
        drain: SimDuration::from_secs(8),
        measure_from: SimTime::from_secs(1),
    })
}

/// Gryff-RSC sweep configuration: five-region WAN, one client per region
/// with two closed-loop sessions, conflict-heavy YCSB mix. With a fault
/// schedule, clients run with the standard operation timeout.
fn run_gryff_seed(
    seed: u64,
    faults: Option<FaultSchedule>,
    durability: Durability,
    stop_secs: u64,
) -> gryff::GryffRunResult {
    let mut config = gryff::GryffConfig::wan(gryff::Mode::GryffRsc).with_durability(durability);
    if let Some(faults) = faults {
        config = config.with_faults(faults, FAULT_OP_TIMEOUT);
    }
    let net = LatencyMatrix::gryff_wan();
    let clients = (0..5)
        .map(|i| gryff::GryffClientSpec {
            region: i % 5,
            sessions: SessionConfig::closed_loop(3, SimDuration::ZERO)
                .with_workload_seed(seed.wrapping_mul(999_983).wrapping_add(i as u64)),
            workload: Box::new(gryff::ConflictWorkload::ycsb(
                0.5,
                0.25,
                seed.wrapping_add(i as u64),
            )) as Box<dyn SessionWorkload>,
        })
        .collect();
    gryff::run_gryff(gryff::GryffClusterSpec {
        config,
        net,
        seed,
        clients,
        stop_issuing_at: SimTime::from_secs(stop_secs),
        drain: SimDuration::from_secs(8),
        measure_from: SimTime::from_secs(1),
    })
}

/// The sweep configuration of [`run_spanner_seed`], deployed on the live
/// execution plane (same topology, workload, and per-client workload seeds;
/// real threads and the scaled wall clock instead of the event queue).
fn run_spanner_live_seed(
    seed: u64,
    faults: Option<FaultSchedule>,
    stop_secs: u64,
) -> regular_live::SpannerLiveResult {
    let mut config = spanner::SpannerConfig::wan(spanner::Mode::SpannerRss);
    if let Some(faults) = faults {
        config = config.with_faults(faults, FAULT_OP_TIMEOUT);
    }
    let net = LatencyMatrix::spanner_wan();
    let clients = (0..3)
        .map(|i| spanner::ClientSpec {
            region: i % 3,
            sessions: SessionConfig::closed_loop(4, SimDuration::ZERO)
                .with_workload_seed(seed.wrapping_mul(1_000_003).wrapping_add(i as u64)),
            workload: Box::new(spanner::UniformWorkload {
                num_keys: 250,
                ro_fraction: 0.5,
                keys_per_txn: 2,
            }) as Box<dyn SessionWorkload>,
        })
        .collect();
    run_cluster_live(SpannerLiveSpec {
        config,
        net,
        seed,
        clients,
        stop_issuing_at: SimTime::from_secs(stop_secs),
        drain: SimDuration::from_secs(8),
        measure_from: SimTime::from_secs(1),
        time_scale: LIVE_TIME_SCALE,
        record_deliveries: true,
        transport: regular_live::TransportKind::Mpsc,
    })
}

/// The sweep configuration of [`run_gryff_seed`] on the live execution
/// plane.
fn run_gryff_live_seed(seed: u64, stop_secs: u64) -> regular_live::GryffLiveResult {
    let config = gryff::GryffConfig::wan(gryff::Mode::GryffRsc);
    let net = LatencyMatrix::gryff_wan();
    let clients = (0..5)
        .map(|i| gryff::GryffClientSpec {
            region: i % 5,
            sessions: SessionConfig::closed_loop(3, SimDuration::ZERO)
                .with_workload_seed(seed.wrapping_mul(999_983).wrapping_add(i as u64)),
            workload: Box::new(gryff::ConflictWorkload::ycsb(
                0.5,
                0.25,
                seed.wrapping_add(i as u64),
            )) as Box<dyn SessionWorkload>,
        })
        .collect();
    run_gryff_live(GryffLiveSpec {
        config,
        net,
        seed,
        clients,
        stop_issuing_at: SimTime::from_secs(stop_secs),
        drain: SimDuration::from_secs(8),
        measure_from: SimTime::from_secs(1),
        time_scale: LIVE_TIME_SCALE,
        record_deliveries: true,
        transport: regular_live::TransportKind::Mpsc,
    })
}

/// Composed sweep configuration (smaller than the integration test's, to
/// keep per-seed cost down).
fn composed_seed_config(duration_secs: u64) -> ComposedRunConfig {
    ComposedRunConfig {
        num_apps: 3,
        ops_per_service: 3,
        batch: 2,
        duration_secs,
        drain_secs: 10,
        ..ComposedRunConfig::default()
    }
}

/// Composed-faults sweep configuration: the photo-sharing app (every step a
/// fenced service switch), periodic cross-process causal handoffs, and the
/// seed-driven fault script of [`composed_fault_schedule`].
fn composed_faults_seed_config(seed: u64, duration_secs: u64) -> ComposedRunConfig {
    ComposedRunConfig {
        num_apps: 3,
        ops_per_service: 1,
        batch: 2,
        duration_secs,
        drain_secs: 12,
        workload: ComposedWorkload::PhotoApp,
        faults: composed_fault_schedule(seed),
        op_timeout: Some(FAULT_OP_TIMEOUT),
        handoff_every: Some(8),
        ..ComposedRunConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_round_trip() {
        for s in Scenario::ALL.into_iter().chain(Scenario::LIVE) {
            assert_eq!(Scenario::parse(s.name()), Some(s));
        }
        assert_eq!(Scenario::parse("SPANNER"), Some(Scenario::SpannerRss));
        assert_eq!(Scenario::parse("chaos"), Some(Scenario::ComposedFaults));
        assert_eq!(Scenario::parse("nope"), None);
        assert!(Scenario::LIVE.iter().all(Scenario::is_live));
        assert!(!Scenario::ALL.iter().any(Scenario::is_live));
    }

    #[test]
    fn ops_target_scales_runs_and_streaming_certifies() {
        for &scenario in &[Scenario::SpannerRss, Scenario::ComposedFaults] {
            let run = run_seed_with(scenario, 7, 2, Some(600), true);
            assert!(
                run.report.certified,
                "{} seed 7 (ops target, streamed) must certify: {:?}",
                scenario.name(),
                run.report.violation
            );
            assert!(run.report.components >= 1);
            assert!(run.report.peak_window >= 1, "streaming reorder buffer was exercised");
            assert!(
                run.report.history_ops < 2_000,
                "{} duration scaled down toward the 600-op target ({} ops)",
                scenario.name(),
                run.report.history_ops
            );
        }
    }

    #[test]
    fn each_scenario_certifies_one_seed() {
        for scenario in Scenario::ALL {
            let run = run_seed(scenario, 42, 2);
            assert!(
                run.report.certified,
                "{} seed 42 must certify: {:?}",
                scenario.name(),
                run.report.violation
            );
            assert!(run.artifact.is_none());
            assert!(
                run.report.history_ops > 128,
                "{} histories exceed the old exact-search frontier ({} ops)",
                scenario.name(),
                run.report.history_ops
            );
            assert!(run.report.p99_ms >= run.report.p50_ms);
            match scenario {
                Scenario::SpannerFaults | Scenario::GryffFaults | Scenario::ComposedFaults => {
                    assert!(
                        run.report.dropped > 0
                            && run.report.duplicated > 0
                            && run.report.expired > 0,
                        "{} fault plane was active: {:?}/{:?}/{:?}",
                        scenario.name(),
                        run.report.dropped,
                        run.report.duplicated,
                        run.report.expired
                    );
                    assert!(
                        run.report.storage.is_empty(),
                        "{} runs volatile; no WAL traffic",
                        scenario.name()
                    );
                }
                Scenario::SpannerFaultsDurable
                | Scenario::GryffFaultsDurable
                | Scenario::ComposedFaultsDurable => {
                    assert!(
                        run.report.dropped > 0 && run.report.expired > 0,
                        "{} fault plane was active: {:?}/{:?}",
                        scenario.name(),
                        run.report.dropped,
                        run.report.expired
                    );
                    let s = run.report.storage;
                    assert!(s.records > 0 && s.bytes > 0, "{} logged mutations", scenario.name());
                    assert!(
                        s.syncs > 0 && s.syncs < s.records,
                        "{} group commit batched records per fsync ({} records, {} syncs)",
                        scenario.name(),
                        s.records,
                        s.syncs
                    );
                    assert!(
                        s.recoveries > 0 && s.replayed > 0,
                        "{} crash recovery replayed from the WAL ({} recoveries, {} replayed)",
                        scenario.name(),
                        s.recoveries,
                        s.replayed
                    );
                }
                Scenario::SpannerOneWay => {
                    assert!(
                        run.report.dropped > 0 && run.report.duplicated > 0,
                        "{} one-way cuts and the lossy window fired: {:?}/{:?}",
                        scenario.name(),
                        run.report.dropped,
                        run.report.duplicated
                    );
                    assert_eq!(run.report.expired, 0, "no node crashes in the one-way scenario");
                }
                Scenario::SpannerCommitCrash => {
                    assert!(
                        run.report.expired > 0,
                        "{} messages expired at the crashed shard: {:?}",
                        scenario.name(),
                        run.report.expired
                    );
                    assert_eq!(run.report.dropped, 0, "commit-crash cuts no links");
                }
                _ => {
                    assert_eq!(run.report.dropped, 0, "{} is fault-free", scenario.name());
                }
            }
        }
    }
}
