//! Sweepable scenarios: one seeded, certified simulator run per call.
//!
//! Each scenario builds a deterministic simulation from a seed (the engine
//! seed *and* the per-node workload RNG streams derive from it via
//! [`SessionConfig::with_workload_seed`]), runs it, assembles the recorded
//! history and serialization witness, and certifies the history against the
//! scenario's consistency model with the sharded certificate checker. A
//! failure yields a replayable [`FailureArtifact`].
//!
//! Run sizes are tuned so one seed takes on the order of a hundred
//! milliseconds: large enough that every history is far past the old 128-op
//! exact-search ceiling (thousands of operations), small enough that a
//! 32-seed × 3-scenario sweep finishes in CI minutes on one core.

use std::time::Instant;

use regular_core::checker::assemble::assemble_witness;
use regular_core::checker::certificate::{check_witness_parallel, WitnessModel};
use regular_core::history::HistoryIndex;
use regular_gryff::prelude as gryff;
use regular_session::{CompletedRecord, SessionConfig, SessionWorkload};
use regular_sim::net::LatencyMatrix;
use regular_sim::time::{SimDuration, SimTime};
use regular_spanner::prelude as spanner;

use crate::artifact::{model_name, FailureArtifact};
use crate::composed::{certify_composed, run_composed, ComposedRunConfig};

/// A sweepable scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Spanner-RSS over the three-region WAN topology; certified RSS.
    SpannerRss,
    /// Gryff-RSC over the five-region WAN topology; certified RSC.
    GryffRsc,
    /// The composed Spanner-RSS + Gryff-RSC deployment with libRSS fences;
    /// the combined history certified RSS.
    Composed,
}

impl Scenario {
    /// Every scenario, in sweep order.
    pub const ALL: [Scenario; 3] = [Scenario::SpannerRss, Scenario::GryffRsc, Scenario::Composed];

    /// Stable scenario name (used in reports, artifacts, and CLI flags).
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::SpannerRss => "spanner-rss",
            Scenario::GryffRsc => "gryff-rsc",
            Scenario::Composed => "composed",
        }
    }

    /// Parses a scenario name (the inverse of [`Scenario::name`], with a few
    /// forgiving aliases).
    pub fn parse(name: &str) -> Option<Scenario> {
        match name.trim().to_ascii_lowercase().as_str() {
            "spanner-rss" | "spanner" | "rss" => Some(Scenario::SpannerRss),
            "gryff-rsc" | "gryff" | "rsc" => Some(Scenario::GryffRsc),
            "composed" | "multi-service" | "duo" => Some(Scenario::Composed),
            _ => None,
        }
    }

    /// The witness model this scenario is certified against.
    pub fn model(&self) -> WitnessModel {
        WitnessModel::Regular
    }
}

/// Machine-readable outcome of one seeded run.
#[derive(Debug, Clone)]
pub struct SeedReport {
    /// Scenario name.
    pub scenario: &'static str,
    /// The seed.
    pub seed: u64,
    /// True if the history certified.
    pub certified: bool,
    /// Violation description when certification failed.
    pub violation: Option<String>,
    /// Operations in the certified history.
    pub history_ops: usize,
    /// End-to-end operation latency p50 (milliseconds, simulated time).
    pub p50_ms: f64,
    /// End-to-end operation latency p99 (milliseconds, simulated time).
    pub p99_ms: f64,
    /// Wall-clock milliseconds for the full run (simulate + certify).
    pub wall_ms: f64,
    /// Wall-clock milliseconds of the certification step alone.
    pub cert_ms: f64,
}

/// A seeded run: the report plus a replayable artifact when it failed.
pub struct SeedRun {
    /// The report.
    pub report: SeedReport,
    /// Present exactly when `report.certified` is false.
    pub artifact: Option<FailureArtifact>,
}

/// Simulated-latency percentiles (p50, p99) in milliseconds over the
/// non-orphan, non-fence completions.
fn latency_percentiles<'a>(records: impl Iterator<Item = &'a CompletedRecord>) -> (f64, f64) {
    let mut micros: Vec<u64> = records
        .filter(|r| !r.orphan && !r.kind.is_fence())
        .map(|r| r.latency().as_micros())
        .collect();
    if micros.is_empty() {
        return (0.0, 0.0);
    }
    micros.sort_unstable();
    let at = |q: f64| {
        let idx = ((micros.len() - 1) as f64 * q).round() as usize;
        micros[idx] as f64 / 1_000.0
    };
    (at(0.50), at(0.99))
}

/// Runs one seed of `scenario`, certifying the resulting history with the
/// witness check sharded across `check_threads` threads.
pub fn run_seed(scenario: Scenario, seed: u64, check_threads: usize) -> SeedRun {
    let started = Instant::now();
    let (history, witness, p50_ms, p99_ms, pre_violation) = match scenario {
        Scenario::SpannerRss => {
            let result = run_spanner_seed(seed);
            let (p50, p99) =
                latency_percentiles(result.completed.iter().flat_map(|(_, recs)| recs.iter()));
            let (history, witness) = spanner::build_history(&result);
            (history, witness, p50, p99, None)
        }
        Scenario::GryffRsc => {
            let result = run_gryff_seed(seed);
            let (p50, p99) =
                latency_percentiles(result.completed.iter().flat_map(|(_, recs)| recs.iter()));
            let (history, edges) = gryff::build_history(&result);
            match assemble_witness(&history, &edges, WitnessModel::Regular) {
                Ok(witness) => (history, witness, p50, p99, None),
                Err(e) => {
                    let reason = format!(
                        "carstamp/process-order constraints are cyclic ({} ops unordered)",
                        e.unordered
                    );
                    (history, Vec::new(), p50, p99, Some(reason))
                }
            }
        }
        Scenario::Composed => {
            let outcome = run_composed(seed, &composed_seed_config());
            let (p50, p99) = latency_percentiles(
                outcome.apps.iter().flat_map(|(_, recs, _)| recs.iter().map(|(_, r)| r)),
            );
            let cert_started = Instant::now();
            return match certify_composed(&outcome, check_threads) {
                Ok(ok) => SeedRun {
                    report: SeedReport {
                        scenario: scenario.name(),
                        seed,
                        certified: true,
                        violation: None,
                        history_ops: ok.history.len(),
                        p50_ms: p50,
                        p99_ms: p99,
                        wall_ms: started.elapsed().as_secs_f64() * 1_000.0,
                        cert_ms: cert_started.elapsed().as_secs_f64() * 1_000.0,
                    },
                    artifact: None,
                },
                Err(v) => SeedRun {
                    report: SeedReport {
                        scenario: scenario.name(),
                        seed,
                        certified: false,
                        violation: Some(v.reason.clone()),
                        history_ops: v.history.len(),
                        p50_ms: p50,
                        p99_ms: p99,
                        wall_ms: started.elapsed().as_secs_f64() * 1_000.0,
                        cert_ms: cert_started.elapsed().as_secs_f64() * 1_000.0,
                    },
                    artifact: Some(FailureArtifact {
                        scenario: scenario.name().to_string(),
                        seed,
                        model: scenario.model(),
                        violation: v.reason,
                        witness: v.witness,
                        history: v.history,
                    }),
                },
            };
        }
    };

    let cert_started = Instant::now();
    let verdict = match pre_violation {
        Some(reason) => Err(reason),
        None => {
            let index = HistoryIndex::new(&history);
            check_witness_parallel(&history, &index, &witness, scenario.model(), check_threads)
                .map_err(|v| format!("{} violation: {v:?}", model_name(scenario.model())))
        }
    };
    let cert_ms = cert_started.elapsed().as_secs_f64() * 1_000.0;
    let wall_ms = started.elapsed().as_secs_f64() * 1_000.0;
    match verdict {
        Ok(()) => SeedRun {
            report: SeedReport {
                scenario: scenario.name(),
                seed,
                certified: true,
                violation: None,
                history_ops: history.len(),
                p50_ms,
                p99_ms,
                wall_ms,
                cert_ms,
            },
            artifact: None,
        },
        Err(reason) => SeedRun {
            report: SeedReport {
                scenario: scenario.name(),
                seed,
                certified: false,
                violation: Some(reason.clone()),
                history_ops: history.len(),
                p50_ms,
                p99_ms,
                wall_ms,
                cert_ms,
            },
            artifact: Some(FailureArtifact {
                scenario: scenario.name().to_string(),
                seed,
                model: scenario.model(),
                violation: reason,
                witness,
                history,
            }),
        },
    }
}

/// Spanner-RSS sweep configuration: WAN topology, three client nodes with
/// two closed-loop sessions each, moderately contended uniform workload.
fn run_spanner_seed(seed: u64) -> spanner::RunResult {
    let config = spanner::SpannerConfig::wan(spanner::Mode::SpannerRss);
    let net = LatencyMatrix::spanner_wan();
    let clients = (0..3)
        .map(|i| spanner::ClientSpec {
            region: i % 3,
            sessions: SessionConfig::closed_loop(4, SimDuration::ZERO)
                .with_workload_seed(seed.wrapping_mul(1_000_003).wrapping_add(i as u64)),
            workload: Box::new(spanner::UniformWorkload {
                num_keys: 250,
                ro_fraction: 0.5,
                keys_per_txn: 2,
            }) as Box<dyn SessionWorkload>,
        })
        .collect();
    spanner::run_cluster(spanner::ClusterSpec {
        config,
        net,
        seed,
        clients,
        stop_issuing_at: SimTime::from_secs(45),
        drain: SimDuration::from_secs(8),
        measure_from: SimTime::from_secs(1),
    })
}

/// Gryff-RSC sweep configuration: five-region WAN, one client per region
/// with two closed-loop sessions, conflict-heavy YCSB mix.
fn run_gryff_seed(seed: u64) -> gryff::GryffRunResult {
    let config = gryff::GryffConfig::wan(gryff::Mode::GryffRsc);
    let net = LatencyMatrix::gryff_wan();
    let clients = (0..5)
        .map(|i| gryff::GryffClientSpec {
            region: i % 5,
            sessions: SessionConfig::closed_loop(3, SimDuration::ZERO)
                .with_workload_seed(seed.wrapping_mul(999_983).wrapping_add(i as u64)),
            workload: Box::new(gryff::ConflictWorkload::ycsb(
                0.5,
                0.25,
                seed.wrapping_add(i as u64),
            )) as Box<dyn SessionWorkload>,
        })
        .collect();
    gryff::run_gryff(gryff::GryffClusterSpec {
        config,
        net,
        seed,
        clients,
        stop_issuing_at: SimTime::from_secs(45),
        drain: SimDuration::from_secs(8),
        measure_from: SimTime::from_secs(1),
    })
}

/// Composed sweep configuration (smaller than the integration test's, to
/// keep per-seed cost down).
fn composed_seed_config() -> ComposedRunConfig {
    ComposedRunConfig {
        num_apps: 3,
        ops_per_service: 3,
        batch: 2,
        duration_secs: 30,
        drain_secs: 10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_round_trip() {
        for s in Scenario::ALL {
            assert_eq!(Scenario::parse(s.name()), Some(s));
        }
        assert_eq!(Scenario::parse("SPANNER"), Some(Scenario::SpannerRss));
        assert_eq!(Scenario::parse("nope"), None);
    }

    #[test]
    fn each_scenario_certifies_one_seed() {
        for scenario in Scenario::ALL {
            let run = run_seed(scenario, 42, 2);
            assert!(
                run.report.certified,
                "{} seed 42 must certify: {:?}",
                scenario.name(),
                run.report.violation
            );
            assert!(run.artifact.is_none());
            assert!(
                run.report.history_ops > 128,
                "{} histories exceed the old exact-search frontier ({} ops)",
                scenario.name(),
                run.report.history_ops
            );
            assert!(run.report.p99_ms >= run.report.p50_ms);
        }
    }
}
