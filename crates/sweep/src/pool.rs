//! A work-stealing thread pool for fanning independent jobs across cores.
//!
//! The conformance sweep's unit of work is coarse — one seeded simulator run
//! plus its certification, tens to hundreds of milliseconds — so the pool
//! optimizes for simplicity and load balance rather than fine-grained task
//! overhead: jobs are identified by dense indices, each worker owns a
//! contiguous index range, and an idle worker *steals the far half* of the
//! largest remaining range. Range halving keeps steals `O(log jobs)` per
//! worker while letting a long-running straggler shed all but the job it is
//! executing.
//!
//! Built on `std::thread::scope` (borrowed jobs, no `'static` bound) and the
//! vendored `parking_lot` mutex; no channels, no condvars — workers exit when
//! every range is empty, which is exactly when no unstarted work exists.

use parking_lot::Mutex;

/// One worker's claimable index range (`next..end`).
#[derive(Debug, Clone, Copy)]
struct Range {
    next: usize,
    end: usize,
}

impl Range {
    fn len(&self) -> usize {
        self.end - self.next
    }
}

/// A fixed-width work-stealing pool.
#[derive(Debug, Clone, Copy)]
pub struct WorkStealingPool {
    threads: usize,
}

/// Counters describing how a [`WorkStealingPool::run`] call balanced itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs executed (equals the job count on success).
    pub executed: usize,
    /// Range-halving steals that transferred at least one job.
    pub steals: usize,
}

impl WorkStealingPool {
    /// A pool with `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        WorkStealingPool { threads: threads.max(1) }
    }

    /// A pool sized to the machine (`std::thread::available_parallelism`).
    pub fn with_available_parallelism() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self::new(threads)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(i)` for every `i in 0..jobs` across the pool, returning the
    /// results in job order plus balance counters.
    ///
    /// `f` runs concurrently from several threads (hence `Sync`); a single
    /// worker (no spawns) is used when `threads == 1` or there is at most one
    /// job, so small inputs pay no thread cost.
    pub fn run<R, F>(&self, jobs: usize, f: F) -> (Vec<R>, PoolStats)
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = self.threads.min(jobs.max(1));
        if workers <= 1 || jobs <= 1 {
            let results = (0..jobs).map(&f).collect();
            return (results, PoolStats { executed: jobs, steals: 0 });
        }

        // Initial even split of 0..jobs into per-worker ranges.
        let ranges: Vec<Mutex<Range>> = (0..workers)
            .map(|w| {
                let next = w * jobs / workers;
                let end = (w + 1) * jobs / workers;
                Mutex::new(Range { next, end })
            })
            .collect();
        let slots: Vec<Mutex<Option<R>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
        let steals = Mutex::new(0usize);

        std::thread::scope(|scope| {
            for w in 0..workers {
                let ranges = &ranges;
                let slots = &slots;
                let steals = &steals;
                let f = &f;
                scope.spawn(move || loop {
                    // Claim from the worker's own range first.
                    let mine = {
                        let mut r = ranges[w].lock();
                        if r.next < r.end {
                            let i = r.next;
                            r.next += 1;
                            Some(i)
                        } else {
                            None
                        }
                    };
                    let job = match mine {
                        Some(i) => i,
                        None => {
                            // Steal the far half of the largest other range
                            // (the whole range when it holds a single job).
                            let victim = (0..ranges.len())
                                .filter(|&v| v != w)
                                .max_by_key(|&v| ranges[v].lock().len());
                            let Some(v) = victim else { break };
                            let taken = {
                                let mut r = ranges[v].lock();
                                let len = r.len();
                                if len == 0 {
                                    // The largest range is empty, so every
                                    // unclaimed job is gone: done. (A range
                                    // that refilled between the scan and this
                                    // lock only means another worker stole
                                    // it — the jobs are still claimed.)
                                    None
                                } else {
                                    let keep = len / 2;
                                    let t = Range { next: r.next + keep, end: r.end };
                                    r.end = r.next + keep;
                                    Some(t)
                                }
                            };
                            let Some(mut taken) = taken else { break };
                            *steals.lock() += 1;
                            let i = taken.next;
                            taken.next += 1;
                            if taken.len() > 0 {
                                *ranges[w].lock() = taken;
                            }
                            i
                        }
                    };
                    *slots[job].lock() = Some(f(job));
                });
            }
        });

        let stolen = *steals.lock();
        let results: Vec<R> = slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every job index was claimed exactly once"))
            .collect();
        let executed = results.len();
        (results, PoolStats { executed, steals: stolen })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_job_exactly_once_in_order() {
        let calls = AtomicUsize::new(0);
        let pool = WorkStealingPool::new(4);
        let (results, stats) = pool.run(100, |i| {
            calls.fetch_add(1, Ordering::SeqCst);
            i * 3
        });
        assert_eq!(calls.load(Ordering::SeqCst), 100);
        assert_eq!(stats.executed, 100);
        assert_eq!(results, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_and_empty_inputs() {
        let pool = WorkStealingPool::new(1);
        let (results, stats) = pool.run(5, |i| i + 1);
        assert_eq!(results, vec![1, 2, 3, 4, 5]);
        assert_eq!(stats.steals, 0);
        let (empty, _) = WorkStealingPool::new(8).run(0, |i| i);
        assert!(empty.is_empty());
        assert_eq!(WorkStealingPool::new(0).threads(), 1, "thread count is clamped");
    }

    #[test]
    fn unbalanced_jobs_complete_under_stealing() {
        // A few heavy jobs at the front of the index space; with four workers
        // the back ranges drain instantly and their owners steal. The
        // assertion is correctness (every result present), not timing.
        let pool = WorkStealingPool::new(4);
        let (results, stats) = pool.run(64, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i
        });
        assert_eq!(results, (0..64).collect::<Vec<_>>());
        assert_eq!(stats.executed, 64);
    }

    #[test]
    fn results_can_borrow_the_environment() {
        let inputs: Vec<String> = (0..10).map(|i| format!("job-{i}")).collect();
        let pool = WorkStealingPool::new(3);
        let (lens, _) = pool.run(inputs.len(), |i| inputs[i].len());
        assert_eq!(lens.iter().sum::<usize>(), inputs.iter().map(String::len).sum::<usize>());
    }
}
