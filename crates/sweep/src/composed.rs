//! The composed multi-service deployment as a reusable scenario.
//!
//! One simulation runs a Spanner-RSS store (3 shards) and a Gryff-RSC store
//! (5 replicas) side by side; composed app nodes drive sessions that hop
//! between the stores through the unified `Service` API, with `libRSS`
//! inserting a real-time fence at the previous service on every switch. The
//! combined history — both services, one process space — is certified
//! against the RSS (Regular) witness model, which is exactly the paper's
//! Figure 3 composition guarantee.
//!
//! This module was extracted from the `multi_service` integration test so
//! the conformance sweep can fan it across seeds; the test now drives this
//! code (one implementation, certified both places).

use std::collections::HashMap;
use std::time::Duration;

use regular_core::checker::assemble::assemble_witness;
use regular_core::checker::certificate::{check_witness_parallel, WitnessModel};
use regular_core::history::{History, HistoryIndex};
use regular_core::op::{OpKind, OpResult};
use regular_core::types::{OpId, ServiceId};
use regular_gryff::prelude::{GryffConfig, GryffService};
use regular_gryff::replica::GryffReplica;
use regular_gryff::workload::ConflictWorkload;
use regular_gryff::{Carstamp, GryffMsg};
use regular_live::wire::{Dec, Enc, Wire};
use regular_live::{
    run_live_transport, DeliveryRecord, LiveConfig, LiveNode, LiveOutcome, TransportKind, WireStats,
};
use regular_session::{
    CompletedRecord, ComposedRunner, HandoffRecord, HistoryRecorder, MappedService,
    MultiServiceWorkload, RoundRobinWorkload, Service, SessionConfig, SessionWorkload, WitnessHint,
};
use regular_sim::compose::Embedded;
use regular_sim::engine::{Context, Engine, EngineConfig, Node, NodeId};
use regular_sim::fault::FaultSchedule;
use regular_sim::metrics::MessageStats;
use regular_sim::net::LatencyMatrix;
use regular_sim::queue::QueueKind;
use regular_sim::time::{SimDuration, SimTime};
use regular_spanner::prelude::{
    Mode as SpannerMode, SpannerConfig, SpannerService, UniformWorkload,
};
use regular_spanner::shard::ShardNode;
use regular_spanner::SpannerMsg;
use regular_storage::{Durability, StorageSummary};
use regular_workloads::photo::PhotoSharingWorkload;

/// Service id of the Spanner-RSS store in the combined history.
pub const SPANNER_SERVICE: ServiceId = ServiceId(0);
/// Service id of the Gryff-RSC store in the combined history.
pub const GRYFF_SERVICE: ServiceId = ServiceId(1);

/// The combined wire type of the composite deployment.
#[derive(Clone)]
pub enum DuoMsg {
    /// A Spanner protocol message.
    Spanner(SpannerMsg),
    /// A Gryff protocol message.
    Gryff(GryffMsg),
}

impl From<SpannerMsg> for DuoMsg {
    fn from(m: SpannerMsg) -> Self {
        DuoMsg::Spanner(m)
    }
}
impl From<GryffMsg> for DuoMsg {
    fn from(m: GryffMsg) -> Self {
        DuoMsg::Gryff(m)
    }
}
impl TryFrom<DuoMsg> for SpannerMsg {
    type Error = ();
    fn try_from(m: DuoMsg) -> Result<Self, ()> {
        match m {
            DuoMsg::Spanner(s) => Ok(s),
            DuoMsg::Gryff(_) => Err(()),
        }
    }
}
impl TryFrom<DuoMsg> for GryffMsg {
    type Error = ();
    fn try_from(m: DuoMsg) -> Result<Self, ()> {
        match m {
            DuoMsg::Gryff(g) => Ok(g),
            DuoMsg::Spanner(_) => Err(()),
        }
    }
}

// One tag byte selecting the protocol, then that protocol's own wire
// encoding — which makes the composed deployment socket-capable (see
// `regular_live::wire`).
impl Wire for DuoMsg {
    fn encode(&self, e: &mut Enc) {
        match self {
            DuoMsg::Spanner(m) => {
                e.u8(0);
                m.encode(e);
            }
            DuoMsg::Gryff(m) => {
                e.u8(1);
                m.encode(e);
            }
        }
    }
    fn decode(d: &mut Dec<'_>) -> Option<Self> {
        Some(match d.u8()? {
            0 => DuoMsg::Spanner(Wire::decode(d)?),
            1 => DuoMsg::Gryff(Wire::decode(d)?),
            _ => return None,
        })
    }
}

/// A node of the composite deployment.
enum DuoNode {
    SpannerShard(Embedded<ShardNode, SpannerMsg>),
    GryffReplica(Embedded<GryffReplica, GryffMsg>),
    App(ComposedRunner<DuoMsg>),
}

impl LiveNode<DuoMsg> for DuoNode {
    fn drain_completions(&mut self, out: &mut Vec<(usize, CompletedRecord)>) {
        if let DuoNode::App(runner) = self {
            out.append(&mut runner.completed);
        }
    }
}

impl Node<DuoMsg> for DuoNode {
    fn on_start(&mut self, ctx: &mut Context<DuoMsg>) {
        match self {
            DuoNode::SpannerShard(n) => n.on_start(ctx),
            DuoNode::GryffReplica(n) => n.on_start(ctx),
            DuoNode::App(n) => n.on_start(ctx),
        }
    }
    fn on_message(&mut self, ctx: &mut Context<DuoMsg>, from: NodeId, msg: DuoMsg) {
        match self {
            DuoNode::SpannerShard(n) => n.on_message(ctx, from, msg),
            DuoNode::GryffReplica(n) => n.on_message(ctx, from, msg),
            DuoNode::App(n) => n.on_message(ctx, from, msg),
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<DuoMsg>, tag: u64) {
        match self {
            DuoNode::SpannerShard(n) => n.on_timer(ctx, tag),
            DuoNode::GryffReplica(n) => n.on_timer(ctx, tag),
            DuoNode::App(n) => n.on_timer(ctx, tag),
        }
    }
    fn on_crash(&mut self, ctx: &mut Context<DuoMsg>) {
        match self {
            DuoNode::SpannerShard(n) => n.on_crash(ctx),
            DuoNode::GryffReplica(n) => n.on_crash(ctx),
            DuoNode::App(n) => n.on_crash(ctx),
        }
    }
    fn on_recover(&mut self, ctx: &mut Context<DuoMsg>) {
        match self {
            DuoNode::SpannerShard(n) => n.on_recover(ctx),
            DuoNode::GryffReplica(n) => n.on_recover(ctx),
            DuoNode::App(n) => n.on_recover(ctx),
        }
    }
}

/// One app node's results.
pub struct AppResult {
    /// The app's node id.
    pub node: NodeId,
    /// Completions annotated with the producing service index.
    pub completed: Vec<(usize, CompletedRecord)>,
    /// Auto-fences `libRSS` executed for this app.
    pub auto_fences: u64,
    /// Cross-process causal handoffs this app performed.
    pub handoffs: Vec<HandoffRecord>,
    /// Causal contexts imported by this app's sessions.
    pub contexts_imported: u64,
}

/// Which application drives the composed deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComposedWorkload {
    /// Sessions alternate uniform/YCSB operations, hopping stores every
    /// `ops_per_service` operations.
    RoundRobin,
    /// The Section 2 photo-sharing app: uploader and worker lanes hopping
    /// between the photo store and the request queue on every step
    /// (`regular_workloads::photo`).
    PhotoApp,
}

/// Parameters of a composed run.
#[derive(Debug, Clone)]
pub struct ComposedRunConfig {
    /// Number of composed app nodes.
    pub num_apps: usize,
    /// Operations a session issues at one store before hopping to the next
    /// (round-robin workload only; the photo app hops every step).
    pub ops_per_service: usize,
    /// Session pipelining depth.
    pub batch: usize,
    /// Simulated seconds of load generation.
    pub duration_secs: u64,
    /// Extra simulated seconds to drain in-flight operations.
    pub drain_secs: u64,
    /// The application driving the stores.
    pub workload: ComposedWorkload,
    /// Scripted faults installed into the one shared engine. Node indices:
    /// Spanner shards are nodes `0..3`, Gryff replicas `3..8`, apps from 8.
    pub faults: FaultSchedule,
    /// Client-side operation timeout for both protocol cores; required (and
    /// only meaningful) when `faults` is non-empty.
    pub op_timeout: Option<SimDuration>,
    /// Export/import a cross-process `CausalContext` every this many
    /// completed batches per app (see
    /// [`ComposedRunner::with_context_handoff`]); `None` disables handoffs.
    pub handoff_every: Option<u64>,
    /// Event-queue implementation the shared engine runs on (differential
    /// tests run the same seed on both kinds and compare histories).
    pub queue_kind: QueueKind,
    /// Storage backing for both stores' nodes (`InMemory` keeps the
    /// pre-existing volatile behaviour; `Wal` routes shard and replica state
    /// through per-node write-ahead logs and recovers crashes from them).
    pub durability: Durability,
    /// Transport carrying messages on the live plane (ignored by the
    /// discrete-event engine, which has no transport to choose).
    pub transport: TransportKind,
}

impl Default for ComposedRunConfig {
    fn default() -> Self {
        ComposedRunConfig {
            num_apps: 3,
            ops_per_service: 3,
            batch: 1,
            duration_secs: 20,
            drain_secs: 10,
            workload: ComposedWorkload::RoundRobin,
            faults: FaultSchedule::default(),
            op_timeout: None,
            handoff_every: None,
            queue_kind: QueueKind::Indexed,
            durability: Durability::InMemory,
            transport: TransportKind::Mpsc,
        }
    }
}

/// The raw output of a composed run.
pub struct ComposedOutcome {
    /// Per-app completions.
    pub apps: Vec<AppResult>,
    /// Engine message counters (drops, duplicates, expirations included).
    pub net_stats: MessageStats,
    /// Aggregated WAL counters across every shard and replica (all zeroes
    /// under `Durability::InMemory`).
    pub storage: StorageSummary,
}

impl ComposedOutcome {
    /// Completed operations at the Spanner store (fences excluded).
    pub fn spanner_ops(&self) -> u64 {
        self.count(|svc, rec| svc == 0 && !rec.kind.is_fence())
    }

    /// Completed operations at the Gryff store (fences excluded).
    pub fn gryff_ops(&self) -> u64 {
        self.count(|svc, rec| svc != 0 && !rec.kind.is_fence())
    }

    /// Fence operations that completed (at either store).
    pub fn fences(&self) -> u64 {
        self.count(|_, rec| rec.kind.is_fence())
    }

    /// Auto-fences the `libRSS` planners executed across all apps.
    pub fn auto_fences(&self) -> u64 {
        self.apps.iter().map(|a| a.auto_fences).sum()
    }

    /// Total completions, fences included.
    pub fn total_completed(&self) -> usize {
        self.apps.iter().map(|a| a.completed.len()).sum()
    }

    /// Cross-process causal handoffs across all apps.
    pub fn handoffs(&self) -> u64 {
        self.apps.iter().map(|a| a.handoffs.len() as u64).sum()
    }

    fn count(&self, pred: impl Fn(usize, &CompletedRecord) -> bool) -> u64 {
        self.apps
            .iter()
            .flat_map(|a| a.completed.iter())
            .filter(|(svc, rec)| pred(*svc, rec))
            .count() as u64
    }
}

/// Runs the composite deployment: 3 Spanner-RSS shards + 5 Gryff-RSC
/// replicas, `config.num_apps` composed client nodes whose sessions
/// alternate between the two stores every `config.ops_per_service`
/// operations. Deterministic for a fixed `(seed, config)`.
pub fn run_composed(seed: u64, config: &ComposedRunConfig) -> ComposedOutcome {
    let mut spanner_cfg = SpannerConfig::wan(SpannerMode::SpannerRss);
    let mut gryff_cfg = GryffConfig::wan(regular_gryff::config::Mode::GryffRsc);
    spanner_cfg.op_timeout = config.op_timeout;
    gryff_cfg.op_timeout = config.op_timeout;
    spanner_cfg.durability = config.durability.clone();
    gryff_cfg.durability = config.durability.clone();
    assert!(
        config.faults.is_empty() || config.op_timeout.is_some(),
        "fault schedules need a client operation timeout, or lanes whose \
         requests are lost stall forever"
    );
    // Both topologies use regions 0..=4 of the Gryff WAN matrix; the Spanner
    // stores' three leaders sit in regions 0/1/2.
    let net = LatencyMatrix::gryff_wan();
    let stop_issuing_at = SimTime::from_secs(config.duration_secs);
    let engine_cfg = EngineConfig {
        default_service_time: spanner_cfg.shard_service_time,
        max_time: stop_issuing_at + SimDuration::from_secs(config.drain_secs),
        truetime_epsilon: spanner_cfg.truetime_epsilon,
        queue: config.queue_kind,
    };
    let mut engine: Engine<DuoMsg, DuoNode> = Engine::new(engine_cfg, net.clone(), seed);
    if !config.faults.is_empty() {
        engine.install_faults(config.faults.clone());
    }

    // Spanner shards.
    let mut shard_nodes = Vec::new();
    let mut replication_delays = Vec::new();
    for shard in 0..spanner_cfg.num_shards {
        let delay = spanner_cfg.replication_delay(shard, &net);
        replication_delays.push(delay);
        let id = engine.add_node_with(
            DuoNode::SpannerShard(Embedded::new(ShardNode::new(&spanner_cfg, shard, delay))),
            spanner_cfg.leader_regions[shard],
            spanner_cfg.shard_service_time,
        );
        shard_nodes.push(id);
    }
    // Gryff replicas, at node ids num_shards..num_shards+num_replicas: each
    // replica must know the group's node-id base for its rmw coordination
    // rounds.
    let replica_base = engine.num_nodes();
    let mut replica_nodes = Vec::new();
    for i in 0..gryff_cfg.num_replicas {
        let replica = GryffReplica::new(&gryff_cfg, i).with_first_node(replica_base);
        let id = engine.add_node_with(
            DuoNode::GryffReplica(Embedded::new(replica)),
            gryff_cfg.replica_regions[i],
            gryff_cfg.replica_service_time,
        );
        replica_nodes.push(id);
    }
    // Composed app nodes: each drives sessions hopping between both stores.
    let mut app_ids = Vec::new();
    for i in 0..config.num_apps {
        let region = i % 3;
        let s_core = SpannerService::new(regular_spanner::client_config(
            &spanner_cfg,
            &net,
            region,
            shard_nodes.clone(),
            replication_delays.clone(),
        ))
        .with_service_id(SPANNER_SERVICE);
        let g_core =
            GryffService::new(regular_gryff::client_config(&gryff_cfg, replica_nodes.clone()))
                .with_service_id(GRYFF_SERVICE);
        let services: Vec<Box<dyn Service<Msg = DuoMsg>>> = vec![
            Box::new(MappedService::with_tag_namespace(s_core, 0, 2)),
            Box::new(MappedService::with_tag_namespace(g_core, 1, 2)),
        ];
        let workload: Box<dyn MultiServiceWorkload> = match config.workload {
            ComposedWorkload::RoundRobin => Box::new(RoundRobinWorkload::new(
                vec![
                    Box::new(UniformWorkload { num_keys: 60, ro_fraction: 0.5, keys_per_txn: 2 })
                        as Box<dyn SessionWorkload>,
                    Box::new(ConflictWorkload::ycsb(0.5, 0.4, seed.wrapping_add(i as u64)))
                        as Box<dyn SessionWorkload>,
                ],
                config.ops_per_service,
            )),
            ComposedWorkload::PhotoApp => Box::new(PhotoSharingWorkload::default()),
        };
        let mut runner = ComposedRunner::new(
            services,
            SessionConfig::closed_loop(2, SimDuration::ZERO)
                .with_batch(config.batch)
                .with_workload_seed(seed.wrapping_mul(31).wrapping_add(i as u64)),
            stop_issuing_at,
            workload,
        );
        if let Some(every) = config.handoff_every {
            runner = runner.with_context_handoff(every);
        }
        let id =
            engine.add_node_with(DuoNode::App(runner), region, spanner_cfg.client_service_time);
        app_ids.push(id);
    }

    engine.run();

    if std::env::var_os("COMPOSED_DEBUG").is_some() {
        for id in 0..engine.num_nodes() {
            match engine.node(id) {
                DuoNode::SpannerShard(s) => eprintln!("node {id} {}", s.inner.debug_inflight()),
                DuoNode::GryffReplica(_) => {}
                DuoNode::App(runner) => eprintln!("app {id} {}", runner.debug_inflight()),
            }
        }
    }

    let apps = app_ids
        .into_iter()
        .map(|id| match engine.node(id) {
            DuoNode::App(runner) => AppResult {
                node: id,
                completed: runner.completed.clone(),
                auto_fences: runner.fence_stats().executed,
                handoffs: runner.handoffs.clone(),
                contexts_imported: runner.stats.contexts_imported,
            },
            _ => unreachable!("app ids point at composed runners"),
        })
        .collect();
    let mut storage = StorageSummary::default();
    for id in shard_nodes.iter().chain(replica_nodes.iter()) {
        match engine.node(*id) {
            DuoNode::SpannerShard(s) => storage.add_wal(&s.inner.wal_stats()),
            DuoNode::GryffReplica(r) => storage.add_wal(&r.inner.wal_stats()),
            DuoNode::App(_) => unreachable!("store ids point at protocol nodes"),
        }
    }
    ComposedOutcome { apps, net_stats: engine.message_stats(), storage }
}

/// The outcome of a live composed run: the per-app results in the exact
/// shape [`run_composed`] produces (so [`certify_composed`] is shared
/// between planes), plus the wall-clock metrics and the transport's
/// delivery log only the live plane has.
pub struct ComposedLiveRun {
    /// Per-app completions and message counters.
    pub outcome: ComposedOutcome,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Non-fence completions per wall-clock second.
    pub wall_throughput: f64,
    /// Simulated time when the run stopped.
    pub finished_at: SimTime,
    /// The transport's delivery log (empty unless recording was enabled).
    pub deliveries: Vec<DeliveryRecord>,
    /// Socket traffic counters (all zeros on the mpsc transport).
    pub wire: WireStats,
}

/// [`run_composed`] on the live execution plane: the same node graph of
/// 3 shards, 5 replicas, and the app runners, but every node is an OS thread
/// and time is the scaled wall clock. `config.queue_kind` is ignored — there is no event queue to
/// choose. Live runs are *not* bit-deterministic for a seed; pass
/// `record_deliveries` to preserve the schedule evidence for artifacts.
pub fn run_composed_live(
    seed: u64,
    config: &ComposedRunConfig,
    time_scale: u64,
    record_deliveries: bool,
) -> ComposedLiveRun {
    let mut spanner_cfg = SpannerConfig::wan(SpannerMode::SpannerRss);
    let mut gryff_cfg = GryffConfig::wan(regular_gryff::config::Mode::GryffRsc);
    spanner_cfg.op_timeout = config.op_timeout;
    gryff_cfg.op_timeout = config.op_timeout;
    spanner_cfg.durability = config.durability.clone();
    gryff_cfg.durability = config.durability.clone();
    assert!(
        config.faults.is_empty() || config.op_timeout.is_some(),
        "fault schedules need a client operation timeout, or lanes whose \
         requests are lost stall forever"
    );
    let net = LatencyMatrix::gryff_wan();
    let stop_issuing_at = SimTime::from_secs(config.duration_secs);

    // Same node-id layout as `run_composed`: shards, then replicas, then
    // apps, so fault scripts written against one plane hit the same victims
    // on the other.
    let mut nodes: Vec<(DuoNode, usize)> = Vec::new();
    let mut shard_nodes = Vec::new();
    let mut replication_delays = Vec::new();
    for shard in 0..spanner_cfg.num_shards {
        let delay = spanner_cfg.replication_delay(shard, &net);
        replication_delays.push(delay);
        shard_nodes.push(nodes.len());
        nodes.push((
            DuoNode::SpannerShard(Embedded::new(ShardNode::new(&spanner_cfg, shard, delay))),
            spanner_cfg.leader_regions[shard],
        ));
    }
    let replica_base = nodes.len();
    let mut replica_nodes = Vec::new();
    for i in 0..gryff_cfg.num_replicas {
        let replica = GryffReplica::new(&gryff_cfg, i).with_first_node(replica_base);
        replica_nodes.push(nodes.len());
        nodes.push((DuoNode::GryffReplica(Embedded::new(replica)), gryff_cfg.replica_regions[i]));
    }
    let app_base = nodes.len();
    for i in 0..config.num_apps {
        let region = i % 3;
        let s_core = SpannerService::new(regular_spanner::client_config(
            &spanner_cfg,
            &net,
            region,
            shard_nodes.clone(),
            replication_delays.clone(),
        ))
        .with_service_id(SPANNER_SERVICE);
        let g_core =
            GryffService::new(regular_gryff::client_config(&gryff_cfg, replica_nodes.clone()))
                .with_service_id(GRYFF_SERVICE);
        let services: Vec<Box<dyn Service<Msg = DuoMsg>>> = vec![
            Box::new(MappedService::with_tag_namespace(s_core, 0, 2)),
            Box::new(MappedService::with_tag_namespace(g_core, 1, 2)),
        ];
        let workload: Box<dyn MultiServiceWorkload> = match config.workload {
            ComposedWorkload::RoundRobin => Box::new(RoundRobinWorkload::new(
                vec![
                    Box::new(UniformWorkload { num_keys: 60, ro_fraction: 0.5, keys_per_txn: 2 })
                        as Box<dyn SessionWorkload>,
                    Box::new(ConflictWorkload::ycsb(0.5, 0.4, seed.wrapping_add(i as u64)))
                        as Box<dyn SessionWorkload>,
                ],
                config.ops_per_service,
            )),
            ComposedWorkload::PhotoApp => Box::new(PhotoSharingWorkload::default()),
        };
        let mut runner = ComposedRunner::new(
            services,
            SessionConfig::closed_loop(2, SimDuration::ZERO)
                .with_batch(config.batch)
                .with_workload_seed(seed.wrapping_mul(31).wrapping_add(i as u64)),
            stop_issuing_at,
            workload,
        );
        if let Some(every) = config.handoff_every {
            runner = runner.with_context_handoff(every);
        }
        nodes.push((DuoNode::App(runner), region));
    }

    let live_cfg = LiveConfig {
        seed,
        faults: config.faults.clone(),
        truetime_epsilon: spanner_cfg.truetime_epsilon,
        time_scale,
        stop_at: stop_issuing_at + SimDuration::from_secs(config.drain_secs),
        record_deliveries,
    };
    let outcome: LiveOutcome<DuoNode> =
        run_live_transport(live_cfg, Box::new(net), nodes, config.transport);
    let LiveOutcome { nodes, mut completed, net_stats, deliveries, finished_at, wall, wire } =
        outcome;

    let mut apps = Vec::new();
    let mut storage = StorageSummary::default();
    for (id, node) in nodes.into_iter().enumerate() {
        match node {
            DuoNode::SpannerShard(s) => storage.add_wal(&s.inner.wal_stats()),
            DuoNode::GryffReplica(r) => storage.add_wal(&r.inner.wal_stats()),
            DuoNode::App(runner) => {
                debug_assert!(id >= app_base, "nodes from app_base on are composed runners");
                let auto_fences = runner.fence_stats().executed;
                apps.push(AppResult {
                    node: id,
                    completed: std::mem::take(&mut completed[id]),
                    auto_fences,
                    handoffs: runner.handoffs,
                    contexts_imported: runner.stats.contexts_imported,
                });
            }
        }
    }
    let outcome = ComposedOutcome { apps, net_stats, storage };
    let measured = outcome.spanner_ops() + outcome.gryff_ops();
    let wall_secs = wall.as_secs_f64();
    let wall_throughput = if wall_secs > 0.0 { measured as f64 / wall_secs } else { 0.0 };
    ComposedLiveRun { outcome, wall, wall_throughput, finished_at, deliveries, wire }
}

/// A certified composed run: the combined history and the accepted witness.
pub struct CertifiedComposed {
    /// The combined two-store history.
    pub history: History,
    /// The witness accepted by the Regular (RSS) certificate checker.
    pub witness: Vec<OpId>,
}

/// Why certification of a composed run failed. Carries the history (and the
/// witness when one was assembled) so callers can dump a replayable
/// artifact.
pub struct ComposedViolation {
    /// Human-readable description.
    pub reason: String,
    /// The combined history.
    pub history: History,
    /// The rejected witness (empty when the constraints were cyclic and no
    /// witness could be assembled).
    pub witness: Vec<OpId>,
}

/// Builds the combined history of a composed run and certifies it against
/// the RSS (Regular) witness model, sharding the certificate check across
/// `check_threads` threads.
///
/// Edge construction per protocol:
///
/// * Spanner **read-write** transactions are chained in commit-timestamp
///   order (writes really are totally ordered; commit wait keeps that order
///   consistent with real time and the cross-service hops). Read-only
///   transactions are *not* chained globally — RSS lets a stale snapshot
///   float later in the serialization, which the cross-service causal edges
///   exploit — but each is pinned per key between the version it observed
///   and the next write of that key.
/// * Gryff ops contribute their per-key carstamp chains.
/// * Every session lane contributes its process order — including the
///   cross-service hops the fences make safe.
pub fn certify_composed(
    run: &ComposedOutcome,
    check_threads: usize,
) -> Result<CertifiedComposed, ComposedViolation> {
    let mut recorder = HistoryRecorder::new();
    // Spanner read-write transactions: (ts, finish, op).
    let mut spanner_rw: Vec<(u64, u64, OpId)> = Vec::new();
    // Spanner writes per key: (ts, value, op).
    let mut spanner_writes: HashMap<u64, Vec<(u64, u64, OpId)>> = HashMap::new();
    // Spanner read-only transactions: (serialization ts, op, [(key, value)]).
    type SpannerRo = (u64, OpId, Vec<(u64, u64)>);
    let mut spanner_ro: Vec<SpannerRo> = Vec::new();
    let mut per_key: HashMap<u64, Vec<(Carstamp, u8, u64, OpId)>> = HashMap::new();
    for app in &run.apps {
        let client = app.node;
        for (svc, rec) in &app.completed {
            let id = recorder.record(client as u64, rec);
            match *svc {
                0 => {
                    let ts = rec.witness_ts().unwrap_or_else(|| rec.finish.as_micros());
                    match (&rec.kind, &rec.result) {
                        (OpKind::RwTxn { writes, .. }, _) => {
                            spanner_rw.push((ts, rec.finish.as_micros(), id));
                            for (k, v) in writes {
                                spanner_writes.entry(k.0).or_default().push((ts, v.0, id));
                            }
                        }
                        (OpKind::RoTxn { .. }, OpResult::Values(vs)) => {
                            spanner_ro.push((ts, id, vs.iter().map(|(k, v)| (k.0, v.0)).collect()));
                        }
                        _ => {} // fences: process order only
                    }
                }
                _ => {
                    let (key, rank) = match &rec.kind {
                        OpKind::Read { key } => (Some(*key), 1),
                        OpKind::Write { key, .. } | OpKind::Rmw { key, .. } => (Some(*key), 0),
                        _ => (None, 0),
                    };
                    if let (Some(k), WitnessHint::Carstamp { count, writer, rmwc }) =
                        (key, rec.witness)
                    {
                        per_key.entry(k.0).or_default().push((
                            Carstamp { count, writer, rmwc },
                            rank,
                            rec.finish.as_micros(),
                            id,
                        ));
                    }
                }
            }
        }
    }
    let mut edges: Vec<(OpId, OpId)> = Vec::new();
    // Spanner write chain.
    spanner_rw.sort_unstable();
    for w in spanner_rw.windows(2) {
        edges.push((w[0].2, w[1].2));
    }
    // Spanner read-only placement: after the observed version, before the
    // next write of each read key.
    for list in spanner_writes.values_mut() {
        list.sort_unstable();
    }
    for (ts, ro, reads) in &spanner_ro {
        for (key, value) in reads {
            let Some(writes) = spanner_writes.get(key) else { continue };
            if *value != 0 {
                if let Some(&(_, _, w)) = writes.iter().find(|(_, v, _)| v == value) {
                    edges.push((w, *ro));
                }
            }
            if let Some(&(_, _, w_next)) = writes.iter().find(|(wts, _, _)| wts > ts) {
                edges.push((*ro, w_next));
            }
        }
    }
    // Gryff carstamp chains.
    for (_, mut items) in per_key {
        items.sort_unstable();
        for w in items.windows(2) {
            edges.push((w[0].3, w[1].3));
        }
    }
    edges.extend(recorder.process_order_edges());
    // Cross-process causal handoffs (Section 4.2): each is an external
    // communication of the history, and a serialization constraint — every
    // operation the exporter completed before serializing its context must
    // precede everything the importer issued after deserializing it. The
    // imported context's inherited fence is what makes these constraints
    // satisfiable.
    for app in &run.apps {
        let client = app.node as u64;
        for h in &app.handoffs {
            let sent = h.exported_at.as_micros();
            let received = h.imported_at.as_micros();
            recorder.record_external_communication(
                (client, h.from.session, h.from.slot),
                sent,
                (client, h.to.session, h.to.slot),
                received,
            );
            if let (Some(before), Some(after)) = (
                recorder.last_completed_before(client, h.from.session, h.from.slot, sent),
                recorder.first_invoked_after(client, h.to.session, h.to.slot, received),
            ) {
                edges.push((before, after));
            }
        }
    }
    let history = recorder.into_history();
    if let Err(e) = history.validate() {
        return Err(ComposedViolation {
            reason: format!("combined history is malformed: {e:?}"),
            history,
            witness: Vec::new(),
        });
    }
    let witness = match assemble_witness(&history, &edges, WitnessModel::Regular) {
        Ok(w) => w,
        Err(e) => {
            return Err(ComposedViolation {
                reason: format!(
                    "combined constraints are cyclic ({} ops unordered): no RSS serialization",
                    e.unordered
                ),
                history,
                witness: Vec::new(),
            });
        }
    };
    let index = HistoryIndex::new(&history);
    match check_witness_parallel(&history, &index, &witness, WitnessModel::Regular, check_threads) {
        Ok(()) => Ok(CertifiedComposed { history, witness }),
        Err(v) => Err(ComposedViolation {
            reason: format!("combined execution violates RSS: {v:?}"),
            history,
            witness,
        }),
    }
}
