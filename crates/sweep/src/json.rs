//! Minimal JSON support for the sweep's machine-readable artifacts.
//!
//! The vendored `serde` stub is derive-only (see `vendor/serde`), so the
//! sweep carries its own tiny JSON tree: enough to *emit* `BENCH_sweep.json`
//! / `BENCH_baseline.json` and to *parse them back* for the CI regression
//! gate and the failing-history replay path. Supported: objects, arrays,
//! strings (with escapes), integer/float numbers, booleans, null. Object
//! keys keep insertion order so emitted files diff cleanly.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Stored as `f64`; integers up to 2^53 round-trip exactly,
    /// which covers every counter and microsecond timestamp the sweep emits.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An unsigned integer value.
    pub fn u64(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// A float value.
    pub fn f64(n: f64) -> Json {
        Json::Num(n)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if numeric and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&close);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the subset this module emits, which is plain
    /// standard JSON).
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number bytes");
            text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number at {start}: {e}"))
        }
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut s = String::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?} at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass through
                // unchanged).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                s.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?);
            }
            None => return Err("unterminated string".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let doc = Json::obj(vec![
            ("name", Json::str("sweep")),
            ("count", Json::u64(32)),
            ("ratio", Json::f64(0.25)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("tags", Json::Arr(vec![Json::str("a\"b"), Json::str("line\nbreak")])),
            ("nested", Json::obj(vec![("inner", Json::Arr(vec![Json::u64(1), Json::u64(2)]))])),
        ]);
        let text = doc.to_pretty();
        let parsed = Json::parse(&text).expect("emitted JSON parses");
        assert_eq!(parsed, doc);
        assert_eq!(parsed.get("count").and_then(Json::as_u64), Some(32));
        assert_eq!(parsed.get("ratio").and_then(Json::as_f64), Some(0.25));
        assert_eq!(parsed.get("tags").and_then(Json::as_arr).map(|a| a.len()), Some(2));
    }

    #[test]
    fn parses_foreign_formatting() {
        let parsed = Json::parse("  {\"a\":[1,2.5,-3,1e2],\"b\":{\"c\":null}} ").unwrap();
        let a = parsed.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[3].as_f64(), Some(100.0));
        assert_eq!(parsed.get("b").unwrap().get("c"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn large_integers_round_trip_exactly() {
        // Microsecond timestamps: well under 2^53.
        let doc = Json::u64(4_102_444_800_000_000);
        let text = doc.to_pretty();
        assert_eq!(text.trim(), "4102444800000000");
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(4_102_444_800_000_000));
    }
}
