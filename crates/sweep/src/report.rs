//! Sweep orchestration and the machine-readable report.
//!
//! [`run_sweep`] fans `scenarios × seeds` certified simulator runs across a
//! [`WorkStealingPool`], collects per-seed reports, writes failing runs as
//! replayable artifacts, and [`sweep_to_json`] aggregates everything into
//! the `BENCH_sweep.json` document CI consumes (schema documented in
//! `BENCHMARKS.md`).

use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::pool::{PoolStats, WorkStealingPool};
use crate::scenario::{run_seed_with, Scenario, SeedReport, SeedRun};

/// What to sweep.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Scenarios to run (each over the full seed corpus).
    pub scenarios: Vec<Scenario>,
    /// Number of seeds per scenario.
    pub seeds: u64,
    /// First seed; the corpus is `base_seed..base_seed + seeds`.
    pub base_seed: u64,
    /// Worker threads fanning the runs.
    pub threads: usize,
    /// Threads sharding each run's witness check. Keep at 1 when the pool
    /// already saturates the machine; raise for few-but-huge histories.
    pub check_threads: usize,
    /// Directory failing runs are dumped into.
    pub artifact_dir: PathBuf,
    /// Target operations per run: scales each scenario's simulated duration
    /// toward roughly this many history operations. `None` keeps the
    /// scenario defaults.
    pub ops: Option<u64>,
    /// Certify through the windowed streaming checker instead of the batch
    /// parallel checker (verdict-equivalent; reports the reorder buffer's
    /// peak depth).
    pub stream: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            scenarios: Scenario::ALL.to_vec(),
            seeds: 32,
            base_seed: 1,
            threads: 1,
            check_threads: 1,
            artifact_dir: PathBuf::from("sweep-artifacts"),
            ops: None,
            stream: false,
        }
    }
}

/// The outcome of one sweep.
pub struct SweepResult {
    /// Per-seed reports, in job order (scenarios interleaved).
    pub reports: Vec<SeedReport>,
    /// Paths of the failure artifacts written.
    pub artifact_paths: Vec<PathBuf>,
    /// Wall-clock milliseconds for the whole sweep.
    pub wall_ms: f64,
    /// Worker threads used.
    pub threads: usize,
    /// Pool balance counters.
    pub pool: PoolStats,
}

impl SweepResult {
    /// Number of runs that failed certification.
    pub fn failures(&self) -> usize {
        self.reports.iter().filter(|r| !r.certified).count()
    }
}

/// Runs the sweep described by `opts`.
///
/// Jobs are laid out scenario-interleaved (`s0 seed0, s1 seed0, …`) so the
/// pool's range-stealing balances dissimilar scenario costs; the report
/// order matches the job order.
pub fn run_sweep(opts: &SweepOptions) -> SweepResult {
    let started = std::time::Instant::now();
    let scenarios = &opts.scenarios;
    let jobs = scenarios.len() * opts.seeds as usize;
    let pool = WorkStealingPool::new(opts.threads);
    let (runs, pool_stats): (Vec<SeedRun>, PoolStats) = pool.run(jobs, |i| {
        let scenario = scenarios[i % scenarios.len()];
        let seed = opts.base_seed + (i / scenarios.len()) as u64;
        run_seed_with(scenario, seed, opts.check_threads, opts.ops, opts.stream)
    });
    let mut reports = Vec::with_capacity(runs.len());
    let mut artifact_paths = Vec::new();
    for run in runs {
        if let Some(artifact) = &run.artifact {
            match artifact.save(&opts.artifact_dir) {
                Ok(path) => artifact_paths.push(path),
                Err(e) => eprintln!(
                    "warning: failed to write artifact for {} seed {}: {e}",
                    run.report.scenario, run.report.seed
                ),
            }
        }
        reports.push(run.report);
    }
    SweepResult {
        reports,
        artifact_paths,
        wall_ms: started.elapsed().as_secs_f64() * 1_000.0,
        threads: pool.threads(),
        pool: pool_stats,
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

/// Aggregates a sweep (plus optional thread-scaling measurements from
/// repeated sweeps) into the `BENCH_sweep.json` document.
pub fn sweep_to_json(result: &SweepResult, opts: &SweepOptions, scaling: &[(usize, f64)]) -> Json {
    let per_scenario = opts
        .scenarios
        .iter()
        .map(|s| {
            let rs: Vec<&SeedReport> =
                result.reports.iter().filter(|r| r.scenario == s.name()).collect();
            let passed = rs.iter().filter(|r| r.certified).count();
            (
                s.name().to_string(),
                Json::obj(vec![
                    ("runs", Json::u64(rs.len() as u64)),
                    ("certified", Json::u64(passed as u64)),
                    ("failed", Json::u64((rs.len() - passed) as u64)),
                    ("history_ops_total", Json::u64(rs.iter().map(|r| r.history_ops as u64).sum())),
                    (
                        "history_ops_min",
                        Json::u64(rs.iter().map(|r| r.history_ops as u64).min().unwrap_or(0)),
                    ),
                    ("messages_dropped_total", Json::u64(rs.iter().map(|r| r.dropped).sum())),
                    ("messages_duplicated_total", Json::u64(rs.iter().map(|r| r.duplicated).sum())),
                    ("messages_expired_total", Json::u64(rs.iter().map(|r| r.expired).sum())),
                    ("latency_p50_ms_mean", Json::f64(round2(mean(rs.iter().map(|r| r.p50_ms))))),
                    ("latency_p99_ms_mean", Json::f64(round2(mean(rs.iter().map(|r| r.p99_ms))))),
                    ("run_wall_ms_mean", Json::f64(round2(mean(rs.iter().map(|r| r.wall_ms))))),
                    ("certify_wall_ms_mean", Json::f64(round2(mean(rs.iter().map(|r| r.cert_ms))))),
                    (
                        "certify_ops_per_sec_mean",
                        Json::f64(round2(mean(
                            rs.iter()
                                .filter(|r| r.cert_ms > 0.0)
                                .map(|r| r.history_ops as f64 / (r.cert_ms / 1_000.0)),
                        ))),
                    ),
                    (
                        "wall_ops_per_sec_mean",
                        Json::f64(round2(mean(rs.iter().map(|r| r.wall_ops_per_sec)))),
                    ),
                    (
                        "components_max",
                        Json::u64(rs.iter().map(|r| r.components as u64).max().unwrap_or(0)),
                    ),
                    (
                        "peak_window_max",
                        Json::u64(rs.iter().map(|r| r.peak_window as u64).max().unwrap_or(0)),
                    ),
                    ("wal_records_total", Json::u64(rs.iter().map(|r| r.storage.records).sum())),
                    ("wal_syncs_total", Json::u64(rs.iter().map(|r| r.storage.syncs).sum())),
                    (
                        "wal_recoveries_total",
                        Json::u64(rs.iter().map(|r| r.storage.recoveries).sum()),
                    ),
                    ("wal_replayed_total", Json::u64(rs.iter().map(|r| r.storage.replayed).sum())),
                ]),
            )
        })
        .collect();
    let failures = result
        .reports
        .iter()
        .filter(|r| !r.certified)
        .map(|r| {
            Json::obj(vec![
                ("scenario", Json::str(r.scenario)),
                ("seed", Json::u64(r.seed)),
                (
                    "violation",
                    Json::str(r.violation.clone().unwrap_or_else(|| "unknown".to_string())),
                ),
            ])
        })
        .collect();
    let host_threads = std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(1);
    let mut pairs = vec![
        ("schema", Json::str("regular-seq/conformance-sweep/v1")),
        ("seeds", Json::u64(opts.seeds)),
        ("base_seed", Json::u64(opts.base_seed)),
        ("threads", Json::u64(result.threads as u64)),
        // Scaling numbers are only meaningful relative to the cores the
        // generating host actually had (CI regenerates this file on every
        // push; a 1-core dev container cannot show parallel speedup).
        ("host_threads", Json::u64(host_threads)),
        ("check_threads", Json::u64(opts.check_threads as u64)),
        ("ops_target", opts.ops.map(Json::u64).unwrap_or(Json::Null)),
        ("stream", Json::Bool(opts.stream)),
        ("total_runs", Json::u64(result.reports.len() as u64)),
        ("total_failures", Json::u64(result.failures() as u64)),
        ("wall_clock_ms", Json::f64(round2(result.wall_ms))),
        ("pool_steals", Json::u64(result.pool.steals as u64)),
        ("scenarios", Json::Obj(per_scenario)),
        ("failures", Json::Arr(failures)),
    ];
    if !scaling.is_empty() {
        let entries = scaling
            .iter()
            .map(|(threads, wall_ms)| {
                Json::obj(vec![
                    ("threads", Json::u64(*threads as u64)),
                    ("wall_clock_ms", Json::f64(round2(*wall_ms))),
                ])
            })
            .collect();
        let speedup = match (scaling.first(), scaling.last()) {
            (Some((_, base)), Some((_, best))) if *best > 0.0 => round2(base / best),
            _ => 0.0,
        };
        pairs.push(("scaling", Json::Arr(entries)));
        pairs.push(("scaling_speedup", Json::f64(speedup)));
    }
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Writes `json` to `path` (pretty-printed, trailing newline).
pub fn write_json(path: &Path, json: &Json) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, json.to_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_aggregates_and_emits_json() {
        // One seed of the two store scenarios on two threads; the composed
        // scenario has its own test in `scenario`.
        let opts = SweepOptions {
            scenarios: vec![Scenario::SpannerRss, Scenario::GryffRsc],
            seeds: 1,
            base_seed: 7,
            threads: 2,
            check_threads: 1,
            artifact_dir: std::env::temp_dir().join("regular-sweep-report-test"),
            ops: None,
            stream: false,
        };
        let result = run_sweep(&opts);
        assert_eq!(result.reports.len(), 2);
        assert_eq!(result.failures(), 0, "seed 7 certifies: {:?}", result.reports);
        assert!(result.artifact_paths.is_empty());
        let json = sweep_to_json(&result, &opts, &[(1, 100.0), (4, 40.0)]);
        let text = json.to_pretty();
        let parsed = Json::parse(&text).expect("report parses");
        assert_eq!(parsed.get("total_runs").and_then(Json::as_u64), Some(2));
        assert_eq!(parsed.get("total_failures").and_then(Json::as_u64), Some(0));
        assert_eq!(parsed.get("scaling_speedup").and_then(Json::as_f64), Some(2.5));
        let spanner = parsed.get("scenarios").unwrap().get("spanner-rss").unwrap();
        assert_eq!(spanner.get("certified").and_then(Json::as_u64), Some(1));
        assert!(spanner.get("history_ops_min").and_then(Json::as_u64).unwrap() > 128);
        assert!(spanner.get("components_max").and_then(Json::as_u64).unwrap() >= 1);
        assert!(spanner.get("certify_ops_per_sec_mean").and_then(Json::as_f64).unwrap() > 0.0);
    }
}
