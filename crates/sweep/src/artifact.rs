//! Replayable failure artifacts.
//!
//! When a sweep seed fails certification, the offending run is dumped as a
//! self-contained JSON artifact: the scenario, the seed, the witness model,
//! the full recorded history, and the witness that was rejected. CI uploads
//! the file; `conformance_sweep --replay <file>` (or
//! [`FailureArtifact::replay`]) re-runs the certificate checker on the exact
//! same history without re-simulating, so a violation found on a 32-core
//! runner reproduces on a laptop byte-for-byte.

use std::path::{Path, PathBuf};

use regular_core::checker::certificate::{check_witness, WitnessModel, WitnessViolation};
use regular_core::coverage::CoverageSignature;
use regular_core::history::History;
use regular_core::op::{OpKind, OpResult};
use regular_core::types::{Key, OpId, ProcessId, ServiceId, Timestamp, Value};
use regular_live::DeliveryRecord;

use crate::json::Json;

/// A certification failure with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct FailureArtifact {
    /// Scenario name (e.g. `spanner-rss`).
    pub scenario: String,
    /// The failing seed.
    pub seed: u64,
    /// The witness model the history was checked against.
    pub model: WitnessModel,
    /// Human-readable description of the violation.
    pub violation: String,
    /// The witness that was rejected.
    pub witness: Vec<OpId>,
    /// The full recorded history.
    pub history: History,
    /// The live transport's delivery log, when the failing run came from the
    /// live plane with recording enabled (live runs are not re-simulable
    /// from the seed alone; this is the schedule evidence). Empty for
    /// simulator runs.
    pub deliveries: Vec<DeliveryRecord>,
    /// Storage mode of the failing run (`"wal"` for the durable scenarios).
    /// `None` means in-memory and is omitted from the JSON, so artifacts
    /// from volatile runs are byte-identical to the pre-storage schema.
    pub durability: Option<String>,
    /// The exact input that produced this failure, when the artifact came
    /// from the coverage-guided hunter (`regular-hunt`): the serialized
    /// hunt input (seed, scripted sessions, fault events, delivery nudges).
    /// Kept opaque here — the hunter owns the encoding; the sweep only
    /// round-trips it. `None` is omitted from the JSON, so sweep artifacts
    /// are byte-identical to the pre-hunt schema.
    pub schedule: Option<Json>,
    /// Behaviour-coverage signature of the failing run, when recorded.
    /// `None` is omitted from the JSON.
    pub coverage: Option<CoverageSignature>,
}

impl FailureArtifact {
    /// Re-runs the certificate checker on the recorded history and witness.
    pub fn replay(&self) -> Result<(), WitnessViolation> {
        check_witness(&self.history, &self.witness, self.model)
    }

    /// Serializes the artifact. The delivery log is only emitted when
    /// non-empty, so simulator artifacts are byte-identical to the pre-live
    /// schema.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("kind", Json::str("conformance-failure-artifact")),
            ("scenario", Json::str(&self.scenario)),
            ("seed", Json::u64(self.seed)),
            ("model", Json::str(model_name(self.model))),
            ("violation", Json::str(&self.violation)),
            ("witness", Json::Arr(self.witness.iter().map(|id| Json::u64(id.0 as u64)).collect())),
            ("history", history_to_json(&self.history)),
        ];
        if let Some(durability) = &self.durability {
            pairs.push(("durability", Json::str(durability)));
        }
        if !self.deliveries.is_empty() {
            let rec = |d: &DeliveryRecord| {
                Json::Arr(vec![
                    Json::u64(d.seq),
                    Json::u64(d.at_us),
                    Json::u64(d.from as u64),
                    Json::u64(d.to as u64),
                ])
            };
            pairs.push(("deliveries", Json::Arr(self.deliveries.iter().map(rec).collect())));
        }
        if let Some(schedule) = &self.schedule {
            pairs.push(("schedule", schedule.clone()));
        }
        if let Some(coverage) = &self.coverage {
            pairs.push((
                "coverage",
                Json::Arr(coverage.features().iter().map(|&f| Json::u64(f as u64)).collect()),
            ));
        }
        Json::obj(pairs)
    }

    /// Deserializes an artifact produced by [`FailureArtifact::to_json`].
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let field = |k: &str| json.get(k).ok_or_else(|| format!("missing field '{k}'"));
        let scenario = field("scenario")?.as_str().ok_or("scenario must be a string")?.to_string();
        let seed = field("seed")?.as_u64().ok_or("seed must be an integer")?;
        let model = parse_model(field("model")?.as_str().ok_or("model must be a string")?)?;
        let violation =
            field("violation")?.as_str().ok_or("violation must be a string")?.to_string();
        let witness = field("witness")?
            .as_arr()
            .ok_or("witness must be an array")?
            .iter()
            .map(|v| v.as_u64().map(|n| OpId(n as u32)).ok_or("witness entries are op ids"))
            .collect::<Result<Vec<_>, _>>()?;
        let history = history_from_json(field("history")?)?;
        let deliveries = match json.get("deliveries") {
            None => Vec::new(),
            Some(list) => list
                .as_arr()
                .ok_or("deliveries must be an array")?
                .iter()
                .map(|d| {
                    let d = d.as_arr().filter(|d| d.len() == 4).ok_or("delivery record shape")?;
                    Ok(DeliveryRecord {
                        seq: d[0].as_u64().ok_or("delivery field")?,
                        at_us: d[1].as_u64().ok_or("delivery field")?,
                        from: d[2].as_u64().ok_or("delivery field")? as usize,
                        to: d[3].as_u64().ok_or("delivery field")? as usize,
                    })
                })
                .collect::<Result<Vec<_>, &str>>()?,
        };
        let durability = json.get("durability").and_then(Json::as_str).map(str::to_string);
        let schedule = json.get("schedule").cloned();
        let coverage = match json.get("coverage") {
            None => None,
            Some(list) => Some(CoverageSignature::from_features(
                list.as_arr()
                    .ok_or("coverage must be an array")?
                    .iter()
                    .map(|f| f.as_u64().map(|n| n as u32).ok_or("coverage entries are integers"))
                    .collect::<Result<Vec<_>, _>>()?,
            )),
        };
        Ok(FailureArtifact {
            scenario,
            seed,
            model,
            violation,
            witness,
            history,
            deliveries,
            durability,
            schedule,
            coverage,
        })
    }

    /// Writes the artifact to `dir/<scenario>-seed<seed>.json`, creating the
    /// directory if needed. Returns the path written.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}-seed{}.json", self.scenario, self.seed));
        std::fs::write(&path, self.to_json().to_pretty())?;
        Ok(path)
    }

    /// Loads an artifact from disk.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&Json::parse(&text)?)
    }
}

/// Stable string name of a witness model.
pub fn model_name(model: WitnessModel) -> &'static str {
    match model {
        WitnessModel::RealTime => "real-time",
        WitnessModel::Regular => "regular",
        WitnessModel::ProcessOrder => "process-order",
    }
}

fn parse_model(name: &str) -> Result<WitnessModel, String> {
    match name {
        "real-time" => Ok(WitnessModel::RealTime),
        "regular" => Ok(WitnessModel::Regular),
        "process-order" => Ok(WitnessModel::ProcessOrder),
        other => Err(format!("unknown witness model '{other}'")),
    }
}

fn kv_pairs(pairs: &[(Key, Value)]) -> Json {
    Json::Arr(pairs.iter().map(|(k, v)| Json::Arr(vec![Json::u64(k.0), Json::u64(v.0)])).collect())
}

fn parse_kv_pairs(json: &Json) -> Result<Vec<(Key, Value)>, String> {
    json.as_arr()
        .ok_or("expected an array of [key, value] pairs")?
        .iter()
        .map(|pair| {
            let pair = pair.as_arr().filter(|p| p.len() == 2).ok_or("expected [key, value]")?;
            let k = pair[0].as_u64().ok_or("key must be an integer")?;
            let v = pair[1].as_u64().ok_or("value must be an integer")?;
            Ok((Key(k), Value(v)))
        })
        .collect()
}

fn keys(keys: &[Key]) -> Json {
    Json::Arr(keys.iter().map(|k| Json::u64(k.0)).collect())
}

fn parse_keys(json: &Json) -> Result<Vec<Key>, String> {
    json.as_arr()
        .ok_or("expected an array of keys")?
        .iter()
        .map(|k| k.as_u64().map(Key).ok_or_else(|| "keys must be integers".to_string()))
        .collect()
}

fn kind_to_json(kind: &OpKind) -> Json {
    match kind {
        OpKind::Read { key } => {
            Json::obj(vec![("op", Json::str("read")), ("key", Json::u64(key.0))])
        }
        OpKind::Write { key, value } => Json::obj(vec![
            ("op", Json::str("write")),
            ("key", Json::u64(key.0)),
            ("value", Json::u64(value.0)),
        ]),
        OpKind::Rmw { key, value } => Json::obj(vec![
            ("op", Json::str("rmw")),
            ("key", Json::u64(key.0)),
            ("value", Json::u64(value.0)),
        ]),
        OpKind::RoTxn { keys: ks } => {
            Json::obj(vec![("op", Json::str("ro_txn")), ("keys", keys(ks))])
        }
        OpKind::RwTxn { read_keys, writes } => Json::obj(vec![
            ("op", Json::str("rw_txn")),
            ("read_keys", keys(read_keys)),
            ("writes", kv_pairs(writes)),
        ]),
        OpKind::Enqueue { queue, value } => Json::obj(vec![
            ("op", Json::str("enqueue")),
            ("key", Json::u64(queue.0)),
            ("value", Json::u64(value.0)),
        ]),
        OpKind::Dequeue { queue } => {
            Json::obj(vec![("op", Json::str("dequeue")), ("key", Json::u64(queue.0))])
        }
        OpKind::Fence => Json::obj(vec![("op", Json::str("fence"))]),
    }
}

fn kind_from_json(json: &Json) -> Result<OpKind, String> {
    let op = json.get("op").and_then(Json::as_str).ok_or("op kind missing 'op' tag")?;
    let key = || {
        json.get("key")
            .and_then(Json::as_u64)
            .map(Key)
            .ok_or_else(|| format!("'{op}' needs an integer 'key'"))
    };
    let value = || {
        json.get("value")
            .and_then(Json::as_u64)
            .map(Value)
            .ok_or_else(|| format!("'{op}' needs an integer 'value'"))
    };
    match op {
        "read" => Ok(OpKind::Read { key: key()? }),
        "write" => Ok(OpKind::Write { key: key()?, value: value()? }),
        "rmw" => Ok(OpKind::Rmw { key: key()?, value: value()? }),
        "ro_txn" => {
            Ok(OpKind::RoTxn { keys: parse_keys(json.get("keys").ok_or("missing keys")?)? })
        }
        "rw_txn" => Ok(OpKind::RwTxn {
            read_keys: parse_keys(json.get("read_keys").ok_or("missing read_keys")?)?,
            writes: parse_kv_pairs(json.get("writes").ok_or("missing writes")?)?,
        }),
        "enqueue" => Ok(OpKind::Enqueue { queue: key()?, value: value()? }),
        "dequeue" => Ok(OpKind::Dequeue { queue: key()? }),
        "fence" => Ok(OpKind::Fence),
        other => Err(format!("unknown op kind '{other}'")),
    }
}

fn result_to_json(result: &OpResult) -> Json {
    match result {
        OpResult::Ack => Json::obj(vec![("r", Json::str("ack"))]),
        OpResult::Value(v) => Json::obj(vec![("r", Json::str("value")), ("v", Json::u64(v.0))]),
        OpResult::Values(kvs) => Json::obj(vec![("r", Json::str("values")), ("kv", kv_pairs(kvs))]),
    }
}

fn result_from_json(json: &Json) -> Result<OpResult, String> {
    match json.get("r").and_then(Json::as_str) {
        Some("ack") => Ok(OpResult::Ack),
        Some("value") => Ok(OpResult::Value(Value(
            json.get("v").and_then(Json::as_u64).ok_or("'value' result needs 'v'")?,
        ))),
        Some("values") => {
            Ok(OpResult::Values(parse_kv_pairs(json.get("kv").ok_or("missing kv")?)?))
        }
        other => Err(format!("unknown result tag {other:?}")),
    }
}

/// Serializes a [`History`] (ops in id order, message edges).
pub fn history_to_json(history: &History) -> Json {
    let ops = history
        .ops()
        .iter()
        .map(|op| {
            let mut pairs = vec![
                ("process", Json::u64(op.process.0 as u64)),
                ("service", Json::u64(op.service.0 as u64)),
                ("kind", kind_to_json(&op.kind)),
                ("invoke", Json::u64(op.invoke.as_micros())),
            ];
            if let Some(resp) = op.response {
                pairs.push(("response", Json::u64(resp.as_micros())));
            }
            if let Some(result) = &op.result {
                pairs.push(("result", result_to_json(result)));
            }
            Json::obj(pairs)
        })
        .collect();
    let edge = |m: &regular_core::history::MessageEdge| {
        Json::Arr(vec![
            Json::u64(m.from.0 as u64),
            Json::u64(m.sent_at.as_micros()),
            Json::u64(m.to.0 as u64),
            Json::u64(m.received_at.as_micros()),
        ])
    };
    Json::obj(vec![
        ("ops", Json::Arr(ops)),
        ("messages", Json::Arr(history.messages().iter().map(edge).collect())),
        ("external", Json::Arr(history.external_communications().iter().map(edge).collect())),
    ])
}

/// Deserializes a [`History`] written by [`history_to_json`]. Op ids are
/// positional, so they survive the round trip unchanged.
pub fn history_from_json(json: &Json) -> Result<History, String> {
    let mut history = History::new();
    for (i, op) in json.get("ops").and_then(Json::as_arr).ok_or("missing ops")?.iter().enumerate() {
        let u = |k: &str| {
            op.get(k).and_then(Json::as_u64).ok_or_else(|| format!("op {i}: missing '{k}'"))
        };
        let process = ProcessId(u("process")? as u32);
        let service = ServiceId(u("service")? as u32);
        let kind = kind_from_json(op.get("kind").ok_or_else(|| format!("op {i}: missing kind"))?)
            .map_err(|e| format!("op {i}: {e}"))?;
        let invoke = Timestamp(u("invoke")?);
        match (op.get("response"), op.get("result")) {
            (Some(resp), Some(result)) => {
                let resp = Timestamp(resp.as_u64().ok_or_else(|| format!("op {i}: response"))?);
                let result = result_from_json(result).map_err(|e| format!("op {i}: {e}"))?;
                history.add_complete(process, service, kind, invoke, resp, result);
            }
            (None, None) => {
                history.add_incomplete(process, service, kind, invoke);
            }
            _ => return Err(format!("op {i}: response and result must be present together")),
        }
    }
    let edges = |field: &str| -> Result<Vec<[u64; 4]>, String> {
        json.get(field)
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("missing {field}"))?
            .iter()
            .map(|m| {
                let m = m.as_arr().filter(|m| m.len() == 4).ok_or("message edge shape")?;
                Ok([
                    m[0].as_u64().ok_or("edge field")?,
                    m[1].as_u64().ok_or("edge field")?,
                    m[2].as_u64().ok_or("edge field")?,
                    m[3].as_u64().ok_or("edge field")?,
                ])
            })
            .collect()
    };
    for [from, sent, to, recv] in edges("messages")? {
        history.add_message(
            ProcessId(from as u32),
            Timestamp(sent),
            ProcessId(to as u32),
            Timestamp(recv),
        );
    }
    for [from, sent, to, recv] in edges("external")? {
        history.add_external_communication(
            ProcessId(from as u32),
            Timestamp(sent),
            ProcessId(to as u32),
            Timestamp(recv),
        );
    }
    Ok(history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regular_core::history::HistoryBuilder;

    fn sample_history() -> (History, Vec<OpId>) {
        let mut b = HistoryBuilder::new();
        let w = b.write(1, 1, 5, 0, 10);
        let r = b.read(2, 1, 5, 20, 30);
        let t = b.rw_txn(3, &[(1, 5)], &[(2, 7)], 40, 50);
        let q = b.ro_txn(1, &[(2, 7)], 60, 70);
        let p = b.pending_write(4, 3, 9, 80);
        b.message(1, 11, 2, 12);
        (b.build(), vec![w, r, t, q, p])
    }

    #[test]
    fn histories_round_trip_through_json() {
        let (h, _) = sample_history();
        let json = history_to_json(&h);
        let parsed = history_from_json(&json).expect("round trip parses");
        assert_eq!(parsed, h, "history round trip is exact");
        // And through the textual form too.
        let reparsed = history_from_json(&Json::parse(&json.to_pretty()).unwrap()).unwrap();
        assert_eq!(reparsed, h);
    }

    #[test]
    fn artifacts_replay_the_same_verdict() {
        let (h, witness) = sample_history();
        let artifact = FailureArtifact {
            scenario: "unit-test".to_string(),
            seed: 42,
            model: WitnessModel::Regular,
            violation: "none (valid witness)".to_string(),
            witness,
            history: h,
            deliveries: vec![
                DeliveryRecord { seq: 0, at_us: 11, from: 1, to: 2 },
                DeliveryRecord { seq: 1, at_us: 30, from: 2, to: 0 },
            ],
            durability: Some("wal".to_string()),
            schedule: None,
            coverage: None,
        };
        assert_eq!(artifact.replay(), Ok(()));
        let round =
            FailureArtifact::from_json(&Json::parse(&artifact.to_json().to_pretty()).unwrap())
                .expect("artifact parses");
        assert_eq!(round.seed, 42);
        assert_eq!(round.model, WitnessModel::Regular);
        assert_eq!(round.deliveries, artifact.deliveries, "delivery log round-trips");
        assert_eq!(round.durability.as_deref(), Some("wal"), "durability tag round-trips");
        assert_eq!(round.replay(), Ok(()));
        // An actually-invalid witness replays to the same rejection.
        let mut bad = round.clone();
        bad.witness.swap(0, 1);
        assert_eq!(bad.replay(), artifact_with_witness(&bad).replay());
    }

    fn artifact_with_witness(a: &FailureArtifact) -> FailureArtifact {
        FailureArtifact::from_json(&Json::parse(&a.to_json().to_pretty()).unwrap()).unwrap()
    }

    #[test]
    fn save_and_load_round_trip() {
        let (h, witness) = sample_history();
        let artifact = FailureArtifact {
            scenario: "io-test".to_string(),
            seed: 7,
            model: WitnessModel::ProcessOrder,
            violation: "demo".to_string(),
            witness,
            history: h,
            deliveries: Vec::new(),
            durability: None,
            schedule: None,
            coverage: None,
        };
        let pretty = artifact.to_json().to_pretty();
        for absent in ["durability", "schedule", "coverage"] {
            assert!(
                !pretty.contains(absent),
                "artifacts omit the '{absent}' field when unset for schema byte-compatibility"
            );
        }
        let dir = std::env::temp_dir().join("regular-sweep-artifact-test");
        let path = artifact.save(&dir).expect("artifact saves");
        let loaded = FailureArtifact::load(&path).expect("artifact loads");
        assert_eq!(loaded.scenario, "io-test");
        assert_eq!(loaded.history, artifact.history);
        assert_eq!(loaded.durability, None);
        let _ = std::fs::remove_file(path);
    }
}
