//! Workload generators for the paper's evaluation.
//!
//! * [`zipf`] — the rejection-inversion Zipfian sampler the paper cites for
//!   key selection (skew 0.5–0.9 in Figure 5).
//! * [`retwis`] — the Retwis transaction mix (5 % add-user, 15 %
//!   follow/unfollow, 30 % post-tweet, 50 % load-timeline) used for the
//!   Spanner experiments.
//! * [`photo`] — the Section 2 photo-sharing application as a live
//!   [`regular_session::MultiServiceWorkload`] over the composed two-store
//!   deployment (uploaders and workers hopping between the KV and messaging
//!   services on every step).
//! * The YCSB-style read/write workload with a configurable conflict rate used
//!   by the Gryff experiments lives with the Gryff client
//!   (`regular_gryff::workload::ConflictWorkload`) because its key-partitioning
//!   scheme is specific to that harness.

pub mod photo;
pub mod retwis;
pub mod zipf;

pub use photo::{PhotoAppLayout, PhotoSharingWorkload};
pub use retwis::{GeneratedTxn, Retwis, RetwisKind};
pub use zipf::Zipf;
