//! The Retwis workload (Section 6): a Twitter-clone transaction mix.
//!
//! | Transaction     | Share | Kind        | Keys |
//! |-----------------|-------|-------------|------|
//! | add-user        |  5 %  | read-write  | 1    |
//! | follow/unfollow | 15 %  | read-write  | 2    |
//! | post-tweet      | 30 %  | read-write  | 3    |
//! | load-timeline   | 50 %  | read-only   | 1–10 |
//!
//! Keys are drawn from a Zipfian distribution over the configured key space
//! (ten million keys in the paper; scaled down for simulation).

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::zipf::Zipf;

/// A generated transaction: its keys and whether it is read-only.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeneratedTxn {
    /// True for read-only transactions.
    pub read_only: bool,
    /// Distinct keys accessed.
    pub keys: Vec<u64>,
    /// Human-readable transaction type (for diagnostics).
    pub kind: RetwisKind,
}

/// The four Retwis transaction types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RetwisKind {
    /// Create a user (read-write, 1 key).
    AddUser,
    /// Follow or unfollow a user (read-write, 2 keys).
    FollowUnfollow,
    /// Post a tweet (read-write, 3 keys).
    PostTweet,
    /// Load a timeline (read-only, 1–10 keys).
    LoadTimeline,
}

/// The Retwis generator.
#[derive(Debug, Clone)]
pub struct Retwis {
    zipf: Zipf,
}

impl Retwis {
    /// Creates a generator over `num_keys` keys with the given Zipf skew.
    pub fn new(num_keys: u64, skew: f64) -> Self {
        Retwis { zipf: Zipf::new(num_keys, skew) }
    }

    /// Number of keys in the key space.
    pub fn num_keys(&self) -> u64 {
        self.zipf.n()
    }

    fn distinct_keys(&self, rng: &mut SmallRng, count: usize) -> Vec<u64> {
        let mut keys = Vec::with_capacity(count);
        let mut guard = 0;
        while keys.len() < count && guard < count * 100 {
            let k = self.zipf.sample(rng);
            if !keys.contains(&k) {
                keys.push(k);
            }
            guard += 1;
        }
        // Degenerate key spaces may not have enough distinct keys; pad
        // deterministically so the transaction is still well-formed.
        let mut next = 0;
        while keys.len() < count {
            if !keys.contains(&next) {
                keys.push(next % self.zipf.n().max(1));
            }
            next += 1;
        }
        keys
    }

    /// Generates the next transaction.
    pub fn next_txn(&self, rng: &mut SmallRng) -> GeneratedTxn {
        let roll: f64 = rng.gen();
        if roll < 0.05 {
            GeneratedTxn {
                read_only: false,
                keys: self.distinct_keys(rng, 1),
                kind: RetwisKind::AddUser,
            }
        } else if roll < 0.20 {
            GeneratedTxn {
                read_only: false,
                keys: self.distinct_keys(rng, 2),
                kind: RetwisKind::FollowUnfollow,
            }
        } else if roll < 0.50 {
            GeneratedTxn {
                read_only: false,
                keys: self.distinct_keys(rng, 3),
                kind: RetwisKind::PostTweet,
            }
        } else {
            let n = rng.gen_range(1..=10);
            GeneratedTxn {
                read_only: true,
                keys: self.distinct_keys(rng, n),
                kind: RetwisKind::LoadTimeline,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mix_matches_paper_proportions() {
        let retwis = Retwis::new(100_000, 0.7);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0u32; 4];
        let n = 20_000;
        for _ in 0..n {
            let txn = retwis.next_txn(&mut rng);
            let idx = match txn.kind {
                RetwisKind::AddUser => 0,
                RetwisKind::FollowUnfollow => 1,
                RetwisKind::PostTweet => 2,
                RetwisKind::LoadTimeline => 3,
            };
            counts[idx] += 1;
            match txn.kind {
                RetwisKind::AddUser => assert_eq!(txn.keys.len(), 1),
                RetwisKind::FollowUnfollow => assert_eq!(txn.keys.len(), 2),
                RetwisKind::PostTweet => assert_eq!(txn.keys.len(), 3),
                RetwisKind::LoadTimeline => {
                    assert!((1..=10).contains(&txn.keys.len()));
                    assert!(txn.read_only);
                }
            }
        }
        let frac = |c: u32| c as f64 / n as f64;
        assert!((0.03..0.07).contains(&frac(counts[0])), "add-user ≈ 5%");
        assert!((0.12..0.18).contains(&frac(counts[1])), "follow ≈ 15%");
        assert!((0.27..0.33).contains(&frac(counts[2])), "post-tweet ≈ 30%");
        assert!((0.47..0.53).contains(&frac(counts[3])), "load-timeline ≈ 50%");
    }

    #[test]
    fn keys_are_distinct_within_a_transaction() {
        let retwis = Retwis::new(1_000, 0.9);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let txn = retwis.next_txn(&mut rng);
            let mut sorted = txn.keys.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), txn.keys.len());
            assert!(txn.keys.iter().all(|&k| k < 1_000));
        }
    }

    #[test]
    fn works_with_tiny_key_spaces() {
        let retwis = Retwis::new(3, 0.9);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            let txn = retwis.next_txn(&mut rng);
            assert!(!txn.keys.is_empty());
            assert!(txn.keys.len() <= 3 || txn.read_only);
        }
    }
}
