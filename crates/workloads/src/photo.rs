//! The photo-sharing application of Section 2 as a *live* workload over the
//! composed two-store deployment (ROADMAP's Table 1 scenario).
//!
//! The paper's running example composes two services: a key-value store
//! holding photos and album metadata (served by Spanner-RSS in the composed
//! deployment) and a messaging service carrying photo-processing requests
//! (served by Gryff-RSC). Two user roles drive it:
//!
//! * **Uploaders** (Alice): write a photo and update the album index at the
//!   KV store in one read-write transaction, then hop to the messaging store
//!   to publish a processing request — a service switch `libRSS` fences.
//! * **Workers** (Bob): claim a request at the messaging store with a
//!   read-modify-write, then hop to the KV store and read the album plus a
//!   photo in one read-only transaction — the fenced switch back is what
//!   invariant I2 ("a worker never dequeues a request and misses the photo
//!   it names") rests on. Session operations carry service-assigned values,
//!   so the claimed slot cannot *name* a photo; the worker reads a random
//!   photo instead, and I2 is enforced wholesale by certifying the combined
//!   history (queue rmw chains + fenced process order) as RSS rather than
//!   by tracing one request's dataflow.
//!
//! Each lane is one user and alternates its role steps in program order, so
//! every lane switches services on every step — the worst case for the
//! composition machinery and the exact pattern the fault sweeps stress.

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::Rng;
use regular_core::types::Key;
use regular_session::{LaneId, MultiServiceWorkload, SessionOp};

/// Key layout of the photo app over the two stores.
///
/// KV-store keys (service [`PhotoSharingWorkload::KV_SERVICE`]): the album
/// index lives at [`PhotoAppLayout::album`]; photo `i` lives at
/// `photo_base + i`. Messaging-store keys (service
/// [`PhotoSharingWorkload::MSG_SERVICE`]): request slot `i` lives at
/// `queue_base + i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhotoAppLayout {
    /// The album-index key at the KV store.
    pub album: Key,
    /// First photo key; photos occupy `photo_base .. photo_base + photos`.
    pub photo_base: u64,
    /// Number of distinct photos.
    pub photos: u64,
    /// First request-slot key at the messaging store.
    pub queue_base: u64,
    /// Number of request slots.
    pub queue_slots: u64,
}

impl Default for PhotoAppLayout {
    fn default() -> Self {
        PhotoAppLayout { album: Key(0), photo_base: 100, photos: 40, queue_base: 0, queue_slots: 8 }
    }
}

/// Where each lane is in its role script.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Uploader: add a photo + album update (KV), then publish the request
    /// (messaging).
    UploadPhoto,
    PublishRequest,
    /// Worker: claim a request (messaging), then read album + photo (KV).
    ClaimRequest,
    ReadAlbum {
        photo: u64,
    },
}

/// The photo-sharing app as a [`MultiServiceWorkload`] over a composed
/// two-service deployment: service 0 is the KV store, service 1 the
/// messaging store.
pub struct PhotoSharingWorkload {
    layout: PhotoAppLayout,
    /// Per-lane script position (lanes alternate uploader/worker roles by
    /// parity, so both roles run concurrently on every node).
    cursors: HashMap<LaneId, Step>,
}

impl PhotoSharingWorkload {
    /// Index of the KV (photo/album) service in the composed deployment.
    pub const KV_SERVICE: usize = 0;
    /// Index of the messaging (request queue) service.
    pub const MSG_SERVICE: usize = 1;

    /// Creates the workload over the given key layout.
    pub fn new(layout: PhotoAppLayout) -> Self {
        PhotoSharingWorkload { layout, cursors: HashMap::new() }
    }

    fn photo_key(&self, photo: u64) -> Key {
        Key(self.layout.photo_base + photo)
    }

    fn queue_key(&self, rng: &mut SmallRng) -> Key {
        Key(self.layout.queue_base + rng.gen_range(0..self.layout.queue_slots))
    }
}

impl Default for PhotoSharingWorkload {
    fn default() -> Self {
        Self::new(PhotoAppLayout::default())
    }
}

impl MultiServiceWorkload for PhotoSharingWorkload {
    fn next_targeted_op(&mut self, rng: &mut SmallRng, lane: LaneId) -> (usize, SessionOp) {
        // Uploader lanes have even (session + slot), worker lanes odd.
        let first = if (lane.session + u64::from(lane.slot)).is_multiple_of(2) {
            Step::UploadPhoto
        } else {
            Step::ClaimRequest
        };
        let step = *self.cursors.entry(lane).or_insert(first);
        let photo = rng.gen_range(0..self.layout.photos);
        let (next, target, op) = match step {
            Step::UploadPhoto => (
                Step::PublishRequest,
                Self::KV_SERVICE,
                // One transaction writes the photo data and the album index —
                // invariant I1 (the album never references missing data)
                // holds by atomicity.
                SessionOp::RwTxn { keys: vec![self.photo_key(photo), self.layout.album] },
            ),
            Step::PublishRequest => (
                Step::UploadPhoto,
                Self::MSG_SERVICE,
                // Publishing the processing request is a plain write of a
                // request slot; the preceding fenced service switch is what
                // orders it after the photo upload.
                SessionOp::Write { key: self.queue_key(rng) },
            ),
            Step::ClaimRequest => (
                Step::ReadAlbum { photo },
                Self::MSG_SERVICE,
                // Claiming a request is an atomic read-modify-write of a
                // request slot (two workers must not both claim it).
                SessionOp::Rmw { key: self.queue_key(rng) },
            ),
            Step::ReadAlbum { photo: p } => (
                Step::ClaimRequest,
                Self::KV_SERVICE,
                // The worker reads the album index and a photo in one
                // read-only transaction after the fenced switch back. The
                // photo was drawn at claim time (requests cannot carry ids;
                // see the module docs): the I2 guarantee is certified over
                // the whole history, not traced per request.
                SessionOp::RoTxn { keys: vec![self.layout.album, self.photo_key(p)] },
            ),
        };
        self.cursors.insert(lane, next);
        (target, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lanes_alternate_stores_on_every_step() {
        let mut w = PhotoSharingWorkload::default();
        let mut rng = SmallRng::seed_from_u64(1);
        let uploader = LaneId { session: 0, slot: 0 };
        let worker = LaneId { session: 1, slot: 0 };
        let u: Vec<usize> = (0..6).map(|_| w.next_targeted_op(&mut rng, uploader).0).collect();
        let k: Vec<usize> = (0..6).map(|_| w.next_targeted_op(&mut rng, worker).0).collect();
        assert_eq!(u, vec![0, 1, 0, 1, 0, 1], "uploaders hop KV -> messaging");
        assert_eq!(k, vec![1, 0, 1, 0, 1, 0], "workers hop messaging -> KV");
    }

    #[test]
    fn uploads_are_atomic_and_reads_cover_album_and_photo() {
        let mut w = PhotoSharingWorkload::default();
        let mut rng = SmallRng::seed_from_u64(2);
        let lane = LaneId { session: 0, slot: 0 };
        let (svc, op) = w.next_targeted_op(&mut rng, lane);
        assert_eq!(svc, PhotoSharingWorkload::KV_SERVICE);
        match op {
            SessionOp::RwTxn { keys } => {
                assert_eq!(keys.len(), 2);
                assert!(keys.contains(&PhotoAppLayout::default().album));
            }
            other => panic!("uploads are read-write transactions, got {other:?}"),
        }
        let worker = LaneId { session: 1, slot: 0 };
        let (svc, op) = w.next_targeted_op(&mut rng, worker);
        assert_eq!(svc, PhotoSharingWorkload::MSG_SERVICE);
        assert!(matches!(op, SessionOp::Rmw { .. }), "claims are read-modify-writes");
        let (svc, op) = w.next_targeted_op(&mut rng, worker);
        assert_eq!(svc, PhotoSharingWorkload::KV_SERVICE);
        match op {
            SessionOp::RoTxn { keys } => assert_eq!(keys.len(), 2),
            other => panic!("album checks are read-only transactions, got {other:?}"),
        }
    }
}
