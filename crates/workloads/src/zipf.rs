//! Zipfian key sampling via rejection inversion (Hörmann & Derflinger, 1996).
//!
//! The Spanner evaluation (Section 6) draws keys from a Zipfian distribution
//! with skew between 0.5 and 0.9 over ten million keys; this is the same
//! sampler the paper cites. Skew 0 degenerates to the uniform distribution.

use rand::Rng;

/// A Zipfian sampler over `0..n` with exponent `theta` (the "skew").
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    // Precomputed constants of the rejection-inversion method.
    h_x1: f64,
    h_n: f64,
    s: f64,
}

impl Zipf {
    /// Creates a sampler over the key space `0..n` with skew `theta ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta < 0`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "key space must be non-empty");
        assert!(theta >= 0.0, "skew must be non-negative");
        let mut z = Zipf { n, theta, h_x1: 0.0, h_n: 0.0, s: 0.0 };
        if theta > 0.0 && (theta - 1.0).abs() > 1e-9 {
            z.h_x1 = z.h(1.5) - 1.0;
            z.h_n = z.h(n as f64 + 0.5);
            z.s = 2.0 - z.h_inv(z.h(2.5) - 2f64.powf(-theta));
        }
        z
    }

    /// The key-space size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    fn h(&self, x: f64) -> f64 {
        // Integral of x^-theta (theta != 1).
        (x.powf(1.0 - self.theta) - 1.0) / (1.0 - self.theta)
    }

    fn h_inv(&self, x: f64) -> f64 {
        (1.0 + x * (1.0 - self.theta)).powf(1.0 / (1.0 - self.theta))
    }

    /// Samples a key in `0..n` (0 is the hottest key).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        if self.theta == 0.0 {
            return rng.gen_range(0..self.n);
        }
        if (self.theta - 1.0).abs() <= 1e-9 {
            // theta == 1: fall back to simple inverse-harmonic sampling.
            return self.sample_harmonic(rng);
        }
        loop {
            let u = self.h_n + rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = self.h_inv(u);
            let k = (x + 0.5).floor();
            if k - x <= self.s {
                return (k as u64).clamp(1, self.n) - 1;
            }
            if u >= self.h(k + 0.5) - k.powf(-self.theta) {
                return (k as u64).clamp(1, self.n) - 1;
            }
        }
    }

    fn sample_harmonic<R: Rng>(&self, rng: &mut R) -> u64 {
        // For theta == 1 the CDF is H(k)/H(n); invert by bisection over the
        // continuous approximation ln(k).
        let h_n = (self.n as f64).ln() + 0.5772156649;
        let target = rng.gen::<f64>() * h_n;
        let k = target.exp().clamp(1.0, self.n as f64);
        k as u64 - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn frequencies(theta: f64, n: u64, samples: usize) -> Vec<u64> {
        let z = Zipf::new(n, theta);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..samples {
            let k = z.sample(&mut rng);
            assert!(k < n, "sample out of range");
            counts[k as usize] += 1;
        }
        counts
    }

    #[test]
    fn uniform_when_theta_zero() {
        let counts = frequencies(0.0, 10, 100_000);
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "uniform bucket count {c}");
        }
    }

    #[test]
    fn skewed_distributions_favor_low_keys() {
        for theta in [0.5, 0.7, 0.9, 0.99] {
            let counts = frequencies(theta, 1_000, 200_000);
            assert!(counts[0] > counts[10], "skew {theta}: key 0 hotter than key 10");
            assert!(counts[0] > counts[500] * 2, "skew {theta}: strong head");
            // Higher skew concentrates more mass on the head.
        }
        let low = frequencies(0.5, 1_000, 200_000);
        let high = frequencies(0.9, 1_000, 200_000);
        assert!(high[0] > low[0], "higher skew puts more mass on the hottest key");
    }

    #[test]
    fn theta_one_is_supported() {
        let counts = frequencies(1.0, 100, 50_000);
        assert!(counts[0] > counts[50]);
        assert_eq!(counts.iter().sum::<u64>(), 50_000);
    }

    #[test]
    fn metadata_accessors() {
        let z = Zipf::new(500, 0.7);
        assert_eq!(z.n(), 500);
        assert!((z.theta() - 0.7).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "key space must be non-empty")]
    fn rejects_empty_key_space() {
        let _ = Zipf::new(0, 0.5);
    }

    #[test]
    fn deterministic_for_seed() {
        let z = Zipf::new(1_000, 0.9);
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }
}
