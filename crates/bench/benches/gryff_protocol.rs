//! Criterion benchmark of the simulated Gryff / Gryff-RSC protocol and of the
//! witness assembly + certificate verification pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use regular_gryff::prelude::*;
use regular_sim::net::LatencyMatrix;
use regular_sim::time::{SimDuration, SimTime};

fn run(mode: Mode, batch: usize) -> GryffRunResult {
    let clients = (0..8)
        .map(|i| GryffClientSpec {
            region: i % 5,
            sessions: SessionConfig::closed_loop(2, SimDuration::ZERO).with_batch(batch),
            workload: Box::new(ConflictWorkload::ycsb(0.5, 0.25, i as u64))
                as Box<dyn SessionWorkload>,
        })
        .collect();
    run_gryff(GryffClusterSpec {
        config: GryffConfig::wan(mode),
        net: LatencyMatrix::gryff_wan(),
        seed: 1,
        clients,
        stop_issuing_at: SimTime::from_secs(10),
        drain: SimDuration::from_secs(5),
        measure_from: SimTime::from_secs(1),
    })
}

fn bench_gryff(c: &mut Criterion) {
    let mut group = c.benchmark_group("gryff_protocol");
    group.sample_size(10);
    group.bench_function("simulate_10s_gryff", |b| b.iter(|| run(Mode::Gryff, 1)));
    group.bench_function("simulate_10s_gryff_rsc", |b| b.iter(|| run(Mode::GryffRsc, 1)));
    group.bench_function("simulate_10s_gryff_rsc_batch16", |b| b.iter(|| run(Mode::GryffRsc, 16)));
    group.bench_function("assemble_and_verify_rsc_run", |b| {
        let result = run(Mode::GryffRsc, 1);
        b.iter(|| verify_run(&result).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_gryff);
criterion_main!(benches);
