//! Criterion benchmark of the simulated Spanner / Spanner-RSS protocol: how
//! fast the simulator executes a fixed slice of cluster time, and the relative
//! cost of the two read-only transaction protocols.

use criterion::{criterion_group, criterion_main, Criterion};
use regular_sim::net::LatencyMatrix;
use regular_sim::time::{SimDuration, SimTime};
use regular_spanner::prelude::*;

fn run(mode: Mode, batch: usize) -> RunResult {
    let clients = (0..3)
        .map(|region| ClientSpec {
            region,
            sessions: SessionConfig::closed_loop(4, SimDuration::ZERO).with_batch(batch),
            workload: Box::new(UniformWorkload {
                num_keys: 1_000,
                ro_fraction: 0.5,
                keys_per_txn: 2,
            }),
        })
        .collect();
    run_cluster(ClusterSpec {
        config: SpannerConfig::wan(mode),
        net: LatencyMatrix::spanner_wan(),
        seed: 1,
        clients,
        stop_issuing_at: SimTime::from_secs(10),
        drain: SimDuration::from_secs(5),
        measure_from: SimTime::from_secs(1),
    })
}

fn bench_spanner(c: &mut Criterion) {
    let mut group = c.benchmark_group("spanner_protocol");
    group.sample_size(10);
    group.bench_function("simulate_10s_spanner", |b| b.iter(|| run(Mode::Spanner, 1)));
    group.bench_function("simulate_10s_spanner_rss", |b| b.iter(|| run(Mode::SpannerRss, 1)));
    group.bench_function("simulate_10s_spanner_rss_batch16", |b| {
        b.iter(|| run(Mode::SpannerRss, 16))
    });
    group.bench_function("verify_rss_run", |b| {
        let result = run(Mode::SpannerRss, 1);
        b.iter(|| verify_run(&result).unwrap())
    });
    group.bench_function("verify_rss_run_batch16", |b| {
        let result = run(Mode::SpannerRss, 16);
        b.iter(|| verify_run(&result).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_spanner);
criterion_main!(benches);
