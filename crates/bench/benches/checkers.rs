//! Criterion micro-benchmarks of the consistency checkers: the exact search
//! on small histories and the scalable certificate checker on protocol-scale
//! histories.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use regular_core::checker::certificate::{check_witness, check_witness_with, WitnessModel};
use regular_core::checker::models::{check, constraints_for, Model};
use regular_core::checker::search::{find_sequence, find_sequence_reference};
use regular_core::history::{History, HistoryBuilder, HistoryIndex};
use regular_core::op::{OpKind, OpResult};
use regular_core::types::{Key, OpId, ProcessId, ServiceId, Timestamp, Value};

/// The Figure 2 history plus a few more operations: a representative input for
/// the exact search.
fn small_history() -> History {
    let mut b = HistoryBuilder::new();
    b.write(1, 1, 1, 0, 100);
    b.read(2, 1, 1, 10, 20);
    b.read(3, 1, 0, 30, 40);
    b.write(2, 2, 2, 50, 60);
    b.read(1, 2, 2, 70, 80);
    b.read(3, 2, 2, 90, 95);
    b.build()
}

/// A synthetic linearizable history of `n` operations with a matching witness,
/// shaped like the protocol harness output (sequential writes and reads).
fn large_history(n: usize) -> (History, Vec<OpId>) {
    let mut history = History::new();
    let mut witness = Vec::with_capacity(n);
    let mut last_value = [Value::NULL; 16];
    let mut now = 0u64;
    for i in 0..n {
        let key = Key((i % 16) as u64);
        let process = ProcessId((i % 8) as u32);
        now += 10;
        let invoke = Timestamp(now);
        now += 10;
        let response = Timestamp(now);
        let id = if i % 3 == 0 {
            let value = Value(1 + i as u64);
            last_value[key.0 as usize] = value;
            history.add_complete(
                process,
                ServiceId::KV,
                OpKind::Write { key, value },
                invoke,
                response,
                OpResult::Ack,
            )
        } else {
            history.add_complete(
                process,
                ServiceId::KV,
                OpKind::Read { key },
                invoke,
                response,
                OpResult::Value(last_value[key.0 as usize]),
            )
        };
        witness.push(id);
    }
    (history, witness)
}

/// A denser exact-search input: 12 operations across 3 processes with two
/// pending writes, so the optional-subset loop and the memoized backtracking
/// both do real work.
fn subset_history() -> History {
    let mut b = HistoryBuilder::new();
    b.write(1, 1, 1, 0, 100);
    b.read(2, 1, 1, 10, 20);
    b.read(3, 1, 0, 30, 40);
    b.write(2, 2, 2, 50, 60);
    b.read(1, 2, 2, 70, 80);
    b.read(3, 2, 2, 90, 95);
    b.pending_write(1, 3, 3, 96);
    b.read(2, 3, 3, 100, 110);
    b.pending_write(3, 4, 4, 111);
    b.read(2, 4, 0, 120, 130);
    b.write(1, 5, 5, 140, 150);
    b.read(3, 5, 5, 160, 170);
    b.build()
}

fn bench_checkers(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkers");
    group.sample_size(20);

    let small = small_history();
    group.bench_function("exact_search_rsc_6_ops", |b| {
        b.iter(|| check(&small, Model::RegularSequentialConsistency).unwrap())
    });
    group.bench_function("exact_search_linearizability_6_ops", |b| {
        b.iter(|| check(&small, Model::Linearizability).unwrap())
    });

    // The optimized search against the retained reference implementation on
    // the same constraint set (the in-repo naive-search baseline).
    let subsets = subset_history();
    let cons = constraints_for(&subsets, Model::RegularSequentialConsistency);
    let required = subsets.complete_ids();
    let optional = subsets.pending_mutations();
    group.bench_function("exact_search_rsc_12_ops_pending_writes", |b| {
        b.iter(|| find_sequence(&subsets, &required, &optional, &cons).unwrap())
    });
    group.bench_function("exact_search_reference_rsc_12_ops_pending_writes", |b| {
        b.iter(|| find_sequence_reference(&subsets, &required, &optional, &cons).unwrap())
    });

    for &n in &[1_000usize, 10_000] {
        let (history, witness) = large_history(n);
        group.bench_function(format!("certificate_real_time_{n}_ops"), |b| {
            b.iter_batched(
                || witness.clone(),
                |w| check_witness(&history, &w, WitnessModel::RealTime).unwrap(),
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("certificate_regular_{n}_ops"), |b| {
            b.iter_batched(
                || witness.clone(),
                |w| check_witness(&history, &w, WitnessModel::Regular).unwrap(),
                BatchSize::SmallInput,
            )
        });
        // Amortized path: the index is built once per history and shared
        // across witness validations.
        let index = HistoryIndex::new(&history);
        group.bench_function(format!("certificate_regular_{n}_ops_prebuilt_index"), |b| {
            b.iter_batched(
                || witness.clone(),
                |w| check_witness_with(&history, &index, &w, WitnessModel::Regular).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_checkers);
criterion_main!(benches);
