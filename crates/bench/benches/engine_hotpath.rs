//! Criterion benchmark of the discrete-event engine hot path: the identical
//! 10-simulated-second protocol runs executed on the indexed
//! (arena + calendar wheel) event queue versus the retained reference heap,
//! plus a queue-only churn microbenchmark.
//!
//! Both queue kinds pop in identical `(time, seq)` order — the runs produce
//! byte-identical histories (pinned in `tests/queue_determinism.rs` and
//! `tests/indexed_engine_equivalence.rs`) — so the delta between the paired
//! rows is purely the event-storage cost the PR 5 tentpole removed.
//! `sim_profile` reports the same comparison as wall-clock numbers and
//! feeds the `bench_gate` engine-hotpath gate.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use regular_bench::runs::{engine_profile_gryff, engine_profile_spanner};
use regular_sim::queue::{QueueKind, SimQueue};
use regular_sim::time::SimTime;

/// A payload shaped like a protocol message: a small enum-sized header plus
/// a heap allocation, so heap sifts pay the realistic move cost.
#[derive(Clone)]
struct FakeMsg {
    _header: [u64; 6],
    _writes: Vec<(u64, u64)>,
}

fn fake_msg(rng: &mut SmallRng) -> FakeMsg {
    FakeMsg { _header: [rng.gen(); 6], _writes: vec![(rng.gen(), rng.gen()); 2] }
}

/// Pure queue churn: steady-state push/pop with the near/far time mix of a
/// WAN simulation (most events within tens of ms, a few far timers).
fn queue_churn(kind: QueueKind, events: usize) -> usize {
    let mut rng = SmallRng::seed_from_u64(7);
    let mut queue = SimQueue::new(kind);
    let mut now = 0u64;
    let mut popped = 0usize;
    for _ in 0..events {
        let pushes = rng.gen_range(1..=2);
        for _ in 0..pushes {
            let delta: u64 = if rng.gen_bool(0.97) {
                rng.gen_range(0..40_000) // within ~40 ms
            } else {
                rng.gen_range(0..2_000_000) // a far timer
            };
            let msg = fake_msg(&mut rng);
            let id = queue.alloc(msg);
            queue.schedule(SimTime::from_micros(now + delta), id, 0, false);
        }
        let (t, _) = queue.pop().expect("queue is non-empty");
        now = t.as_micros();
        popped += 1;
    }
    popped
}

fn bench_engine_hotpath(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_hotpath");
    group.sample_size(10);
    group.bench_function("simulate_10s_spanner_rss_indexed", |b| {
        b.iter(|| engine_profile_spanner(10, 1, QueueKind::Indexed))
    });
    group.bench_function("simulate_10s_spanner_rss_reference_heap", |b| {
        b.iter(|| engine_profile_spanner(10, 1, QueueKind::ReferenceHeap))
    });
    group.bench_function("simulate_10s_gryff_rsc_indexed", |b| {
        b.iter(|| engine_profile_gryff(10, 1, QueueKind::Indexed))
    });
    group.bench_function("simulate_10s_gryff_rsc_reference_heap", |b| {
        b.iter(|| engine_profile_gryff(10, 1, QueueKind::ReferenceHeap))
    });
    group.bench_function("queue_churn_50k_indexed", |b| {
        b.iter(|| queue_churn(QueueKind::Indexed, 50_000))
    });
    group.bench_function("queue_churn_50k_reference_heap", |b| {
        b.iter(|| queue_churn(QueueKind::ReferenceHeap, 50_000))
    });
    group.finish();
}

criterion_group!(benches, bench_engine_hotpath);
criterion_main!(benches);
