//! Criterion benchmarks of the certification cascade at scale: batch,
//! component-decomposed, and windowed streaming witness checking on long
//! synthetic histories, plus the saturation-prefiltered search far past the
//! old 128-op exact frontier.

use criterion::{criterion_group, criterion_main, Criterion};
use regular_core::checker::certificate::WitnessModel;
use regular_core::checker::models::{check, Model};
use regular_core::{check_witness, check_witness_decomposed, ComponentSplit};
use regular_sweep::{certify_streaming, synthetic_history};

fn bench_checker_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker_scale");
    group.sample_size(10);

    for &n in &[10_000usize, 100_000] {
        let (history, witness) = synthetic_history(n, 8);
        group.bench_function(format!("witness_full_{n}_ops"), |b| {
            b.iter(|| check_witness(&history, &witness, WitnessModel::Regular).unwrap())
        });
        group.bench_function(format!("witness_decomposed_{n}_ops"), |b| {
            b.iter(|| {
                check_witness_decomposed(&history, &witness, WitnessModel::Regular, 1).unwrap()
            })
        });
        group.bench_function(format!("witness_streaming_{n}_ops"), |b| {
            b.iter(|| certify_streaming(&history, &witness, WitnessModel::Regular).unwrap())
        });
        group.bench_function(format!("component_split_{n}_ops"), |b| {
            b.iter(|| ComponentSplit::split(&history).len())
        });
    }

    // The search-side cascade (saturation + decomposition + guided search)
    // *finding* a witness, not just validating one.
    let (search_history, _) = synthetic_history(2_000, 4);
    group.bench_function("saturated_search_rsc_2000_ops", |b| {
        b.iter(|| {
            assert!(check(&search_history, Model::RegularSequentialConsistency).unwrap().satisfied)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_checker_scale);
criterion_main!(benches);
