//! End-to-end multi-process smoke test: `live_bench --net --processes 2`
//! actually forks worker OS processes, runs the Spanner-RSS cluster over a
//! Unix-domain socket, streaming-certifies the result, and writes a
//! well-formed `BENCH_net.json`. This drives the same binary CI's
//! socket-smoke job uses, via `CARGO_BIN_EXE`.

use std::process::Command;

use regular_sweep::Json;

#[test]
fn live_bench_net_mode_runs_two_worker_processes_over_uds() {
    let out = std::env::temp_dir().join(format!("bench_net_test_{}.json", std::process::id()));
    let status = Command::new(env!("CARGO_BIN_EXE_live_bench"))
        .args(["--net", "--quick", "--processes", "2", "--seed", "5", "--out"])
        .arg(&out)
        .status()
        .expect("run live_bench");
    assert!(status.success(), "live_bench --net --processes 2 failed: {status}");

    let report = std::fs::read_to_string(&out).expect("read BENCH_net.json");
    let _ = std::fs::remove_file(&out);
    let json = Json::parse(&report).expect("report must be valid JSON");
    assert_eq!(
        json.get("schema").and_then(|s| s.as_str()),
        Some("regular-seq/live-net/v1"),
        "wrong or missing schema"
    );

    // The transport comparison covered all three backends, every run
    // certified, and the socket runs moved real frames.
    let transports = match json.get("transports") {
        Some(Json::Arr(entries)) => entries,
        other => panic!("missing transports array: {other:?}"),
    };
    let names: Vec<&str> =
        transports.iter().filter_map(|e| e.get("transport").and_then(|t| t.as_str())).collect();
    assert_eq!(names, ["mpsc", "uds", "tcp"], "transport comparison incomplete");
    for e in transports {
        assert_eq!(
            e.get("certified"),
            Some(&Json::Bool(true)),
            "a transport run failed to certify: {e:?}"
        );
        let frames = e.get("frames_tx").and_then(|f| f.as_f64()).unwrap_or(-1.0);
        match e.get("transport").and_then(|t| t.as_str()) {
            Some("mpsc") => assert_eq!(frames, 0.0, "mpsc moves no wire frames"),
            _ => assert!(frames > 0.0, "socket run moved no frames: {e:?}"),
        }
    }

    // The multi-process section ran (3 = hub + 2 workers) and certified.
    let multiproc = json.get("multiproc").expect("missing multiproc section");
    assert_eq!(multiproc.get("processes").and_then(|p| p.as_f64()), Some(3.0));
    assert_eq!(multiproc.get("certified"), Some(&Json::Bool(true)), "multiproc did not certify");
    assert!(
        multiproc.get("history_ops").and_then(|o| o.as_f64()).unwrap_or(0.0) > 100.0,
        "multiproc run barely progressed"
    );
    assert!(
        multiproc.get("frames_tx").and_then(|f| f.as_f64()).unwrap_or(0.0) > 0.0,
        "multiproc run moved no frames"
    );
}
