//! Shared experiment configurations for the figure/table harnesses.
//!
//! Every binary in `src/bin/` builds on these helpers so that the exact
//! workload parameters of each experiment live in one place and match the
//! paper's evaluation setup (scaled to simulation: the key space is smaller
//! than the paper's ten million keys, and load levels are scaled accordingly;
//! see DESIGN.md for the substitution rationale).

use rand::rngs::SmallRng;
use regular_gryff::prelude as gryff;
use regular_session::{SessionConfig, SessionOp, SessionWorkload};
use regular_sim::metrics::LatencyRecorder;
use regular_sim::net::LatencyMatrix;
use regular_sim::time::{SimDuration, SimTime};
use regular_spanner::prelude as spanner;
use regular_workloads::Retwis;

/// Adapts the Retwis generator to the protocol-agnostic session interface.
pub struct RetwisAdapter {
    retwis: Retwis,
}

impl RetwisAdapter {
    /// Creates an adapter over `num_keys` keys with the given Zipf skew.
    pub fn new(num_keys: u64, skew: f64) -> Self {
        RetwisAdapter { retwis: Retwis::new(num_keys, skew) }
    }
}

impl SessionWorkload for RetwisAdapter {
    fn next_op(&mut self, rng: &mut SmallRng) -> SessionOp {
        let txn = self.retwis.next_txn(rng);
        let keys = txn.keys.iter().map(|&k| regular_core::types::Key(k)).collect();
        if txn.read_only {
            SessionOp::RoTxn { keys }
        } else {
            SessionOp::RwTxn { keys }
        }
    }
}

/// Parameters of a Figure 5 style run (Retwis over the wide-area topology).
#[derive(Debug, Clone)]
pub struct RetwisRunParams {
    /// Zipf skew (0.5, 0.7, or 0.9 in the paper).
    pub skew: f64,
    /// Key-space size (the paper uses 10 M; scaled down for simulation).
    pub num_keys: u64,
    /// Session arrival rate per client node (partly-open model).
    pub arrival_rate: f64,
    /// Session continuation probability (0.9 in the paper).
    pub stay_probability: f64,
    /// Simulated seconds of load generation.
    pub duration_secs: u64,
    /// Random seed.
    pub seed: u64,
    /// Ablation: disable the `t_ee` fast path in Spanner-RSS.
    pub disable_tee_skip: bool,
    /// TrueTime uncertainty (10 ms in the paper's wide-area experiments).
    pub truetime_epsilon: SimDuration,
}

impl Default for RetwisRunParams {
    fn default() -> Self {
        RetwisRunParams {
            skew: 0.7,
            num_keys: 400_000,
            arrival_rate: 4.0,
            stay_probability: 0.9,
            duration_secs: 120,
            seed: 42,
            disable_tee_skip: false,
            truetime_epsilon: SimDuration::from_millis(10),
        }
    }
}

/// Runs the Figure 5 configuration: three shards with leaders in CA/VA/IR,
/// partly-open Retwis clients in every region.
pub fn run_spanner_retwis(mode: spanner::Mode, params: &RetwisRunParams) -> spanner::RunResult {
    let mut config = spanner::SpannerConfig::wan(mode);
    config.disable_tee_skip = params.disable_tee_skip;
    config.truetime_epsilon = params.truetime_epsilon;
    let net = LatencyMatrix::spanner_wan();
    let clients = (0..3)
        .map(|region| spanner::ClientSpec {
            region,
            sessions: SessionConfig::partly_open(
                params.arrival_rate,
                params.stay_probability,
                SimDuration::ZERO,
            ),
            workload: Box::new(RetwisAdapter::new(params.num_keys, params.skew))
                as Box<dyn SessionWorkload>,
        })
        .collect();
    spanner::run_cluster(spanner::ClusterSpec {
        config,
        net,
        seed: params.seed,
        clients,
        stop_issuing_at: SimTime::from_secs(params.duration_secs),
        drain: SimDuration::from_secs(20),
        measure_from: SimTime::from_secs(5),
    })
}

/// Runs one point of the Figure 6 configuration: eight shards in one data
/// center, uniform workload, a given number of closed-loop sessions.
pub fn run_spanner_overhead(
    mode: spanner::Mode,
    total_sessions: usize,
    seed: u64,
) -> spanner::RunResult {
    run_spanner_overhead_batched(mode, total_sessions, 1, seed)
}

/// [`run_spanner_overhead`] with an explicit per-session pipelining depth.
pub fn run_spanner_overhead_batched(
    mode: spanner::Mode,
    total_sessions: usize,
    batch: usize,
    seed: u64,
) -> spanner::RunResult {
    let config = spanner::SpannerConfig::single_dc(mode, 8);
    let net = LatencyMatrix::single_dc();
    let nodes = 4;
    let clients = (0..nodes)
        .map(|_| spanner::ClientSpec {
            region: 0,
            sessions: SessionConfig::closed_loop(
                (total_sessions / nodes).max(1),
                SimDuration::ZERO,
            )
            .with_batch(batch),
            workload: Box::new(spanner::UniformWorkload {
                num_keys: 1_000_000,
                ro_fraction: 0.5,
                keys_per_txn: 3,
            }) as Box<dyn SessionWorkload>,
        })
        .collect();
    spanner::run_cluster(spanner::ClusterSpec {
        config,
        net,
        seed,
        clients,
        stop_issuing_at: SimTime::from_secs(10),
        drain: SimDuration::from_secs(5),
        measure_from: SimTime::from_secs(2),
    })
}

/// Parameters of a Figure 7 style run (YCSB over the five-region topology).
#[derive(Debug, Clone)]
pub struct GryffRunParams {
    /// Fraction of operations that are writes.
    pub write_ratio: f64,
    /// Conflict rate (0.02, 0.10, 0.25 in the paper).
    pub conflict_rate: f64,
    /// Total closed-loop clients (16 in the paper), spread over the regions.
    pub clients: usize,
    /// Use the wide-area topology (Table 2); false = single data center.
    pub wan: bool,
    /// Simulated seconds of load generation.
    pub duration_secs: u64,
    /// Random seed.
    pub seed: u64,
}

impl Default for GryffRunParams {
    fn default() -> Self {
        GryffRunParams {
            write_ratio: 0.5,
            conflict_rate: 0.10,
            clients: 16,
            wan: true,
            duration_secs: 120,
            seed: 42,
        }
    }
}

/// Runs the Figure 7 / §7.4 configuration.
pub fn run_gryff_ycsb(mode: gryff::Mode, params: &GryffRunParams) -> gryff::GryffRunResult {
    run_gryff_ycsb_batched(mode, params, 1)
}

/// [`run_gryff_ycsb`] with an explicit per-session pipelining depth.
pub fn run_gryff_ycsb_batched(
    mode: gryff::Mode,
    params: &GryffRunParams,
    batch: usize,
) -> gryff::GryffRunResult {
    let (config, net, regions) = if params.wan {
        (gryff::GryffConfig::wan(mode), LatencyMatrix::gryff_wan(), 5)
    } else {
        (gryff::GryffConfig::single_dc(mode), LatencyMatrix::single_dc(), 1)
    };
    let clients = (0..params.clients)
        .map(|i| gryff::GryffClientSpec {
            region: i % regions,
            sessions: SessionConfig::closed_loop(1, SimDuration::ZERO).with_batch(batch),
            workload: Box::new(gryff::ConflictWorkload::ycsb(
                params.write_ratio,
                params.conflict_rate,
                i as u64,
            )) as Box<dyn SessionWorkload>,
        })
        .collect();
    gryff::run_gryff(gryff::GryffClusterSpec {
        config,
        net,
        seed: params.seed,
        clients,
        stop_issuing_at: SimTime::from_secs(params.duration_secs),
        drain: SimDuration::from_secs(10),
        measure_from: SimTime::from_secs(5),
    })
}

/// The fixed Spanner-RSS configuration of the `engine_hotpath` profile — the
/// "10 s Spanner run" of the ROADMAP's engine-hot-path item: the throughput
/// experiment's single-DC eight-shard cluster (§6.2) under saturating load
/// (4 client nodes × 32 sessions × batch 8 = 1024 lanes), where the
/// simulator pushes millions of messages through the event queue and the
/// shards' busy-deferral churn makes event storage dominate wall-clock.
/// `queue` selects the event-queue implementation so the bench and
/// `sim_profile` can A/B the indexed queue against the retained reference
/// heap on an otherwise identical execution.
pub fn engine_profile_spanner(
    seconds: u64,
    seed: u64,
    queue: regular_sim::queue::QueueKind,
) -> spanner::RunResult {
    let mut config = spanner::SpannerConfig::single_dc(spanner::Mode::SpannerRss, 8);
    config.queue_kind = queue;
    let clients = (0..4)
        .map(|_| spanner::ClientSpec {
            region: 0,
            sessions: SessionConfig::closed_loop(32, SimDuration::ZERO).with_batch(8),
            workload: Box::new(spanner::UniformWorkload {
                num_keys: 1_000_000,
                ro_fraction: 0.5,
                keys_per_txn: 3,
            }) as Box<dyn SessionWorkload>,
        })
        .collect();
    spanner::run_cluster(spanner::ClusterSpec {
        config,
        net: LatencyMatrix::single_dc(),
        seed,
        clients,
        stop_issuing_at: SimTime::from_secs(seconds),
        drain: SimDuration::from_secs(5),
        measure_from: SimTime::from_secs(1),
    })
}

/// The Gryff-RSC counterpart of [`engine_profile_spanner`]: five-region WAN,
/// batch-8 pipelined sessions (the message-heavy configuration — every op is
/// two quorum rounds across the WAN).
pub fn engine_profile_gryff(
    seconds: u64,
    seed: u64,
    queue: regular_sim::queue::QueueKind,
) -> gryff::GryffRunResult {
    let mut config = gryff::GryffConfig::wan(gryff::Mode::GryffRsc);
    config.queue_kind = queue;
    let clients = (0..5)
        .map(|region| gryff::GryffClientSpec {
            region,
            sessions: SessionConfig::closed_loop(2, SimDuration::ZERO).with_batch(8),
            workload: Box::new(gryff::ConflictWorkload::ycsb(0.5, 0.10, region as u64))
                as Box<dyn SessionWorkload>,
        })
        .collect();
    gryff::run_gryff(gryff::GryffClusterSpec {
        config,
        net: LatencyMatrix::gryff_wan(),
        seed,
        clients,
        stop_issuing_at: SimTime::from_secs(seconds),
        drain: SimDuration::from_secs(5),
        measure_from: SimTime::from_secs(1),
    })
}

/// Formats a latency value in milliseconds with two decimals.
pub fn fmt_ms(d: Option<SimDuration>) -> String {
    match d {
        Some(d) => format!("{:.2}", d.as_millis_f64()),
        None => "-".to_string(),
    }
}

/// Prints a tail-latency row (p50/p90/p99/p99.5/p99.9/max) for a recorder.
pub fn print_tail_row(label: &str, recorder: &LatencyRecorder) {
    let mut r = recorder.clone();
    println!(
        "{:<28} n={:<7} p50={:>8} p90={:>8} p99={:>8} p99.5={:>8} p99.9={:>8} max={:>8}  (ms)",
        label,
        r.len(),
        fmt_ms(r.percentile(50.0)),
        fmt_ms(r.percentile(90.0)),
        fmt_ms(r.percentile(99.0)),
        fmt_ms(r.percentile(99.5)),
        fmt_ms(r.percentile(99.9)),
        fmt_ms(r.max()),
    );
}

/// Prints a CDF (fraction, latency ms) table for plotting, one row per named
/// fraction — the format of Figures 5 and 7's axes.
pub fn print_cdf(label: &str, recorder: &LatencyRecorder, fractions: &[f64]) {
    let mut r = recorder.clone();
    println!("# CDF {label}");
    println!("{:>10}  {:>12}", "fraction", "latency_ms");
    for p in r.cdf(fractions) {
        println!("{:>10.4}  {:>12.2}", p.fraction, p.latency.as_millis_f64());
    }
}

/// The percentile improvement of `new` over `old` (positive = reduction).
pub fn reduction_pct(old: Option<SimDuration>, new: Option<SimDuration>) -> f64 {
    match (old, new) {
        (Some(o), Some(n)) if o.as_micros() > 0 => {
            (o.as_micros() as f64 - n.as_micros() as f64) / o.as_micros() as f64 * 100.0
        }
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retwis_adapter_produces_valid_requests() {
        use rand::SeedableRng;
        let mut adapter = RetwisAdapter::new(1_000, 0.7);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut ro = 0;
        for _ in 0..200 {
            let (keys, read_only) = match adapter.next_op(&mut rng) {
                SessionOp::RoTxn { keys } => (keys, true),
                SessionOp::RwTxn { keys } => (keys, false),
                other => panic!("unexpected op {other:?}"),
            };
            assert!(!keys.is_empty());
            if read_only {
                ro += 1;
            }
        }
        assert!(ro > 50, "about half the Retwis mix is read-only");
    }

    #[test]
    fn reduction_percentage() {
        let old = Some(SimDuration::from_millis(200));
        let new = Some(SimDuration::from_millis(100));
        assert!((reduction_pct(old, new) - 50.0).abs() < 1e-9);
        assert_eq!(reduction_pct(None, new), 0.0);
    }
}
